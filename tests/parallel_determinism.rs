//! Parallel determinism (ISSUE 3 satellite): threading must never change
//! bytes.
//!
//! The paper's deployment story (§V) runs the preconditioner on every
//! compute node over its own shard; the repo's analogues are
//! `compress_bytes_parallel` and `ArchiveReader::read_all_parallel`. Both
//! partition work by chunk and write results by chunk index, so the output
//! must be byte-identical to the serial path for *any* thread count —
//! including thread counts above the chunk count and inputs whose final
//! chunk is a ragged tail.

use primacy_suite::core::{ArchiveReader, ArchiveWriter, PrimacyCompressor, PrimacyConfig};
use primacy_suite::datagen::DatasetId;

/// Thread counts exercised everywhere: serial-equivalent (1), small (2),
/// odd and prime (7), and more threads than this container has cores or
/// most inputs have chunks (16).
const THREADS: [usize; 4] = [1, 2, 7, 16];

fn compressor(chunk_bytes: usize) -> PrimacyCompressor {
    PrimacyCompressor::new(PrimacyConfig {
        chunk_bytes,
        ..Default::default()
    })
}

#[test]
fn parallel_compress_matches_serial_across_thread_counts() {
    // 1237 elements: prime, so every chunk size below leaves a ragged tail.
    let input = DatasetId::GtsPhiL.generate_bytes(1237);
    // 128-, 97-, and 1237-element chunks: many chunks, non-divisible chunk
    // count, and a single chunk (fewer chunks than threads).
    for chunk_bytes in [1024, 97 * 8, 1237 * 8] {
        let c = compressor(chunk_bytes);
        let serial = c.compress_bytes(&input).expect("serial compress");
        for threads in THREADS {
            let parallel = c
                .compress_bytes_parallel(&input, threads)
                .expect("parallel compress");
            assert_eq!(
                parallel, serial,
                "chunk_bytes={chunk_bytes} threads={threads}: parallel output \
                 differs from serial"
            );
        }
        // And the parallel container still decodes to the input.
        assert_eq!(
            c.decompress_bytes(&serial).expect("decompress"),
            input,
            "chunk_bytes={chunk_bytes}: container does not round-trip"
        );
    }
}

#[test]
fn parallel_compress_matches_serial_on_divisible_input() {
    // 512 elements over 128-element chunks: exactly four full chunks, no
    // tail — the complementary case to the ragged input above.
    let input = DatasetId::ObsError.generate_bytes(512);
    let c = compressor(1024);
    let serial = c.compress_bytes(&input).expect("serial compress");
    for threads in THREADS {
        assert_eq!(
            c.compress_bytes_parallel(&input, threads)
                .expect("parallel compress"),
            serial,
            "threads={threads}: divisible input not deterministic"
        );
    }
}

#[test]
fn archive_read_all_parallel_matches_serial() {
    // Two datasets, ragged tails: 1237 elements over 128-element chunks
    // (9 full + 85-element tail) and over 97-element chunks.
    for id in [DatasetId::GtsPhiL, DatasetId::ObsError] {
        let input = id.generate_bytes(1237);
        for chunk_bytes in [1024, 97 * 8] {
            let mut w = ArchiveWriter::new(
                Vec::new(),
                PrimacyConfig {
                    chunk_bytes,
                    ..Default::default()
                },
            )
            .expect("valid config");
            w.append(&input).expect("element-aligned");
            let archive = w.finish().expect("finishes");
            let r = ArchiveReader::open(&archive).expect("parses");
            let serial = r.read_all_parallel(1).expect("serial read");
            assert_eq!(serial, input, "{id}: archive does not round-trip");
            for threads in THREADS {
                assert_eq!(
                    r.read_all_parallel(threads).expect("parallel read"),
                    serial,
                    "{id} chunk_bytes={chunk_bytes} threads={threads}: \
                     parallel read differs from serial"
                );
            }
        }
    }
}

#[test]
fn parallel_compress_repeated_runs_are_stable() {
    // Scheduling nondeterminism must not leak into bytes: the same call
    // repeated with the same thread count always produces the same output.
    let input = DatasetId::ObsError.generate_bytes(777);
    let c = compressor(1024);
    let first = c.compress_bytes_parallel(&input, 7).expect("compress");
    for _ in 0..5 {
        assert_eq!(
            c.compress_bytes_parallel(&input, 7).expect("compress"),
            first,
            "repeated parallel runs disagree"
        );
    }
}
