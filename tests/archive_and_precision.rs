//! Integration: the seekable archive across datasets and the paper's
//! "other precisions" claim (f32 pipeline end to end).

use primacy_suite::core::{ArchiveReader, ArchiveWriter, PrimacyCompressor, PrimacyConfig};
use primacy_suite::datagen::DatasetId;

#[test]
fn archive_roundtrips_every_dataset() {
    let cfg = PrimacyConfig {
        chunk_bytes: 64 * 1024,
        ..Default::default()
    };
    for id in DatasetId::ALL {
        let bytes = id.generate_bytes(1 << 13);
        let mut w = ArchiveWriter::new(Vec::new(), cfg.clone()).expect("valid config");
        w.append(&bytes).expect("aligned");
        let archive = w.finish().expect("finishes");
        let r = ArchiveReader::open(&archive).expect("parses");
        assert_eq!(
            r.read_elements(0, r.element_count() as usize)
                .expect("reads"),
            bytes,
            "{id}"
        );
    }
}

#[test]
fn archive_random_windows_match_source() {
    let values = DatasetId::MsgSp.generate(1 << 15);
    let cfg = PrimacyConfig {
        chunk_bytes: 32 * 1024, // 4096 doubles per chunk
        ..Default::default()
    };
    let mut w = ArchiveWriter::new(Vec::new(), cfg).expect("valid config");
    w.append_f64(&values).expect("aligned");
    let archive = w.finish().expect("finishes");
    let r = ArchiveReader::open(&archive).expect("parses");

    let mut x = 12345u64;
    for _ in 0..50 {
        x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        let start = (x >> 33) as usize % (values.len() - 100);
        let count = 1 + (x >> 20) as usize % 100;
        let got = r.read_elements_f64(start as u64, count).expect("in range");
        assert_eq!(got, &values[start..start + count]);
    }
}

#[test]
fn f32_pipeline_end_to_end() {
    // §IV-B: "PRIMACY can also perform effectively on floating-point data
    // of higher precisions due to the nature of its mapping scheme" — and
    // lower ones: the f32 configuration maps 1 exponent byte + 3 mantissa
    // bytes.
    let cfg = PrimacyConfig::f32();
    let c = PrimacyCompressor::new(cfg);
    for id in [DatasetId::GtsPhiL, DatasetId::ObsTemp, DatasetId::NumPlasma] {
        let bytes = id.generate_f32_bytes(1 << 15);
        let comp = c.compress_bytes(&bytes).expect("compress");
        assert_eq!(c.decompress_bytes(&comp).expect("roundtrip"), bytes, "{id}");
    }
}

#[test]
fn f32_compression_still_beats_backend_alone() {
    // The ID mapping over the single exponent byte must still help on
    // narrow-range single-precision data.
    use primacy_suite::codecs::CodecKind;
    let mut x = 5u64;
    let values: Vec<f32> = (0..1 << 17)
        .map(|_| {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            1.0f32 + (x >> 40) as f32 / (1u64 << 26) as f32
        })
        .collect();
    let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
    let c = PrimacyCompressor::new(PrimacyConfig::f32());
    let primacy_size = c.compress_bytes(&bytes).expect("compress").len();
    let zlib_size = CodecKind::Zlib
        .build()
        .compress(&bytes)
        .expect("compress")
        .len();
    assert!(
        primacy_size < zlib_size,
        "primacy {primacy_size} vs zlib {zlib_size}"
    );
    assert_eq!(
        c.decompress_bytes(&c.compress_bytes(&bytes).unwrap())
            .unwrap(),
        bytes
    );
}

#[test]
fn archives_and_streams_coexist() {
    // The two container formats are distinguishable by magic; neither parses
    // as the other.
    let values = DatasetId::ObsInfo.generate(4096);
    let c = PrimacyCompressor::new(PrimacyConfig::default());
    let stream = c.compress_f64(&values).expect("compress");
    assert!(ArchiveReader::open(&stream).is_err());

    let mut w = ArchiveWriter::new(Vec::new(), PrimacyConfig::default()).expect("valid");
    w.append_f64(&values).expect("aligned");
    let archive = w.finish().expect("finishes");
    assert!(c.decompress_bytes(&archive).is_err());
}
