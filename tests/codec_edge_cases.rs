//! Boundary-condition torture tests for the codec substrate: exact window
//! sizes, maximum match lengths, block boundaries, degenerate alphabets —
//! the places where off-by-one bugs in compressors live.

use primacy_suite::codecs::bwt::BwtCodec;
use primacy_suite::codecs::deflate::{deflate, inflate, Gzip, Level, Zlib};
use primacy_suite::codecs::fpc::Fpc;
use primacy_suite::codecs::lzr::Lzr;
use primacy_suite::codecs::{Codec, CodecKind};

fn xorshift_bytes(n: usize, mut seed: u64) -> Vec<u8> {
    (0..n)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 32) as u8
        })
        .collect()
}

fn assert_deflate_roundtrip(data: &[u8]) {
    for level in [Level::Fast, Level::Default, Level::Best] {
        let comp = deflate(data, level);
        assert_eq!(
            inflate(&comp).expect("inflate"),
            data,
            "len {} at {level:?}",
            data.len()
        );
    }
}

#[test]
fn deflate_window_boundary_matches() {
    // A marker exactly WINDOW_SIZE (32768) bytes apart: the farthest legal
    // distance. And one at 32769: one past it.
    for gap in [32_766usize, 32_767, 32_768, 32_769, 32_770] {
        let marker = b"0123456789ABCDEF";
        let mut data = xorshift_bytes(gap + 2 * marker.len(), gap as u64);
        data[..marker.len()].copy_from_slice(marker);
        let at = gap;
        data[at..at + marker.len()].copy_from_slice(marker);
        assert_deflate_roundtrip(&data);
    }
}

#[test]
fn deflate_max_match_length_runs() {
    // Runs around the 258-byte maximum match length.
    for len in [256usize, 257, 258, 259, 516, 517] {
        let mut data = vec![b'r'; len];
        data.push(b'X');
        assert_deflate_roundtrip(&data);
    }
}

#[test]
fn deflate_stored_block_length_boundaries() {
    // Incompressible inputs around the 65535-byte stored-block limit.
    for n in [65_534usize, 65_535, 65_536, 65_537, 131_070] {
        let data = xorshift_bytes(n, n as u64);
        assert_deflate_roundtrip(&data);
    }
}

#[test]
fn deflate_single_distinct_symbols() {
    // 1-symbol and 2-symbol alphabets stress degenerate Huffman trees.
    assert_deflate_roundtrip(&[0u8]);
    assert_deflate_roundtrip(&[255u8; 3]);
    let two: Vec<u8> = (0..10_000)
        .map(|i| if i % 3 == 0 { 7 } else { 9 })
        .collect();
    assert_deflate_roundtrip(&two);
}

#[test]
fn deflate_alternating_match_literal_texture() {
    // Forces frequent switches between literals and short matches.
    let mut data = Vec::new();
    for i in 0..20_000u32 {
        data.extend_from_slice(b"abc");
        data.push((i % 251) as u8);
    }
    assert_deflate_roundtrip(&data);
}

#[test]
fn zlib_and_gzip_containers_on_boundary_sizes() {
    let z = Zlib::default();
    let g = Gzip::default();
    for n in [0usize, 1, 7, 8, 9, 65_535, 65_536] {
        let data = xorshift_bytes(n, 42 + n as u64);
        assert_eq!(z.decompress_bytes(&z.compress_bytes(&data)).unwrap(), data);
        assert_eq!(
            g.decompress_bytes(&g.compress_bytes(&data).unwrap())
                .unwrap(),
            data
        );
    }
}

#[test]
fn lzr_offset_boundaries() {
    // Matches at the 65535-byte maximum offset and just past it.
    for gap in [65_533usize, 65_534, 65_535, 65_536, 65_537] {
        let marker = b"MARKER_MARKER_MARKER";
        let mut data = xorshift_bytes(gap + 2 * marker.len(), gap as u64 * 3);
        data[..marker.len()].copy_from_slice(marker);
        data[gap..gap + marker.len()].copy_from_slice(marker);
        let comp = Lzr.compress_bytes(&data);
        assert_eq!(Lzr.decompress_bytes(&comp).unwrap(), data, "gap {gap}");
    }
}

#[test]
fn lzr_nibble_extension_boundaries() {
    // Literal runs and match lengths around the 15-value nibble limits and
    // the 255-extension steps.
    for lits in [14usize, 15, 16, 269, 270, 271, 525] {
        let mut data = xorshift_bytes(lits, lits as u64);
        // Follow with a long match source+target.
        let unit = b"QWERTYUIOPASDFGH";
        data.extend_from_slice(unit);
        data.extend_from_slice(unit);
        data.extend_from_slice(unit);
        let comp = Lzr.compress_bytes(&data);
        assert_eq!(Lzr.decompress_bytes(&comp).unwrap(), data, "lits {lits}");
    }
    for mlen in [4usize, 17, 18, 19, 272, 273, 274, 1000] {
        let mut data = b"seed_block_0123".to_vec();
        let start = data.len();
        for k in 0..mlen {
            let b = data[start - 15 + (k % 15)];
            data.push(b);
        }
        let comp = Lzr.compress_bytes(&data);
        assert_eq!(Lzr.decompress_bytes(&comp).unwrap(), data, "mlen {mlen}");
    }
}

#[test]
fn bwt_block_size_boundaries() {
    let data: Vec<u8> = (0..10_000u32).map(|i| ((i / 5) % 253) as u8).collect();
    for block in [1usize, 2, 3, 999, 1000, 1001, 10_000, 20_000] {
        let codec = BwtCodec::with_block_size(block);
        let comp = codec.compress(&data).unwrap();
        assert_eq!(codec.decompress(&comp).unwrap(), data, "block {block}");
    }
}

#[test]
fn bwt_pathological_inputs() {
    let codec = BwtCodec::default();
    for data in [
        vec![0u8; 100_000],                         // single symbol
        (0..=255u8).cycle().take(65_536).collect(), // maximal alphabet cycle
        b"ab".repeat(50_000),                       // period 2
        {
            let mut v = vec![255u8; 50_000];
            v.extend(vec![0u8; 50_000]);
            v
        },
    ] {
        let comp = codec.compress(&data).unwrap();
        assert_eq!(codec.decompress(&comp).unwrap(), data);
    }
}

#[test]
fn fpc_residual_class_boundaries() {
    // Values engineered so XOR residuals have exactly k leading zero bytes
    // for every k — including the un-encodable k=4 fold.
    let fpc = Fpc::default();
    let mut values = vec![0.0f64];
    for k in 0..=8u32 {
        let bits: u64 = if k == 8 {
            0
        } else {
            0x0101_0101_0101_0101 >> (8 * k)
        };
        values.push(f64::from_bits(bits));
        values.push(0.0); // reset-ish
    }
    let comp = fpc.compress_f64(&values).unwrap();
    let back = fpc.decompress_f64(&comp).unwrap();
    assert_eq!(
        back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        values.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
}

#[test]
fn every_codec_handles_exact_chunk_multiples() {
    // Sizes aligned to internal block/chunk sizes catch fencepost errors.
    for kind in CodecKind::ALL {
        let codec = kind.build();
        for n in [8usize, 16, 4096, 8192] {
            let data = xorshift_bytes(n, kind as u64 + n as u64);
            let comp = codec.compress(&data).unwrap();
            assert_eq!(codec.decompress(&comp).unwrap(), data, "{kind} at {n}");
        }
    }
}

#[test]
fn compressing_already_compressed_data_is_safe() {
    // Double compression must roundtrip and stay near-incompressible the
    // second time.
    let data = primacy_suite::datagen::DatasetId::ObsInfo.generate_bytes(1 << 14);
    let z = CodecKind::Zlib.build();
    let once = z.compress(&data).unwrap();
    let twice = z.compress(&once).unwrap();
    assert!(twice.len() as f64 > once.len() as f64 * 0.95);
    let back = z.decompress(&z.decompress(&twice).unwrap()).unwrap();
    assert_eq!(back, data);
}
