//! End-to-end integration of `primacy-serve` over loopback TCP (ISSUE 8
//! satellite 1).
//!
//! Four properties of the service are pinned here:
//!
//! 1. **Byte-exactness**: for every codec selector, a compress answered
//!    over the wire is byte-identical to calling the codec directly —
//!    the service adds transport, never transformation.
//! 2. **Concurrent determinism**: many clients compressing the same
//!    payload at once all receive identical bytes (per-worker scratch
//!    reuse must not leak state between requests).
//! 3. **Backpressure**: with a one-deep queue and one worker, a burst gets
//!    explicit `Busy` answers instead of unbounded buffering — and retried
//!    requests eventually succeed.
//! 4. **Graceful drain**: shutdown answers every admitted request; no
//!    response is lost.

use primacy_suite::codecs::CodecKind;
use primacy_suite::core::{PrimacyCompressor, PrimacyConfig};
use primacy_suite::datagen::DatasetId;
use primacy_suite::serve::client::expect_ok;
use primacy_suite::serve::protocol::{Op, Request, ServeCodec, Status};
use primacy_suite::serve::{ServeClient, ServeConfig, Server};
use std::time::Duration;

/// An 8-byte-aligned floating-point payload every selector accepts.
fn payload(elements: usize) -> Vec<u8> {
    DatasetId::ALL[1].generate_bytes(elements)
}

/// Compress `data` directly (no server) with the codec behind `selector`.
fn direct_compress(selector: ServeCodec, data: &[u8]) -> Vec<u8> {
    match selector {
        ServeCodec::Zlib => CodecKind::Zlib.build().compress(data).unwrap(),
        ServeCodec::Lzr => CodecKind::Lzr.build().compress(data).unwrap(),
        ServeCodec::Bwt => CodecKind::Bwt.build().compress(data).unwrap(),
        ServeCodec::Fpc => CodecKind::Fpc.build().compress(data).unwrap(),
        ServeCodec::Fpz => CodecKind::Fpz.build().compress(data).unwrap(),
        ServeCodec::Primacy => PrimacyCompressor::new(PrimacyConfig::default())
            .compress_bytes(data)
            .unwrap(),
    }
}

#[test]
fn every_codec_roundtrips_byte_exactly_over_loopback() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let data = payload(2048);

    for (i, selector) in ServeCodec::ALL.into_iter().enumerate() {
        let id = i as u64 * 10;
        let resp = client.compress(selector, id, 1, data.clone()).unwrap();
        assert_eq!(resp.status, Status::Ok, "{selector}: {resp:?}");
        assert_eq!(resp.request_id, id);
        let wire_compressed = resp.payload;
        // The service is transport, not transformation: identical bytes to
        // the direct library call.
        assert_eq!(
            wire_compressed,
            direct_compress(selector, &data),
            "{selector}: served compression must match the direct call"
        );
        let resp = client
            .decompress(selector, id + 1, 1, wire_compressed)
            .unwrap();
        assert_eq!(resp.status, Status::Ok, "{selector}");
        assert_eq!(resp.payload, data, "{selector}: roundtrip");
    }

    let snap = server.shutdown();
    assert_eq!(snap.total_panics(), 0);
    assert_eq!(snap.proto_errors, 0);
}

#[test]
fn ping_echoes_without_touching_the_queue() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let resp = client.ping(77, 3).unwrap();
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.request_id, 77);
    let snap = server.shutdown();
    // Pings are not tenant work: nothing was admitted.
    assert_eq!(snap.total_requests(), 0);
}

#[test]
fn concurrent_clients_get_identical_bytes() {
    const CLIENTS: usize = 8;
    let server = Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let data = payload(4096);

    let mut outputs: Vec<Vec<u8>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..CLIENTS {
            let data = data.clone();
            handles.push(scope.spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                // Interleave selectors so scratch reuse crosses codecs.
                let selector = ServeCodec::ALL[c % ServeCodec::ALL.len()];
                let warm = client
                    .compress(ServeCodec::Bwt, 1000 + c as u64, c as u64, data.clone())
                    .unwrap();
                assert_eq!(warm.status, Status::Ok);
                let resp = client
                    .compress(selector, c as u64, c as u64, data.clone())
                    .unwrap();
                assert_eq!(resp.status, Status::Ok);
                (selector, resp.payload)
            }));
        }
        outputs = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .map(|(selector, bytes)| {
                // Deterministic vs the direct call, even under concurrency.
                assert_eq!(bytes, direct_compress(selector, &data), "{selector}");
                bytes
            })
            .collect();
    });
    assert_eq!(outputs.len(), CLIENTS);
    let snap = server.shutdown();
    assert_eq!(snap.total_panics(), 0);
    assert_eq!(snap.tenants.len(), CLIENTS);
}

#[test]
fn saturated_queue_answers_busy_and_retries_succeed() {
    // One worker, one queue slot: while the worker chews a deliberately
    // slow request, at most one more can queue; the rest of a pipelined
    // burst must come back Busy immediately.
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // Occupier: BWT over a big incompressible buffer takes long enough on
    // any machine for the burst below to arrive while it runs.
    let slow_payload = DatasetId::ALL[0].generate_bytes(64 * 1024);
    let occupier = std::thread::spawn(move || {
        let mut client = ServeClient::connect(addr).unwrap();
        client
            .compress(ServeCodec::Bwt, 9000, 1, slow_payload)
            .unwrap()
    });
    // Give the occupier a head start into the worker.
    std::thread::sleep(Duration::from_millis(50));

    let mut client = ServeClient::connect(addr).unwrap();
    let small = payload(64);
    let burst: Vec<Request> = (0..8)
        .map(|i| Request {
            op: Op::Compress,
            codec: ServeCodec::Lzr,
            request_id: 100 + i,
            tenant: 2,
            payload: small.clone(),
        })
        .collect();
    let responses = client.request_burst(&burst).unwrap();
    assert_eq!(responses.len(), burst.len());
    let busy = responses
        .iter()
        .filter(|r| r.status == Status::Busy)
        .count();
    let ok = responses.iter().filter(|r| r.status == Status::Ok).count();
    assert!(
        busy >= 1,
        "a one-deep queue behind a busy worker must shed: {responses:?}"
    );
    assert_eq!(
        busy + ok,
        burst.len(),
        "only Ok or Busy are possible here: {responses:?}"
    );

    // Busy is a retriable condition: once the occupier finishes, every
    // shed request succeeds on retry.
    assert_eq!(occupier.join().unwrap().status, Status::Ok);
    for resp in responses.iter().filter(|r| r.status == Status::Busy) {
        let mut done = false;
        for _ in 0..200 {
            let again = client
                .compress(ServeCodec::Lzr, resp.request_id, 2, small.clone())
                .unwrap();
            match again.status {
                Status::Ok => {
                    done = true;
                    break;
                }
                Status::Busy => std::thread::sleep(Duration::from_millis(5)),
                other => panic!("unexpected status {other} on retry"),
            }
        }
        assert!(done, "retry of request {} never succeeded", resp.request_id);
    }

    let snap = server.shutdown();
    assert!(snap.busy >= 1, "server must have counted the shed requests");
    assert_eq!(snap.total_panics(), 0);
}

#[test]
fn graceful_shutdown_drains_admitted_work() {
    // One worker and slow-ish jobs: shutdown lands while most of the burst
    // is still queued, and every admitted request must still be answered.
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_depth: 16,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let data = DatasetId::ALL[0].generate_bytes(16 * 1024);

    let burst: Vec<Request> = (0..4)
        .map(|i| Request {
            op: Op::Compress,
            codec: ServeCodec::Bwt,
            request_id: 500 + i,
            tenant: 4,
            payload: data.clone(),
        })
        .collect();

    let mut client = ServeClient::connect(addr).unwrap();
    let reader = std::thread::spawn(move || client.request_burst(&burst));

    // Let the connection thread admit the burst, then shut down while the
    // single worker is still draining it.
    std::thread::sleep(Duration::from_millis(100));
    let snap = server.shutdown();

    let responses = reader.join().unwrap().expect("no response may be lost");
    assert_eq!(responses.len(), 4);
    for resp in &responses {
        assert_eq!(
            resp.status,
            Status::Ok,
            "admitted request {} must be drained, not dropped: {resp:?}",
            resp.request_id
        );
    }
    assert_eq!(snap.total_ok(), 4);
    assert_eq!(snap.send_failures, 0);
    assert_eq!(snap.total_panics(), 0);
}

#[test]
fn post_shutdown_connections_are_refused_or_closed() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut live = ServeClient::connect(addr).unwrap();
    assert_eq!(live.ping(1, 1).unwrap().status, Status::Ok);
    server.shutdown();
    // The listener is gone: either the connect fails outright or the
    // socket closes without a response. Never a hang, never a panic.
    if let Ok(mut client) = ServeClient::connect(addr) {
        let _ = client.set_timeouts(Some(Duration::from_secs(2)));
        assert!(client.ping(2, 1).is_err());
    }
    // The drained client's next request errors cleanly too.
    let _ = live.set_timeouts(Some(Duration::from_secs(2)));
    assert!(live.ping(3, 1).is_err());
}

/// The doc-level convenience: expect_ok unwraps Ok and types errors.
#[test]
fn expect_ok_helper_distinguishes_statuses() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let data = payload(128);
    let ok = expect_ok(
        client
            .compress(ServeCodec::Zlib, 1, 1, data.clone())
            .unwrap(),
    );
    assert!(ok.is_ok());
    // An unaligned PRIMACY payload is a typed BadRequest, surfaced by
    // expect_ok as an error mentioning the status.
    let resp = client
        .compress(ServeCodec::Primacy, 2, 1, vec![0u8; 7])
        .unwrap();
    assert_eq!(resp.status, Status::BadRequest);
    let err = expect_ok(resp).unwrap_err();
    assert!(err.to_string().contains("bad-request"), "{err}");
    server.shutdown();
}
