//! Exhaustive conformance suite for the multi-symbol DEFLATE decode tables.
//!
//! The table-driven inflater routes every lookup through one of three entry
//! classes — primary-table hits (code length ≤ table bits), packed LIT2
//! pairs, and subtable indirections (code length > table bits) — and the
//! encoder's own output only exercises a thin slice of that space. These
//! tests hand-craft fixed and dynamic blocks (via `common::BitSink`) so that
//! every literal/length symbol and every distance symbol is decoded at every
//! RFC-achievable code length, including the depths that straddle the
//! primary/subtable boundary (litlen table bits = 11, distance = 10).

mod common;

use common::{
    canonical_codes, comb_dist, comb_litlen, put_dynamic_header, BitSink, DIST_BASE, DIST_EXTRA,
    LENGTH_BASE, LENGTH_EXTRA,
};
use primacy_suite::codecs::deflate::inflate;

/// Fixed litlen code lengths (RFC 1951 §3.2.6), including the two reserved
/// symbols 286/287 that participate in code construction but must never
/// decode successfully.
fn fixed_litlen_lengths() -> Vec<u8> {
    let mut lengths = vec![8u8; 288];
    for l in &mut lengths[144..256] {
        *l = 9;
    }
    for l in &mut lengths[256..280] {
        *l = 7;
    }
    lengths
}

/// Start a fixed-Huffman block and return the litlen/dist code values.
fn begin_fixed_block(s: &mut BitSink) -> (Vec<u32>, Vec<u32>) {
    s.put(1, 1); // BFINAL
    s.put(0b01, 2); // BTYPE: fixed
    let lit = canonical_codes(&fixed_litlen_lengths());
    // Fixed distance codes are 5-bit indices 0..=31.
    let dist = (0..32).collect();
    (lit, dist)
}

fn put_fixed_lit(s: &mut BitSink, codes: &[u32], sym: usize) {
    let len = u32::from(fixed_litlen_lengths()[sym]);
    s.put_code(codes[sym], len);
}

/// Emit `len`/`dist` as a fixed-block match using the canonical symbol
/// choice (the longest base not exceeding the value).
fn put_fixed_match(s: &mut BitSink, lit: &[u32], len: u16, dist: u16) {
    let lc = LENGTH_BASE.iter().rposition(|&b| b <= len).unwrap();
    put_fixed_lit(s, lit, 257 + lc);
    s.put(
        u64::from(len - LENGTH_BASE[lc]),
        u32::from(LENGTH_EXTRA[lc]),
    );
    let dc = DIST_BASE.iter().rposition(|&b| b <= dist).unwrap();
    s.put_code(dc as u32, 5);
    s.put(u64::from(dist - DIST_BASE[dc]), u32::from(DIST_EXTRA[dc]));
}

/// Reference LZ77 back-reference copy (overlap-correct by construction).
fn model_copy(out: &mut Vec<u8>, len: usize, dist: usize) {
    for _ in 0..len {
        let b = out[out.len() - dist];
        out.push(b);
    }
}

/// Every match length 3..=258 against every zero-extra distance-code base,
/// in one fixed block, checked byte-for-byte against a reference model.
#[test]
fn fixed_block_all_lengths_times_all_distance_codes() {
    let mut s = BitSink::new();
    let (lit, _) = begin_fixed_block(&mut s);
    let mut model = Vec::new();

    // A 32 KiB non-repeating window so every distance base is reachable and
    // each copy has distinctive source bytes.
    for i in 0..32_768usize {
        let b = (i.wrapping_mul(131).wrapping_add(i >> 7) & 0xff) as u8;
        put_fixed_lit(&mut s, &lit, b as usize);
        model.push(b);
    }
    for &dist in &DIST_BASE {
        for len in 3u16..=258 {
            put_fixed_match(&mut s, &lit, len, dist);
            model_copy(&mut model, usize::from(len), usize::from(dist));
        }
    }
    put_fixed_lit(&mut s, &lit, 256);
    let out = inflate(&s.finish()).expect("exhaustive fixed block must decode");
    assert_eq!(out, model);
}

/// Distances that are *not* a code base (max-extra offsets), including the
/// maximum 32 768, exercise the extra-bits path of every distance code.
#[test]
fn fixed_block_distance_extra_bits_extremes() {
    let mut s = BitSink::new();
    let (lit, _) = begin_fixed_block(&mut s);
    let mut model = Vec::new();
    for i in 0..32_768usize {
        let b = (i.wrapping_mul(197) & 0xff) as u8;
        put_fixed_lit(&mut s, &lit, b as usize);
        model.push(b);
    }
    for d in 0..30usize {
        // Top of each code's range: base + 2^extra - 1.
        let dist = DIST_BASE[d] + (1u16 << DIST_EXTRA[d]) - 1;
        put_fixed_match(&mut s, &lit, 258, dist);
        model_copy(&mut model, 258, usize::from(dist));
    }
    put_fixed_lit(&mut s, &lit, 256);
    let out = inflate(&s.finish()).expect("max-extra distances must decode");
    assert_eq!(out, model);
}

/// The reserved fixed-code symbols 286 and 287 are part of the 288-symbol
/// code but invalid in a stream; the decoder must reject them without
/// panicking.
#[test]
fn fixed_block_reserved_litlen_symbols_rejected() {
    for sym in [286usize, 287] {
        let mut s = BitSink::new();
        let (lit, _) = begin_fixed_block(&mut s);
        put_fixed_lit(&mut s, &lit, b'x' as usize);
        put_fixed_lit(&mut s, &lit, sym);
        // Plausible continuation bits so failure is the symbol, not EOF.
        s.put(0, 20);
        let err = inflate(&s.finish()).expect_err("reserved symbol must fail");
        assert!(
            err.to_string().contains("invalid literal/length code"),
            "symbol {sym}: {err}"
        );
    }
}

/// Fixed distance codes 30 and 31 exist in the 5-bit space but are reserved;
/// both must be rejected.
#[test]
fn fixed_block_reserved_distance_codes_rejected() {
    for dc in [30u32, 31] {
        let mut s = BitSink::new();
        let (lit, _) = begin_fixed_block(&mut s);
        put_fixed_lit(&mut s, &lit, b'x' as usize);
        put_fixed_lit(&mut s, &lit, 257); // length 3
        s.put_code(dc, 5);
        s.put(0, 20);
        let err = inflate(&s.finish()).expect_err("reserved distance must fail");
        assert!(
            err.to_string().contains("invalid distance code"),
            "distance code {dc}: {err}"
        );
    }
}

/// Every literal symbol decoded at every code length 1..=15. The comb code
/// places filler literals at depths 1..d, so a single stream walks primary
/// entries (≤ 11 bits) and subtable entries (12..=15 bits) for each target.
#[test]
fn dynamic_every_literal_at_every_depth() {
    for target in 0u16..=255 {
        for depth in 1u8..=15 {
            let (lit_lengths, fillers) = comb_litlen(target, depth);
            let mut s = BitSink::new();
            // Single distance code of length 1: the RFC-sanctioned
            // degenerate code for blocks that contain no matches.
            let (lit, _) = put_dynamic_header(&mut s, true, &lit_lengths, &[1]);
            let mut model = Vec::new();
            for &f in &fillers {
                s.put_code(lit[usize::from(f)], u32::from(lit_lengths[usize::from(f)]));
                model.push(f as u8);
            }
            s.put_code(lit[usize::from(target)], u32::from(depth));
            model.push(target as u8);
            s.put_code(lit[256], u32::from(depth));
            let out = inflate(&s.finish())
                .unwrap_or_else(|e| panic!("literal {target} depth {depth}: {e}"));
            assert_eq!(out, model, "literal {target} depth {depth}");
        }
    }
}

/// Every length symbol 257..=285 decoded at every achievable depth. Depth 1
/// is impossible for a match (the block would have no literal to copy from),
/// so the sweep starts at 2 with a depth-1 filler literal seeding the window.
#[test]
fn dynamic_every_length_symbol_at_every_depth() {
    for target in 257u16..=285 {
        for depth in 2u8..=15 {
            let (lit_lengths, fillers) = comb_litlen(target, depth);
            let mut s = BitSink::new();
            let (lit, dist) = put_dynamic_header(&mut s, true, &lit_lengths, &[1]);
            let mut model = Vec::new();
            for &f in &fillers {
                s.put_code(lit[usize::from(f)], u32::from(lit_lengths[usize::from(f)]));
                model.push(f as u8);
            }
            s.put_code(lit[usize::from(target)], u32::from(depth));
            let lc = usize::from(target) - 257;
            s.put(0, u32::from(LENGTH_EXTRA[lc])); // extra bits: base length
            s.put_code(dist[0], 1); // distance 1
            model_copy(&mut model, usize::from(LENGTH_BASE[lc]), 1);
            s.put_code(lit[256], u32::from(depth));
            let out = inflate(&s.finish())
                .unwrap_or_else(|e| panic!("length sym {target} depth {depth}: {e}"));
            assert_eq!(out, model, "length sym {target} depth {depth}");
        }
    }
}

/// Every distance symbol 0..=29 decoded at every code length 1..=15. The
/// block first emits enough literals that the back-reference is in range.
#[test]
fn dynamic_every_distance_symbol_at_every_depth() {
    // Two literals + one length code + EOB, all at depth 2 (complete code).
    let mut lit_lengths = vec![0u8; 258];
    lit_lengths[b'A' as usize] = 2;
    lit_lengths[b'B' as usize] = 2;
    lit_lengths[256] = 2;
    lit_lengths[257] = 2; // match length 3

    for target in 0u16..=29 {
        for depth in 1u8..=15 {
            let dist_lengths = comb_dist(target, depth);
            let mut s = BitSink::new();
            let (lit, dist) = put_dynamic_header(&mut s, true, &lit_lengths, &dist_lengths);
            let mut model = Vec::new();
            // Seed the window: an A/B pattern as long as the distance base.
            for i in 0..usize::from(DIST_BASE[usize::from(target)]) {
                let sym = if i % 2 == 0 { b'A' } else { b'B' };
                s.put_code(lit[usize::from(sym)], 2);
                model.push(sym);
            }
            s.put_code(lit[257], 2);
            s.put_code(dist[usize::from(target)], u32::from(depth));
            s.put(0, u32::from(DIST_EXTRA[usize::from(target)]));
            model_copy(&mut model, 3, usize::from(DIST_BASE[usize::from(target)]));
            s.put_code(lit[256], 2);
            let out = inflate(&s.finish())
                .unwrap_or_else(|e| panic!("dist sym {target} depth {depth}: {e}"));
            assert_eq!(out, model, "dist sym {target} depth {depth}");
        }
    }
}

/// Codes that sit exactly on either side of the primary-table boundary in
/// one tree: depths 11 (last primary litlen) and 12 (first litlen subtable),
/// 10/11 for distances. The sweeps above cover these depths individually;
/// this vector packs both sides plus a match into a single block so the
/// decoder transitions primary → subtable → primary within one fast-loop run.
#[test]
fn subtable_boundary_straddling_block() {
    // Litlen comb at depth 12: fillers at 1..=11 (primary), target + EOB at
    // 12 (subtable).
    let (lit_lengths, fillers) = comb_litlen(b'Z'.into(), 12);
    // Distance comb at depth 11: fillers at 1..=10 (primary), target + one
    // filler at 11 (subtable). Target distance code 0 → distance 1.
    let dist_lengths = comb_dist(0, 11);
    let mut lit_lengths = lit_lengths;
    lit_lengths.resize(258, 0);
    lit_lengths[257] = lit_lengths[usize::from(fillers[0])];
    lit_lengths[usize::from(fillers[0])] = 0;
    // Swapping filler depth 1 onto the length code keeps Kraft intact but
    // costs the depth-1 literal; re-derive the emission plan accordingly.
    let mut s = BitSink::new();
    let (lit, dist) = put_dynamic_header(&mut s, true, &lit_lengths, &dist_lengths);
    let mut model = Vec::new();
    for &f in &fillers[1..] {
        s.put_code(lit[usize::from(f)], u32::from(lit_lengths[usize::from(f)]));
        model.push(f as u8);
    }
    s.put_code(lit[usize::from(b'Z')], 12); // subtable literal
    model.push(b'Z');
    s.put_code(lit[257], 1); // primary length code, len 3
    s.put_code(dist[0], 11); // subtable distance, dist 1
    model_copy(&mut model, 3, 1);
    s.put_code(lit[256], 12); // subtable EOB
    let out = inflate(&s.finish()).expect("boundary block must decode");
    assert_eq!(out, model);
}

/// Deep subtable stress: a full-depth (15) comb decoded repeatedly in one
/// block, so consecutive subtable lookups follow each other in the fast loop.
#[test]
fn repeated_deep_subtable_lookups() {
    let (lit_lengths, fillers) = comb_litlen(b'q'.into(), 15);
    let mut s = BitSink::new();
    let (lit, _) = put_dynamic_header(&mut s, true, &lit_lengths, &[1]);
    let mut model = Vec::new();
    for _ in 0..64 {
        s.put_code(lit[usize::from(b'q')], 15);
        model.push(b'q');
        let f = fillers[13]; // depth-14 filler: also a subtable entry
        s.put_code(lit[usize::from(f)], 14);
        model.push(f as u8);
    }
    s.put_code(lit[256], 15);
    let out = inflate(&s.finish()).expect("deep comb must decode");
    assert_eq!(out, model);
}
