//! Hand-rolled DEFLATE bit-stream construction, shared by the decode-table
//! conformance suite (`decode_tables.rs`) and the adversarial header vectors
//! (`adversarial_decode.rs`).
//!
//! The encoder under test only ever emits streams its own tokenizer chooses,
//! so exercising *every* symbol of both alphabets at *every* code length —
//! and deliberately malformed headers — requires writing raw dynamic-block
//! headers bit by bit. Everything here follows RFC 1951 §3.2 exactly:
//! fields pack LSB-first, Huffman codes are emitted most-significant bit
//! first (i.e. bit-reversed into the LSB-first stream), and dynamic headers
//! transmit the code-length code in `CODELEN_ORDER`.

#![allow(dead_code)]

/// Transmission order of the code-length code lengths (RFC 1951 §3.2.7).
pub const CODELEN_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// Base match length / extra bits per length code `257 + i` (RFC 1951).
pub const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
pub const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];

/// Base distance / extra bits per distance code (RFC 1951).
pub const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
pub const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// LSB-first bit accumulator (the DEFLATE packing convention).
#[derive(Default)]
pub struct BitSink {
    bytes: Vec<u8>,
    bitbuf: u64,
    bitcount: u32,
}

impl BitSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the low `count` bits of `bits`, LSB first.
    pub fn put(&mut self, bits: u64, count: u32) {
        assert!(count <= 57 && (count == 64 || bits < (1u64 << count)));
        self.bitbuf |= bits << self.bitcount;
        self.bitcount += count;
        while self.bitcount >= 8 {
            self.bytes.push(self.bitbuf as u8);
            self.bitbuf >>= 8;
            self.bitcount -= 8;
        }
    }

    /// Append a Huffman code: RFC 1951 stores codes MSB first, so the
    /// canonical code value is bit-reversed into the LSB-first stream.
    pub fn put_code(&mut self, code: u32, len: u32) {
        assert!(len >= 1);
        self.put(u64::from(reverse_bits(code, len)), len);
    }

    /// Zero-pad the final partial byte and return the stream.
    pub fn finish(mut self) -> Vec<u8> {
        if self.bitcount > 0 {
            self.bytes.push(self.bitbuf as u8);
        }
        self.bytes
    }
}

/// Reverse the low `len` bits of `code`.
pub fn reverse_bits(code: u32, len: u32) -> u32 {
    code.reverse_bits() >> (32 - len)
}

/// Canonical code values for `lengths` (RFC 1951 §3.2.2): symbols of equal
/// length are ordered by symbol index; zero-length symbols get code 0.
pub fn canonical_codes(lengths: &[u8]) -> Vec<u32> {
    let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
    let mut bl_count = vec![0u32; max_len + 1];
    for &l in lengths {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u32; max_len + 2];
    let mut code = 0u32;
    for bits in 1..=max_len {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next_code[l as usize];
                next_code[l as usize] += 1;
                c
            }
        })
        .collect()
}

/// A balanced, complete code-length code over the set of used CL symbols:
/// with `n` used symbols and `k = ceil(log2 n)`, the first `2^k - n` get
/// length `k-1` and the rest length `k` (Kraft sum exactly 1, depth ≤ 5).
fn cl_code_lengths(used: &[bool; 19]) -> [u8; 19] {
    let n = used.iter().filter(|&&u| u).count();
    assert!(n >= 2, "need at least two code-length symbols");
    let k = usize::BITS - (n - 1).leading_zeros();
    let short = (1usize << k) - n;
    let mut lengths = [0u8; 19];
    let mut seen = 0usize;
    for (sym, &u) in used.iter().enumerate() {
        if u {
            lengths[sym] = if seen < short { (k - 1) as u8 } else { k as u8 };
            seen += 1;
        }
    }
    lengths
}

/// Emit a complete dynamic-block header (BFINAL, BTYPE=10, HLIT/HDIST/HCLEN,
/// the code-length code, and both length arrays — transmitted verbatim, no
/// 16/17/18 run-length compression). Returns the canonical litlen and dist
/// codes so the caller can emit the block body.
///
/// `lit_lengths.len()` must be in `257..=286` and `dist_lengths.len()` in
/// `1..=30`; both arrays are transmitted in full.
pub fn put_dynamic_header(
    s: &mut BitSink,
    final_block: bool,
    lit_lengths: &[u8],
    dist_lengths: &[u8],
) -> (Vec<u32>, Vec<u32>) {
    assert!((257..=286).contains(&lit_lengths.len()));
    assert!((1..=30).contains(&dist_lengths.len()));
    s.put(u64::from(final_block), 1);
    s.put(0b10, 2);
    s.put((lit_lengths.len() - 257) as u64, 5);
    s.put((dist_lengths.len() - 1) as u64, 5);

    let mut used = [false; 19];
    for &l in lit_lengths.iter().chain(dist_lengths) {
        used[l as usize] = true;
    }
    // A complete CL code needs at least two leaves; pad with a phantom
    // symbol that is never transmitted if only one length value occurs.
    if used.iter().filter(|&&u| u).count() < 2 {
        let pad = if used[0] { 1 } else { 0 };
        used[pad] = true;
    }
    let cl_lengths = cl_code_lengths(&used);
    s.put(15, 4); // HCLEN = 19 - 4: transmit all 19 CL entries.
    for &ord in &CODELEN_ORDER {
        s.put(u64::from(cl_lengths[ord]), 3);
    }
    let cl_codes = canonical_codes(&cl_lengths);
    for &l in lit_lengths.iter().chain(dist_lengths) {
        s.put_code(cl_codes[l as usize], u32::from(cl_lengths[l as usize]));
    }
    (canonical_codes(lit_lengths), canonical_codes(dist_lengths))
}

/// Litlen code lengths shaped as a "comb": filler literals at depths
/// `1..depth`, then `target` and the end-of-block symbol both at `depth`
/// (Kraft sum exactly 1). Returns `(lengths, fillers)` where `fillers[i]`
/// is the literal symbol sitting at depth `i + 1`.
///
/// `depth` must be in `1..=15`; `depth == 1` yields just `{target, EOB}`.
/// `target` must not be 256 and, for `depth == 1`, fillers are empty.
pub fn comb_litlen(target: u16, depth: u8) -> (Vec<u8>, Vec<u16>) {
    assert!((1..=15).contains(&depth));
    assert_ne!(target, 256);
    let hlit = 257.max(usize::from(target) + 1);
    let mut lengths = vec![0u8; hlit];
    let mut fillers = Vec::new();
    let mut next_filler = 0u16;
    for d in 1..depth {
        while next_filler == target || next_filler == 256 {
            next_filler += 1;
        }
        lengths[usize::from(next_filler)] = d;
        fillers.push(next_filler);
        next_filler += 1;
    }
    lengths[usize::from(target)] = depth;
    lengths[256] = depth;
    (lengths, fillers)
}

/// Distance code lengths shaped as a comb with `target` at `depth`: filler
/// distance symbols occupy depths `1..depth` and one extra symbol joins
/// `target` at `depth` so the code is complete. `depth == 1` yields two
/// symbols at depth 1. Panics if the alphabet (30 symbols) cannot host the
/// comb — callers keep `depth <= 15`, which needs at most 16 symbols.
pub fn comb_dist(target: u16, depth: u8) -> Vec<u8> {
    assert!((1..=15).contains(&depth));
    assert!(target < 30);
    let mut lengths = vec![0u8; 30];
    let mut next_filler = 0u16;
    let mut take_filler = |lengths: &mut Vec<u8>, d: u8| {
        while next_filler == target {
            next_filler += 1;
        }
        assert!(next_filler < 30);
        lengths[usize::from(next_filler)] = d;
        next_filler += 1;
    };
    for d in 1..depth {
        take_filler(&mut lengths, d);
    }
    take_filler(&mut lengths, depth);
    lengths[usize::from(target)] = depth;
    lengths
}
