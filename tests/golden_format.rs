//! Golden-vector conformance suite: pins the PRIMACY container format
//! (ISSUE 3 satellite).
//!
//! Each vector in `tests/golden/` is the hex dump of a full container —
//! stream form (`compress_bytes`) or archive form (`ArchiveWriter`) — built
//! from a seeded `primacy-datagen` input under a pinned configuration. The
//! tests assert two directions:
//!
//! * **encode**: compressing the regenerated input today produces the
//!   committed bytes exactly — any format drift (header layout, section
//!   framing, index encoding, deflate token choices, CRC placement) fails
//!   loudly instead of silently breaking old archives;
//! * **decode**: the committed bytes decode back to the exact input — the
//!   decoder keeps accepting containers written by every build since the
//!   vectors were recorded.
//!
//! Two independent seeds are pinned (acceptance criterion): `gts_phi_l` and
//! `obs_error` draw from different generator recipes with different seeds.
//!
//! To rotate vectors after an *intentional* encoder change (see
//! `tests/README.md` for the full workflow): first copy the current
//! `tests/golden/*.hex` into `tests/golden/legacy/` with a `_vN` suffix so
//! they keep gating the decoder, then regenerate the encode vectors with
//! `PRIMACY_REGEN_GOLDEN=1 cargo test --test golden_format`, commit both, and
//! call out the encoder change in the PR. Legacy vectors are decode-only:
//! the encoder is free to emit different (better) bytes, but every container
//! ever committed must keep decoding byte-exactly.

use primacy_suite::core::{ArchiveWriter, PrimacyCompressor, PrimacyConfig};
use primacy_suite::datagen::DatasetId;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Chunk size pinned for the vectors: 1 KiB = 128 doubles, so the 300-element
/// inputs span two full chunks plus a 44-element tail — the vectors cover
/// multi-chunk framing and the non-divisible final chunk.
const GOLDEN_CHUNK_BYTES: usize = 1024;
/// Elements per vector (2400 bytes of input).
const GOLDEN_ELEMENTS: usize = 300;

/// The two independently seeded datasets pinned by the suite.
const GOLDEN_DATASETS: [DatasetId; 2] = [DatasetId::GtsPhiL, DatasetId::ObsError];

fn golden_config() -> PrimacyConfig {
    PrimacyConfig {
        chunk_bytes: GOLDEN_CHUNK_BYTES,
        ..Default::default()
    }
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2 + bytes.len() / 32 + 1);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && i % 32 == 0 {
            s.push('\n');
        }
        let _ = write!(s, "{b:02x}");
    }
    s.push('\n');
    s
}

fn from_hex(text: &str) -> Vec<u8> {
    let digits: Vec<u32> = text
        .lines()
        .filter(|line| !line.trim_start().starts_with('#'))
        .flat_map(|line| line.chars())
        .filter(|c| !c.is_whitespace())
        .map(|c| c.to_digit(16).expect("golden files contain only hex"))
        .collect();
    assert!(
        digits.len().is_multiple_of(2),
        "odd number of hex digits in golden file"
    );
    digits
        .chunks_exact(2)
        .map(|pair| (pair[0] * 16 + pair[1]) as u8)
        .collect()
}

/// Render one golden file: a provenance header (comment lines) plus the hex
/// body. The header is informational; `from_hex` skips `#` lines.
fn render_golden(id: DatasetId, container: &str, bytes: &[u8]) -> String {
    format!(
        "# PRIMACY golden vector — do not edit by hand.\n\
         # container: {container}\n\
         # dataset:   {} ({GOLDEN_ELEMENTS} doubles, seeded primacy-datagen)\n\
         # config:    chunk_bytes={GOLDEN_CHUNK_BYTES}, defaults otherwise\n\
         # regen:     PRIMACY_REGEN_GOLDEN=1 cargo test --test golden_format\n\
         {}",
        id.name(),
        to_hex(bytes)
    )
}

fn stream_vector(id: DatasetId) -> (Vec<u8>, Vec<u8>) {
    let input = id.generate_bytes(GOLDEN_ELEMENTS);
    let compressor = PrimacyCompressor::new(golden_config());
    let container = compressor.compress_bytes(&input).expect("compress");
    (input, container)
}

fn archive_vector(id: DatasetId) -> (Vec<u8>, Vec<u8>) {
    let input = id.generate_bytes(GOLDEN_ELEMENTS);
    let mut w = ArchiveWriter::new(Vec::new(), golden_config()).expect("valid config");
    w.append(&input).expect("element-aligned");
    let container = w.finish().expect("finishes");
    (input, container)
}

fn check_vector(id: DatasetId, container_kind: &str, input: &[u8], produced: &[u8]) {
    let path = golden_dir().join(format!("{}_{container_kind}.hex", id.name()));
    if std::env::var_os("PRIMACY_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, render_golden(id, container_kind, produced))
            .expect("write golden vector");
    }
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden vector {}: {e}", path.display()));
    let golden = from_hex(&text);

    // Encode direction: today's encoder reproduces the committed bytes.
    assert_eq!(
        produced,
        golden.as_slice(),
        "{} {container_kind}: encoder output drifted from the golden vector \
         ({} bytes produced vs {} committed). If the format change is \
         intentional, regenerate with PRIMACY_REGEN_GOLDEN=1 and document it.",
        id.name(),
        produced.len(),
        golden.len(),
    );

    // Decode direction: the committed bytes (not the freshly produced ones)
    // still decode to the exact input.
    let decoded = match container_kind {
        "stream" => PrimacyCompressor::new(golden_config())
            .decompress_bytes(&golden)
            .expect("golden stream decodes"),
        "archive" => {
            let r =
                primacy_suite::core::ArchiveReader::open(&golden).expect("golden archive opens");
            r.read_elements(0, r.element_count() as usize)
                .expect("golden archive reads")
        }
        other => panic!("unknown container kind {other}"),
    };
    assert_eq!(
        decoded,
        input,
        "{} {container_kind}: golden bytes did not round-trip to the input",
        id.name()
    );
}

#[test]
fn stream_vectors_are_byte_exact() {
    for id in GOLDEN_DATASETS {
        let (input, container) = stream_vector(id);
        // Multi-chunk by construction: 300 elements over 128-element chunks.
        check_vector(id, "stream", &input, &container);
    }
}

#[test]
fn archive_vectors_are_byte_exact() {
    for id in GOLDEN_DATASETS {
        let (input, container) = archive_vector(id);
        check_vector(id, "archive", &input, &container);
    }
}

/// Decode-only compatibility gate: every vector under `tests/golden/legacy/`
/// was written by some previous build's encoder and must keep decoding to
/// the exact seeded input, even though today's encoder produces different
/// bytes (e.g. the skip-ahead match finder changed token choices). This is
/// the format-stability half of the golden suite that vector rotation never
/// retires.
#[test]
fn legacy_vectors_still_decode() {
    let legacy = golden_dir().join("legacy");
    let mut checked = 0usize;
    for id in GOLDEN_DATASETS {
        let input = id.generate_bytes(GOLDEN_ELEMENTS);
        for kind in ["stream", "archive"] {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(&legacy)
                .expect("tests/golden/legacy exists")
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with(&format!("{}_{kind}_v", id.name())))
                })
                .collect();
            entries.sort();
            for path in entries {
                let golden = from_hex(&std::fs::read_to_string(&path).expect("readable vector"));
                let decoded = match kind {
                    "stream" => PrimacyCompressor::new(golden_config())
                        .decompress_bytes(&golden)
                        .unwrap_or_else(|e| panic!("{} fails to decode: {e}", path.display())),
                    _ => {
                        let r = primacy_suite::core::ArchiveReader::open(&golden)
                            .unwrap_or_else(|e| panic!("{} fails to open: {e}", path.display()));
                        r.read_elements(0, r.element_count() as usize)
                            .unwrap_or_else(|e| panic!("{} fails to read: {e}", path.display()))
                    }
                };
                assert_eq!(
                    decoded,
                    input,
                    "{}: legacy container no longer decodes to its input",
                    path.display()
                );
                checked += 1;
            }
        }
    }
    // One generation of legacy vectors exists today (the pre-skip-ahead
    // encoder); rotation only ever grows this.
    assert!(
        checked >= GOLDEN_DATASETS.len() * 2,
        "legacy gate found only {checked} vectors — rotation must never delete them"
    );
}

// ---------------------------------------------------------------------------
// Serve wire-format vectors (ISSUE 8 satellite)
//
// The `primacy-serve` frame layout is pinned the same way as the container:
// a deterministic sequence of request frames (every opcode and codec
// selector, edge-case ids, varying payload sizes) and response frames
// (every status byte) is byte-compared against `tests/golden/serve_*.hex`.
// Rotation follows the same PRIMACY_REGEN_GOLDEN workflow, with one
// difference of policy: the wire protocol is versioned (`protocol::VERSION`),
// so an intentional layout change must bump the version byte *and*
// regenerate, never silently alter the meaning of version 1.
// ---------------------------------------------------------------------------

use primacy_suite::serve::protocol::{split_frame, Op, Request, Response, ServeCodec, Status};

/// Deterministic payload for serve vectors: the first `len` bytes of a
/// seeded dataset.
fn serve_payload(len: usize) -> Vec<u8> {
    let mut bytes = DatasetId::GtsPhiL.generate_bytes(len.div_ceil(8).max(1));
    bytes.truncate(len);
    bytes
}

/// Every opcode and codec selector, plus id edge cases and payload sizes
/// 0 / 8 / 100 bytes.
fn serve_request_fixture() -> Vec<Request> {
    let mut requests = Vec::new();
    for (i, codec) in ServeCodec::ALL.into_iter().enumerate() {
        requests.push(Request {
            op: Op::Compress,
            codec,
            request_id: i as u64,
            tenant: 1000 + i as u64,
            payload: serve_payload(8 * i),
        });
    }
    requests.push(Request {
        op: Op::Decompress,
        codec: ServeCodec::Zlib,
        request_id: u64::MAX,
        tenant: u64::MAX,
        payload: serve_payload(100),
    });
    requests.push(Request {
        op: Op::Ping,
        codec: ServeCodec::Primacy,
        request_id: 0,
        tenant: 0,
        payload: Vec::new(),
    });
    requests
}

/// Every status byte with representative echoes and payloads.
fn serve_response_fixture() -> Vec<Response> {
    let statuses = [
        Status::Ok,
        Status::Busy,
        Status::Timeout,
        Status::BadRequest,
        Status::CodecFailed,
        Status::TooLarge,
        Status::ShuttingDown,
        Status::Internal,
    ];
    statuses
        .into_iter()
        .enumerate()
        .map(|(i, status)| Response {
            status,
            op_echo: Op::Compress.to_byte(),
            codec_echo: ServeCodec::ALL[i % ServeCodec::ALL.len()].to_byte(),
            request_id: 0x0102_0304_0506_0708 ^ i as u64,
            tenant: 40 + i as u64,
            payload: if status == Status::Ok {
                serve_payload(64)
            } else {
                format!("{status}").into_bytes()
            },
        })
        .collect()
}

fn render_serve_golden(kind: &str, count: usize, bytes: &[u8]) -> String {
    format!(
        "# PRIMACY golden vector — do not edit by hand.\n\
         # container: serve wire protocol v1 ({kind} frames)\n\
         # frames:    {count} length-prefixed frames, concatenated\n\
         # regen:     PRIMACY_REGEN_GOLDEN=1 cargo test --test golden_format\n\
         {}",
        to_hex(bytes)
    )
}

/// Pin `produced` against `tests/golden/serve_{kind}.hex` and hand the
/// committed bytes back for the decode direction.
fn check_serve_vector(kind: &str, count: usize, produced: &[u8]) -> Vec<u8> {
    let path = golden_dir().join(format!("serve_{kind}.hex"));
    if std::env::var_os("PRIMACY_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, render_serve_golden(kind, count, produced))
            .expect("write golden vector");
    }
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden vector {}: {e}", path.display()));
    let golden = from_hex(&text);
    assert_eq!(
        produced,
        golden.as_slice(),
        "serve {kind}: encoder output drifted from the golden vector \
         ({} bytes produced vs {} committed). The wire protocol is versioned: \
         an intentional change must bump protocol::VERSION and regenerate \
         with PRIMACY_REGEN_GOLDEN=1.",
        produced.len(),
        golden.len(),
    );
    golden
}

/// Split a concatenated frame sequence into bodies; the whole buffer must
/// be consumed exactly.
fn split_all(mut bytes: &[u8]) -> Vec<&[u8]> {
    let mut bodies = Vec::new();
    while !bytes.is_empty() {
        let (body, consumed) = split_frame(bytes, usize::MAX / 2)
            .expect("golden frames parse")
            .expect("golden frames are complete");
        bodies.push(body);
        bytes = &bytes[consumed..];
    }
    bodies
}

#[test]
fn serve_request_frames_are_byte_exact() {
    let requests = serve_request_fixture();
    let produced: Vec<u8> = requests
        .iter()
        .flat_map(|r| r.encode_frame().expect("fixture encodes"))
        .collect();
    let golden = check_serve_vector("request", requests.len(), &produced);

    // Decode direction: the committed frames parse back to the fixture.
    let bodies = split_all(&golden);
    assert_eq!(bodies.len(), requests.len());
    for (body, expected) in bodies.iter().zip(&requests) {
        assert_eq!(
            &Request::decode(body).expect("golden request decodes"),
            expected
        );
    }
}

#[test]
fn serve_response_frames_are_byte_exact() {
    let responses = serve_response_fixture();
    let produced: Vec<u8> = responses
        .iter()
        .flat_map(|r| r.encode_frame().expect("fixture encodes"))
        .collect();
    let golden = check_serve_vector("response", responses.len(), &produced);

    let bodies = split_all(&golden);
    assert_eq!(bodies.len(), responses.len());
    for (body, expected) in bodies.iter().zip(&responses) {
        assert_eq!(
            &Response::decode(body).expect("golden response decodes"),
            expected
        );
    }
}

#[test]
fn golden_inputs_are_deterministic() {
    // The vectors are only as stable as the generator: two independent calls
    // must agree bit-for-bit, or the suite would pin noise.
    for id in GOLDEN_DATASETS {
        assert_eq!(
            id.generate_bytes(GOLDEN_ELEMENTS),
            id.generate_bytes(GOLDEN_ELEMENTS),
            "{} generator is not deterministic",
            id.name()
        );
    }
}

#[test]
fn hex_helpers_round_trip() {
    let bytes: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
    let text = format!("# comment line\n{}", to_hex(&bytes));
    assert_eq!(from_hex(&text), bytes);
}
