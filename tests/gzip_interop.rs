//! Interoperability: our DEFLATE implementation against the system `gzip`.
//!
//! This is the strongest possible conformance check for the zlib-substitute
//! codec — real-world gzip must decode our streams and we must decode its.
//! The tests are skipped (pass vacuously) on hosts without a `gzip` binary.

use primacy_suite::codecs::deflate::{Gzip, Level};
use std::io::Write;
use std::process::{Command, Stdio};

fn gzip_available() -> bool {
    Command::new("gzip")
        .arg("--version")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

fn run_filter(cmd: &str, args: &[&str], input: &[u8]) -> Option<Vec<u8>> {
    let mut child = Command::new(cmd)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .ok()?;
    child.stdin.take()?.write_all(input).ok()?;
    let out = child.wait_with_output().ok()?;
    if out.status.success() {
        Some(out.stdout)
    } else {
        None
    }
}

fn test_payloads() -> Vec<Vec<u8>> {
    let mut x = 0xA5A5_5A5Au64;
    vec![
        Vec::new(),
        b"a".to_vec(),
        b"hello gzip interop hello gzip interop".repeat(40),
        (0..100_000u32).map(|i| ((i / 9) % 251) as u8).collect(),
        (0..50_000)
            .map(|_| {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect(),
    ]
}

#[test]
fn system_gunzip_decodes_our_streams() {
    if !gzip_available() {
        eprintln!("gzip not found; skipping interop test");
        return;
    }
    for (i, payload) in test_payloads().iter().enumerate() {
        for level in [Level::Fast, Level::Default, Level::Best] {
            let ours = Gzip::with_level(level)
                .compress_bytes(payload)
                .expect("compress");
            let theirs = run_filter("gzip", &["-dc"], &ours)
                .unwrap_or_else(|| panic!("gunzip rejected our stream (payload {i}, {level:?})"));
            assert_eq!(&theirs, payload, "payload {i} at {level:?}");
        }
    }
}

#[test]
fn we_decode_system_gzip_streams() {
    if !gzip_available() {
        eprintln!("gzip not found; skipping interop test");
        return;
    }
    let g = Gzip::default();
    for (i, payload) in test_payloads().iter().enumerate() {
        for flag in ["-1", "-6", "-9"] {
            let theirs = run_filter("gzip", &["-c", flag], payload).expect("system gzip runs");
            let ours = g
                .decompress_bytes(&theirs)
                .unwrap_or_else(|e| panic!("payload {i} at {flag}: {e}"));
            assert_eq!(&ours, payload, "payload {i} at {flag}");
        }
    }
}

#[test]
fn crossing_both_ways_is_stable() {
    if !gzip_available() {
        return;
    }
    // ours -> gunzip -> gzip -> ours
    let payload = b"double crossing payload ".repeat(123);
    let ours = Gzip::default().compress_bytes(&payload).expect("compress");
    let plain = run_filter("gzip", &["-dc"], &ours).expect("gunzip accepts");
    let theirs = run_filter("gzip", &["-c"], &plain).expect("gzip runs");
    let back = Gzip::default()
        .decompress_bytes(&theirs)
        .expect("we accept gzip output");
    assert_eq!(back, payload);
}
