//! Property-based tests: losslessness and safety invariants under
//! adversarial inputs, for every codec and the full pipeline.
//!
//! Formerly driven by `proptest`; now runs on an in-tree deterministic
//! case harness (zero-dependency policy, DESIGN.md). Each property draws
//! `CASES` inputs from seeded [`Rng`] streams — the same structured
//! generators the proptest strategies expressed — so every run covers the
//! identical case set and a failure message pinpoints the case seed to
//! replay under a debugger.

use primacy_suite::codecs::bwt::{bwt_forward, bwt_inverse, mtf_forward, mtf_inverse};
use primacy_suite::codecs::deflate::{deflate, inflate, Level};
use primacy_suite::codecs::CodecKind;
use primacy_suite::core::freq::FreqTable;
use primacy_suite::core::idmap::IdMap;
use primacy_suite::core::linearize::{to_columns, to_rows};
use primacy_suite::core::split::{join_hi_lo, split_hi_lo};
use primacy_suite::core::{PrimacyCompressor, PrimacyConfig};
use primacy_suite::datagen::Rng;

/// Cases per property — matches the proptest-era `with_cases(64)`.
const CASES: u64 = 64;

/// Run `prop` on `CASES` deterministically seeded generators. The property
/// name salts the seed so different properties see different streams, and a
/// failing case is reported by its exact seed.
fn check(name: &str, mut prop: impl FnMut(&mut Rng)) {
    for case in 0..CASES {
        let seed = fnv1a(name) ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = Rng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            prop(&mut rng);
        }));
        if let Err(payload) = outcome {
            eprintln!("property `{name}` failed at case {case} (rng seed {seed:#018x})");
            std::panic::resume_unwind(payload);
        }
    }
}

/// FNV-1a — a tiny stable string hash for salting per-property seeds.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn random_bytes(rng: &mut Rng, len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

/// Byte buffers biased towards compressible structure (runs and repeats)
/// but including fully random tails — the `structured_bytes()` strategy.
fn structured_bytes(rng: &mut Rng) -> Vec<u8> {
    match rng.gen_range(0..4usize) {
        0 => {
            let len = rng.gen_range(0..2048usize);
            random_bytes(rng, len)
        }
        1 => {
            let len = rng.gen_range(0..4096usize);
            (0..len).map(|_| rng.gen_range(0..4usize) as u8).collect()
        }
        2 => {
            let b = rng.gen_range(0..256usize) as u8;
            let len = rng.gen_range(1..2000usize);
            vec![b; len]
        }
        _ => {
            let unit_len = rng.gen_range(0..64usize);
            random_bytes(rng, unit_len).repeat(17)
        }
    }
}

/// Doubles spanning raw-bit noise (incl. NaN/Inf payloads), a bounded
/// uniform band, and a small quantized value pool — the `f64_vec()`
/// strategy.
fn f64_vec(rng: &mut Rng) -> Vec<f64> {
    let len = rng.gen_range(0..512usize);
    match rng.gen_range(0..3usize) {
        0 => (0..len).map(|_| f64::from_bits(rng.next_u64())).collect(),
        1 => (0..len).map(|_| rng.gen_range(-1000.0..1000.0)).collect(),
        _ => (0..len)
            .map(|_| 1.0 + rng.gen_range(0..50usize) as f64 * 0.125)
            .collect(),
    }
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn deflate_roundtrips() {
    check("deflate_roundtrips", |rng| {
        let data = structured_bytes(rng);
        for level in [Level::Fast, Level::Default, Level::Best] {
            let comp = deflate(&data, level);
            assert_eq!(inflate(&comp).unwrap(), data);
        }
    });
}

#[test]
fn every_codec_roundtrips() {
    check("every_codec_roundtrips", |rng| {
        let data = structured_bytes(rng);
        for kind in CodecKind::ALL {
            let codec = kind.build();
            let comp = codec.compress(&data).unwrap();
            assert_eq!(codec.decompress(&comp).unwrap(), data, "codec {kind}");
        }
    });
}

#[test]
fn inflate_never_panics_on_garbage() {
    check("inflate_never_panics_on_garbage", |rng| {
        let len = rng.gen_range(0..512usize);
        let data = random_bytes(rng, len);
        let _ = inflate(&data);
    });
}

#[test]
fn codec_decompress_never_panics_on_garbage() {
    check("codec_decompress_never_panics_on_garbage", |rng| {
        let len = rng.gen_range(0..256usize);
        let data = random_bytes(rng, len);
        for kind in CodecKind::ALL {
            let _ = kind.build().decompress(&data);
        }
    });
}

#[test]
fn bwt_mtf_roundtrip() {
    check("bwt_mtf_roundtrip", |rng| {
        let data = structured_bytes(rng);
        let (bwt, primary) = bwt_forward(&data);
        assert_eq!(bwt.len(), data.len());
        assert_eq!(bwt_inverse(&bwt, primary).unwrap(), data);
        let ranks = mtf_forward(&data);
        assert_eq!(mtf_inverse(&ranks), data);
    });
}

#[test]
fn bwt_is_a_byte_permutation() {
    check("bwt_is_a_byte_permutation", |rng| {
        let data = structured_bytes(rng);
        let (bwt, _) = bwt_forward(&data);
        let mut a = data;
        let mut b = bwt;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    });
}

#[test]
fn primacy_roundtrips_any_doubles() {
    check("primacy_roundtrips_any_doubles", |rng| {
        let values = f64_vec(rng);
        let c = PrimacyCompressor::new(PrimacyConfig::default());
        let comp = c.compress_f64(&values).unwrap();
        let back = c.decompress_f64(&comp).unwrap();
        assert_eq!(bits(&back), bits(&values));
    });
}

#[test]
fn primacy_decompress_never_panics_on_garbage() {
    check("primacy_decompress_never_panics_on_garbage", |rng| {
        let len = rng.gen_range(0..256usize);
        let data = random_bytes(rng, len);
        let c = PrimacyCompressor::new(PrimacyConfig::default());
        let _ = c.decompress_bytes(&data);
    });
}

#[test]
fn split_join_inverse() {
    check("split_join_inverse", |rng| {
        let values = f64_vec(rng);
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let (hi, lo) = split_hi_lo(&bytes, 8, 2).unwrap();
        assert_eq!(join_hi_lo(&hi, &lo, 8, 2).unwrap(), bytes);
    });
}

#[test]
fn transpose_inverse() {
    check("transpose_inverse", |rng| {
        let len = rng.gen_range(0..512usize);
        let data = random_bytes(rng, len);
        let cols = rng.gen_range(1..8usize);
        let rows = data.len() / cols;
        let data = &data[..rows * cols];
        let t = to_columns(data, rows, cols);
        assert_eq!(to_rows(&t, rows, cols), data.to_vec());
    });
}

#[test]
fn idmap_is_bijective_on_present_sequences() {
    check("idmap_is_bijective_on_present_sequences", |rng| {
        let len = rng.gen_range(1..500usize);
        let keys: Vec<u16> = (0..len).map(|_| rng.next_u64() as u16).collect();
        let hi: Vec<u8> = keys.iter().flat_map(|k| k.to_be_bytes()).collect();
        let freq = FreqTable::from_hi_matrix(&hi, 2);
        let map = IdMap::from_freq(&freq, 2).unwrap();
        // Every present sequence maps to a unique ID below the map size.
        let mut seen = std::collections::HashSet::new();
        for &k in &keys {
            let id = map.id_of(k).expect("present sequence must be mapped");
            assert!((id as usize) < map.len());
            assert_eq!(map.seq_of(id), Some(k));
            seen.insert(id);
        }
        assert_eq!(seen.len(), map.len());
        // IDs are assigned by non-increasing frequency.
        for id in 1..map.len() as u16 {
            let prev = map.seq_of(id - 1).unwrap();
            let cur = map.seq_of(id).unwrap();
            assert!(freq.count(prev) >= freq.count(cur));
        }
        // Encode/decode of the matrix is the identity.
        let mut enc = hi.clone();
        map.encode_hi(&mut enc).unwrap();
        map.decode_hi(&mut enc).unwrap();
        assert_eq!(enc, hi);
    });
}

#[test]
fn gzip_roundtrips() {
    check("gzip_roundtrips", |rng| {
        use primacy_suite::codecs::deflate::Gzip;
        let data = structured_bytes(rng);
        let g = Gzip::default();
        let comp = g.compress_bytes(&data).unwrap();
        assert_eq!(g.decompress_bytes(&comp).unwrap(), data);
    });
}

#[test]
fn archive_appends_and_ranged_reads() {
    check("archive_appends_and_ranged_reads", |rng| {
        use primacy_suite::core::{ArchiveReader, ArchiveWriter};
        let cfg = PrimacyConfig {
            chunk_bytes: 512,
            ..Default::default()
        };
        let mut w = ArchiveWriter::new(Vec::new(), cfg).unwrap();
        let mut all: Vec<f64> = Vec::new();
        for _ in 0..rng.gen_range(1..6usize) {
            let piece: Vec<f64> = (0..rng.gen_range(0..200usize))
                .map(|_| rng.gen_range(-1e6..1e6))
                .collect();
            w.append_f64(&piece).unwrap();
            all.extend_from_slice(&piece);
        }
        let archive = w.finish().unwrap();
        let r = ArchiveReader::open(&archive).unwrap();
        assert_eq!(r.element_count(), all.len() as u64);
        // Full readback.
        let back = r.read_elements_f64(0, all.len()).unwrap();
        assert_eq!(bits(&back), bits(&all));
        // A pseudo-random window.
        if !all.is_empty() {
            let start = rng.gen_range(0..all.len());
            let count = rng.gen_range(0..256usize).min(all.len() - start);
            let got = r.read_elements_f64(start as u64, count).unwrap();
            assert_eq!(bits(&got), bits(&all[start..start + count]));
        }
    });
}

#[test]
fn archive_open_never_panics_on_garbage() {
    check("archive_open_never_panics_on_garbage", |rng| {
        use primacy_suite::core::ArchiveReader;
        let len = rng.gen_range(0..300usize);
        let data = random_bytes(rng, len);
        let _ = ArchiveReader::open(&data);
    });
}

#[test]
fn compressed_stream_smaller_or_bounded() {
    check("compressed_stream_smaller_or_bounded", |rng| {
        // Worst-case expansion of the container must stay modest even on
        // adversarial doubles.
        let len = rng.gen_range(64..512usize);
        let values: Vec<f64> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let c = PrimacyCompressor::new(PrimacyConfig::default());
        let comp = c.compress_f64(&values).unwrap();
        assert!(comp.len() < values.len() * 8 + values.len() * 2 + 4096);
    });
}

/// Mutate a valid compressed stream the way a faulty transport would:
/// truncate it, flip a bit, or zero-fill a window.
fn mutate_stream(rng: &mut Rng, stream: &[u8]) -> Vec<u8> {
    let mut bad = stream.to_vec();
    match rng.gen_range(0..3usize) {
        0 => {
            let keep = rng.gen_range(0..bad.len().max(1));
            bad.truncate(keep);
        }
        1 => {
            if !bad.is_empty() {
                let pos = rng.gen_range(0..bad.len());
                bad[pos] ^= 1 << rng.gen_range(0..8usize);
            }
        }
        _ => {
            if !bad.is_empty() {
                let start = rng.gen_range(0..bad.len());
                let len = rng.gen_range(1..33usize).min(bad.len() - start);
                bad[start..start + len].fill(0);
            }
        }
    }
    bad
}

#[test]
fn mutated_zlib_streams_error_or_roundtrip() {
    check("mutated_zlib_streams_error_or_roundtrip", |rng| {
        let data = structured_bytes(rng);
        let codec = CodecKind::Zlib.build();
        let stream = codec.compress(&data).unwrap();
        for _ in 0..8 {
            let bad = mutate_stream(rng, &stream);
            if let Ok(out) = codec.decompress(&bad) {
                // A mutation can legitimately rewrite the stream into the
                // canonical empty-payload encoding (e.g. zero-filling the
                // length varint and checksum); any other Ok must roundtrip.
                assert!(
                    out == data || out.is_empty(),
                    "mutated zlib stream silently corrupted"
                );
            }
        }
    });
}

#[test]
fn mutated_lzr_frames_error_or_roundtrip() {
    check("mutated_lzr_frames_error_or_roundtrip", |rng| {
        let data = structured_bytes(rng);
        let codec = CodecKind::Lzr.build();
        let stream = codec.compress(&data).unwrap();
        for _ in 0..8 {
            let bad = mutate_stream(rng, &stream);
            if let Ok(out) = codec.decompress(&bad) {
                // Same degenerate-rewrite caveat as the zlib property above.
                assert!(
                    out == data || out.is_empty(),
                    "mutated lzr frame silently corrupted"
                );
            }
        }
    });
}

#[test]
fn mutated_archives_error_or_roundtrip() {
    check("mutated_archives_error_or_roundtrip", |rng| {
        use primacy_suite::core::{ArchiveReader, ArchiveWriter};
        let values: Vec<f64> = (0..rng.gen_range(1..200usize))
            .map(|_| rng.gen_range(-1e6..1e6))
            .collect();
        let mut w = ArchiveWriter::new(
            Vec::new(),
            PrimacyConfig {
                chunk_bytes: 512,
                ..Default::default()
            },
        )
        .unwrap();
        w.append_f64(&values).unwrap();
        let archive = w.finish().unwrap();
        for _ in 0..8 {
            let bad = mutate_stream(rng, &archive);
            let Ok(r) = ArchiveReader::open(&bad) else {
                continue;
            };
            let total = (r.element_count() as usize).min(1 << 20);
            if let Ok(out) = r.read_elements_f64(0, total) {
                assert_eq!(
                    bits(&out),
                    bits(&values[..total.min(values.len())]),
                    "mutated archive silently corrupted"
                );
            }
        }
    });
}

#[test]
fn harness_seeds_are_stable() {
    // The harness itself must stay deterministic: same property name, same
    // case, same stream.
    let seed_a = fnv1a("some_property") ^ 3u64.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut a = Rng::seed_from_u64(seed_a);
    let mut b = Rng::seed_from_u64(seed_a);
    assert_eq!(
        (0..16).map(|_| a.next_u64()).collect::<Vec<_>>(),
        (0..16).map(|_| b.next_u64()).collect::<Vec<_>>()
    );
    assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
}
