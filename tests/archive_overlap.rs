//! The overlapped `ArchiveWriter`'s two contracts (ISSUE 10):
//!
//! 1. **Byte identity** — pipelining is an execution strategy, not a format:
//!    the overlapped writer must produce archives byte-identical to the
//!    sequential writer for every thread count and every chunk-alignment
//!    shape, so golden vectors never rotate.
//! 2. **Typed failure, never deadlock** — a sink that fails or panics inside
//!    the writer thread must surface as a `PrimacyError` from `finish()`,
//!    with every worker unblocked via channel disconnection.

use primacy_core::{ArchiveReader, ArchiveWriter, PrimacyConfig, PrimacyError};
use std::io::Write;

/// Small chunks so even modest inputs span many sections.
fn config() -> PrimacyConfig {
    PrimacyConfig {
        chunk_bytes: 4096, // 512 doubles per chunk
        ..PrimacyConfig::default()
    }
}

fn doubles(n: usize) -> Vec<u8> {
    (0..n)
        .flat_map(|i| ((i as f64 * 0.37).sin() * 1e3 + i as f64).to_le_bytes())
        .collect()
}

fn write_archive(bytes: &[u8], threads: Option<usize>) -> Vec<u8> {
    let mut w = match threads {
        Some(t) => ArchiveWriter::with_overlap(Vec::new(), config(), t),
        None => ArchiveWriter::new(Vec::new(), config()),
    }
    .expect("open writer");
    // Append in uneven slices so chunk boundaries never align with appends.
    for piece in bytes.chunks(1000) {
        w.append(piece).expect("append");
    }
    w.finish().expect("finish")
}

#[test]
fn overlapped_archives_are_byte_identical_to_sequential() {
    // 2048 doubles = 4 exact chunks; 2000 = 3 chunks + ragged tail;
    // 100 = a single partial chunk; 0 = directory-only archive.
    for elements in [2048usize, 2000, 100, 0] {
        let bytes = doubles(elements);
        let golden = write_archive(&bytes, None);
        for threads in [1usize, 2, 7, 16] {
            let overlapped = write_archive(&bytes, Some(threads));
            assert_eq!(
                overlapped, golden,
                "{elements} elements, {threads} threads: overlapped archive diverged"
            );
        }
        // The shared golden bytes decode back to the input through both
        // read paths.
        let r = ArchiveReader::open(&golden).expect("open");
        assert_eq!(r.read_all_parallel(4).expect("parallel read"), bytes);
        assert_eq!(r.read_all_pipelined(4).expect("pipelined read"), bytes);
    }
}

#[test]
fn elements_written_tracks_pending_and_flushed_in_both_modes() {
    let bytes = doubles(700); // crosses one chunk boundary mid-append
    for threads in [None, Some(2)] {
        let mut w = match threads {
            Some(t) => ArchiveWriter::with_overlap(Vec::new(), config(), t),
            None => ArchiveWriter::new(Vec::new(), config()),
        }
        .expect("open writer");
        w.append(&bytes).expect("append");
        assert_eq!(w.elements_written(), 700);
        let archive = w.finish().expect("finish");
        let r = ArchiveReader::open(&archive).expect("open");
        assert_eq!(r.element_count(), 700);
    }
}

/// A sink that panics on the `fail_after`-th write call. Write #1 is the
/// archive header, written on the caller's thread before the pipeline
/// spawns; later writes happen inside the writer thread.
#[derive(Debug)]
struct PanickingSink {
    writes: usize,
    fail_after: usize,
}

impl Write for PanickingSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.writes += 1;
        assert!(
            self.writes <= self.fail_after,
            "injected sink panic on write {}",
            self.writes
        );
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn writer_thread_panic_surfaces_as_typed_error_not_deadlock() {
    let bytes = doubles(4096); // 8 chunks: workers keep producing after the panic
    let sink = PanickingSink {
        writes: 0,
        fail_after: 1, // header succeeds, first section write panics
    };
    let mut w = ArchiveWriter::with_overlap(sink, config(), 2).expect("open writer");
    // Appends may or may not start failing depending on how fast the
    // pipeline collapses; finish() must report a typed error either way.
    let mut append_err = None;
    for piece in bytes.chunks(1000) {
        if let Err(e) = w.append(piece) {
            append_err = Some(e);
            break;
        }
    }
    match w.finish() {
        Err(e) => assert!(
            matches!(e, PrimacyError::Format(_)),
            "expected a Format error, got {e:?}"
        ),
        Ok(_) => panic!("finish succeeded despite a panicked writer thread"),
    }
    if let Some(e) = append_err {
        assert!(matches!(e, PrimacyError::Format(_)), "append error {e:?}");
    }
}

/// A sink whose write *fails* (io::Error, no panic) after `fail_after`
/// writes — the non-panic half of the failure contract.
#[derive(Debug)]
struct FailingSink {
    writes: usize,
    fail_after: usize,
}

impl Write for FailingSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.writes += 1;
        if self.writes > self.fail_after {
            return Err(std::io::Error::other("injected sink failure"));
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn sink_write_error_surfaces_from_finish_in_both_modes() {
    let bytes = doubles(4096);
    // Overlapped: the writer thread keeps draining after the error, so
    // every compress worker unblocks and finish reports the root cause.
    let sink = FailingSink {
        writes: 0,
        fail_after: 1,
    };
    let mut w = ArchiveWriter::with_overlap(sink, config(), 2).expect("open writer");
    for piece in bytes.chunks(1000) {
        if w.append(piece).is_err() {
            break;
        }
    }
    match w.finish() {
        Err(PrimacyError::Format(msg)) => {
            assert!(
                msg.contains("sink write failed") || msg.contains("workers exited"),
                "unexpected message: {msg}"
            );
        }
        other => panic!("expected a typed sink error, got {other:?}"),
    }

    // Sequential: the same sink fails synchronously inside append/finish.
    let sink = FailingSink {
        writes: 0,
        fail_after: 1,
    };
    let mut w = ArchiveWriter::new(sink, config()).expect("open writer");
    let result = w.append(&bytes).and_then(|()| w.finish().map(|_| ()));
    assert!(
        matches!(result, Err(PrimacyError::Format(_))),
        "sequential sink failure must be typed: {result:?}"
    );
}
