//! Integration: the analytical model, the cluster simulator and the real
//! pipeline must tell one consistent story.

use primacy_suite::codecs::CodecKind;
use primacy_suite::core::PrimacyConfig;
use primacy_suite::datagen::DatasetId;
use primacy_suite::hpcsim::model::{base_read, base_write, primacy_read, primacy_write};
use primacy_suite::hpcsim::sim::{simulate, Direction, SimConfig};
use primacy_suite::hpcsim::{measure_primacy, CompressionMethod, Scenario};

#[test]
fn measured_rates_feed_a_consistent_model() {
    let data = DatasetId::FlashVelx.generate_bytes(1 << 16);
    let rates = measure_primacy(&PrimacyConfig::default(), &data).unwrap();
    let inputs = rates.to_model_inputs(Default::default(), 3.0 * 1024.0 * 1024.0, 2048.0);

    let base_w = base_write(&inputs);
    let prim_w = primacy_write(&inputs);
    let base_r = base_read(&inputs);
    let prim_r = primacy_read(&inputs);

    // All times positive, all throughputs finite.
    for out in [&base_w, &prim_w, &base_r, &prim_r] {
        assert!(out.t_total > 0.0);
        assert!(out.tau.is_finite() && out.tau > 0.0);
    }
    // τ = ρC / t_total must hold exactly (Eq. 3).
    let c = inputs.chunk_bytes;
    let rho = inputs.cluster.rho;
    assert!((prim_w.tau - rho * c / prim_w.t_total).abs() < 1e-6);
    // The effective ratio must agree with the section accounting.
    assert!(inputs.effective_ratio() > 1.0);
}

#[test]
fn model_and_simulation_agree_for_the_null_case() {
    let scenario = Scenario::default();
    let data = DatasetId::ObsTemp.generate_bytes(1 << 14);
    let e = scenario.evaluate(&CompressionMethod::Null, &data).unwrap();
    let dev_w =
        (e.write_theoretical_mbps - e.write_empirical_mbps).abs() / e.write_theoretical_mbps;
    let dev_r = (e.read_theoretical_mbps - e.read_empirical_mbps).abs() / e.read_theoretical_mbps;
    assert!(dev_w < 0.3, "write model/sim deviation {dev_w}");
    assert!(dev_r < 0.3, "read model/sim deviation {dev_r}");
}

#[test]
fn model_and_simulation_agree_for_primacy() {
    let scenario = Scenario::default();
    let data = DatasetId::NumComet.generate_bytes(1 << 16);
    let e = scenario
        .evaluate(&CompressionMethod::Primacy(PrimacyConfig::default()), &data)
        .unwrap();
    let dev = (e.write_theoretical_mbps - e.write_empirical_mbps).abs() / e.write_theoretical_mbps;
    assert!(dev < 0.35, "model/sim deviation {dev}");
}

#[test]
fn simulation_throughput_is_monotone_in_disk_speed() {
    let base = SimConfig::default();
    let mut last = 0.0;
    for mu in [4e6, 8e6, 16e6, 32e6] {
        let r = simulate(&SimConfig { mu, ..base });
        assert!(r.tau_bps > last, "mu {mu}: {} not > {last}", r.tau_bps);
        last = r.tau_bps;
    }
}

#[test]
fn simulation_write_and_read_directions_both_run() {
    for direction in [Direction::Write, Direction::Read] {
        let r = simulate(&SimConfig {
            direction,
            steps: 8,
            ..Default::default()
        });
        assert!(r.makespan_secs > 0.0);
        assert!(r.tau_bps > 0.0);
        assert!((0.0..=1.0).contains(&r.network_utilization));
        assert!((0.0..=1.0).contains(&r.disk_utilization));
    }
}

#[test]
fn vanilla_bwt_loses_when_the_disk_is_not_glacial() {
    // The paper excludes bzlib2 from in-situ runs because its speed kills
    // the end-to-end gain. On an extremely disk-bound cluster any ratio
    // wins, so test the claim where it actually lives: a moderately fast
    // filesystem, where a slow-strong codec stalls the pipeline while the
    // fast preconditioned one still pays off.
    let mut scenario = Scenario::default();
    scenario.cluster.mu_write = 60e6;
    let data = DatasetId::NumPlasma.generate_bytes(1 << 15);
    let null = scenario.evaluate(&CompressionMethod::Null, &data).unwrap();
    let bwt = scenario
        .evaluate(&CompressionMethod::Vanilla(CodecKind::Bwt), &data)
        .unwrap();
    let prim = scenario
        .evaluate(&CompressionMethod::Primacy(PrimacyConfig::default()), &data)
        .unwrap();
    assert!(
        bwt.write_empirical_mbps < null.write_empirical_mbps,
        "bwt {} should lose to null {}",
        bwt.write_empirical_mbps,
        null.write_empirical_mbps
    );
    // ... even though its ratio is the best of the standard codecs,
    assert!(bwt.ratio > 1.2);
    // ... while PRIMACY still beats the slow-strong codec end to end.
    assert!(prim.write_empirical_mbps > bwt.write_empirical_mbps);
}
