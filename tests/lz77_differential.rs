//! Differential test for the PR-5 LZ77 match-finder overhaul (ISSUE 5
//! satellite): the word-at-a-time + skip-ahead + scratch-reuse finder must
//! (a) round-trip byte-identically through the full DEFLATE encoder/decoder,
//! and (b) produce encoded output no worse than the *old* byte-at-a-time
//! greedy path — reimplemented here verbatim as a reference — on corpora
//! spanning the compressibility spectrum, at all three `Level`s.
//!
//! "No worse" is measured on real encoded bytes (`emit_blocks`), not token
//! counts, because skip-ahead deliberately trades a bounded amount of match
//! discovery for speed: the tolerance is 1% + 64 bytes, mirroring the
//! acceptance criterion that no corpus regresses by more than 1% at
//! `Level::Default`.

use primacy_suite::codecs::deflate::lz77::{self, Token};
use primacy_suite::codecs::deflate::{encode, inflate, Level, MAX_MATCH, MIN_MATCH, WINDOW_SIZE};
use primacy_suite::datagen::{DatasetId, Rng};

/// The old greedy match finder, byte-at-a-time, exactly as shipped before
/// the throughput overhaul: 15-bit hash over 3 bytes, chain walk with the
/// historical semantics (self-references skipped *without* spending budget),
/// scalar compare loop, no skip-ahead, fresh chains per call.
fn old_greedy_tokens(data: &[u8], max_chain: usize, nice_length: usize) -> Vec<Token> {
    const HASH_BITS: u32 = 15;
    const NO_POS: u32 = u32::MAX;
    let n = data.len();
    let mut head = vec![NO_POS; 1 << HASH_BITS];
    let mut prev = vec![NO_POS; n];
    let hash3 = |i: usize| -> usize {
        let v = u32::from(data[i]) << 16 | u32::from(data[i + 1]) << 8 | u32::from(data[i + 2]);
        (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
    };
    let insert = |head: &mut Vec<u32>, prev: &mut Vec<u32>, i: usize| {
        if i + MIN_MATCH > n {
            return;
        }
        let h = hash3(i);
        prev[i] = head[h];
        head[h] = i as u32;
    };
    let longest = |head: &Vec<u32>, prev: &Vec<u32>, i: usize| -> (usize, usize) {
        let remaining = n - i;
        if remaining < MIN_MATCH {
            return (0, 0);
        }
        let max_len = remaining.min(MAX_MATCH);
        let nice = nice_length.min(max_len);
        let mut cand = head[hash3(i)];
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut chain_left = max_chain;
        let window_floor = i.saturating_sub(WINDOW_SIZE);
        while cand != NO_POS && chain_left > 0 {
            let c = cand as usize;
            if c >= i {
                cand = prev[c];
                continue;
            }
            if c < window_floor {
                break;
            }
            if data[c + best_len] == data[i + best_len] {
                let mut l = 0usize;
                while l < max_len && data[c + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - c;
                    if l >= nice {
                        break;
                    }
                }
            }
            chain_left -= 1;
            cand = prev[c];
        }
        if best_len >= MIN_MATCH {
            (best_len, best_dist)
        } else {
            (0, 0)
        }
    };

    let mut tokens = Vec::new();
    let mut i = 0;
    while i < n {
        let (mlen, mdist) = longest(&head, &prev, i);
        insert(&mut head, &mut prev, i);
        if mlen >= MIN_MATCH {
            tokens.push(Token::Match {
                len: mlen as u16,
                dist: mdist as u16,
            });
            for j in i + 1..i + mlen {
                insert(&mut head, &mut prev, j);
            }
            i += mlen;
        } else {
            tokens.push(Token::Literal(data[i]));
            i += 1;
        }
    }
    tokens
}

/// Corpora named by the issue: gts-like structured floats, pure random
/// bytes, long byte runs, and ragged-tail sizes that exercise every scalar
/// tail path (non-multiple-of-8 lengths around word boundaries).
fn corpora() -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();

    out.push((
        "gts_like".to_string(),
        DatasetId::GtsPhiL.generate_bytes(8192),
    ));

    let mut rng = Rng::seed_from_u64(0x6c7a_3737_5f64_6966); // "lz77_dif"
    let mut random = vec![0u8; 48 * 1024];
    rng.fill_bytes(&mut random);
    out.push(("random".to_string(), random));

    let mut runs = Vec::new();
    for (byte, len) in [(0u8, 5000usize), (255, 1), (7, 9000), (7, 1), (0, 300)] {
        runs.extend(std::iter::repeat_n(byte, len));
    }
    runs.extend(b"abcabcabc".repeat(500));
    out.push(("runs".to_string(), runs));

    let base = DatasetId::ObsError.generate_bytes(2048);
    for tail in [0usize, 1, 3, 7, 8, 9, 15, 17] {
        let cut = base.len() - tail;
        out.push((format!("ragged_tail_{tail}"), base[..cut].to_vec()));
    }

    out
}

fn params(level: Level) -> (usize, usize) {
    // (max_chain, nice_length) as they were before the overhaul — the same
    // numbers the new finder uses, so the comparison isolates the inner-loop
    // and skip-ahead changes.
    match level {
        Level::Fast => (16, 16),
        Level::Default => (128, 128),
        Level::Best => (1024, MAX_MATCH),
    }
}

#[test]
fn new_finder_roundtrips_and_costs_no_more_than_old_greedy() {
    for (name, data) in corpora() {
        for level in [Level::Fast, Level::Default, Level::Best] {
            // Tokens reconstruct the input exactly.
            let tokens = lz77::tokenize(&data, level);
            assert_eq!(
                lz77::expand(&tokens),
                data,
                "{name} {level:?}: token stream does not expand to the input"
            );

            // The full encoder round-trips byte-identically.
            let comp = primacy_suite::codecs::deflate::deflate(&data, level);
            assert_eq!(
                inflate(&comp).expect("own stream inflates"),
                data,
                "{name} {level:?}: deflate/inflate round-trip failed"
            );

            // Real encoded cost vs the old greedy reference, same tuning.
            let (max_chain, nice) = params(level);
            let old_tokens = old_greedy_tokens(&data, max_chain, nice);
            assert_eq!(lz77::expand(&old_tokens), data, "reference is broken");
            let old_cost = encode::emit_blocks(&data, &old_tokens).len();
            let budget = old_cost + old_cost / 100 + 64;
            assert!(
                comp.len() <= budget,
                "{name} {level:?}: new encoder emits {} bytes vs old greedy {} \
                 (budget {})",
                comp.len(),
                old_cost,
                budget
            );
        }
    }
}

#[test]
fn lazy_levels_beat_old_greedy_on_structured_data() {
    // Where lazy evaluation has room to work (structured, compressible
    // data), Default and Best must strictly not lose to the old greedy path
    // — the skip-ahead tolerance above exists only for incompressible data.
    for (name, data) in corpora() {
        if name.starts_with("random") {
            continue;
        }
        for level in [Level::Default, Level::Best] {
            let (max_chain, nice) = params(level);
            let old_cost =
                encode::emit_blocks(&data, &old_greedy_tokens(&data, max_chain, nice)).len();
            let new_cost = primacy_suite::codecs::deflate::deflate(&data, level).len();
            assert!(
                new_cost <= old_cost,
                "{name} {level:?}: lazy path emits {new_cost} bytes, old greedy {old_cost}"
            );
        }
    }
}

#[test]
fn scratch_reuse_across_corpora_is_stateless() {
    // One scratch reused across wildly different inputs must give exactly
    // the tokens of a fresh tokenize at every step — chunk N must not see
    // chunk N-1's chains.
    let mut scratch = lz77::EncoderScratch::new();
    for level in [Level::Fast, Level::Default, Level::Best] {
        for (name, data) in corpora() {
            lz77::tokenize_into(&data, level, &mut scratch);
            assert_eq!(
                scratch.tokens(),
                lz77::tokenize(&data, level).as_slice(),
                "{name} {level:?}: reused scratch diverged from fresh state"
            );
        }
    }
}
