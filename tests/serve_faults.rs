//! Fault injection for the `primacy-serve` network boundary (ISSUE 8
//! satellite 2): a hostile peer can never panic the server or wedge it.
//!
//! Two layers, mirroring `tests/adversarial_decode.rs`:
//!
//! * a **pure-decode corpus** — a seeded xoshiro256++ stream derives
//!   hundreds of mutated frames (bit flips, truncations, zero-fill,
//!   splices) and every protocol decoder must return `Ok`/`Err` under
//!   `catch_unwind`, never panic;
//! * **live-socket assaults** — truncated frames, forged length prefixes
//!   beyond the decompression-bomb cap, raw garbage, mid-request
//!   disconnects, and slow-loris dribbles against a running server. After
//!   every assault the server must still answer a clean roundtrip, and its
//!   caught-panic counters must read zero.

use primacy_suite::datagen::{DatasetId, Rng};
use primacy_suite::serve::protocol::{
    read_frame, split_frame, Op, ProtoError, Request, Response, ServeCodec, Status, LEN_BYTES,
};
use primacy_suite::serve::{ServeClient, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Mutated inputs per decoder, matching the repo-wide adversarial floor.
const CORPUS: usize = 320;
const _: () = assert!(CORPUS >= 256, "adversarial corpus floor is 256 inputs");

/// Fixed seed so failures replay exactly.
const SEED: u64 = 0x5EED_5E12_7E00_2026;

/// FNV-1a label hash so each surface sees an independent mutation stream.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Same mutation kinds as `tests/adversarial_decode.rs`: bit flips,
/// truncation, zero-fill windows, spliced garbage.
fn mutate(rng: &mut Rng, stream: &[u8]) -> Vec<u8> {
    let mut bad = stream.to_vec();
    match rng.gen_range(0..4usize) {
        0 => {
            for _ in 0..rng.gen_range(1..9usize) {
                if bad.is_empty() {
                    break;
                }
                let pos = rng.gen_range(0..bad.len());
                bad[pos] ^= 1 << rng.gen_range(0..8usize);
            }
            bad
        }
        1 => {
            let keep = rng.gen_range(0..bad.len().max(1));
            bad.truncate(keep);
            bad
        }
        2 => {
            if !bad.is_empty() {
                let start = rng.gen_range(0..bad.len());
                let len = rng.gen_range(1..65usize).min(bad.len() - start);
                bad[start..start + len].fill(0);
            }
            bad
        }
        _ => {
            let at = rng.gen_range(0..bad.len().max(1)).min(bad.len());
            let mut garbage = vec![0u8; rng.gen_range(1..33usize)];
            rng.fill_bytes(&mut garbage);
            bad.splice(at..at, garbage);
            bad
        }
    }
}

/// Run `decode` over `CORPUS` mutations of `stream`, panicking with replay
/// coordinates if any decode panics.
fn assault(label: &str, stream: &[u8], decode: impl Fn(&[u8])) {
    let mut rng = Rng::seed_from_u64(SEED ^ fnv1a(label));
    for case in 0..CORPUS {
        let bad = mutate(&mut rng, stream);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| decode(&bad)));
        assert!(
            outcome.is_ok(),
            "{label}: decode panicked on mutation {case} (seed {SEED:#018x}, \
             input {} bytes)",
            bad.len(),
        );
    }
}

fn sample_request() -> Request {
    Request {
        op: Op::Compress,
        codec: ServeCodec::Fpz,
        request_id: 0xFEED_BEEF,
        tenant: 11,
        payload: DatasetId::ALL[2].generate_bytes(256),
    }
}

#[test]
fn request_decoder_survives_the_corpus() {
    let frame = sample_request().encode_frame().unwrap();
    let body = frame[LEN_BYTES..].to_vec();
    assault("serve-request", &body, |bytes| {
        let _ = Request::decode(bytes);
    });
}

#[test]
fn response_decoder_survives_the_corpus() {
    let resp = Response {
        status: Status::Ok,
        op_echo: Op::Compress.to_byte(),
        codec_echo: ServeCodec::Fpz.to_byte(),
        request_id: 7,
        tenant: 11,
        payload: DatasetId::ALL[2].generate_bytes(256),
    };
    let frame = resp.encode_frame().unwrap();
    let body = frame[LEN_BYTES..].to_vec();
    assault("serve-response", &body, |bytes| {
        let _ = Response::decode(bytes);
    });
}

#[test]
fn framing_layer_survives_the_corpus() {
    let frame = sample_request().encode_frame().unwrap();
    assault("serve-split-frame", &frame, |bytes| {
        let _ = split_frame(bytes, 4096);
    });
    assault("serve-read-frame", &frame, |bytes| {
        let mut cursor = bytes;
        // Drain every frame the mutated stream appears to contain.
        while let Ok(Some(_)) = read_frame(&mut cursor, 4096) {}
    });
}

#[test]
fn forged_length_prefix_is_rejected_before_allocation() {
    // A 4 GiB claim against a 4 KiB cap must fail by inspection of the
    // prefix alone — this is the decompression-bomb stance at the edge.
    let mut forged = u32::MAX.to_le_bytes().to_vec();
    forged.extend_from_slice(&[0u8; 16]);
    let err = split_frame(&forged, 4096).unwrap_err();
    assert!(matches!(err, ProtoError::FrameTooLarge { claimed, cap }
        if claimed == u64::from(u32::MAX) && cap == 4096));
    let mut cursor = &forged[..];
    assert!(read_frame(&mut cursor, 4096).is_err());
}

// ---------------------------------------------------------------------------
// Live-socket assaults
// ---------------------------------------------------------------------------

/// A raw attacker connection (no client-side protocol).
fn raw_conn(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
}

/// Read until the peer closes or times out; returns everything received.
fn drain(stream: &mut TcpStream) -> Vec<u8> {
    let mut out = Vec::new();
    let mut buf = [0u8; 1024];
    while let Ok(n) = stream.read(&mut buf) {
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    out
}

/// The canary: a clean roundtrip must still succeed after an assault.
fn assert_healthy(server: &Server) {
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.set_timeouts(Some(Duration::from_secs(10))).unwrap();
    let data = DatasetId::ALL[3].generate_bytes(128);
    let resp = client
        .compress(ServeCodec::Zlib, 1, 1, data.clone())
        .unwrap();
    assert_eq!(resp.status, Status::Ok);
    let resp = client
        .decompress(ServeCodec::Zlib, 2, 1, resp.payload)
        .unwrap();
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.payload, data);
}

/// Decode all complete response frames in `bytes`; every one must parse —
/// whatever the server says back to an attacker is itself well-formed.
fn decode_responses(bytes: &[u8]) -> Vec<Response> {
    let mut rest = bytes;
    let mut out = Vec::new();
    while let Ok(Some((body, consumed))) = split_frame(rest, usize::MAX / 2) {
        out.push(Response::decode(body).expect("server sent a malformed response"));
        rest = &rest[consumed..];
    }
    out
}

#[test]
fn live_server_survives_socket_assaults() {
    let server = Server::start(ServeConfig {
        max_frame_bytes: 64 * 1024,
        ..ServeConfig::default()
    })
    .unwrap();

    // 1. Forged length prefix far beyond the cap: typed TooLarge, close.
    let mut conn = raw_conn(&server);
    conn.write_all(&u32::MAX.to_le_bytes()).unwrap();
    let answer = drain(&mut conn);
    let responses = decode_responses(&answer);
    assert_eq!(responses.len(), 1, "one typed error expected: {answer:?}");
    assert_eq!(responses[0].status, Status::TooLarge);
    assert_healthy(&server);

    // 2. Truncated frame: claim 1000 bytes, send 10, disconnect.
    let mut conn = raw_conn(&server);
    conn.write_all(&1000u32.to_le_bytes()).unwrap();
    conn.write_all(&[0u8; 10]).unwrap();
    drop(conn);
    assert_healthy(&server);

    // 3. Garbage with a plausible prefix: typed BadRequest, close.
    let mut conn = raw_conn(&server);
    let mut rng = Rng::seed_from_u64(SEED);
    let mut garbage = vec![0u8; 64];
    rng.fill_bytes(&mut garbage);
    let mut framed = (garbage.len() as u32).to_le_bytes().to_vec();
    framed.extend_from_slice(&garbage);
    conn.write_all(&framed).unwrap();
    let answer = drain(&mut conn);
    let responses = decode_responses(&answer);
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].status, Status::BadRequest);
    assert_healthy(&server);

    // 4. Mid-request disconnect: half a *valid* frame, then vanish.
    let frame = sample_request().encode_frame().unwrap();
    let mut conn = raw_conn(&server);
    conn.write_all(&frame[..frame.len() / 2]).unwrap();
    drop(conn);
    assert_healthy(&server);

    // 5. A pipelined valid request followed by garbage: the request is
    // answered before the garbage kills the connection.
    let mut conn = raw_conn(&server);
    let mut bytes = sample_request().encode_frame().unwrap();
    bytes.extend_from_slice(&[0xFF; 32]);
    conn.write_all(&bytes).unwrap();
    let answer = drain(&mut conn);
    let responses = decode_responses(&answer);
    assert!(
        responses.iter().any(|r| r.status == Status::Ok),
        "the valid request must be answered: {responses:?}"
    );
    assert_healthy(&server);

    let snap = server.shutdown();
    assert_eq!(
        snap.total_panics(),
        0,
        "assaults must never panic: {snap:?}"
    );
    assert!(snap.proto_errors >= 4, "assaults are counted: {snap:?}");
}

#[test]
fn live_server_survives_a_seeded_mutation_storm() {
    // Dozens of mutated frames straight onto live sockets: every
    // connection ends in a typed error or a clean close; the canary stays
    // healthy throughout and no panic is ever caught.
    const STORM: usize = 64;
    let server = Server::start(ServeConfig {
        max_frame_bytes: 64 * 1024,
        ..ServeConfig::default()
    })
    .unwrap();
    let valid = sample_request().encode_frame().unwrap();
    let mut rng = Rng::seed_from_u64(SEED ^ fnv1a("socket-storm"));
    for case in 0..STORM {
        let bad = mutate(&mut rng, &valid);
        let mut conn = raw_conn(&server);
        if conn.write_all(&bad).is_err() {
            continue; // server already closed on us — acceptable
        }
        // Half-close so a mutation claiming more bytes than it sent reads
        // as immediate EOF (Truncated) instead of waiting out the server's
        // read timeout.
        let _ = conn.shutdown(std::net::Shutdown::Write);
        let answer = drain(&mut conn);
        // Whatever came back must itself be parseable protocol.
        let _ = decode_responses(&answer);
        if case % 16 == 0 {
            assert_healthy(&server);
        }
    }
    assert_healthy(&server);
    let snap = server.shutdown();
    assert_eq!(snap.total_panics(), 0, "storm must never panic: {snap:?}");
}

#[test]
fn slow_loris_is_disconnected_by_the_read_timeout() {
    // A dedicated short-timeout server: the client dribbles below the
    // timeout rate and must be cut, while a fast client stays served.
    let server = Server::start(ServeConfig {
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    })
    .unwrap();

    let mut conn = raw_conn(&server);
    let frame = sample_request().encode_frame().unwrap();
    // Two dribbles, then silence longer than the read timeout.
    conn.write_all(&frame[..2]).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    conn.write_all(&frame[2..4]).unwrap();

    // The server must close the connection rather than hold the thread:
    // our read observes EOF (or a reset) within the generous client-side
    // timeout, never a hang.
    let answer = drain(&mut conn);
    assert!(
        decode_responses(&answer)
            .iter()
            .all(|r| r.status != Status::Ok),
        "a dribbled partial frame cannot succeed"
    );
    assert_healthy(&server);

    let snap = server.shutdown();
    assert_eq!(snap.total_panics(), 0);
    assert!(
        snap.slow_closes >= 1,
        "the slow-loris guard must have fired: {snap:?}"
    );
}

#[test]
fn decompression_bomb_result_is_capped() {
    // A small compressed frame that inflates beyond the response cap must
    // come back TooLarge, not as an unbounded allocation. 64 KiB of zeros
    // compresses to well under 1 KiB; cap responses below 64 KiB.
    let server = Server::start(ServeConfig {
        max_frame_bytes: 16 * 1024,
        ..ServeConfig::default()
    })
    .unwrap();
    let zeros = vec![0u8; 200 * 1024];
    let compressed = {
        use primacy_suite::codecs::CodecKind;
        CodecKind::Zlib.build().compress(&zeros).unwrap()
    };
    assert!(
        compressed.len() < 16 * 1024,
        "premise: bomb fits the request cap"
    );
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let resp = client
        .decompress(ServeCodec::Zlib, 1, 1, compressed)
        .unwrap();
    assert_eq!(
        resp.status,
        Status::TooLarge,
        "a result beyond the response cap must be refused: {resp:?}"
    );
    assert_healthy(&server);
    let snap = server.shutdown();
    assert_eq!(snap.total_panics(), 0);
}

#[test]
fn mutations_are_deterministic() {
    let stream: Vec<u8> = (0..=255u8).collect();
    let mut a = Rng::seed_from_u64(SEED);
    let mut b = Rng::seed_from_u64(SEED);
    for _ in 0..32 {
        assert_eq!(mutate(&mut a, &stream), mutate(&mut b, &stream));
    }
}
