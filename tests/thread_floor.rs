//! Thread-count floor audit (ISSUE 8 satellite 4): every entry point that
//! derives a worker count from `available_parallelism` must behave on a
//! 1-core machine (this CI container *is* one) and must accept an explicit
//! `threads = 1` without deadlocking a bounded queue.
//!
//! The shared definition is `primacy_core::resolve_threads`; the CLI's
//! `--threads 0`, the pipeline's parallel paths, and the serve worker pool
//! all route through it (or apply the same `.max(1)` floor locally).

use primacy_suite::core::{
    resolve_threads, ArchiveReader, ArchiveWriter, PrimacyCompressor, PrimacyConfig,
};
use primacy_suite::datagen::DatasetId;
use primacy_suite::serve::protocol::{Op, Request, ServeCodec, Status};
use primacy_suite::serve::{ServeClient, ServeConfig, Server};
use std::time::Duration;

#[test]
fn resolver_floors_at_one_thread() {
    // 0 = auto-detect. Whatever the machine reports — including the Err
    // path on exotic cgroup configs — the answer is at least 1.
    assert!(resolve_threads(0) >= 1);
    assert_eq!(resolve_threads(1), 1);
    assert_eq!(resolve_threads(7), 7);
}

#[test]
fn pipeline_accepts_one_thread_and_zero_is_auto() {
    let input = DatasetId::ALL[4].generate_bytes(3000);
    let c = PrimacyCompressor::new(PrimacyConfig {
        chunk_bytes: 4096,
        ..Default::default()
    });
    let serial = c.compress_bytes(&input).unwrap();
    // threads=1 must complete (no zero-width worker pool) and match serial.
    let one = c.compress_bytes_parallel(&input, 1).unwrap();
    assert_eq!(one, serial);
    // threads=0 historically meant "caller forgot to resolve"; the pipeline
    // floors it rather than deadlocking.
    let zero = c.compress_bytes_parallel(&input, 0).unwrap();
    assert_eq!(zero, serial);
    assert_eq!(c.decompress_bytes(&one).unwrap(), input);
}

#[test]
fn archive_reader_accepts_one_thread_and_zero() {
    let input = DatasetId::ALL[4].generate_bytes(3000);
    let mut w = ArchiveWriter::new(
        Vec::new(),
        PrimacyConfig {
            chunk_bytes: 4096,
            ..Default::default()
        },
    )
    .unwrap();
    w.append(&input).unwrap();
    let archive = w.finish().unwrap();
    let r = ArchiveReader::open(&archive).unwrap();
    let serial = r.read_all_parallel(1).unwrap();
    assert_eq!(serial, input);
    assert_eq!(r.read_all_parallel(0).unwrap(), input);
}

#[test]
fn serve_worker_pool_with_one_worker_drains_a_bounded_queue() {
    // The regression this satellite pins: one worker + a bounded queue must
    // make progress (a zero-worker pool would leave admitted jobs stuck
    // forever, and graceful shutdown would hang on the drain join).
    for workers in [0usize, 1] {
        let server = Server::start(ServeConfig {
            workers,
            queue_depth: 2,
            request_timeout: Duration::from_secs(30),
            ..ServeConfig::default()
        })
        .unwrap();
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        client.set_timeouts(Some(Duration::from_secs(30))).unwrap();
        let data = DatasetId::ALL[4].generate_bytes(512);
        // More sequential requests than the queue is deep: every one must
        // eventually succeed (closed loop, so Busy cannot even occur).
        for i in 0..6u64 {
            let resp = client
                .request(&Request {
                    op: Op::Compress,
                    codec: ServeCodec::Lzr,
                    request_id: i,
                    tenant: 1,
                    payload: data.clone(),
                })
                .unwrap();
            assert_eq!(resp.status, Status::Ok, "workers={workers}, req {i}");
        }
        let snap = server.shutdown();
        assert_eq!(snap.total_ok(), 6, "workers={workers}");
        assert_eq!(snap.total_panics(), 0);
    }
}
