//! Mutation fuzzing: take valid compressed streams and flip/truncate/extend
//! them systematically; every decoder must return an error or the original
//! data — never panic, never hand back silently corrupted bytes.
//!
//! This complements the random-garbage property tests: mutations of *valid*
//! streams exercise the deep decoder states garbage never reaches.

use primacy_suite::codecs::deflate::Gzip;
use primacy_suite::codecs::CodecKind;
use primacy_suite::core::{ArchiveReader, ArchiveWriter, PrimacyCompressor, PrimacyConfig};
use primacy_suite::datagen::DatasetId;

fn payload() -> Vec<u8> {
    DatasetId::MsgSp.generate_bytes(2048)
}

/// Flip one byte at a stride of positions; decoding must be Err or the
/// exact original.
fn sweep_flips(
    decode: impl Fn(&[u8]) -> Option<Vec<u8>>,
    stream: &[u8],
    original: &[u8],
    label: &str,
) {
    for pos in (0..stream.len()).step_by(7) {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut bad = stream.to_vec();
            bad[pos] ^= mask;
            if let Some(out) = decode(&bad) {
                assert_eq!(
                    out, original,
                    "{label}: flip {mask:#04x} at {pos} silently corrupted output"
                );
            }
        }
    }
}

/// Every truncation must fail (a prefix of a valid stream is never valid
/// for these framed formats, except the degenerate empty-payload cases the
/// decoder can legitimately reconstruct).
fn sweep_truncations(
    decode: impl Fn(&[u8]) -> Option<Vec<u8>>,
    stream: &[u8],
    original: &[u8],
    label: &str,
) {
    for keep in (0..stream.len()).step_by(11) {
        if let Some(out) = decode(&stream[..keep]) {
            assert_eq!(
                out, original,
                "{label}: truncation to {keep} returned wrong data"
            );
        }
    }
}

/// Appending trailing garbage: accepted only if the decoder still returns
/// the original (self-terminating stream), otherwise must error.
fn sweep_extensions(
    decode: impl Fn(&[u8]) -> Option<Vec<u8>>,
    stream: &[u8],
    original: &[u8],
    label: &str,
) {
    for extra in [1usize, 8, 1000] {
        let mut extended = stream.to_vec();
        extended.extend(std::iter::repeat_n(0xA5u8, extra));
        if let Some(out) = decode(&extended) {
            assert_eq!(out, original, "{label}: +{extra} bytes changed the output");
        }
    }
}

#[test]
fn codec_streams_survive_mutation_sweeps() {
    let data = payload();
    for kind in CodecKind::ALL {
        let codec = kind.build();
        let stream = codec.compress(&data).unwrap();
        let decode = |bytes: &[u8]| codec.decompress(bytes).ok();
        sweep_flips(decode, &stream, &data, &kind.to_string());
        sweep_truncations(decode, &stream, &data, &kind.to_string());
        sweep_extensions(decode, &stream, &data, &kind.to_string());
    }
}

#[test]
fn gzip_streams_survive_mutation_sweeps() {
    let data = payload();
    let g = Gzip::default();
    let stream = g.compress_bytes(&data).unwrap();
    let decode = |bytes: &[u8]| g.decompress_bytes(bytes).ok();
    sweep_flips(decode, &stream, &data, "gzip");
    sweep_truncations(decode, &stream, &data, "gzip");
}

#[test]
fn primacy_streams_survive_mutation_sweeps() {
    let data = payload();
    let c = PrimacyCompressor::new(PrimacyConfig {
        chunk_bytes: 4096,
        ..Default::default()
    });
    let stream = c.compress_bytes(&data).unwrap();
    let decode = |bytes: &[u8]| c.decompress_bytes(bytes).ok();
    sweep_flips(decode, &stream, &data, "primacy-stream");
    sweep_truncations(decode, &stream, &data, "primacy-stream");
}

#[test]
fn primacy_archives_survive_mutation_sweeps() {
    let data = payload();
    let mut w = ArchiveWriter::new(
        Vec::new(),
        PrimacyConfig {
            chunk_bytes: 4096,
            ..Default::default()
        },
    )
    .unwrap();
    w.append(&data).unwrap();
    let archive = w.finish().unwrap();
    let decode = |bytes: &[u8]| {
        let r = ArchiveReader::open(bytes).ok()?;
        let total = r.element_count() as usize;
        r.read_elements(0, total).ok()
    };
    sweep_flips(decode, &archive, &data, "primacy-archive");
    sweep_truncations(decode, &archive, &data, "primacy-archive");
}

#[test]
fn header_byte_exhaustive_mutation() {
    // Every possible value of every header byte: parsers must never panic.
    let data = payload();
    let c = PrimacyCompressor::new(PrimacyConfig::default());
    let stream = c.compress_bytes(&data).unwrap();
    for pos in 0..12.min(stream.len()) {
        for val in 0..=255u8 {
            let mut bad = stream.clone();
            bad[pos] = val;
            if let Ok(out) = c.decompress_bytes(&bad) {
                assert_eq!(out, data, "header byte {pos}={val} silently accepted");
            }
        }
    }
}
