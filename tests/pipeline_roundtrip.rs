//! Integration: the full PRIMACY pipeline must be lossless over every
//! synthetic dataset and every configuration axis.

// Config tweaks read more clearly as sequential assignments here.
#![allow(clippy::field_reassign_with_default)]

use primacy_suite::codecs::CodecKind;
use primacy_suite::core::{
    IndexPolicy, IsobarConfig, Linearization, PrimacyCompressor, PrimacyConfig,
};
use primacy_suite::datagen::{permute, DatasetId};

const N: usize = 1 << 14; // 16 Ki doubles = 128 KiB per dataset

fn roundtrip(c: &PrimacyCompressor, bytes: &[u8]) {
    let comp = c.compress_bytes(bytes).expect("compress");
    let back = c.decompress_bytes(&comp).expect("decompress");
    assert_eq!(back, bytes);
}

#[test]
fn all_datasets_roundtrip_default_config() {
    let c = PrimacyCompressor::new(PrimacyConfig::default());
    for id in DatasetId::ALL {
        let bytes = id.generate_bytes(N);
        roundtrip(&c, &bytes);
    }
}

#[test]
fn all_datasets_roundtrip_permuted() {
    let c = PrimacyCompressor::new(PrimacyConfig::default());
    for id in DatasetId::ALL {
        let values = permute(&id.generate(N));
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        roundtrip(&c, &bytes);
    }
}

#[test]
fn config_matrix_roundtrips() {
    let data = DatasetId::FlashVelx.generate_bytes(N);
    for codec in CodecKind::ALL {
        for linearization in [Linearization::Row, Linearization::Column] {
            for isobar_enabled in [true, false] {
                for policy in [
                    IndexPolicy::PerChunk,
                    IndexPolicy::Reuse {
                        correlation_threshold: 0.8,
                    },
                ] {
                    let cfg = PrimacyConfig {
                        codec,
                        linearization,
                        chunk_bytes: 32 * 1024,
                        index_policy: policy,
                        isobar: IsobarConfig {
                            enabled: isobar_enabled,
                            ..Default::default()
                        },
                        ..Default::default()
                    };
                    let c = PrimacyCompressor::new(cfg);
                    roundtrip(&c, &data);
                }
            }
        }
    }
}

#[test]
fn chunk_boundary_sizes_roundtrip() {
    let mut cfg = PrimacyConfig::default();
    cfg.chunk_bytes = 1024; // 128 doubles per chunk
    let c = PrimacyCompressor::new(cfg);
    // Exercise off-by-one element counts around the chunk boundary.
    for n in [1usize, 127, 128, 129, 255, 256, 257, 1000] {
        let bytes = DatasetId::ObsTemp.generate_bytes(n);
        roundtrip(&c, &bytes);
    }
}

#[test]
fn parallel_compression_interoperates_with_serial_decompression() {
    let bytes = DatasetId::NumPlasma.generate_bytes(1 << 16);
    let mut cfg = PrimacyConfig::default();
    cfg.chunk_bytes = 64 * 1024;
    let c = PrimacyCompressor::new(cfg);
    for threads in [1, 2, 8] {
        let comp = c
            .compress_bytes_parallel(&bytes, threads)
            .expect("compress");
        assert_eq!(c.decompress_bytes(&comp).expect("decompress"), bytes);
    }
}

#[test]
fn streams_decompress_across_differently_configured_instances() {
    // The stream header carries everything needed; reader config must not
    // matter.
    let bytes = DatasetId::MsgSp.generate_bytes(N);
    let mut writer_cfg = PrimacyConfig::default();
    writer_cfg.codec = CodecKind::Lzr;
    writer_cfg.linearization = Linearization::Row;
    writer_cfg.chunk_bytes = 16 * 1024;
    let writer = PrimacyCompressor::new(writer_cfg);
    let comp = writer.compress_bytes(&bytes).expect("compress");

    let mut reader_cfg = PrimacyConfig::default();
    reader_cfg.codec = CodecKind::Bwt;
    let reader = PrimacyCompressor::new(reader_cfg);
    assert_eq!(reader.decompress_bytes(&comp).expect("decompress"), bytes);
}

#[test]
fn compression_is_deterministic() {
    let bytes = DatasetId::GtsPhiL.generate_bytes(N);
    let c = PrimacyCompressor::new(PrimacyConfig::default());
    let a = c.compress_bytes(&bytes).expect("compress");
    let b = c.compress_bytes(&bytes).expect("compress");
    assert_eq!(a, b);
}

#[test]
fn corrupted_streams_error_not_panic() {
    let bytes = DatasetId::ObsError.generate_bytes(N);
    let c = PrimacyCompressor::new(PrimacyConfig::default());
    let comp = c.compress_bytes(&bytes).expect("compress");
    // Flip one byte at a sweep of positions; every outcome must be an Err
    // (never a panic, never silently wrong data).
    for pos in (0..comp.len()).step_by(97) {
        let mut bad = comp.clone();
        bad[pos] ^= 0x5A;
        if let Ok(out) = c.decompress_bytes(&bad) {
            // A flip in ignored padding would be the only acceptable Ok —
            // and then the data must still be intact.
            assert_eq!(out, bytes, "flip at {pos} silently corrupted data");
        }
    }
}

#[test]
fn truncated_streams_error_not_panic() {
    let bytes = DatasetId::NumBrain.generate_bytes(N);
    let c = PrimacyCompressor::new(PrimacyConfig::default());
    let comp = c.compress_bytes(&bytes).expect("compress");
    for keep in (0..comp.len()).step_by(53) {
        assert!(c.decompress_bytes(&comp[..keep]).is_err());
    }
}
