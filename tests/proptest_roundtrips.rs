//! Property-based tests: losslessness and safety invariants under
//! adversarial inputs, for every codec and the full pipeline.

use proptest::prelude::*;
use primacy_suite::codecs::bwt::{bwt_forward, bwt_inverse, mtf_forward, mtf_inverse};
use primacy_suite::codecs::deflate::{deflate, inflate, Level};
use primacy_suite::codecs::CodecKind;
use primacy_suite::core::freq::FreqTable;
use primacy_suite::core::idmap::IdMap;
use primacy_suite::core::linearize::{to_columns, to_rows};
use primacy_suite::core::split::{join_hi_lo, split_hi_lo};
use primacy_suite::core::{PrimacyCompressor, PrimacyConfig};

/// Byte buffers biased towards compressible structure (runs and repeats)
/// but including fully random tails.
fn structured_bytes() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..2048),
        proptest::collection::vec(0u8..4, 0..4096),
        (any::<u8>(), 1usize..2000).prop_map(|(b, n)| vec![b; n]),
        proptest::collection::vec(any::<u8>(), 0..64)
            .prop_map(|unit| unit.repeat(17)),
    ]
}

fn f64_vec() -> impl Strategy<Value = Vec<f64>> {
    prop_oneof![
        proptest::collection::vec(any::<f64>(), 0..512),
        proptest::collection::vec(-1000.0..1000.0f64, 0..512),
        proptest::collection::vec((0u16..50).prop_map(|i| 1.0 + f64::from(i) * 0.125), 0..512),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn deflate_roundtrips(data in structured_bytes()) {
        for level in [Level::Fast, Level::Default, Level::Best] {
            let comp = deflate(&data, level);
            prop_assert_eq!(&inflate(&comp).unwrap(), &data);
        }
    }

    #[test]
    fn every_codec_roundtrips(data in structured_bytes()) {
        for kind in CodecKind::ALL {
            let codec = kind.build();
            let comp = codec.compress(&data).unwrap();
            prop_assert_eq!(&codec.decompress(&comp).unwrap(), &data, "codec {}", kind);
        }
    }

    #[test]
    fn inflate_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = inflate(&data);
    }

    #[test]
    fn codec_decompress_never_panics_on_garbage(
        data in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        for kind in CodecKind::ALL {
            let _ = kind.build().decompress(&data);
        }
    }

    #[test]
    fn bwt_mtf_roundtrip(data in structured_bytes()) {
        let (bwt, primary) = bwt_forward(&data);
        prop_assert_eq!(bwt.len(), data.len());
        prop_assert_eq!(&bwt_inverse(&bwt, primary).unwrap(), &data);
        let ranks = mtf_forward(&data);
        prop_assert_eq!(&mtf_inverse(&ranks), &data);
    }

    #[test]
    fn bwt_is_a_byte_permutation(data in structured_bytes()) {
        let (bwt, _) = bwt_forward(&data);
        let mut a = data.clone();
        let mut b = bwt.clone();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn primacy_roundtrips_any_doubles(values in f64_vec()) {
        let c = PrimacyCompressor::new(PrimacyConfig::default());
        let comp = c.compress_f64(&values).unwrap();
        let back = c.decompress_f64(&comp).unwrap();
        let a: Vec<u64> = back.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn primacy_decompress_never_panics_on_garbage(
        data in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let c = PrimacyCompressor::new(PrimacyConfig::default());
        let _ = c.decompress_bytes(&data);
    }

    #[test]
    fn split_join_inverse(values in f64_vec()) {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let (hi, lo) = split_hi_lo(&bytes, 8, 2).unwrap();
        prop_assert_eq!(join_hi_lo(&hi, &lo, 8, 2).unwrap(), bytes);
    }

    #[test]
    fn transpose_inverse(data in proptest::collection::vec(any::<u8>(), 0..512), cols in 1usize..8) {
        let rows = data.len() / cols;
        let data = &data[..rows * cols];
        let t = to_columns(data, rows, cols);
        prop_assert_eq!(to_rows(&t, rows, cols), data.to_vec());
    }

    #[test]
    fn idmap_is_bijective_on_present_sequences(keys in proptest::collection::vec(any::<u16>(), 1..500)) {
        let hi: Vec<u8> = keys.iter().flat_map(|k| k.to_be_bytes()).collect();
        let freq = FreqTable::from_hi_matrix(&hi, 2);
        let map = IdMap::from_freq(&freq, 2).unwrap();
        // Every present sequence maps to a unique ID below the map size.
        let mut seen = std::collections::HashSet::new();
        for &k in &keys {
            let id = map.id_of(k).expect("present sequence must be mapped");
            prop_assert!((id as usize) < map.len());
            prop_assert_eq!(map.seq_of(id), Some(k));
            seen.insert(id);
        }
        prop_assert_eq!(seen.len(), map.len());
        // IDs are assigned by non-increasing frequency.
        for id in 1..map.len() as u16 {
            let prev = map.seq_of(id - 1).unwrap();
            let cur = map.seq_of(id).unwrap();
            prop_assert!(freq.count(prev) >= freq.count(cur));
        }
        // Encode/decode of the matrix is the identity.
        let mut enc = hi.clone();
        map.encode_hi(&mut enc).unwrap();
        map.decode_hi(&mut enc).unwrap();
        prop_assert_eq!(enc, hi);
    }

    #[test]
    fn gzip_roundtrips(data in structured_bytes()) {
        use primacy_suite::codecs::deflate::Gzip;
        let g = Gzip::default();
        let comp = g.compress_bytes(&data).unwrap();
        prop_assert_eq!(&g.decompress_bytes(&comp).unwrap(), &data);
    }

    #[test]
    fn archive_appends_and_ranged_reads(
        pieces in proptest::collection::vec(
            proptest::collection::vec(-1e6..1e6f64, 0..200), 1..6),
        window in any::<(u16, u8)>(),
    ) {
        use primacy_suite::core::{ArchiveReader, ArchiveWriter};
        let cfg = PrimacyConfig { chunk_bytes: 512, ..Default::default() };
        let mut w = ArchiveWriter::new(Vec::new(), cfg).unwrap();
        let mut all: Vec<f64> = Vec::new();
        for piece in &pieces {
            w.append_f64(piece).unwrap();
            all.extend_from_slice(piece);
        }
        let archive = w.finish().unwrap();
        let r = ArchiveReader::open(&archive).unwrap();
        prop_assert_eq!(r.element_count(), all.len() as u64);
        // Full readback.
        let back = r.read_elements_f64(0, all.len()).unwrap();
        let a: Vec<u64> = back.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = all.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(a, b);
        // A pseudo-random window.
        if !all.is_empty() {
            let start = window.0 as usize % all.len();
            let count = (window.1 as usize).min(all.len() - start);
            let got = r.read_elements_f64(start as u64, count).unwrap();
            let a: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = all[start..start + count].iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn archive_open_never_panics_on_garbage(
        data in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        use primacy_suite::core::ArchiveReader;
        let _ = ArchiveReader::open(&data);
    }

    #[test]
    fn compressed_stream_smaller_or_bounded(values in proptest::collection::vec(-1.0..1.0f64, 64..512)) {
        // Worst-case expansion of the container must stay modest even on
        // adversarial doubles.
        let c = PrimacyCompressor::new(PrimacyConfig::default());
        let comp = c.compress_f64(&values).unwrap();
        prop_assert!(comp.len() < values.len() * 8 + values.len() * 2 + 4096);
    }
}
