//! Integration: the paper's headline claims, checked at test scale.
//!
//! These run on smaller inputs than the bench binaries, so thresholds are
//! slightly looser than the published numbers — they pin the *shape* (who
//! wins, in which direction) rather than exact magnitudes.

use primacy_suite::codecs::{Codec, CodecKind};
use primacy_suite::core::analysis;
use primacy_suite::core::{PrimacyCompressor, PrimacyConfig};
use primacy_suite::datagen::{permute, DatasetId};
use primacy_suite::hpcsim::{CompressionMethod, Scenario};

const N: usize = 1 << 16; // 64 Ki doubles = 512 KiB

fn cr_codec(codec: &dyn Codec, bytes: &[u8]) -> f64 {
    let comp = codec.compress(bytes).expect("compress");
    bytes.len() as f64 / comp.len() as f64
}

fn cr_primacy(c: &PrimacyCompressor, bytes: &[u8]) -> f64 {
    let comp = c.compress_bytes(bytes).expect("compress");
    bytes.len() as f64 / comp.len() as f64
}

#[test]
fn primacy_beats_zlib_cr_on_most_datasets_and_loses_msg_sppm() {
    let zlib = CodecKind::Zlib.build();
    let primacy = PrimacyCompressor::new(PrimacyConfig::default());
    let mut wins = 0;
    let mut sppm_loses = false;
    for id in DatasetId::ALL {
        let bytes = id.generate_bytes(N);
        let z = cr_codec(zlib.as_ref(), &bytes);
        let p = cr_primacy(&primacy, &bytes);
        if p > z {
            wins += 1;
        } else if id == DatasetId::MsgSppm {
            sppm_loses = true;
        }
    }
    // Paper: 19/20 (95 %), the exception being the easy-to-compress
    // msg_sppm where the index overhead costs more than it buys.
    assert!(wins >= 17, "PRIMACY won CR on only {wins}/20 datasets");
    assert!(sppm_loses, "msg_sppm should be the documented loss");
}

#[test]
fn primacy_advantage_survives_permutation() {
    // §IV-G: the ID mapper uses byte frequencies, not locality, so shuffling
    // the data must not erase its advantage.
    let zlib = CodecKind::Zlib.build();
    let primacy = PrimacyCompressor::new(PrimacyConfig::default());
    let mut wins = 0;
    for id in DatasetId::ALL {
        let values = permute(&id.generate(N));
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        if cr_primacy(&primacy, &bytes) > cr_codec(zlib.as_ref(), &bytes) {
            wins += 1;
        }
    }
    assert!(wins >= 17, "only {wins}/20 permuted wins");
}

#[test]
fn primacy_compresses_faster_than_zlib_on_hard_data() {
    // §IV-F: 3-4× average; demand at least 1.5× on a random-mantissa
    // dataset at test scale (optimized builds). Debug builds assert a
    // reduced 1.1× margin: the PR-5 skip-ahead match finder makes *raw*
    // zlib near-memcpy-fast on the incompressible mantissa bytes, and
    // without optimization the pipeline's extra stages (split, ID-map,
    // transpose) pay full per-byte cost, so the unoptimized gap is
    // legitimately narrower while the direction of the claim still holds.
    use std::time::Instant;
    let bytes = DatasetId::GtsPhiL.generate_bytes(1 << 18);
    let zlib = CodecKind::Zlib.build();
    let primacy = PrimacyCompressor::new(PrimacyConfig::default());

    let t0 = Instant::now();
    let _ = zlib.compress(&bytes).unwrap();
    let z_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let _ = primacy.compress_bytes(&bytes).unwrap();
    let p_secs = t0.elapsed().as_secs_f64();

    let margin = if cfg!(debug_assertions) { 1.1 } else { 1.5 };
    assert!(
        p_secs * margin < z_secs,
        "primacy {p_secs:.3}s vs zlib {z_secs:.3}s (margin {margin})"
    );
}

#[test]
fn fig1_shape_holds_for_all_datasets() {
    // Sign/exponent bits carry signal; deep mantissa is noise. The strong
    // head claim holds for narrow-range fields like the four the paper
    // plots; wide-range data (log-uniform observations) genuinely varies
    // its exponent bits, so only validity is asserted for the rest.
    for id in DatasetId::ALL {
        let p = analysis::bit_probability(&id.generate(1 << 14));
        assert!(p.iter().all(|&x| (0.5..=1.0).contains(&x)), "{id}");
    }
    for id in [
        DatasetId::GtsPhiL,
        DatasetId::NumPlasma,
        DatasetId::ObsTemp,
        DatasetId::MsgSweep3d,
    ] {
        let p = analysis::bit_probability(&id.generate(1 << 14));
        let head: f64 = p[..12].iter().sum::<f64>() / 12.0;
        assert!(head > 0.75, "{id}: head probability {head}");
    }
}

#[test]
fn hard_datasets_have_random_mantissa_tails() {
    for id in [
        DatasetId::GtsPhiL,
        DatasetId::ObsTemp,
        DatasetId::GtsChkpZeon,
    ] {
        let p = analysis::bit_probability(&id.generate(1 << 14));
        let tail: f64 = p[48..].iter().sum::<f64>() / 16.0;
        assert!(tail < 0.6, "{id}: tail probability {tail} should be ~0.5");
    }
}

#[test]
fn exponent_domain_is_sparse_like_the_paper_says() {
    // §II-C: most datasets use < 2,000 of the 65,536 possible sequences.
    let mut under = 0;
    for id in DatasetId::ALL {
        if analysis::unique_exponent_sequences(&id.generate(N)) < 2000 {
            under += 1;
        }
    }
    assert!(
        under >= 15,
        "only {under}/20 datasets under 2,000 sequences"
    );
}

#[test]
fn end_to_end_write_gain_shape() {
    // Fig. 4a at test scale: PRIMACY must beat null; vanilla zlib must land
    // between (small gain or small loss); everything positive throughput.
    let scenario = Scenario::default();
    let data = DatasetId::NumComet.generate_bytes(N);
    let null = scenario.evaluate(&CompressionMethod::Null, &data).unwrap();
    let prim = scenario
        .evaluate(&CompressionMethod::Primacy(PrimacyConfig::default()), &data)
        .unwrap();
    let zlib = scenario
        .evaluate(&CompressionMethod::Vanilla(CodecKind::Zlib), &data)
        .unwrap();
    assert!(prim.write_empirical_mbps > null.write_empirical_mbps * 1.05);
    assert!(prim.write_empirical_mbps > zlib.write_empirical_mbps);
    // Reads: vanilla decompression must not beat PRIMACY's. This one leans
    // on real wall-clock codec speeds, which unoptimized builds distort
    // (debug codecs are ~10x slower, flipping the read trade-off), so only
    // assert it where the measurement is representative.
    if !cfg!(debug_assertions) {
        assert!(prim.read_empirical_mbps > zlib.read_empirical_mbps);
    }
}

#[test]
fn bzip2_class_is_strong_but_slow() {
    // §IV-C's reason for excluding bzlib2 from in-situ runs.
    use std::time::Instant;
    let bytes = DatasetId::NumPlasma.generate_bytes(1 << 16);
    let bwt = CodecKind::Bwt.build();
    let lzr = CodecKind::Lzr.build();

    let t0 = Instant::now();
    let bwt_out = bwt.compress(&bytes).unwrap();
    let bwt_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let lzr_out = lzr.compress(&bytes).unwrap();
    let lzr_secs = t0.elapsed().as_secs_f64();

    assert!(
        bwt_out.len() < lzr_out.len(),
        "bwt {} should out-compress lzr {}",
        bwt_out.len(),
        lzr_out.len()
    );
    assert!(
        bwt_secs > lzr_secs * 3.0,
        "bwt {bwt_secs:.3}s should be much slower than lzr {lzr_secs:.4}s"
    );
}
