//! Seeded adversarial-decode corpus: the acceptance gate for the panic-free
//! decode policy that `primacy-lint` enforces statically.
//!
//! For every decode surface (each byte codec, gzip, raw DEFLATE, the PRIMACY
//! chunk stream, and the archive), a deterministic xoshiro256++ stream
//! ([`Rng`]) derives at least [`CORPUS`] mutated inputs from one valid
//! compressed stream — random bit flips, truncations, zero-filled windows,
//! and spliced garbage — and every decode must return `Ok` or `Err`.
//! A panic anywhere is caught by `catch_unwind` and reported with the seed
//! and mutation index needed to replay it under a debugger.

use primacy_suite::codecs::deflate::{deflate, inflate, Gzip, Level};
use primacy_suite::codecs::CodecKind;
use primacy_suite::core::{ArchiveReader, ArchiveWriter, PrimacyCompressor, PrimacyConfig};
use primacy_suite::datagen::{DatasetId, Rng};

/// Mutated inputs per format. The acceptance bar is 256 (compile-time
/// checked below); keep a margin so tuning never shrinks the corpus under it.
const CORPUS: usize = 320;
const _: () = assert!(CORPUS >= 256, "adversarial corpus floor is 256 inputs");

/// Fixed corpus seed — stable across runs so failures replay exactly.
const SEED: u64 = 0x5EED_AD5E_C0DE_2026;

/// Derive one mutated input from a valid stream. Mutation kinds mirror the
/// transport faults the paper's I/O stack can hand a reader: flipped bits,
/// short reads, zeroed pages, and foreign bytes spliced mid-stream.
fn mutate(rng: &mut Rng, stream: &[u8]) -> Vec<u8> {
    let mut bad = stream.to_vec();
    match rng.gen_range(0..4usize) {
        // Bit flips: 1..=8 random single-bit faults.
        0 => {
            for _ in 0..rng.gen_range(1..9usize) {
                if bad.is_empty() {
                    break;
                }
                let pos = rng.gen_range(0..bad.len());
                bad[pos] ^= 1 << rng.gen_range(0..8usize);
            }
            bad
        }
        // Truncation to a random prefix (possibly empty).
        1 => {
            let keep = rng.gen_range(0..bad.len().max(1));
            bad.truncate(keep);
            bad
        }
        // Zero-fill a random window (a torn or unwritten page).
        2 => {
            if !bad.is_empty() {
                let start = rng.gen_range(0..bad.len());
                let len = rng.gen_range(1..65usize).min(bad.len() - start);
                bad[start..start + len].fill(0);
            }
            bad
        }
        // Splice random garbage over a random window, possibly growing it.
        _ => {
            let at = rng.gen_range(0..bad.len().max(1)).min(bad.len());
            let mut garbage = vec![0u8; rng.gen_range(1..33usize)];
            rng.fill_bytes(&mut garbage);
            bad.splice(at..at, garbage);
            bad
        }
    }
}

/// Run `decode` over `CORPUS` mutations of `stream`; panic (with replay
/// coordinates) if any decode panics instead of returning a `Result`.
fn assault(label: &str, stream: &[u8], decode: impl Fn(&[u8])) {
    let mut rng = Rng::seed_from_u64(SEED ^ fnv1a(label));
    for case in 0..CORPUS {
        let bad = mutate(&mut rng, stream);
        // The decoders take `&[u8]` and the closures capture only immutable
        // state; a caught panic leaves nothing half-mutated to observe.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| decode(&bad)));
        assert!(
            outcome.is_ok(),
            "{label}: decode panicked on mutation {case} (seed {SEED:#018x}, \
             input {} bytes)",
            bad.len(),
        );
    }
}

/// FNV-1a label hash so each format sees an independent mutation stream.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Representative payload: a real dataset slice, structured enough that the
/// valid streams exercise every encode path (matches, tables, residuals).
fn payload() -> Vec<u8> {
    DatasetId::MsgSp.generate_bytes(4096)
}

#[test]
fn every_codec_survives_the_corpus() {
    let data = payload();
    for kind in CodecKind::ALL {
        let codec = kind.build();
        let stream = codec.compress(&data).unwrap();
        assault(&kind.to_string(), &stream, |bytes| {
            let _ = codec.decompress(bytes);
        });
    }
}

#[test]
fn gzip_survives_the_corpus() {
    let data = payload();
    let g = Gzip::default();
    let stream = g.compress_bytes(&data).unwrap();
    assault("gzip", &stream, |bytes| {
        let _ = g.decompress_bytes(bytes);
    });
}

#[test]
fn raw_deflate_survives_the_corpus() {
    let data = payload();
    for level in [Level::Fast, Level::Default, Level::Best] {
        let stream = deflate(&data, level);
        assault(&format!("deflate/{level:?}"), &stream, |bytes| {
            let _ = inflate(bytes);
        });
    }
}

#[test]
fn primacy_stream_survives_the_corpus() {
    let values: Vec<f64> = {
        let mut rng = Rng::seed_from_u64(SEED);
        (0..2048).map(|_| rng.gen_range(-1e6..1e6)).collect()
    };
    let c = PrimacyCompressor::new(PrimacyConfig {
        chunk_bytes: 4096,
        ..Default::default()
    });
    let stream = c.compress_f64(&values).unwrap();
    assault("primacy-stream", &stream, |bytes| {
        let _ = c.decompress_f64(bytes);
    });
}

#[test]
fn primacy_archive_survives_the_corpus() {
    let data = payload();
    let mut w = ArchiveWriter::new(
        Vec::new(),
        PrimacyConfig {
            chunk_bytes: 4096,
            ..Default::default()
        },
    )
    .unwrap();
    w.append(&data).unwrap();
    let archive = w.finish().unwrap();
    assault("primacy-archive", &archive, |bytes| {
        if let Ok(r) = ArchiveReader::open(bytes) {
            let total = r.element_count() as usize;
            let _ = r.read_elements(0, total.min(1 << 20));
        }
    });
}

#[test]
fn mutations_are_deterministic() {
    // Same seed, same corpus — failures must replay bit-exactly.
    let stream: Vec<u8> = (0..=255u8).collect();
    let mut a = Rng::seed_from_u64(SEED);
    let mut b = Rng::seed_from_u64(SEED);
    for _ in 0..32 {
        assert_eq!(mutate(&mut a, &stream), mutate(&mut b, &stream));
    }
}
