//! Seeded adversarial-decode corpus: the acceptance gate for the panic-free
//! decode policy that `primacy-lint` enforces statically.
//!
//! For every decode surface (each byte codec, gzip, raw DEFLATE, the PRIMACY
//! chunk stream, and the archive), a deterministic xoshiro256++ stream
//! ([`Rng`]) derives at least [`CORPUS`] mutated inputs from one valid
//! compressed stream — random bit flips, truncations, zero-filled windows,
//! and spliced garbage — and every decode must return `Ok` or `Err`.
//! A panic anywhere is caught by `catch_unwind` and reported with the seed
//! and mutation index needed to replay it under a debugger.

use primacy_suite::codecs::deflate::{deflate, inflate, Gzip, Level};
use primacy_suite::codecs::CodecKind;
use primacy_suite::core::{ArchiveReader, ArchiveWriter, PrimacyCompressor, PrimacyConfig};
use primacy_suite::datagen::{DatasetId, Rng};

/// Mutated inputs per format. The acceptance bar is 256 (compile-time
/// checked below); keep a margin so tuning never shrinks the corpus under it.
const CORPUS: usize = 320;
const _: () = assert!(CORPUS >= 256, "adversarial corpus floor is 256 inputs");

/// Fixed corpus seed — stable across runs so failures replay exactly.
const SEED: u64 = 0x5EED_AD5E_C0DE_2026;

/// Derive one mutated input from a valid stream. Mutation kinds mirror the
/// transport faults the paper's I/O stack can hand a reader: flipped bits,
/// short reads, zeroed pages, and foreign bytes spliced mid-stream.
fn mutate(rng: &mut Rng, stream: &[u8]) -> Vec<u8> {
    let mut bad = stream.to_vec();
    match rng.gen_range(0..4usize) {
        // Bit flips: 1..=8 random single-bit faults.
        0 => {
            for _ in 0..rng.gen_range(1..9usize) {
                if bad.is_empty() {
                    break;
                }
                let pos = rng.gen_range(0..bad.len());
                bad[pos] ^= 1 << rng.gen_range(0..8usize);
            }
            bad
        }
        // Truncation to a random prefix (possibly empty).
        1 => {
            let keep = rng.gen_range(0..bad.len().max(1));
            bad.truncate(keep);
            bad
        }
        // Zero-fill a random window (a torn or unwritten page).
        2 => {
            if !bad.is_empty() {
                let start = rng.gen_range(0..bad.len());
                let len = rng.gen_range(1..65usize).min(bad.len() - start);
                bad[start..start + len].fill(0);
            }
            bad
        }
        // Splice random garbage over a random window, possibly growing it.
        _ => {
            let at = rng.gen_range(0..bad.len().max(1)).min(bad.len());
            let mut garbage = vec![0u8; rng.gen_range(1..33usize)];
            rng.fill_bytes(&mut garbage);
            bad.splice(at..at, garbage);
            bad
        }
    }
}

/// Run `decode` over `CORPUS` mutations of `stream`; panic (with replay
/// coordinates) if any decode panics instead of returning a `Result`.
fn assault(label: &str, stream: &[u8], decode: impl Fn(&[u8])) {
    let mut rng = Rng::seed_from_u64(SEED ^ fnv1a(label));
    for case in 0..CORPUS {
        let bad = mutate(&mut rng, stream);
        // The decoders take `&[u8]` and the closures capture only immutable
        // state; a caught panic leaves nothing half-mutated to observe.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| decode(&bad)));
        assert!(
            outcome.is_ok(),
            "{label}: decode panicked on mutation {case} (seed {SEED:#018x}, \
             input {} bytes)",
            bad.len(),
        );
    }
}

/// FNV-1a label hash so each format sees an independent mutation stream.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Representative payload: a real dataset slice, structured enough that the
/// valid streams exercise every encode path (matches, tables, residuals).
fn payload() -> Vec<u8> {
    DatasetId::MsgSp.generate_bytes(4096)
}

#[test]
fn every_codec_survives_the_corpus() {
    let data = payload();
    for kind in CodecKind::ALL {
        let codec = kind.build();
        let stream = codec.compress(&data).unwrap();
        assault(&kind.to_string(), &stream, |bytes| {
            let _ = codec.decompress(bytes);
        });
    }
}

#[test]
fn gzip_survives_the_corpus() {
    let data = payload();
    let g = Gzip::default();
    let stream = g.compress_bytes(&data).unwrap();
    assault("gzip", &stream, |bytes| {
        let _ = g.decompress_bytes(bytes);
    });
}

#[test]
fn raw_deflate_survives_the_corpus() {
    let data = payload();
    for level in [Level::Fast, Level::Default, Level::Best] {
        let stream = deflate(&data, level);
        assault(&format!("deflate/{level:?}"), &stream, |bytes| {
            let _ = inflate(bytes);
        });
    }
}

#[test]
fn primacy_stream_survives_the_corpus() {
    let values: Vec<f64> = {
        let mut rng = Rng::seed_from_u64(SEED);
        (0..2048).map(|_| rng.gen_range(-1e6..1e6)).collect()
    };
    let c = PrimacyCompressor::new(PrimacyConfig {
        chunk_bytes: 4096,
        ..Default::default()
    });
    let stream = c.compress_f64(&values).unwrap();
    assault("primacy-stream", &stream, |bytes| {
        let _ = c.decompress_f64(bytes);
    });
}

#[test]
fn primacy_archive_survives_the_corpus() {
    let data = payload();
    let mut w = ArchiveWriter::new(
        Vec::new(),
        PrimacyConfig {
            chunk_bytes: 4096,
            ..Default::default()
        },
    )
    .unwrap();
    w.append(&data).unwrap();
    let archive = w.finish().unwrap();
    assault("primacy-archive", &archive, |bytes| {
        if let Ok(r) = ArchiveReader::open(bytes) {
            let total = r.element_count() as usize;
            let _ = r.read_elements(0, total.min(1 << 20));
        }
    });
}

#[test]
fn mutations_are_deterministic() {
    // Same seed, same corpus — failures must replay bit-exactly.
    let stream: Vec<u8> = (0..=255u8).collect();
    let mut a = Rng::seed_from_u64(SEED);
    let mut b = Rng::seed_from_u64(SEED);
    for _ in 0..32 {
        assert_eq!(mutate(&mut a, &stream), mutate(&mut b, &stream));
    }
}

// ---------------------------------------------------------------------------
// Hand-crafted dynamic-header vectors
//
// The assault corpus above mutates *valid* encoder output, which rarely
// lands on the interesting header pathologies. These vectors construct the
// pathologies directly with the shared bit-stream builder.
// ---------------------------------------------------------------------------

mod common;

use common::{comb_litlen, put_dynamic_header, BitSink};

/// A valid dynamic stream whose litlen code reaches depth 12 (subtable
/// territory), used as the truncation donor below.
fn subtable_donor_stream() -> (Vec<u8>, Vec<u8>) {
    let (lit_lengths, fillers) = comb_litlen(b'A'.into(), 12);
    let mut s = BitSink::new();
    let (lit, _) = put_dynamic_header(&mut s, true, &lit_lengths, &[1]);
    let mut expected = Vec::new();
    for &f in &fillers {
        s.put_code(lit[usize::from(f)], u32::from(lit_lengths[usize::from(f)]));
        expected.push(f as u8);
    }
    s.put_code(lit[usize::from(b'A')], 12);
    expected.push(b'A');
    s.put_code(lit[256], 12);
    (s.finish(), expected)
}

#[test]
fn every_strict_prefix_of_a_dynamic_stream_errors() {
    let (stream, expected) = subtable_donor_stream();
    assert_eq!(inflate(&stream).expect("donor must decode"), expected);
    // Every strict byte-prefix cuts the stream mid-header or mid-body; all
    // must fail cleanly — no panic, no silent success.
    for keep in 0..stream.len() {
        assert!(
            inflate(&stream[..keep]).is_err(),
            "prefix of {keep}/{} bytes decoded",
            stream.len()
        );
    }
}

#[test]
fn oversubscribed_litlen_header_rejected() {
    // Kraft sum 1/2 + 1/4 + 1/4 + 1/4 = 5/4.
    let mut lit_lengths = vec![0u8; 257];
    lit_lengths[0] = 1;
    lit_lengths[1] = 2;
    lit_lengths[2] = 2;
    lit_lengths[256] = 2;
    let mut s = BitSink::new();
    put_dynamic_header(&mut s, true, &lit_lengths, &[1]);
    let err = inflate(&s.finish()).expect_err("over-subscribed litlen accepted");
    assert!(err.to_string().contains("over-subscribed"), "{err}");
}

#[test]
fn oversubscribed_dist_header_rejected() {
    // Five distance codes of length 2: Kraft sum 5/4.
    let mut lit_lengths = vec![0u8; 257];
    lit_lengths[b'x' as usize] = 1;
    lit_lengths[256] = 1;
    let mut s = BitSink::new();
    put_dynamic_header(&mut s, true, &lit_lengths, &[2, 2, 2, 2, 2]);
    let err = inflate(&s.finish()).expect_err("over-subscribed dist accepted");
    assert!(err.to_string().contains("over-subscribed"), "{err}");
}

#[test]
fn undersubscribed_litlen_header_rejected() {
    // Kraft sum 3/4: a quarter of the code space decodes to nothing.
    let mut lit_lengths = vec![0u8; 257];
    lit_lengths[0] = 2;
    lit_lengths[1] = 2;
    lit_lengths[256] = 2;
    let mut s = BitSink::new();
    put_dynamic_header(&mut s, true, &lit_lengths, &[1]);
    let err = inflate(&s.finish()).expect_err("under-subscribed litlen accepted");
    assert!(err.to_string().contains("under-subscribed"), "{err}");
}

#[test]
fn hlit_hdist_overflow_rejected() {
    // HLIT field 30 → 287 symbols (max is 286).
    let mut s = BitSink::new();
    s.put(1, 1);
    s.put(0b10, 2);
    s.put(30, 5); // HLIT
    s.put(0, 5); // HDIST
    s.put(0, 4); // HCLEN
    s.put(0, 40); // plausible continuation
    let err = inflate(&s.finish()).expect_err("HLIT=287 accepted");
    assert!(err.to_string().contains("HLIT exceeds 286"), "{err}");

    // HDIST field 30 → 31 distance codes (max is 30).
    for hdist in [30u64, 31] {
        let mut s = BitSink::new();
        s.put(1, 1);
        s.put(0b10, 2);
        s.put(0, 5);
        s.put(hdist, 5);
        s.put(0, 4);
        s.put(0, 40);
        let err = inflate(&s.finish()).expect_err("HDIST>29 accepted");
        assert!(err.to_string().contains("HDIST exceeds 30"), "{err}");
    }
}

/// Raw header whose code-length code contains only symbols 0 and 16, then
/// opens the length stream with 16 (copy-previous) — there is no previous.
#[test]
fn repeat_with_no_previous_length_rejected() {
    let mut s = BitSink::new();
    s.put(1, 1);
    s.put(0b10, 2);
    s.put(0, 5); // HLIT: 257
    s.put(0, 5); // HDIST: 1
    s.put(15, 4); // HCLEN: all 19
    let mut cl_lengths = [0u8; 19];
    cl_lengths[0] = 1;
    cl_lengths[16] = 1;
    for &ord in &common::CODELEN_ORDER {
        s.put(u64::from(cl_lengths[ord]), 3);
    }
    // Canonical: symbol 0 → code 0, symbol 16 → code 1. Open with 16.
    s.put_code(1, 1);
    s.put(0, 2); // repeat count bits
    s.put(0, 40);
    let err = inflate(&s.finish()).expect_err("leading repeat accepted");
    assert!(
        err.to_string().contains("repeat with no previous length"),
        "{err}"
    );
}

/// Zero-run (symbol 18) and copy-run (symbol 16) encodings that run past the
/// HLIT+HDIST table size must be rejected, not clamped.
#[test]
fn runlength_overflow_rejected() {
    // Symbol 18 twice: 138 + 138 = 276 entries > 257 + 1.
    let mut s = BitSink::new();
    s.put(1, 1);
    s.put(0b10, 2);
    s.put(0, 5);
    s.put(0, 5);
    s.put(15, 4);
    let mut cl_lengths = [0u8; 19];
    cl_lengths[0] = 1;
    cl_lengths[18] = 1;
    for &ord in &common::CODELEN_ORDER {
        s.put(u64::from(cl_lengths[ord]), 3);
    }
    for _ in 0..2 {
        s.put_code(1, 1); // symbol 18
        s.put(127, 7); // run of 138 zeros
    }
    s.put(0, 40);
    let err = inflate(&s.finish()).expect_err("zero-run overflow accepted");
    assert!(
        err.to_string().contains("zero run overflows table"),
        "{err}"
    );

    // One real length then symbol 16 repeats marching past the table end.
    let mut s = BitSink::new();
    s.put(1, 1);
    s.put(0b10, 2);
    s.put(0, 5);
    s.put(0, 5);
    s.put(15, 4);
    let mut cl_lengths = [0u8; 19];
    cl_lengths[1] = 1;
    cl_lengths[16] = 1;
    for &ord in &common::CODELEN_ORDER {
        s.put(u64::from(cl_lengths[ord]), 3);
    }
    s.put_code(0, 1); // symbol 1: one length-1 entry
    for _ in 0..50 {
        s.put_code(1, 1); // symbol 16
        s.put(3, 2); // repeat 6
    }
    s.put(0, 40);
    let err = inflate(&s.finish()).expect_err("copy-run overflow accepted");
    assert!(
        err.to_string().contains("length repeat overflows table"),
        "{err}"
    );
}
