//! Umbrella crate for the PRIMACY reproduction suite.
//!
//! Re-exports the workspace crates under one roof so examples and
//! integration tests can depend on a single package:
//!
//! * [`core`] — the PRIMACY preconditioner and ISOBAR analyzer.
//! * [`codecs`] — the from-scratch zlib/lzo/bzip2-class codecs plus FPC and
//!   the fpzip-class FPZ.
//! * [`datagen`] — deterministic synthetic stand-ins for the paper's 20
//!   scientific datasets.
//! * [`hpcsim`] — the paper's analytical I/O performance model and the
//!   staging-cluster simulator.
//! * [`serve`] — the multi-tenant TCP compression service and its client.

pub use primacy_codecs as codecs;
pub use primacy_core as core;
pub use primacy_datagen as datagen;
pub use primacy_hpcsim as hpcsim;
pub use primacy_serve as serve;
