//! A `bzlib2`-class block compressor: Burrows–Wheeler transform, move-to-
//! front, zero-run-length coding and canonical Huffman entropy coding.
//!
//! The paper's `bzlib2` baseline is "slow but strong": it beats zlib on ratio
//! and loses badly on throughput, which is why the authors exclude it from
//! the in-situ end-to-end runs (§IV-C). This codec reproduces that profile.
//! Differences from stock bzip2 that do not affect the profile: the BWT is
//! computed with a linear-time SA-IS suffix array instead of the original
//! O(n²·log n)-worst-case sort (so the initial RLE1 guard pass is
//! unnecessary), and each block uses a single Huffman table instead of
//! bzip2's six-way table switching.
//!
//! Stream layout:
//! `magic "BWT1" | varint total_len | blocks… | crc32(total)` where each
//! block is `varint block_len | varint primary | 4-bit code lengths × 258 |
//! huffman bitstream (EOB-terminated, byte aligned)`.

/// Suffix-array construction for the forward transform.
pub mod suffix;

use crate::bitio::{BitReader, BitWriter};
use crate::checksum::crc32;
use crate::error::{CodecError, Result};
use crate::huffman::{package_merge_lengths, Decoder, Encoder};
use crate::{read_varint, write_varint, Codec};
use suffix::suffix_array;

const MAGIC: &[u8; 4] = b"BWT1";
/// bzip2's `-9` block size.
pub const DEFAULT_BLOCK: usize = 900_000;

/// Zero-run symbols (bijective base-2 digits) and the symbol alphabet:
/// RUNA=0, RUNB=1, MTF value v in 1..=255 → symbol v+1, EOB=257.
const RUNA: u16 = 0;
const RUNB: u16 = 1;
const EOB: u16 = 257;
const ALPHABET: usize = 258;

/// The BWT block codec.
#[derive(Debug, Clone, Copy)]
pub struct BwtCodec {
    /// Block size in bytes; larger blocks compress better and slower.
    pub block_size: usize,
}

impl Default for BwtCodec {
    fn default() -> Self {
        Self {
            block_size: DEFAULT_BLOCK,
        }
    }
}

impl BwtCodec {
    /// Codec with an explicit block size (min 1).
    pub fn with_block_size(block_size: usize) -> Self {
        Self {
            block_size: block_size.max(1),
        }
    }
}

/// Forward BWT with an implicit sentinel. Returns `(bwt, primary)` where
/// `primary` is the row index the sentinel would occupy (needed to invert).
pub fn bwt_forward(data: &[u8]) -> (Vec<u8>, usize) {
    let n = data.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let sa = suffix_array(data);
    let mut bwt = Vec::with_capacity(n);
    // Conceptual row 0 is the sentinel suffix, whose preceding char is the
    // last byte of the data.
    if let Some(&last) = data.last() {
        bwt.push(last);
    }
    let mut primary = 0usize;
    for (i, &p) in sa.iter().enumerate() {
        if p == 0 {
            // This row's preceding char is the sentinel; remember where it
            // belongs instead of storing it.
            primary = i + 1;
        } else if let Some(&b) = data.get(p as usize - 1) {
            // Suffix-array entries are < n, so the lookup always succeeds.
            bwt.push(b);
        }
    }
    debug_assert!(primary >= 1);
    (bwt, primary)
}

/// Invert [`bwt_forward`].
pub fn bwt_inverse(bwt: &[u8], primary: usize) -> Result<Vec<u8>> {
    let n = bwt.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if primary == 0 || primary > n {
        return Err(CodecError::Corrupt("bwt primary index out of range"));
    }
    // Symbols: 0 = sentinel, byte b = b+1. Conceptual column has n+1 rows;
    // row `primary` holds the sentinel. Out-of-range rows map to the
    // sentinel symbol; a corrupted stream then trips the early-sentinel
    // check (or the caller's CRC) instead of panicking.
    let sym_at = |p: usize| -> usize {
        if p == primary {
            0
        } else {
            let idx = if p < primary { p } else { p - 1 };
            bwt.get(idx).map_or(0, |&b| b as usize + 1)
        }
    };
    let mut count = [0u32; 258];
    count[0] = 1;
    for &b in bwt {
        // A byte's symbol b+1 is at most 256, inside the 258-entry table.
        if let Some(slot) = count.get_mut(b as usize + 1) {
            *slot += 1;
        }
    }
    let mut starts = [0u32; 258];
    let mut sum = 0u32;
    for (start, &cnt) in starts.iter_mut().zip(count.iter()) {
        *start = sum;
        // Counts sum to n+1, which fits u32 for any in-bounds block;
        // saturating keeps the table monotonic even on corrupt input.
        sum = sum.saturating_add(cnt);
    }
    let mut occ = [0u32; 258];
    let mut lf = vec![0u32; n + 1];
    for (p, lf_slot) in lf.iter_mut().enumerate() {
        let s = sym_at(p);
        let start = starts.get(s).copied().unwrap_or(0);
        if let Some(o) = occ.get_mut(s) {
            *lf_slot = start.saturating_add(*o);
            *o += 1;
        }
    }
    // Walk the LF mapping backwards, building the output back-to-front.
    let mut out = Vec::with_capacity(n);
    let mut row = 0usize; // row 0 begins with the sentinel: "$T".
    for _ in 0..n {
        if row == primary {
            return Err(CodecError::Corrupt("bwt walk hit the sentinel early"));
        }
        let idx = if row < primary { row } else { row - 1 };
        let b = bwt
            .get(idx)
            .copied()
            .ok_or(CodecError::Corrupt("bwt walk escaped the matrix"))?;
        out.push(b);
        row = lf.get(row).copied().unwrap_or(0) as usize;
    }
    out.reverse();
    Ok(out)
}

/// Move-to-front transform over the 256-byte alphabet.
pub fn mtf_forward(data: &[u8]) -> Vec<u8> {
    let mut order: Vec<u8> = (0..=255).collect();
    let mut out = Vec::with_capacity(data.len());
    for &b in data {
        // `order` is a permutation of all 256 byte values, so the search
        // always succeeds; 0 is a safe (if suboptimal) fallback.
        let pos = order.iter().position(|&x| x == b).unwrap_or(0);
        out.push(pos as u8);
        order.copy_within(0..pos, 1);
        if let Some(front) = order.first_mut() {
            *front = b;
        }
    }
    out
}

/// Invert [`mtf_forward`].
pub fn mtf_inverse(ranks: &[u8]) -> Vec<u8> {
    let mut order: Vec<u8> = (0..=255).collect();
    let mut out = Vec::with_capacity(ranks.len());
    for &r in ranks {
        let pos = r as usize;
        // A rank is a u8, so pos < 256 == order.len() always holds.
        let b = order.get(pos).copied().unwrap_or(0);
        out.push(b);
        order.copy_within(0..pos, 1);
        if let Some(front) = order.first_mut() {
            *front = b;
        }
    }
    out
}

/// Encode an MTF rank stream into RUNA/RUNB/literal symbols: runs of zero
/// ranks become bijective base-2 digit strings; nonzero rank v becomes
/// symbol v+1.
fn rle2_encode(ranks: &[u8]) -> Vec<u16> {
    let mut out = Vec::with_capacity(ranks.len() / 2 + 8);
    let mut zero_run = 0usize;
    let flush = |out: &mut Vec<u16>, run: &mut usize| {
        let mut r = *run;
        while r > 0 {
            if r & 1 == 1 {
                out.push(RUNA);
                r = (r - 1) / 2;
            } else {
                out.push(RUNB);
                r = (r - 2) / 2;
            }
        }
        *run = 0;
    };
    for &v in ranks {
        if v == 0 {
            zero_run += 1;
        } else {
            flush(&mut out, &mut zero_run);
            out.push(u16::from(v) + 1);
        }
    }
    flush(&mut out, &mut zero_run);
    out
}

/// Invert [`rle2_encode`]. Stops at (and consumes) nothing: the caller feeds
/// exactly the symbols of one block, excluding EOB.
fn rle2_decode(symbols: &[u16], expected_len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(crate::clamped_capacity(expected_len as u64));
    let mut run = 0usize;
    let mut place = 1usize;
    let mut in_run = false;
    let flush = |out: &mut Vec<u8>, run: &mut usize, place: &mut usize, in_run: &mut bool| {
        if *in_run {
            out.extend(std::iter::repeat_n(0u8, *run));
            *run = 0;
            *place = 1;
            *in_run = false;
        }
    };
    // Run lengths grow bijectively (place doubles per digit), so a hostile
    // digit string can push them toward overflow long before the length
    // check below fires; every step is checked.
    let overflow = || CodecError::Corrupt("rle2 run length overflow");
    for &s in symbols {
        match s {
            RUNA => {
                run = run.checked_add(place).ok_or_else(overflow)?;
                place = place.checked_mul(2).ok_or_else(overflow)?;
                in_run = true;
            }
            RUNB => {
                let two = place.checked_mul(2).ok_or_else(overflow)?;
                run = run.checked_add(two).ok_or_else(overflow)?;
                place = two;
                in_run = true;
            }
            2..=256 => {
                flush(&mut out, &mut run, &mut place, &mut in_run);
                out.push((s - 1) as u8);
            }
            _ => return Err(CodecError::Corrupt("invalid rle2 symbol")),
        }
        if out.len().checked_add(run).is_none_or(|t| t > expected_len) {
            return Err(CodecError::Corrupt("rle2 output exceeds block length"));
        }
    }
    flush(&mut out, &mut run, &mut place, &mut in_run);
    if out.len() != expected_len {
        return Err(CodecError::Corrupt("rle2 output length mismatch"));
    }
    Ok(out)
}

/// Symbols per Huffman group (bzip2's constant).
const GROUP: usize = 50;
/// Maximum coding tables per block (bzip2 allows 6).
const MAX_TABLES: usize = 6;
/// Refinement passes of the assign/refit loop.
const ITERS: usize = 4;

/// bzip2-style table count heuristic by symbol-stream length.
fn choose_n_tables(n_symbols: usize) -> usize {
    match n_symbols {
        0..=199 => 1,
        200..=599 => 2,
        600..=1199 => 3,
        1200..=2399 => 4,
        2400..=5999 => 5,
        _ => MAX_TABLES,
    }
}

/// Greedy multi-table fit (bzip2's group coding): split `symbols` into
/// 50-symbol groups, then iterate {assign each group to its cheapest table,
/// refit each table's code lengths to its assigned groups}. Returns the
/// per-table lengths and the per-group selectors.
fn fit_tables(symbols: &[u16], n_tables: usize) -> (Vec<Vec<u8>>, Vec<u8>) {
    let n_groups = symbols.len().div_ceil(GROUP);
    let mut selectors: Vec<u8> = (0..n_groups).map(|g| (g % n_tables) as u8).collect();
    let mut lengths: Vec<Vec<u8>> = vec![vec![0u8; ALPHABET]; n_tables];

    let refit = |selectors: &[u8], lengths: &mut Vec<Vec<u8>>| {
        let mut freqs = vec![[0u64; ALPHABET]; n_tables];
        // One selector per group by construction: zip instead of indexing.
        for (group, &sel) in symbols.chunks(GROUP).zip(selectors.iter()) {
            if let Some(freq) = freqs.get_mut(sel as usize) {
                for &sym in group {
                    if let Some(f) = freq.get_mut(sym as usize) {
                        *f += 1;
                    }
                }
            }
        }
        for (table, freq) in lengths.iter_mut().zip(freqs.iter()) {
            if freq.iter().any(|&f| f > 0) {
                *table = package_merge_lengths(freq, 15);
            }
        }
    };

    refit(&selectors, &mut lengths);
    for _ in 0..ITERS {
        // Assign: cheapest table per group. Symbols absent from a table cost
        // an effective 16 bits so that table is avoided, not chosen blindly.
        selectors = symbols
            .chunks(GROUP)
            .map(|group| {
                let mut best = (u64::MAX, 0usize);
                for (t, table) in lengths.iter().enumerate() {
                    let cost: u64 = group
                        .iter()
                        .map(|&sym| match table.get(sym as usize).copied().unwrap_or(0) {
                            0 => 16,
                            l => u64::from(l),
                        })
                        .sum();
                    if cost < best.0 {
                        best = (cost, t);
                    }
                }
                best.1 as u8
            })
            .collect();
        refit(&selectors, &mut lengths);
    }
    // Final safety refit so every selected table covers its symbols.
    refit(&selectors, &mut lengths);
    (lengths, selectors)
}

fn compress_block(block: &[u8], out: &mut Vec<u8>) {
    let (bwt, primary) = bwt_forward(block);
    let ranks = mtf_forward(&bwt);
    let mut symbols = rle2_encode(&ranks);
    symbols.push(EOB);

    let n_tables = choose_n_tables(symbols.len());
    let (lengths, selectors) = fit_tables(&symbols, n_tables);
    let encoders: Vec<Encoder> = lengths.iter().map(|l| Encoder::from_lengths(l)).collect();

    write_varint(out, block.len() as u64);
    write_varint(out, primary as u64);
    write_varint(out, n_tables as u64);
    write_varint(out, selectors.len() as u64);
    let mut w = BitWriter::new();
    // Selectors: 3 bits each (n_tables ≤ 6).
    for &sel in &selectors {
        w.write_bits(u64::from(sel), 3);
    }
    // Per-table code lengths: 258 × 4 bits (lengths are ≤ 15).
    for table in &lengths {
        for &l in table {
            w.write_bits(u64::from(l), 4);
        }
    }
    // Symbol stream, switching tables every GROUP symbols. fit_tables
    // returns one selector per group, all below n_tables: zip and look up.
    for (group, &sel) in symbols.chunks(GROUP).zip(selectors.iter()) {
        let Some(enc) = encoders.get(sel as usize) else {
            continue;
        };
        for &sym in group {
            let sym = sym as usize;
            let code = enc.codes.get(sym).copied().unwrap_or(0);
            let len = enc.lengths.get(sym).copied().unwrap_or(0);
            debug_assert!(len > 0, "selected table misses symbol");
            w.write_bits(u64::from(code), u32::from(len));
        }
    }
    let payload = w.finish();
    write_varint(out, payload.len() as u64);
    out.extend_from_slice(&payload);
}

fn decompress_block(input: &[u8], pos: &mut usize, out: &mut Vec<u8>) -> Result<()> {
    let next_varint = |pos: &mut usize| -> Result<u64> {
        let (v, used) = read_varint(input.get(*pos..).ok_or(CodecError::Truncated)?)?;
        *pos = pos.checked_add(used).ok_or(CodecError::Truncated)?;
        Ok(v)
    };
    let block_len = next_varint(pos)?;
    let primary = next_varint(pos)?;
    let n_tables = next_varint(pos)? as usize;
    let n_groups = next_varint(pos)? as usize;
    if n_tables == 0 || n_tables > MAX_TABLES {
        return Err(CodecError::Corrupt("bwt table count out of range"));
    }
    // All plausibility bounds saturate: block_len is attacker-controlled.
    let symbol_cap = (block_len as usize).saturating_mul(2).saturating_add(64);
    if n_groups > symbol_cap {
        return Err(CodecError::Corrupt("bwt group count implausible"));
    }
    let payload_len = next_varint(pos)? as usize;
    let payload_end = pos.checked_add(payload_len).ok_or(CodecError::Truncated)?;
    let payload = input.get(*pos..payload_end).ok_or(CodecError::Truncated)?;
    *pos = payload_end;

    let mut r = BitReader::new(payload);
    let mut selectors = Vec::with_capacity(crate::clamped_capacity(n_groups as u64));
    for _ in 0..n_groups {
        let sel = r.read_bits(3)? as usize;
        if sel >= n_tables {
            return Err(CodecError::Corrupt("bwt selector out of range"));
        }
        selectors.push(sel);
    }
    let mut decoders: Vec<Option<Decoder>> = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        let mut lengths = [0u8; ALPHABET];
        for l in lengths.iter_mut() {
            *l = r.read_bits(4)? as u8;
        }
        // Unselected tables may be all-zero; only materialize valid ones.
        decoders.push(Decoder::from_lengths(&lengths).ok());
    }
    let mut symbols = Vec::new();
    'groups: for &sel in &selectors {
        let dec = decoders
            .get(sel)
            .and_then(|d| d.as_ref())
            .ok_or(CodecError::Corrupt("selector references empty table"))?;
        for _ in 0..GROUP {
            let s = dec.decode(&mut r)?;
            if s == EOB {
                break 'groups;
            }
            symbols.push(s);
            if symbols.len() > symbol_cap {
                return Err(CodecError::Corrupt("rle2 symbol stream too long"));
            }
        }
    }
    let ranks = rle2_decode(&symbols, block_len as usize)?;
    let bwt = mtf_inverse(&ranks);
    let block = bwt_inverse(&bwt, primary as usize)?;
    out.extend_from_slice(&block);
    Ok(())
}

impl Codec for BwtCodec {
    fn name(&self) -> &'static str {
        "bwt"
    }

    fn compress(&self, input: &[u8]) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(input.len() / 2 + 32);
        out.extend_from_slice(MAGIC);
        write_varint(&mut out, input.len() as u64);
        for block in input.chunks(self.block_size) {
            compress_block(block, &mut out);
        }
        out.extend_from_slice(&crc32(input).to_le_bytes());
        Ok(out)
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        if input.len() < MAGIC.len() + 4 {
            return Err(CodecError::Truncated);
        }
        if input.get(..4) != Some(MAGIC.as_slice()) {
            return Err(CodecError::BadMagic);
        }
        let body_end = input.len() - 4;
        let mut pos = 4usize;
        let (total_len, used) = read_varint(input.get(pos..body_end).unwrap_or(&[]))?;
        pos = pos.checked_add(used).ok_or(CodecError::Truncated)?;
        let mut out = Vec::with_capacity(crate::clamped_capacity(total_len));
        while (out.len() as u64) < total_len {
            if pos >= body_end {
                return Err(CodecError::Truncated);
            }
            decompress_block(input, &mut pos, &mut out)?;
        }
        if out.len() as u64 != total_len {
            return Err(CodecError::LengthMismatch {
                expected: total_len as usize,
                actual: out.len(),
            });
        }
        let stored =
            u32::from_le_bytes(crate::read_array(input, body_end).ok_or(CodecError::Truncated)?);
        let actual = crc32(&out);
        if stored != actual {
            return Err(CodecError::ChecksumMismatch {
                expected: stored,
                actual,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bwt_banana() {
        // BWT("banana") with sentinel convention: rows of "banana$" sorted:
        // $banana, a$banan, ana$ban, anana$b, banana$, na$bana, nana$ba
        // last column = a n n b $ a a → bwt without $ = "annbaa", primary=4.
        let (bwt, primary) = bwt_forward(b"banana");
        assert_eq!(bwt, b"annbaa");
        assert_eq!(primary, 4);
        assert_eq!(bwt_inverse(&bwt, primary).unwrap(), b"banana");
    }

    #[test]
    fn bwt_roundtrip_various() {
        for data in [
            &b""[..],
            b"a",
            b"ab",
            b"aaaa",
            b"mississippi",
            &b"the quick brown fox".repeat(17),
            &[0u8, 255, 0, 255, 128],
        ] {
            let (bwt, primary) = bwt_forward(data);
            assert_eq!(bwt_inverse(&bwt, primary).unwrap(), data, "{data:?}");
        }
    }

    #[test]
    fn bwt_inverse_rejects_bad_primary() {
        let (bwt, _) = bwt_forward(b"hello world");
        assert!(bwt_inverse(&bwt, 0).is_err());
        assert!(bwt_inverse(&bwt, bwt.len() + 1).is_err());
    }

    #[test]
    fn mtf_roundtrip_and_front_loading() {
        let data = b"aaabbbaaacccaaa";
        let ranks = mtf_forward(data);
        assert_eq!(mtf_inverse(&ranks), data);
        // Repeated symbols should produce rank 0 after their first use.
        let zeros = ranks.iter().filter(|&&r| r == 0).count();
        assert!(zeros >= 9, "expected many zero ranks, got {zeros}");
    }

    #[test]
    fn rle2_known_runs() {
        // 1 zero → RUNA; 2 zeros → RUNB; 3 → RUNA RUNA; 4 → RUNB RUNA.
        assert_eq!(rle2_encode(&[0]), vec![RUNA]);
        assert_eq!(rle2_encode(&[0, 0]), vec![RUNB]);
        assert_eq!(rle2_encode(&[0, 0, 0]), vec![RUNA, RUNA]);
        assert_eq!(rle2_encode(&[0, 0, 0, 0]), vec![RUNB, RUNA]);
        // Literal 5 → symbol 6.
        assert_eq!(rle2_encode(&[5]), vec![6]);
    }

    #[test]
    fn rle2_roundtrip_random() {
        let mut x = 77u64;
        let ranks: Vec<u8> = (0..10_000)
            .map(|_| {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                // Bias towards zero like real MTF output.
                let v = (x >> 60) as u8;
                if v < 10 {
                    v.saturating_sub(7)
                } else {
                    v
                }
            })
            .collect();
        let symbols = rle2_encode(&ranks);
        assert_eq!(rle2_decode(&symbols, ranks.len()).unwrap(), ranks);
    }

    #[test]
    fn codec_roundtrip_text_and_binary() {
        let codec = BwtCodec::default();
        let text = b"It was the best of times, it was the worst of times".repeat(100);
        let comp = codec.compress(&text).unwrap();
        assert!(comp.len() < text.len() / 3);
        assert_eq!(codec.decompress(&comp).unwrap(), text);
    }

    #[test]
    fn codec_multi_block() {
        let codec = BwtCodec::with_block_size(1000);
        let data: Vec<u8> = (0..10_500u32).map(|i| ((i / 3) % 255) as u8).collect();
        let comp = codec.compress(&data).unwrap();
        assert_eq!(codec.decompress(&comp).unwrap(), data);
    }

    #[test]
    fn codec_empty_input() {
        let codec = BwtCodec::default();
        let comp = codec.compress(&[]).unwrap();
        assert_eq!(codec.decompress(&comp).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn codec_detects_corruption() {
        let codec = BwtCodec::default();
        let data = b"guard this payload against bit flips".repeat(20);
        let mut comp = codec.compress(&data).unwrap();
        let mid = comp.len() / 2;
        comp[mid] ^= 0x04;
        assert!(codec.decompress(&comp).is_err());
    }

    #[test]
    fn codec_rejects_bad_magic() {
        let codec = BwtCodec::default();
        let mut comp = codec.compress(b"x").unwrap();
        comp[1] = b'?';
        assert!(matches!(codec.decompress(&comp), Err(CodecError::BadMagic)));
    }

    #[test]
    fn table_count_heuristic_is_monotone() {
        assert_eq!(choose_n_tables(0), 1);
        assert_eq!(choose_n_tables(199), 1);
        assert_eq!(choose_n_tables(200), 2);
        assert_eq!(choose_n_tables(10_000), MAX_TABLES);
        let mut last = 0;
        for n in [0usize, 200, 600, 1200, 2400, 6000] {
            let t = choose_n_tables(n);
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn fit_tables_covers_every_selected_symbol() {
        // Heterogeneous stream: first half draws from a low alphabet, second
        // half from a high one — exactly what group switching exploits.
        let mut symbols: Vec<u16> = (0..2_000).map(|i| (i % 5) as u16).collect();
        symbols.extend((0..2_000).map(|i| 100 + (i % 7) as u16));
        symbols.push(EOB);
        let n_tables = choose_n_tables(symbols.len());
        assert!(n_tables >= 2);
        let (lengths, selectors) = fit_tables(&symbols, n_tables);
        assert_eq!(selectors.len(), symbols.len().div_ceil(GROUP));
        for (g, group) in symbols.chunks(GROUP).enumerate() {
            let table = &lengths[selectors[g] as usize];
            for &sym in group {
                assert!(table[sym as usize] > 0, "group {g} symbol {sym} uncovered");
            }
        }
        // The two halves should not share one table exclusively.
        let first = selectors[0];
        assert!(selectors.iter().any(|&s| s != first));
    }

    #[test]
    fn multi_table_beats_single_on_heterogeneous_blocks() {
        // A block whose two halves have different symbol statistics: group
        // switching must pay for its selector overhead.
        let mut data = Vec::new();
        for i in 0..30_000u32 {
            data.push((i % 4) as u8); // dense low-alphabet region
        }
        let mut x = 99u64;
        for _ in 0..30_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            data.push(128 + ((x >> 33) % 64) as u8); // wide high-alphabet region
        }
        let codec = BwtCodec::default();
        let comp = codec.compress(&data).unwrap();
        assert_eq!(codec.decompress(&comp).unwrap(), data);
        // Compare against a forced single-table encoding by shrinking blocks
        // below the 200-symbol multi-table threshold is not equivalent, so
        // just sanity-bound the ratio: heterogeneous structured data must
        // compress well.
        assert!(
            comp.len() * 2 < data.len(),
            "{} of {}",
            comp.len(),
            data.len()
        );
    }

    #[test]
    fn beats_naive_on_text() {
        // Sanity: BWT+MTF+RLE+Huffman should compress structured text well.
        let data = std::iter::repeat_n(&b"abcabcabdabcabcacb-the-cat-sat-on-the-mat-"[..], 200)
            .flatten()
            .copied()
            .collect::<Vec<u8>>();
        let comp = BwtCodec::default().compress(&data).unwrap();
        assert!(comp.len() * 5 < data.len());
    }
}
