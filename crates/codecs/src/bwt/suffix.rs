//! Linear-time suffix array construction (SA-IS).
//!
//! Nong, Zhang & Chan's induced-sorting algorithm. The public entry point
//! appends a virtual sentinel (smaller than every byte) so the Burrows–
//! Wheeler layer gets well-defined suffix order for arbitrary binary data.
//!
//! SA-IS runs exclusively on the encode side, over an encoder-owned copy
//! of the input. Loops that scan a whole array use ranges the analyzer can
//! prove in-bounds; the induced-sorting passes, whose positions come from
//! the partially built suffix array itself, use checked access — every
//! `get` succeeds by the algorithm's invariants, and a miss would only
//! skip a placement rather than abort the process.

const EMPTY: u32 = u32::MAX;

/// Suffix array of `s`: the starting positions of all suffixes of `s`, in
/// lexicographic order (with an implicit terminal sentinel smaller than any
/// byte, which is dropped from the result).
pub fn suffix_array(s: &[u8]) -> Vec<u32> {
    if s.is_empty() {
        return Vec::new();
    }
    // Shift bytes by +1 so value 0 is free for the sentinel.
    let mut t: Vec<u32> = Vec::with_capacity(s.len() + 1);
    t.extend(s.iter().map(|&b| u32::from(b) + 1));
    t.push(0);
    let sa = sais(&t, 257);
    // sa[0] is the sentinel suffix; the rest is the answer.
    sa.get(1..).map(<[u32]>::to_vec).unwrap_or_default()
}

/// SA-IS over a u32 string whose alphabet is `0..k` and whose last character
/// is a unique minimal sentinel.
fn sais(s: &[u32], k: usize) -> Vec<u32> {
    let n = s.len();
    debug_assert!(n >= 1);
    if n == 1 {
        return vec![0];
    }
    if n == 2 {
        // Sentinel suffix sorts first.
        return vec![1, 0];
    }

    // Type classification: true = S-type. The sentinel is S.
    let mut is_s = vec![false; n];
    if let Some(last) = is_s.last_mut() {
        *last = true;
    }
    for i in (0..n - 1).rev() {
        is_s[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
    }

    let mut bucket = vec![0u32; k];
    for &c in s {
        // Every character is below the alphabet size by construction.
        if let Some(count) = bucket.get_mut(c as usize) {
            *count += 1;
        }
    }

    // Left-most S positions, in text order.
    let mut lms_positions: Vec<u32> = Vec::new();
    for i in 1..n {
        if is_s[i] && !is_s[i - 1] {
            lms_positions.push(i as u32);
        }
    }

    // First pass: induce with LMS positions in arbitrary (text) order; this
    // sorts the LMS *substrings*.
    let sa = induce(s, &is_s, &bucket, &lms_positions);

    // Collect LMS suffixes in their induced order and name their substrings.
    let sorted_lms: Vec<u32> = sa
        .iter()
        .copied()
        .filter(|&j| {
            let j = j as usize;
            j > 0 && is_s.get(j) == Some(&true) && is_s.get(j - 1) == Some(&false)
        })
        .collect();
    debug_assert_eq!(sorted_lms.len(), lms_positions.len());

    let mut name_of = vec![EMPTY; n];
    let mut cur_name = 0u32;
    if let Some(slot) = sorted_lms
        .first()
        .and_then(|&first| name_of.get_mut(first as usize))
    {
        *slot = 0;
    }
    for w in sorted_lms.windows(2) {
        let &[a, b] = w else { continue };
        let (a, b) = (a as usize, b as usize);
        if !lms_substrings_equal(s, &is_s, a, b) {
            cur_name += 1;
        }
        if let Some(slot) = name_of.get_mut(b) {
            *slot = cur_name;
        }
    }
    let num_names = cur_name as usize + 1;

    let final_lms: Vec<u32> = if num_names == lms_positions.len() {
        // Every LMS substring is distinct: the induced order is already the
        // order of the LMS suffixes.
        sorted_lms
    } else {
        // Recurse on the reduced string of names (in text order).
        let reduced: Vec<u32> = lms_positions
            .iter()
            .filter_map(|&p| name_of.get(p as usize).copied())
            .collect();
        let reduced_sa = sais(&reduced, num_names);
        reduced_sa
            .iter()
            .filter_map(|&r| lms_positions.get(r as usize).copied())
            .collect()
    };

    induce(s, &is_s, &bucket, &final_lms)
}

/// One induced-sorting pass: seed LMS suffixes at bucket tails (in the order
/// given), induce L-type suffixes left-to-right from bucket heads, then
/// S-type right-to-left from bucket tails.
fn induce(s: &[u32], is_s: &[bool], bucket: &[u32], lms: &[u32]) -> Vec<u32> {
    let n = s.len();
    let k = bucket.len();
    let mut sa = vec![EMPTY; n];

    let heads = |out: &mut Vec<u32>| {
        out.clear();
        let mut sum = 0u32;
        for &b in bucket {
            out.push(sum);
            // Bucket counts sum to n, which fits u32 for any block the
            // encoder accepts.
            sum = sum.saturating_add(b);
        }
    };
    let tails = |out: &mut Vec<u32>| {
        out.clear();
        let mut sum = 0u32;
        for &b in bucket {
            sum = sum.saturating_add(b);
            out.push(sum);
        }
    };

    let mut ptr = Vec::with_capacity(k);

    // Seed LMS suffixes at the tails of their buckets, reading the provided
    // order backwards so the first LMS lands closest to its bucket tail.
    tails(&mut ptr);
    for &j in lms.iter().rev() {
        let Some(&c) = s.get(j as usize) else {
            continue;
        };
        let Some(slot) = ptr.get_mut(c as usize) else {
            continue;
        };
        *slot -= 1;
        let at = *slot as usize;
        if let Some(dst) = sa.get_mut(at) {
            *dst = j;
        }
    }

    // Induce L-type suffixes.
    heads(&mut ptr);
    for i in 0..n {
        let j = sa[i];
        if j != EMPTY && j > 0 {
            let p = (j - 1) as usize;
            if is_s.get(p) == Some(&false) {
                let Some(&c) = s.get(p) else {
                    continue;
                };
                let Some(slot) = ptr.get_mut(c as usize) else {
                    continue;
                };
                let at = *slot as usize;
                *slot += 1;
                if let Some(dst) = sa.get_mut(at) {
                    *dst = p as u32;
                }
            }
        }
    }

    // Induce S-type suffixes (overwrites the seeded LMS entries with the
    // correct final order).
    tails(&mut ptr);
    for i in (0..n).rev() {
        let j = sa[i];
        if j != EMPTY && j > 0 {
            let p = (j - 1) as usize;
            if is_s.get(p) == Some(&true) {
                let Some(&c) = s.get(p) else {
                    continue;
                };
                let Some(slot) = ptr.get_mut(c as usize) else {
                    continue;
                };
                *slot -= 1;
                let at = *slot as usize;
                if let Some(dst) = sa.get_mut(at) {
                    *dst = p as u32;
                }
            }
        }
    }
    sa
}

/// Compare the LMS substrings starting at `a` and `b` (positions of LMS
/// characters). An LMS substring runs to the next LMS position inclusive.
fn lms_substrings_equal(s: &[u32], is_s: &[bool], a: usize, b: usize) -> bool {
    if a == b {
        return true;
    }
    let n = s.len();
    // The substring containing the sentinel (which starts at n-1) is unique.
    if a == n - 1 || b == n - 1 {
        return false;
    }
    // An LMS boundary at `p`: S-type preceded by L-type (checked access
    // doubles as the `p < n` test).
    let lms_at = |p: usize| p > 0 && is_s.get(p) == Some(&true) && is_s.get(p - 1) == Some(&false);
    let mut i = 0usize;
    loop {
        let (pa, pb) = (a.saturating_add(i), b.saturating_add(i));
        let a_end = i > 0 && lms_at(pa);
        let b_end = i > 0 && lms_at(pb);
        if a_end && b_end {
            return s.get(pa) == s.get(pb);
        }
        if a_end != b_end {
            return false;
        }
        // Running off the end (get = None) or a character mismatch both end
        // the comparison; equal characters keep walking, so the loop always
        // advances toward the sentinel and terminates.
        match (s.get(pa), s.get(pb)) {
            (Some(x), Some(y)) if x == y => {}
            _ => return false,
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: sort suffix indices by the (sentinel-
    /// extended) suffixes themselves.
    fn naive_suffix_array(s: &[u8]) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..s.len() as u32).collect();
        idx.sort_by(|&a, &b| s[a as usize..].cmp(&s[b as usize..]));
        idx
    }

    fn check(s: &[u8]) {
        assert_eq!(suffix_array(s), naive_suffix_array(s), "input {s:?}");
    }

    #[test]
    fn classic_banana() {
        check(b"banana");
        // For the record: suffixes of "banana" sorted are
        // a(5), ana(3), anana(1), banana(0), na(4), nana(2).
        assert_eq!(suffix_array(b"banana"), vec![5, 3, 1, 0, 4, 2]);
    }

    #[test]
    fn mississippi_and_friends() {
        check(b"mississippi");
        check(b"abracadabra");
        check(b"yabbadabbado");
    }

    #[test]
    fn degenerate_inputs() {
        check(b"");
        check(b"a");
        check(b"aa");
        check(b"ab");
        check(b"ba");
        check(b"aaaaaaaaaa");
        check(&[0u8, 0, 0]);
        check(&[255u8, 0, 255, 0]);
    }

    #[test]
    fn all_256_byte_values() {
        let s: Vec<u8> = (0..=255u8).rev().collect();
        check(&s);
    }

    #[test]
    fn random_strings_match_naive() {
        let mut x = 0x2545F491_4F6CDD1Du64;
        for trial in 0..40 {
            let len = 1 + (trial * 37) % 400;
            let alpha = [2usize, 4, 16, 256][trial % 4];
            let s: Vec<u8> = (0..len)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    ((x >> 32) as usize % alpha) as u8
                })
                .collect();
            check(&s);
        }
    }

    #[test]
    fn periodic_strings_force_recursion() {
        check(&b"ab".repeat(100));
        check(&b"abc".repeat(64));
        check(&b"aab".repeat(50));
    }

    #[test]
    fn large_input_is_a_permutation() {
        let mut x = 99u64;
        let s: Vec<u8> = (0..200_000)
            .map(|_| {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                (x >> 56) as u8
            })
            .collect();
        let sa = suffix_array(&s);
        assert_eq!(sa.len(), s.len());
        let mut seen = vec![false; s.len()];
        for &p in &sa {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        // Spot-check sortedness on adjacent pairs.
        for w in sa.windows(2).step_by(997) {
            assert!(s[w[0] as usize..] < s[w[1] as usize..]);
        }
    }
}
