//! From-scratch lossless codecs for the PRIMACY reproduction.
//!
//! The PRIMACY paper evaluates its preconditioner in front of the standard
//! byte-level compressors `zlib`, `lzo` and `bzlib2`, and compares against the
//! floating-point compressors `fpc` and `fpzip`. This crate implements one
//! codec of each class, entirely in safe Rust:
//!
//! * [`deflate`] — a complete RFC 1950/1951 implementation (LZ77 with
//!   hash-chain matching and lazy evaluation, stored/fixed/dynamic Huffman
//!   blocks, a full inflater, and the zlib container with Adler-32). This is
//!   the paper's `zlib` stand-in and the default "solver" behind PRIMACY.
//! * [`lzr`] — a byte-oriented, hash-table LZ codec in the `lzo` speed class:
//!   very fast, modest ratios.
//! * [`bwt`] — a `bzlib2`-class block codec: Burrows–Wheeler transform via a
//!   linear-time SA-IS suffix array, move-to-front, zero-run-length coding and
//!   canonical Huffman entropy coding. Slow but strong.
//! * [`fpc`] — Burtscher & Ratanaworabhan's FPC: FCM/DFCM hash predictors over
//!   the raw bit patterns of doubles with leading-zero-byte residual coding.
//! * [`fpz`] — an `fpzip`-class predictive coder: an n-dimensional Lorenzo
//!   predictor over order-preserving integer mappings of doubles, with an
//!   adaptive binary range coder for the residuals.
//!
//! All codecs implement the common [`Codec`] trait and produce self-framed
//! streams: `decompress(compress(x)) == x` with no out-of-band metadata.

/// Bit-granular readers and writers shared by the entropy coders.
pub mod bitio;
/// Burrows–Wheeler codec (the paper's `bzip2` analogue).
pub mod bwt;
/// CRC-32 and Adler-32 checksums used by the stream trailers.
pub mod checksum;
/// DEFLATE codec and its zlib/gzip wrappers (the paper's `zlib` baseline).
pub mod deflate;
/// Codec error type and result alias.
pub mod error;
/// FPC: hash-predictor floating-point codec.
pub mod fpc;
/// FPZ: Lorenzo-predicted, range-coded floating-point codec.
pub mod fpz;
/// Canonical Huffman coding primitives.
pub mod huffman;
/// LZR: byte-oriented LZ codec (the paper's `lzo` speed class).
pub mod lzr;

pub use error::{CodecError, Result};

/// A lossless byte-stream codec.
///
/// Implementations are self-framing: all metadata needed by
/// [`Codec::decompress`] is embedded in the compressed stream itself.
///
/// ```
/// use primacy_codecs::{Codec, CodecKind};
///
/// let codec = CodecKind::Zlib.build();
/// let data = b"hello hello hello hello".to_vec();
/// let compressed = codec.compress(&data).unwrap();
/// assert_eq!(codec.decompress(&compressed).unwrap(), data);
/// ```
pub trait Codec: Send + Sync {
    /// Short stable identifier, e.g. `"zlib"`, used in benchmark tables.
    fn name(&self) -> &'static str;

    /// Compress `input` into a fresh buffer.
    fn compress(&self, input: &[u8]) -> Result<Vec<u8>>;

    /// Compress `input`, reusing per-call working memory from `scratch`.
    ///
    /// Produces bytes identical to [`Codec::compress`]; the only difference
    /// is allocation behavior. Callers on a per-chunk hot path (the pipeline
    /// keeps one [`CodecScratch`] per worker thread) should use this so
    /// codecs that support scratch reuse (deflate-family) skip their
    /// dictionary/token-buffer allocations after the first chunk. The default
    /// implementation ignores `scratch` and defers to `compress`.
    fn compress_with(&self, input: &[u8], scratch: &mut CodecScratch) -> Result<Vec<u8>> {
        let _ = scratch;
        self.compress(input)
    }

    /// Reverse [`Codec::compress`].
    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>>;

    /// Decompress `input`, reusing per-call working memory from `scratch`
    /// and writing the plaintext into `out` (cleared first, capacity kept).
    ///
    /// The decode-side mirror of [`Codec::compress_with`]: output bytes are
    /// identical to [`Codec::decompress`], only allocation behavior differs.
    /// Codecs with reusable decode state (deflate-family Huffman tables)
    /// override this so a warm call allocates nothing beyond growing `out`;
    /// the default defers to `decompress` and copies.
    fn decompress_into(
        &self,
        input: &[u8],
        scratch: &mut CodecScratch,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        let _ = scratch;
        out.clear();
        out.extend_from_slice(&self.decompress(input)?);
        Ok(())
    }

    /// Decompress into a fresh buffer while still reusing `scratch` state.
    /// Callers that must hand ownership of the plaintext onward (the serve
    /// response path) use this to keep the table-reuse half of the win.
    fn decompress_with(&self, input: &[u8], scratch: &mut CodecScratch) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.decompress_into(input, scratch, &mut out)?;
        Ok(out)
    }
}

/// Reusable per-thread working memory for [`Codec::compress_with`].
///
/// A plain struct (not a trait object) so call sites can own one without
/// knowing which codec will run; each codec family picks the field it needs.
/// Currently only the deflate family carries reusable state — its hash-chain
/// arrays and token buffer are the dominant per-chunk allocation in the
/// pipeline (128 KiB of heads plus 4 bytes of chain links per input byte).
#[derive(Debug, Default)]
pub struct CodecScratch {
    /// LZ77 match-finder state for deflate-family codecs (zlib, gzip).
    pub deflate: deflate::EncoderScratch,
    /// Inflate-side decode state (Huffman tables, header buffers) for
    /// deflate-family codecs, reused by [`Codec::decompress_into`].
    pub inflate: deflate::InflateScratch,
}

impl CodecScratch {
    /// An empty scratch; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The codec families evaluated in the paper, used to select a backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecKind {
    /// `zlib` class: balanced ratio/throughput (paper's default solver).
    Zlib,
    /// `lzo` class: very fast, weak compression.
    Lzr,
    /// `bzlib2` class: slow, strong compression.
    Bwt,
    /// FPC floating-point predictor (related-work comparator).
    Fpc,
    /// `fpzip` class floating-point predictor (related-work comparator).
    Fpz,
}

impl CodecKind {
    /// Instantiate the codec with its default parameters.
    pub fn build(self) -> Box<dyn Codec> {
        match self {
            CodecKind::Zlib => Box::new(deflate::Zlib::default()),
            CodecKind::Lzr => Box::new(lzr::Lzr),
            CodecKind::Bwt => Box::new(bwt::BwtCodec::default()),
            CodecKind::Fpc => Box::new(fpc::Fpc::default()),
            CodecKind::Fpz => Box::new(fpz::Fpz::default()),
        }
    }

    /// All kinds, in the order they appear in the paper's tables.
    pub const ALL: [CodecKind; 5] = [
        CodecKind::Zlib,
        CodecKind::Lzr,
        CodecKind::Bwt,
        CodecKind::Fpc,
        CodecKind::Fpz,
    ];
}

impl std::fmt::Display for CodecKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CodecKind::Zlib => "zlib",
            CodecKind::Lzr => "lzr",
            CodecKind::Bwt => "bwt",
            CodecKind::Fpc => "fpc",
            CodecKind::Fpz => "fpz",
        };
        f.write_str(s)
    }
}

/// Clamp a length claimed by a (possibly corrupt) stream before using it as
/// a pre-allocation size: allocate at most 16 MiB up front and let the vector
/// grow organically past that. Decoders stay O(real output) instead of
/// aborting on a tiny input that claims a 2^60-byte payload.
pub(crate) fn clamped_capacity(claimed: u64) -> usize {
    const CAP: u64 = 16 * 1024 * 1024;
    claimed.min(CAP) as usize
}

/// Read a fixed-size array starting at `at`, or `None` if `at + N` is out of
/// bounds (including overflow). The panic-free counterpart of
/// `buf[at..at + N].try_into().unwrap()` for untrusted input.
pub(crate) fn read_array<const N: usize>(buf: &[u8], at: usize) -> Option<[u8; N]> {
    let end = at.checked_add(N)?;
    let s = buf.get(at..end)?;
    let mut a = [0u8; N];
    a.copy_from_slice(s);
    Some(a)
}

/// Write `v` as a LEB128 varint.
pub(crate) fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint, returning `(value, bytes_consumed)`.
pub(crate) fn read_varint(input: &[u8]) -> Result<(u64, usize)> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for (i, &b) in input.iter().enumerate() {
        if shift >= 64 {
            return Err(CodecError::Corrupt("varint overflow"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(CodecError::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            buf.clear();
            write_varint(&mut buf, v);
            let (back, used) = read_varint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn varint_truncated_errors() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1 << 20);
        buf.pop();
        assert!(matches!(read_varint(&buf), Err(CodecError::Truncated)));
    }

    #[test]
    fn varint_overflow_errors() {
        let buf = [0xff; 11];
        assert!(read_varint(&buf).is_err());
    }

    #[test]
    fn codec_kind_build_and_roundtrip_smoke() {
        let data = b"the quick brown fox jumps over the lazy dog. \
                     the quick brown fox jumps over the lazy dog."
            .to_vec();
        for kind in CodecKind::ALL {
            let codec = kind.build();
            let comp = codec.compress(&data).unwrap();
            let back = codec.decompress(&comp).unwrap();
            assert_eq!(back, data, "codec {kind} failed roundtrip");
        }
    }

    #[test]
    fn codec_kind_display_names() {
        assert_eq!(CodecKind::Zlib.to_string(), "zlib");
        assert_eq!(CodecKind::Lzr.to_string(), "lzr");
        assert_eq!(CodecKind::Bwt.to_string(), "bwt");
        assert_eq!(CodecKind::Fpc.to_string(), "fpc");
        assert_eq!(CodecKind::Fpz.to_string(), "fpz");
    }
}
