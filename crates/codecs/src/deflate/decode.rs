//! INFLATE: a complete decoder for raw DEFLATE streams.

use super::{
    CODELEN_ORDER, DIST_BASE, DIST_EXTRA, END_OF_BLOCK, LENGTH_BASE, LENGTH_EXTRA, NUM_CODELEN,
};
use crate::bitio::BitReader;
use crate::error::{CodecError, Result};
use crate::huffman::Decoder;

/// Decompress a raw DEFLATE stream into a fresh buffer.
pub fn inflate(input: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(input.len().saturating_mul(3));
    inflate_into(input, &mut out)?;
    Ok(out)
}

/// Decompress a raw DEFLATE stream, appending to `out`.
pub fn inflate_into(input: &[u8], out: &mut Vec<u8>) -> Result<()> {
    let mut r = BitReader::new(input);
    loop {
        let bfinal = r.read_bits(1)?;
        let btype = r.read_bits(2)?;
        match btype {
            0b00 => {
                primacy_trace::counter("inflate.blocks_stored", 1);
                inflate_stored(&mut r, out)?;
            }
            0b01 => {
                primacy_trace::counter("inflate.blocks_fixed", 1);
                let (lit, dist) = fixed_decoders()?;
                inflate_block(&mut r, lit, dist, out)?;
            }
            0b10 => {
                primacy_trace::counter("inflate.blocks_dynamic", 1);
                let (lit, dist) = read_dynamic_tables(&mut r)?;
                inflate_block(&mut r, &lit, &dist, out)?;
            }
            _ => return Err(CodecError::Corrupt("reserved block type 11")),
        }
        if bfinal == 1 {
            return Ok(());
        }
    }
}

fn inflate_stored(r: &mut BitReader<'_>, out: &mut Vec<u8>) -> Result<()> {
    r.align_byte();
    let len = r.read_bits(16)? as u16;
    let nlen = r.read_bits(16)? as u16;
    if len != !nlen {
        return Err(CodecError::Corrupt("stored block LEN/NLEN mismatch"));
    }
    r.read_bytes(len as usize, out)
}

fn fixed_decoders() -> Result<(&'static Decoder, &'static Decoder)> {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Result<(Decoder, Decoder)>> = OnceLock::new();
    let tables = TABLES.get_or_init(|| {
        let lit = Decoder::from_lengths(&super::encode::fixed_litlen_lengths())?;
        let dist = Decoder::from_lengths(&super::encode::fixed_dist_lengths())?;
        Ok((lit, dist))
    });
    match tables {
        Ok((lit, dist)) => Ok((lit, dist)),
        Err(e) => Err(e.clone()),
    }
}

fn read_dynamic_tables(r: &mut BitReader<'_>) -> Result<(Decoder, Decoder)> {
    let hlit = r.read_bits(5)? as usize + 257;
    let hdist = r.read_bits(5)? as usize + 1;
    let hclen = r.read_bits(4)? as usize + 4;
    if hlit > 286 {
        return Err(CodecError::Corrupt("HLIT exceeds 286"));
    }
    if hdist > 30 {
        return Err(CodecError::Corrupt("HDIST exceeds 30"));
    }
    let mut cl_lengths = [0u8; NUM_CODELEN];
    for &idx in CODELEN_ORDER.iter().take(hclen) {
        // lint: allow(index) -- CODELEN_ORDER is a const permutation of 0..NUM_CODELEN
        cl_lengths[idx] = r.read_bits(3)? as u8;
    }
    let cl_dec = Decoder::from_lengths(&cl_lengths)?;

    let total = hlit.saturating_add(hdist); // <= 316 after the guards above
    let mut lengths = Vec::with_capacity(total);
    while lengths.len() < total {
        let sym = cl_dec.decode(r)?;
        match sym {
            0..=15 => lengths.push(sym as u8),
            16 => {
                let prev = *lengths
                    .last()
                    .ok_or(CodecError::Corrupt("repeat with no previous length"))?;
                let n = r.read_bits(2)? as usize + 3;
                if n > total - lengths.len() {
                    return Err(CodecError::Corrupt("length repeat overflows table"));
                }
                lengths.extend(std::iter::repeat_n(prev, n));
            }
            17 => {
                let n = r.read_bits(3)? as usize + 3;
                if n > total - lengths.len() {
                    return Err(CodecError::Corrupt("zero run overflows table"));
                }
                lengths.extend(std::iter::repeat_n(0u8, n));
            }
            18 => {
                let n = r.read_bits(7)? as usize + 11;
                if n > total - lengths.len() {
                    return Err(CodecError::Corrupt("zero run overflows table"));
                }
                lengths.extend(std::iter::repeat_n(0u8, n));
            }
            _ => return Err(CodecError::Corrupt("invalid code-length symbol")),
        }
    }
    let (lit_lengths, dist_lengths) = lengths
        .split_at_checked(hlit)
        .ok_or(CodecError::Corrupt("code-length table underfilled"))?;
    let lit = Decoder::from_lengths(lit_lengths)?;
    let dist = Decoder::from_lengths(dist_lengths)?;
    Ok((lit, dist))
}

fn inflate_block(
    r: &mut BitReader<'_>,
    lit: &Decoder,
    dist: &Decoder,
    out: &mut Vec<u8>,
) -> Result<()> {
    loop {
        let sym = lit.decode(r)?;
        match sym {
            0..=255 => out.push(sym as u8),
            END_OF_BLOCK => return Ok(()),
            257..=285 => {
                // li <= 28 always (sym <= 285 indexes the 29-entry RFC 1951
                // tables); `get` keeps the lookup total anyway.
                let li = (sym - 257) as usize;
                let base = *LENGTH_BASE
                    .get(li)
                    .ok_or(CodecError::Corrupt("invalid length code"))?;
                let ebits = *LENGTH_EXTRA
                    .get(li)
                    .ok_or(CodecError::Corrupt("invalid length code"))?;
                let len = (base as usize).saturating_add(r.read_bits(u32::from(ebits))? as usize);
                let dsym = dist.decode(r)? as usize;
                let base = *DIST_BASE
                    .get(dsym)
                    .ok_or(CodecError::Corrupt("invalid distance code"))?;
                let ebits = *DIST_EXTRA
                    .get(dsym)
                    .ok_or(CodecError::Corrupt("invalid distance code"))?;
                let d = (base as usize).saturating_add(r.read_bits(u32::from(ebits))? as usize);
                if d > out.len() {
                    return Err(CodecError::Corrupt("distance reaches before output start"));
                }
                copy_match(out, d, len);
            }
            _ => return Err(CodecError::Corrupt("invalid literal/length code")),
        }
    }
}

/// Copy `len` bytes from `dist` back, handling the self-overlapping case
/// (dist < len) that RLE-style references rely on: each pass copies as
/// much as the already-materialized suffix allows, so the copied span
/// doubles per pass instead of moving byte by byte.
#[inline]
fn copy_match(out: &mut Vec<u8>, dist: usize, len: usize) {
    // The caller checks 1 <= dist <= out.len() (DIST_BASE starts at 1);
    // a zero dist would stall the loop, so bail out defensively.
    if dist == 0 {
        return;
    }
    if dist == 1 {
        // Run of the final byte: one memset-class fill instead of log2(len)
        // doubling copies.
        if let Some(&b) = out.last() {
            out.resize(out.len().saturating_add(len), b);
        }
        return;
    }
    let start = out.len() - dist;
    if dist >= len {
        // Source and destination cannot overlap: one wide copy.
        out.extend_from_within(start..start.saturating_add(len));
        return;
    }
    let mut remaining = len;
    out.reserve(len);
    while remaining > 0 {
        let avail = out.len() - start;
        let chunk = avail.min(remaining);
        out.extend_from_within(start..start.saturating_add(chunk));
        remaining -= chunk;
    }
}

#[cfg(test)]
mod tests {
    use super::super::{deflate, Level};
    use super::*;

    #[test]
    fn rejects_reserved_block_type() {
        // BFINAL=1, BTYPE=11.
        let data = [0b0000_0111u8];
        assert!(matches!(
            inflate(&data),
            Err(CodecError::Corrupt("reserved block type 11"))
        ));
    }

    #[test]
    fn rejects_bad_stored_nlen() {
        // BFINAL=1, BTYPE=00, then LEN=1, NLEN=1 (should be !1).
        let mut bytes = vec![0b0000_0001u8];
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.push(0xAA);
        assert!(inflate(&bytes).is_err());
    }

    #[test]
    fn rejects_truncated_stream() {
        let comp = deflate(b"some reasonably long input to compress", Level::Default);
        for cut in 1..comp.len().min(12) {
            let r = inflate(&comp[..comp.len() - cut]);
            assert!(r.is_err(), "cut {cut} should fail");
        }
    }

    #[test]
    fn rejects_distance_before_start() {
        // Hand-build a fixed-Huffman block: literal 'A', then a match with
        // distance 4 (> 1 byte of history).
        use crate::bitio::{reverse_bits, BitWriter};
        let mut w = BitWriter::new();
        w.write_bits(1, 1); // BFINAL
        w.write_bits(0b01, 2); // fixed
                               // literal 'A' (65): code = 0x30 + 65 = 113, 8 bits MSB-first.
        w.write_bits(u64::from(reverse_bits(0x30 + 65, 8)), 8);
        // length code 257 (len 3): 7-bit code value 1.
        w.write_bits(u64::from(reverse_bits(1, 7)), 7);
        // distance code 3 (dist 4): 5-bit code.
        w.write_bits(u64::from(reverse_bits(3, 5)), 5);
        // EOB (256): 7-bit code 0.
        w.write_bits(u64::from(reverse_bits(0, 7)), 7);
        let bytes = w.finish();
        let err = inflate(&bytes).unwrap_err();
        assert!(matches!(err, CodecError::Corrupt(_)), "{err}");
    }

    #[test]
    fn overlapping_copy_expands_runs() {
        let data = vec![b'z'; 10_000];
        let comp = deflate(&data, Level::Default);
        assert_eq!(inflate(&comp).unwrap(), data);
    }

    #[test]
    fn copy_match_overlap_semantics() {
        let mut out = vec![1, 2, 3];
        copy_match(&mut out, 2, 5);
        assert_eq!(out, vec![1, 2, 3, 2, 3, 2, 3, 2]);
    }

    /// Build a dynamic-Huffman block header whose code-length code covers
    /// symbols {0 (len 1), 2 (len 2), 18 (len 2)} — a complete CL code —
    /// then let the caller emit the 258 litlen+dist code lengths with it.
    fn dynamic_block_with(emit_lengths: impl Fn(&mut crate::bitio::BitWriter)) -> Vec<u8> {
        use crate::bitio::BitWriter;
        let mut w = BitWriter::new();
        w.write_bits(1, 1); // BFINAL
        w.write_bits(0b10, 2); // dynamic block
        w.write_bits(0, 5); // HLIT -> 257 litlen codes
        w.write_bits(0, 5); // HDIST -> 1 dist code
        w.write_bits(12, 4); // HCLEN -> 16 CL entries
        for &sym in CODELEN_ORDER.iter().take(16) {
            let l = match sym {
                0 => 1,
                2 | 18 => 2,
                _ => 0,
            };
            w.write_bits(l, 3);
        }
        emit_lengths(&mut w);
        w.finish()
    }

    // Canonical CL codes for the table above: sym 0 -> 0 (1 bit),
    // sym 2 -> 10, sym 18 -> 11; emitted LSB-first (bit-reversed).
    fn emit_len_two(w: &mut crate::bitio::BitWriter) {
        w.write_bits(0b01, 2);
    }
    fn emit_zero_run(w: &mut crate::bitio::BitWriter, run: u64) {
        w.write_bits(0b11, 2);
        w.write_bits(run - 11, 7);
    }
    fn emit_len_zero(w: &mut crate::bitio::BitWriter) {
        w.write_bits(0, 1);
    }

    #[test]
    fn rejects_undersubscribed_dynamic_litlen_table() {
        // Litlen lengths: sym 0 and sym 256 get 2 bits, everything else 0.
        // Kraft sum 1/2: under-subscribed — half the code space decodes to
        // nothing. A lenient decoder would read garbage symbols; ours must
        // reject the table itself.
        let block = dynamic_block_with(|w| {
            emit_len_two(w); // sym 0
            emit_zero_run(w, 138); // syms 1..=138
            emit_zero_run(w, 117); // syms 139..=255
            emit_len_two(w); // sym 256
            emit_len_zero(w); // the single dist code
        });
        assert!(matches!(
            inflate(&block),
            Err(CodecError::InvalidHuffmanTable("under-subscribed code"))
        ));
    }

    #[test]
    fn rejects_oversubscribed_dynamic_litlen_table() {
        // Five symbols of length 2: Kraft sum 5/4 — over-subscribed, the
        // code is ambiguous.
        let block = dynamic_block_with(|w| {
            for _ in 0..5 {
                emit_len_two(w); // syms 0..=4
            }
            emit_zero_run(w, 138); // syms 5..=142
            emit_zero_run(w, 114); // syms 143..=256
            emit_len_zero(w); // the single dist code
        });
        assert!(matches!(
            inflate(&block),
            Err(CodecError::InvalidHuffmanTable("over-subscribed code"))
        ));
    }

    #[test]
    fn random_garbage_never_panics() {
        let mut x = 0xdeadbeefu32;
        for trial in 0..200 {
            let len = (trial % 97) + 1;
            let garbage: Vec<u8> = (0..len)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 17;
                    x ^= x << 5;
                    (x >> 16) as u8
                })
                .collect();
            // Must return (Ok or Err) without panicking.
            let _ = inflate(&garbage);
        }
    }
}
