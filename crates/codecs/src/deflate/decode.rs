//! INFLATE: a complete decoder for raw DEFLATE streams.
//!
//! Symbol decoding is table-driven in the libdeflate style. Each Huffman
//! alphabet compiles into a flat `u32` entry array: a *primary* table indexed
//! by the next [`LITLEN_TABLE_BITS`] (or [`DIST_TABLE_BITS`]) low bits of the
//! stream, with *subtables* appended to the same array for codes longer than
//! the primary width. One peek therefore resolves a whole symbol — literal,
//! end-of-block, or a length/distance base with its extra-bit count — in one
//! or two loads, replacing the bit-at-a-time tree walk. Primary entries whose
//! literal is short enough additionally pre-merge the *next* literal
//! ([`K_LIT2`]), so skewed literal-heavy blocks emit two bytes per lookup.
//!
//! The entry layout (see [`K_LIT1`] and friends):
//!
//! ```text
//! bits 0..3   kind (invalid / lit1 / lit2 / len / eob / subtable / bad-sym)
//! bits 3..9   bits consumed by this entry (subtable links: subtable width)
//! bits 9..32  payload: literal byte(s), base+extra counts, subtable start
//! ```
//!
//! Table construction validates the code with
//! [`crate::huffman::validate_prefix_code`] first, so the tables only ever
//! describe complete prefix codes (plus the RFC 1951 §3.2.7 degenerate
//! single-symbol exception) and every in-bounds lookup is well-defined;
//! unreachable slots keep [`K_INVALID`] and surface as corrupt-stream errors,
//! never as panics.

use super::{
    CODELEN_ORDER, DIST_BASE, DIST_EXTRA, END_OF_BLOCK, LENGTH_BASE, LENGTH_EXTRA, NUM_CODELEN,
};
use crate::bitio::{reverse_bits, BitReader};
use crate::error::{CodecError, Result};
use crate::huffman::{canonical_codes_into, validate_prefix_code, Decoder};

/// Primary-table index width for the literal/length alphabet. 11 bits keeps
/// the table at 8 KiB and lets two literals of ≤ 11 total code bits merge
/// into one entry — typical PRIMACY high-byte planes code hot literals in
/// 2–6 bits, so double-literal hits are common there.
const LITLEN_TABLE_BITS: u32 = 11;
/// Primary-table index width for the distance alphabet. PRIMACY residual
/// planes put most of their match mass at far distances (large dist codes,
/// often 9–12 bits), so a 10-bit primary (4 KiB) resolves the typical
/// distance in one load where an 8-bit primary forced a dependent subtable
/// hop on exactly the hottest symbols.
const DIST_TABLE_BITS: u32 = 10;
/// Deepest code either alphabet may use (RFC 1951), hence the widest peek a
/// primary+subtable resolution can need.
const MAX_CODE_BITS: u32 = 15;

/// Entry kinds (bits 0..3 of an entry).
const K_INVALID: u32 = 0;
/// One literal byte; payload = the byte.
const K_LIT1: u32 = 1;
/// Two merged literal bytes; payload = first | second << 8.
const K_LIT2: u32 = 2;
/// Length symbol; payload = base | extra_bit_count << 9.
const K_LEN: u32 = 3;
/// End of block; no payload.
const K_EOB: u32 = 4;
/// Subtable link; consumed field = subtable width, payload = start index.
const K_SUB: u32 = 5;
/// A symbol RFC 1951 reserves (litlen 286/287, dist ≥ 30): representable in
/// a header, invalid in a stream.
const K_BADSYM: u32 = 6;
/// Distance symbol; payload = base | extra_bit_count << 15.
const K_DIST: u32 = 7;

#[inline]
fn entry_kind(e: u32) -> u32 {
    e & 0x7
}

#[inline]
fn entry_consumed(e: u32) -> u32 {
    (e >> 3) & 0x3f
}

#[inline]
fn entry_payload(e: u32) -> u32 {
    e >> 9
}

#[inline]
fn make_entry(kind: u32, consumed: u32, payload: u32) -> u32 {
    debug_assert!(kind <= 7 && consumed < 64 && payload < (1 << 23));
    kind | (consumed << 3) | (payload << 9)
}

/// One compiled decode table: primary entries first, subtables appended.
#[derive(Debug, Default)]
struct Table {
    entries: Vec<u32>,
    /// Primary index width in bits (≤ the alphabet's `*_TABLE_BITS`).
    bits: u32,
}

impl Table {
    /// Resolve the next symbol from `bits` (≥ [`MAX_CODE_BITS`] peeked
    /// stream bits): primary lookup, then one subtable hop if linked.
    #[inline]
    fn lookup(&self, bits: u64) -> u32 {
        let mask = (1usize << self.bits) - 1;
        let e = self
            .entries
            .get(bits as usize & mask)
            .copied()
            .unwrap_or(K_INVALID);
        if entry_kind(e) != K_SUB {
            return e;
        }
        let sub_mask = (1usize << entry_consumed(e)) - 1;
        let idx =
            (entry_payload(e) as usize).saturating_add((bits as usize >> self.bits) & sub_mask);
        self.entries.get(idx).copied().unwrap_or(K_INVALID)
    }

    /// Compile the literal/length table for `lengths`, then merge adjacent
    /// short literals into [`K_LIT2`] entries.
    fn build_litlen(
        &mut self,
        lengths: &[u8],
        group_len: &mut Vec<u8>,
        codes: &mut Vec<u32>,
    ) -> Result<()> {
        self.bits = fill_table(
            &mut self.entries,
            group_len,
            codes,
            lengths,
            LITLEN_TABLE_BITS,
            litlen_entry,
        )?;
        // Double-literal pass, primary region only. For an entry at index
        // `i` decoding a literal of `len1` bits, the following symbol's
        // lookup index is known only in its low `bits - len1` bits; the
        // entry at `i >> len1` (high bits zero) decodes the same second
        // symbol as the live stream would *iff* its own code fits in those
        // known bits — the `len1 + len2 <= bits` guard. Iterating downward
        // reads only not-yet-merged (single-literal) entries, so merged
        // pairs never chain into triples; `i == 0` reads its own pre-merge
        // value, correctly pairing the all-zeros code with itself.
        let size = 1usize << self.bits;
        for i in (0..size).rev() {
            let e1 = self.entries.get(i).copied().unwrap_or(K_INVALID);
            if entry_kind(e1) != K_LIT1 {
                continue;
            }
            let len1 = entry_consumed(e1);
            let e2 = self.entries.get(i >> len1).copied().unwrap_or(K_INVALID);
            if entry_kind(e2) == K_LIT1 {
                let len2 = entry_consumed(e2);
                // lint: allow(overflow) -- both lengths are 6-bit entry fields
                if len1 + len2 <= self.bits {
                    let pair = (entry_payload(e1) & 0xff) | ((entry_payload(e2) & 0xff) << 8);
                    if let Some(slot) = self.entries.get_mut(i) {
                        // lint: allow(overflow) -- both lengths are 6-bit entry fields
                        *slot = make_entry(K_LIT2, len1 + len2, pair);
                    }
                }
            }
        }
        Ok(())
    }

    /// Compile the distance table for `lengths`.
    fn build_dist(
        &mut self,
        lengths: &[u8],
        group_len: &mut Vec<u8>,
        codes: &mut Vec<u32>,
    ) -> Result<()> {
        self.bits = fill_table(
            &mut self.entries,
            group_len,
            codes,
            lengths,
            DIST_TABLE_BITS,
            dist_entry,
        )?;
        Ok(())
    }
}

fn litlen_entry(sym: u16, len: u32) -> u32 {
    match sym {
        0..=255 => make_entry(K_LIT1, len, u32::from(sym)),
        END_OF_BLOCK => make_entry(K_EOB, len, 0),
        257..=285 => {
            let li = usize::from(sym - 257);
            match (LENGTH_BASE.get(li), LENGTH_EXTRA.get(li)) {
                (Some(&base), Some(&extra)) => {
                    make_entry(K_LEN, len, u32::from(base) | (u32::from(extra) << 9))
                }
                _ => make_entry(K_BADSYM, len, 0),
            }
        }
        _ => make_entry(K_BADSYM, len, 0),
    }
}

fn dist_entry(sym: u16, len: u32) -> u32 {
    let s = usize::from(sym);
    match (DIST_BASE.get(s), DIST_EXTRA.get(s)) {
        (Some(&base), Some(&extra)) => {
            make_entry(K_DIST, len, u32::from(base) | (u32::from(extra) << 15))
        }
        _ => make_entry(K_BADSYM, len, 0),
    }
}

/// Compile `lengths` into `entries`: validate the code, step-fill the
/// primary table for codes that fit, then allocate and fill one subtable per
/// over-long prefix (sized to the longest code sharing that prefix).
/// `group_len` and `codes` are caller-owned scratch (per-prefix depths and
/// canonical codes), so warm calls never touch the allocator.
/// Returns the primary width actually used.
fn fill_table(
    entries: &mut Vec<u32>,
    group_len: &mut Vec<u8>,
    codes: &mut Vec<u32>,
    lengths: &[u8],
    max_table_bits: u32,
    sym_entry: impl Fn(u16, u32) -> u32,
) -> Result<u32> {
    let max_len = validate_prefix_code(lengths)?;
    let table_bits = max_len.min(max_table_bits);
    let size = 1usize << table_bits;
    entries.clear();
    entries.resize(size, K_INVALID);
    canonical_codes_into(lengths, codes);

    // Short codes: every index whose low `len` bits equal the reversed code
    // decodes this symbol, so fill at stride 2^len.
    for ((sym, &len), &code) in lengths.iter().enumerate().zip(codes.iter()) {
        let len = u32::from(len);
        if len == 0 || len > table_bits {
            continue;
        }
        let e = sym_entry(sym as u16, len);
        let rev = reverse_bits(code, len) as usize;
        for slot in entries.iter_mut().skip(rev).step_by(1 << len) {
            *slot = e;
        }
    }

    if max_len > table_bits {
        // Pass 1: deepest code per primary prefix.
        group_len.clear();
        group_len.resize(size, 0);
        for ((_, &len), &code) in lengths.iter().enumerate().zip(codes.iter()) {
            let len32 = u32::from(len);
            if len32 <= table_bits {
                continue;
            }
            let prefix = reverse_bits(code, len32) as usize & (size - 1);
            if let Some(g) = group_len.get_mut(prefix) {
                *g = (*g).max(len);
            }
        }
        // Pass 2: allocate subtables and link them from the primary slots.
        for prefix in 0..size {
            let gl = u32::from(group_len.get(prefix).copied().unwrap_or(0));
            if gl == 0 {
                continue;
            }
            let sub_bits = gl - table_bits;
            let start = entries.len();
            let link = make_entry(K_SUB, sub_bits, start as u32);
            // lint: allow(overflow) -- validated code: primary + all subtables ≤ 2^15 entries
            entries.resize(start + (1usize << sub_bits), K_INVALID);
            if let Some(slot) = entries.get_mut(prefix) {
                *slot = link;
            }
        }
        // Pass 3: step-fill each long code inside its subtable, consuming
        // the full code length at lookup time.
        for ((sym, &len), &code) in lengths.iter().enumerate().zip(codes.iter()) {
            let len32 = u32::from(len);
            if len32 <= table_bits {
                continue;
            }
            let e = sym_entry(sym as u16, len32);
            let rev = reverse_bits(code, len32) as usize;
            let link = entries.get(rev & (size - 1)).copied().unwrap_or(K_INVALID);
            debug_assert_eq!(entry_kind(link), K_SUB);
            let start = entry_payload(link) as usize;
            let sub_size = 1usize << entry_consumed(link);
            if let Some(sub) = entries.get_mut(start..start.saturating_add(sub_size)) {
                for slot in sub
                    .iter_mut()
                    .skip(rev >> table_bits)
                    .step_by(1 << (len32 - table_bits))
                {
                    *slot = e;
                }
            }
        }
    }
    Ok(table_bits)
}

/// Reusable per-stream decode state: the two compiled tables plus the
/// header-parsing buffers, so a multi-block stream re-derives its dynamic
/// tables without re-allocating them. Callers decoding many streams (the
/// pipeline's per-chunk hot path) keep one instance per thread and pass it
/// to [`inflate_with`], so steady-state decode allocates nothing here.
#[derive(Debug, Default)]
pub struct InflateScratch {
    lit: Table,
    dist: Table,
    lengths: Vec<u8>,
    group_len: Vec<u8>,
    codes: Vec<u32>,
    cl_dec: Decoder,
}

impl InflateScratch {
    /// An empty scratch; table and length buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Decompress a raw DEFLATE stream into a fresh buffer.
pub fn inflate(input: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(input.len().saturating_mul(3));
    inflate_into(input, &mut out)?;
    Ok(out)
}

/// Decompress a raw DEFLATE stream, appending to `out`.
pub fn inflate_into(input: &[u8], out: &mut Vec<u8>) -> Result<()> {
    inflate_with(input, &mut InflateScratch::default(), out)
}

/// [`inflate_into`] with caller-owned decode state: identical output, but
/// the Huffman tables and header buffers in `scratch` are reused, so a warm
/// call performs no allocations beyond growing `out`.
pub fn inflate_with(input: &[u8], scratch: &mut InflateScratch, out: &mut Vec<u8>) -> Result<()> {
    let mut r = BitReader::new(input);
    loop {
        let bfinal = r.read_bits(1)?;
        let btype = r.read_bits(2)?;
        match btype {
            0b00 => {
                primacy_trace::counter("inflate.blocks_stored", 1);
                inflate_stored(&mut r, out)?;
            }
            0b01 => {
                primacy_trace::counter("inflate.blocks_fixed", 1);
                let (lit, dist) = fixed_tables()?;
                inflate_block(&mut r, lit, dist, out)?;
            }
            0b10 => {
                primacy_trace::counter("inflate.blocks_dynamic", 1);
                read_dynamic_tables(&mut r, scratch)?;
                inflate_block(&mut r, &scratch.lit, &scratch.dist, out)?;
            }
            _ => return Err(CodecError::Corrupt("reserved block type 11")),
        }
        if bfinal == 1 {
            return Ok(());
        }
    }
}

fn inflate_stored(r: &mut BitReader<'_>, out: &mut Vec<u8>) -> Result<()> {
    r.align_byte();
    let len = r.read_bits(16)? as u16;
    let nlen = r.read_bits(16)? as u16;
    if len != !nlen {
        return Err(CodecError::Corrupt("stored block LEN/NLEN mismatch"));
    }
    r.read_bytes(len as usize, out)
}

fn fixed_tables() -> Result<(&'static Table, &'static Table)> {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Result<(Table, Table)>> = OnceLock::new();
    let tables = TABLES.get_or_init(|| {
        let mut group_len = Vec::new();
        let mut codes = Vec::new();
        let mut lit = Table::default();
        lit.build_litlen(
            &super::encode::fixed_litlen_lengths(),
            &mut group_len,
            &mut codes,
        )?;
        let mut dist = Table::default();
        dist.build_dist(
            &super::encode::fixed_dist_lengths(),
            &mut group_len,
            &mut codes,
        )?;
        Ok((lit, dist))
    });
    match tables {
        Ok((lit, dist)) => Ok((lit, dist)),
        Err(e) => Err(e.clone()),
    }
}

fn read_dynamic_tables(r: &mut BitReader<'_>, scratch: &mut InflateScratch) -> Result<()> {
    let hlit = r.read_bits(5)? as usize + 257;
    let hdist = r.read_bits(5)? as usize + 1;
    let hclen = r.read_bits(4)? as usize + 4;
    if hlit > 286 {
        return Err(CodecError::Corrupt("HLIT exceeds 286"));
    }
    if hdist > 30 {
        return Err(CodecError::Corrupt("HDIST exceeds 30"));
    }
    let mut cl_lengths = [0u8; NUM_CODELEN];
    for &idx in CODELEN_ORDER.iter().take(hclen) {
        if let Some(slot) = cl_lengths.get_mut(idx) {
            *slot = r.read_bits(3)? as u8;
        }
    }
    // Disjoint field borrows: the code-length decoder, the length buffer,
    // and both table builders all live in the same scratch.
    let InflateScratch {
        lit,
        dist,
        lengths,
        group_len,
        codes,
        cl_dec,
    } = scratch;
    cl_dec.rebuild(&cl_lengths, codes)?;

    let total = hlit.saturating_add(hdist); // <= 316 after the guards above
    lengths.clear();
    lengths.reserve(total);
    while lengths.len() < total {
        let sym = cl_dec.decode(r)?;
        match sym {
            0..=15 => lengths.push(sym as u8),
            16 => {
                let prev = *lengths
                    .last()
                    .ok_or(CodecError::Corrupt("repeat with no previous length"))?;
                let n = r.read_bits(2)? as usize + 3;
                if n > total - lengths.len() {
                    return Err(CodecError::Corrupt("length repeat overflows table"));
                }
                lengths.extend(std::iter::repeat_n(prev, n));
            }
            17 => {
                let n = r.read_bits(3)? as usize + 3;
                if n > total - lengths.len() {
                    return Err(CodecError::Corrupt("zero run overflows table"));
                }
                lengths.extend(std::iter::repeat_n(0u8, n));
            }
            18 => {
                let n = r.read_bits(7)? as usize + 11;
                if n > total - lengths.len() {
                    return Err(CodecError::Corrupt("zero run overflows table"));
                }
                lengths.extend(std::iter::repeat_n(0u8, n));
            }
            _ => return Err(CodecError::Corrupt("invalid code-length symbol")),
        }
    }
    let (lit_lengths, dist_lengths) = lengths
        .split_at_checked(hlit)
        .ok_or(CodecError::Corrupt("code-length table underfilled"))?;
    lit.build_litlen(lit_lengths, group_len, codes)?;
    dist.build_dist(dist_lengths, group_len, codes)?;
    Ok(())
}

/// Widest peek the fast loop takes per batch: the bit reader's refill
/// guarantee.
const PEEK_BITS: u32 = 56;
/// A batch may keep decoding from its cached peek while at least
/// [`MAX_CODE_BITS`] of it remain unconsumed.
const FAST_SLOP: u32 = PEEK_BITS - MAX_CODE_BITS;

fn inflate_block(
    r: &mut BitReader<'_>,
    lit: &Table,
    dist: &Table,
    out: &mut Vec<u8>,
) -> Result<()> {
    // Local multi-symbol tallies, flushed to the `deflate.sym_per_lookup`
    // histogram once per block so the hot loop never touches thread-locals.
    let mut lookups_1sym = 0u64;
    let mut lookups_2sym = 0u64;
    // One wide peek buys up to `FAST_SLOP` bits of lookups resolved from a
    // local shift register; `used` tracks how much of the peek is spoken
    // for, and a single `consume(used)` commits whenever the register runs
    // low — including *across* matches, so a match does not force a
    // commit/refill round of its own. Bits past end-of-input peek as zero;
    // the commit still fails on truncation, so over-decoded bytes only ever
    // land in an output the caller is about to discard.
    let mut bits = r.peek_bits(PEEK_BITS);
    let mut used = 0u32;
    loop {
        // Decoded literals stage in a fixed 8-byte word committed with one
        // constant-size append + truncate (the same wide-store idiom as
        // `copy_match`), so the per-literal cost is a register write instead
        // of a `Vec` capacity check and length update per byte.
        let mut word = [0u8; 8];
        let mut staged = 0usize;
        let pending = loop {
            let e = lit.lookup(bits);
            match entry_kind(e) {
                K_LIT1 => {
                    bits >>= entry_consumed(e);
                    // lint: allow(overflow) -- `used` stays ≤ PEEK_BITS + one entry width
                    used += entry_consumed(e);
                    // lint: allow(index) -- masked into the fixed [u8; 8] word
                    word[staged & 7] = entry_payload(e) as u8;
                    staged += 1;
                    lookups_1sym += 1;
                }
                K_LIT2 => {
                    bits >>= entry_consumed(e);
                    // lint: allow(overflow) -- `used` stays ≤ PEEK_BITS + one entry width
                    used += entry_consumed(e);
                    let pair = entry_payload(e);
                    // lint: allow(index) -- masked into the fixed [u8; 8] word
                    word[staged & 7] = pair as u8;
                    // lint: allow(index) -- masked into the fixed [u8; 8] word
                    word[(staged + 1) & 7] = (pair >> 8) as u8;
                    staged += 2;
                    lookups_2sym += 1;
                }
                _ => break Some(e),
            }
            if staged >= 7 || used > FAST_SLOP {
                break None;
            }
        };
        if staged > 0 {
            // lint: allow(overflow) -- Vec::len + 8 cannot overflow usize
            let keep = out.len() + staged.min(8);
            out.extend_from_slice(&word);
            out.truncate(keep);
        }
        let Some(e) = pending else {
            // Cached peek ran dry mid-run; commit it and start a fresh batch.
            r.consume(used)?;
            bits = r.peek_bits(PEEK_BITS);
            used = 0;
            continue;
        };
        match entry_kind(e) {
            K_LEN => {
                // Up to the distance extra bits, a match needs length symbol
                // + length extra + distance symbol = 15+5+15 = 35 bits; the
                // length symbol's own lookup was already covered by the
                // staging loop's `FAST_SLOP` guarantee. Commit and re-peek
                // only when fewer than 35 cached bits remain — after a short
                // literal run the register usually still has them, so most
                // matches decode without touching the reader at all.
                if used > PEEK_BITS - 35 {
                    r.consume(used)?;
                    bits = r.peek_bits(PEEK_BITS);
                    used = 0;
                }
                bits >>= entry_consumed(e);
                // lint: allow(overflow) -- `used` stays ≤ PEEK_BITS + one match's code bits
                used += entry_consumed(e);
                let p = entry_payload(e);
                let len_extra = p >> 9;
                let len = ((p & 0x1ff) as usize)
                    .saturating_add((bits & ((1u64 << len_extra) - 1)) as usize);
                bits >>= len_extra;
                // lint: allow(overflow) -- `used` stays ≤ PEEK_BITS + one match's code bits
                used += len_extra;
                let de = dist.lookup(bits);
                match entry_kind(de) {
                    K_DIST => {
                        bits >>= entry_consumed(de);
                        // lint: allow(overflow) -- `used` stays ≤ PEEK_BITS + 35
                        used += entry_consumed(de);
                        let dp = entry_payload(de);
                        let dist_extra = dp >> 15;
                        // Worst case the register is now 56 - 13 bits deep;
                        // spill mid-match in the rare case the distance
                        // extra bits do not fit (re-syncing the reader at an
                        // arbitrary bit position is sound: `used` counts
                        // exactly the bits decoded so far).
                        // lint: allow(overflow) -- small bounded u32 quantities
                        if used + dist_extra > PEEK_BITS {
                            r.consume(used)?;
                            bits = r.peek_bits(PEEK_BITS);
                            used = 0;
                        }
                        let d = ((dp & 0x7fff) as usize)
                            .saturating_add((bits & ((1u64 << dist_extra) - 1)) as usize);
                        bits >>= dist_extra;
                        // lint: allow(overflow) -- `used` stays ≤ PEEK_BITS + 35
                        used += dist_extra;
                        if d > out.len() {
                            r.consume(used)?;
                            return Err(CodecError::Corrupt(
                                "distance reaches before output start",
                            ));
                        }
                        copy_match(out, d, len);
                        // Keep decoding from the same register if at least
                        // one full code width remains; commit otherwise.
                        if used > FAST_SLOP {
                            r.consume(used)?;
                            bits = r.peek_bits(PEEK_BITS);
                            used = 0;
                        }
                    }
                    K_BADSYM => return Err(CodecError::Corrupt("invalid distance code")),
                    _ => return Err(CodecError::Corrupt("invalid huffman code")),
                }
                lookups_1sym += 1;
            }
            K_EOB => {
                // lint: allow(overflow) -- `used` ≤ PEEK_BITS, entry width ≤ 15
                r.consume(used + entry_consumed(e))?;
                lookups_1sym += 1;
                primacy_trace::observe_many("deflate.sym_per_lookup", 1, lookups_1sym);
                primacy_trace::observe_many("deflate.sym_per_lookup", 2, lookups_2sym);
                return Ok(());
            }
            K_BADSYM => return Err(CodecError::Corrupt("invalid literal/length code")),
            _ => return Err(CodecError::Corrupt("invalid huffman code")),
        }
    }
}

/// Copy `len` bytes from `dist` back, handling the self-overlapping case
/// (dist < len) that RLE-style references rely on: each pass copies as
/// much as the already-materialized suffix allows, so the copied span
/// doubles per pass instead of moving byte by byte.
#[inline]
fn copy_match(out: &mut Vec<u8>, dist: usize, len: usize) {
    // The caller checks 1 <= dist <= out.len() (DIST_BASE starts at 1);
    // a zero dist would stall the loop, so bail out defensively.
    if dist == 0 {
        return;
    }
    if len <= 8 {
        // Short non-overlapping match (the bulk of LZ77 output on PRIMACY
        // planes: length 3..=8 at distance ≥ 8): copy a fixed 8-byte window
        // and trim, so the copy compiles to one unconditional 8-byte load
        // and store instead of a variable-length memcpy dispatch. The range
        // check doubles as the dist ≥ 8 guard — `get` fails exactly when
        // the source window would run past the end of `out`.
        if let Some(start) = out.len().checked_sub(dist) {
            if let Some(w) = out.get(start..start.saturating_add(8)) {
                if let Ok(src) = <[u8; 8]>::try_from(w) {
                    out.extend_from_slice(&src);
                    out.truncate(out.len().saturating_sub(8 - len));
                    return;
                }
            }
        }
    }
    if dist == 1 {
        // Run of the final byte: one memset-class fill instead of log2(len)
        // doubling copies.
        if let Some(&b) = out.last() {
            out.resize(out.len().saturating_add(len), b);
        }
        return;
    }
    let Some(start) = out.len().checked_sub(dist) else {
        return;
    };
    if dist >= len {
        // Source and destination cannot overlap: one wide copy.
        out.extend_from_within(start..start.saturating_add(len));
        return;
    }
    let mut remaining = len;
    out.reserve(len);
    while remaining > 0 {
        let avail = out.len().saturating_sub(start);
        let chunk = avail.min(remaining).max(1);
        out.extend_from_within(start..start.saturating_add(chunk));
        remaining = remaining.saturating_sub(chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::super::{deflate, Level};
    use super::*;
    use crate::huffman::canonical_codes;

    #[test]
    fn rejects_reserved_block_type() {
        // BFINAL=1, BTYPE=11.
        let data = [0b0000_0111u8];
        assert!(matches!(
            inflate(&data),
            Err(CodecError::Corrupt("reserved block type 11"))
        ));
    }

    #[test]
    fn rejects_bad_stored_nlen() {
        // BFINAL=1, BTYPE=00, then LEN=1, NLEN=1 (should be !1).
        let mut bytes = vec![0b0000_0001u8];
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.push(0xAA);
        assert!(inflate(&bytes).is_err());
    }

    #[test]
    fn rejects_truncated_stream() {
        let comp = deflate(b"some reasonably long input to compress", Level::Default);
        for cut in 1..comp.len().min(12) {
            let r = inflate(&comp[..comp.len() - cut]);
            assert!(r.is_err(), "cut {cut} should fail");
        }
    }

    #[test]
    fn rejects_distance_before_start() {
        // Hand-build a fixed-Huffman block: literal 'A', then a match with
        // distance 4 (> 1 byte of history).
        use crate::bitio::{reverse_bits, BitWriter};
        let mut w = BitWriter::new();
        w.write_bits(1, 1); // BFINAL
        w.write_bits(0b01, 2); // fixed
                               // literal 'A' (65): code = 0x30 + 65 = 113, 8 bits MSB-first.
        w.write_bits(u64::from(reverse_bits(0x30 + 65, 8)), 8);
        // length code 257 (len 3): 7-bit code value 1.
        w.write_bits(u64::from(reverse_bits(1, 7)), 7);
        // distance code 3 (dist 4): 5-bit code.
        w.write_bits(u64::from(reverse_bits(3, 5)), 5);
        // EOB (256): 7-bit code 0.
        w.write_bits(u64::from(reverse_bits(0, 7)), 7);
        let bytes = w.finish();
        let err = inflate(&bytes).unwrap_err();
        assert!(matches!(err, CodecError::Corrupt(_)), "{err}");
    }

    #[test]
    fn overlapping_copy_expands_runs() {
        let data = vec![b'z'; 10_000];
        let comp = deflate(&data, Level::Default);
        assert_eq!(inflate(&comp).unwrap(), data);
    }

    #[test]
    fn copy_match_overlap_semantics() {
        // Short-period replication.
        let mut out = vec![1, 2, 3];
        copy_match(&mut out, 2, 5);
        assert_eq!(out, vec![1, 2, 3, 2, 3, 2, 3, 2]);

        // Period-9 replication past the source window (doubling path).
        let mut out: Vec<u8> = (1..=9).collect();
        copy_match(&mut out, 9, 12);
        assert_eq!(&out[9..], &[1, 2, 3, 4, 5, 6, 7, 8, 9, 1, 2, 3]);
    }

    /// Build a dynamic-Huffman block header whose code-length code covers
    /// symbols {0 (len 1), 2 (len 2), 18 (len 2)} — a complete CL code —
    /// then let the caller emit the 258 litlen+dist code lengths with it.
    fn dynamic_block_with(emit_lengths: impl Fn(&mut crate::bitio::BitWriter)) -> Vec<u8> {
        use crate::bitio::BitWriter;
        let mut w = BitWriter::new();
        w.write_bits(1, 1); // BFINAL
        w.write_bits(0b10, 2); // dynamic block
        w.write_bits(0, 5); // HLIT -> 257 litlen codes
        w.write_bits(0, 5); // HDIST -> 1 dist code
        w.write_bits(12, 4); // HCLEN -> 16 CL entries
        for &sym in CODELEN_ORDER.iter().take(16) {
            let l = match sym {
                0 => 1,
                2 | 18 => 2,
                _ => 0,
            };
            w.write_bits(l, 3);
        }
        emit_lengths(&mut w);
        w.finish()
    }

    // Canonical CL codes for the table above: sym 0 -> 0 (1 bit),
    // sym 2 -> 10, sym 18 -> 11; emitted LSB-first (bit-reversed).
    fn emit_len_two(w: &mut crate::bitio::BitWriter) {
        w.write_bits(0b01, 2);
    }
    fn emit_zero_run(w: &mut crate::bitio::BitWriter, run: u64) {
        w.write_bits(0b11, 2);
        w.write_bits(run - 11, 7);
    }
    fn emit_len_zero(w: &mut crate::bitio::BitWriter) {
        w.write_bits(0, 1);
    }

    #[test]
    fn rejects_undersubscribed_dynamic_litlen_table() {
        // Litlen lengths: sym 0 and sym 256 get 2 bits, everything else 0.
        // Kraft sum 1/2: under-subscribed — half the code space decodes to
        // nothing. A lenient decoder would read garbage symbols; ours must
        // reject the table itself.
        let block = dynamic_block_with(|w| {
            emit_len_two(w); // sym 0
            emit_zero_run(w, 138); // syms 1..=138
            emit_zero_run(w, 117); // syms 139..=255
            emit_len_two(w); // sym 256
            emit_len_zero(w); // the single dist code
        });
        assert!(matches!(
            inflate(&block),
            Err(CodecError::InvalidHuffmanTable("under-subscribed code"))
        ));
    }

    #[test]
    fn rejects_oversubscribed_dynamic_litlen_table() {
        // Five symbols of length 2: Kraft sum 5/4 — over-subscribed, the
        // code is ambiguous.
        let block = dynamic_block_with(|w| {
            for _ in 0..5 {
                emit_len_two(w); // syms 0..=4
            }
            emit_zero_run(w, 138); // syms 5..=142
            emit_zero_run(w, 114); // syms 143..=256
            emit_len_zero(w); // the single dist code
        });
        assert!(matches!(
            inflate(&block),
            Err(CodecError::InvalidHuffmanTable("over-subscribed code"))
        ));
    }

    #[test]
    fn random_garbage_never_panics() {
        let mut x = 0xdeadbeefu32;
        for trial in 0..200 {
            let len = (trial % 97) + 1;
            let garbage: Vec<u8> = (0..len)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 17;
                    x ^= x << 5;
                    (x >> 16) as u8
                })
                .collect();
            // Must return (Ok or Err) without panicking.
            let _ = inflate(&garbage);
        }
    }

    // ---- decode-table structure tests -------------------------------------

    /// Lengths giving every symbol `0..n` a code, with a Fibonacci-weighted
    /// skew so package-merge assigns the full 1..=15 spread of code lengths.
    fn skewed_lengths(n: usize) -> Vec<u8> {
        let mut freqs = vec![0u64; n];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            // Cap the growth so package-merge's internal weight sums stay
            // far from u64 overflow even for 286 symbols.
            if b < 1 << 40 {
                let next = a + b;
                a = b;
                b = next;
            }
        }
        crate::huffman::package_merge_lengths(&freqs, 15)
    }

    #[test]
    fn litlen_table_resolves_every_symbol_at_its_length() {
        use crate::bitio::BitWriter;
        let lengths = skewed_lengths(286);
        assert!(
            lengths.iter().any(|&l| u32::from(l) > LITLEN_TABLE_BITS),
            "skew must exercise subtables"
        );
        let codes = canonical_codes(&lengths);
        let mut table = Table::default();
        table
            .build_litlen(&lengths, &mut Vec::new(), &mut Vec::new())
            .unwrap();
        for (sym, &len) in lengths.iter().enumerate() {
            if len == 0 {
                continue;
            }
            // Emit exactly this code (plus zero padding) and resolve it.
            let mut w = BitWriter::new();
            w.write_bits(
                u64::from(reverse_bits(codes[sym], u32::from(len))),
                u32::from(len),
            );
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            let e = table.lookup(r.peek_bits(MAX_CODE_BITS));
            let kind = entry_kind(e);
            match sym as u16 {
                0..=255 => {
                    // May resolve as a merged pair whose first byte is ours.
                    assert!(kind == K_LIT1 || kind == K_LIT2, "sym {sym} kind {kind}");
                    assert_eq!(entry_payload(e) & 0xff, sym as u32, "sym {sym}");
                    if kind == K_LIT1 {
                        assert_eq!(entry_consumed(e), u32::from(len), "sym {sym}");
                    }
                }
                END_OF_BLOCK => {
                    assert_eq!(kind, K_EOB);
                    assert_eq!(entry_consumed(e), u32::from(len));
                }
                s @ 257..=285 => {
                    assert_eq!(kind, K_LEN, "sym {sym}");
                    assert_eq!(entry_consumed(e), u32::from(len));
                    let li = usize::from(s - 257);
                    assert_eq!(entry_payload(e) & 0x1ff, u32::from(LENGTH_BASE[li]));
                    assert_eq!(entry_payload(e) >> 9, u32::from(LENGTH_EXTRA[li]));
                }
                _ => assert_eq!(kind, K_BADSYM, "sym {sym}"),
            }
        }
    }

    #[test]
    fn dist_table_resolves_every_symbol_at_its_length() {
        use crate::bitio::BitWriter;
        let lengths = skewed_lengths(30);
        let codes = canonical_codes(&lengths);
        let mut table = Table::default();
        table
            .build_dist(&lengths, &mut Vec::new(), &mut Vec::new())
            .unwrap();
        for (sym, &len) in lengths.iter().enumerate() {
            if len == 0 {
                continue;
            }
            let mut w = BitWriter::new();
            w.write_bits(
                u64::from(reverse_bits(codes[sym], u32::from(len))),
                u32::from(len),
            );
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            let e = table.lookup(r.peek_bits(MAX_CODE_BITS));
            assert_eq!(entry_kind(e), K_DIST, "sym {sym}");
            assert_eq!(entry_consumed(e), u32::from(len), "sym {sym}");
            assert_eq!(entry_payload(e) & 0x7fff, u32::from(DIST_BASE[sym]));
            assert_eq!(entry_payload(e) >> 15, u32::from(DIST_EXTRA[sym]));
        }
    }

    #[test]
    fn litlen_table_merges_short_literal_pairs() {
        // Complete 3-bit-deep code: sym 0 -> 0 (1 bit), EOB -> 10 (2 bits),
        // syms 1/2 -> 110/111 (3 bits). The primary table is 3 bits wide, so
        // the only mergeable pair is sym 0 followed by sym 0 (2 bits total).
        let mut lengths = vec![0u8; 257];
        lengths[0] = 1;
        lengths[256] = 2;
        lengths[1] = 3;
        lengths[2] = 3;
        let mut table = Table::default();
        table
            .build_litlen(&lengths, &mut Vec::new(), &mut Vec::new())
            .unwrap();
        assert_eq!(table.bits, 3);
        // The all-zeros index decodes literal 0 twice.
        let e = table.lookup(0);
        assert_eq!(entry_kind(e), K_LIT2);
        assert_eq!(entry_consumed(e), 2);
        assert_eq!(entry_payload(e), 0);
        // Literal 0 followed by EOB (code 10, reversed 01 -> index 0b010)
        // must NOT merge: EOB is not a literal.
        let e = table.lookup(0b010);
        assert_eq!(entry_kind(e), K_LIT1, "entry {e:#x}");
        assert_eq!(entry_consumed(e), 1);
        // Literal 0 followed by literal 1 (3 bits) exceeds the table width
        // and must also stay single.
        let e = table.lookup(0b110);
        assert_eq!(entry_kind(e), K_LIT1, "entry {e:#x}");
        assert_eq!(entry_consumed(e), 1);
    }

    #[test]
    fn subtable_boundary_codes_roundtrip_through_inflate_block() {
        use crate::bitio::BitWriter;
        // A full 286-symbol skew: many codes longer than the primary width.
        let lengths = skewed_lengths(286);
        let dist_lengths = skewed_lengths(30);
        let codes = canonical_codes(&lengths);
        let mut table = Table::default();
        table
            .build_litlen(&lengths, &mut Vec::new(), &mut Vec::new())
            .unwrap();
        let mut dist_table = Table::default();
        dist_table
            .build_dist(&dist_lengths, &mut Vec::new(), &mut Vec::new())
            .unwrap();
        // Emit every literal once, then EOB, and inflate it back.
        let mut w = BitWriter::new();
        let mut expect = Vec::new();
        for sym in 0..=255u16 {
            let len = u32::from(lengths[sym as usize]);
            w.write_bits(u64::from(reverse_bits(codes[sym as usize], len)), len);
            expect.push(sym as u8);
        }
        let eob_len = u32::from(lengths[256]);
        w.write_bits(u64::from(reverse_bits(codes[256], eob_len)), eob_len);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut out = Vec::new();
        inflate_block(&mut r, &table, &dist_table, &mut out).unwrap();
        assert_eq!(out, expect);
    }

    #[test]
    fn fixed_tables_decode_matches_rfc_layout() {
        let (lit, dist) = fixed_tables().unwrap();
        // Literal 0: 8-bit code 0x30 (MSB-first).
        let e = lit.lookup(u64::from(reverse_bits(0x30, 8)));
        assert!(matches!(entry_kind(e), K_LIT1 | K_LIT2));
        assert_eq!(entry_payload(e) & 0xff, 0);
        // EOB: 7-bit code 0.
        let e = lit.lookup(0);
        assert_eq!(entry_kind(e), K_EOB);
        assert_eq!(entry_consumed(e), 7);
        // Distance 0: 5-bit code 0.
        let e = dist.lookup(0);
        assert_eq!(entry_kind(e), K_DIST);
        assert_eq!(entry_consumed(e), 5);
        assert_eq!(entry_payload(e) & 0x7fff, 1);
        // Fixed dist symbols 30/31 exist in the header alphabet but are
        // invalid in a stream.
        let codes = canonical_codes(&super::super::encode::fixed_dist_lengths());
        let e = dist.lookup(u64::from(reverse_bits(codes[30], 5)));
        assert_eq!(entry_kind(e), K_BADSYM);
    }

    #[test]
    fn degenerate_single_symbol_dist_table_flags_other_half() {
        let mut lengths = vec![0u8; 30];
        lengths[0] = 1;
        let mut table = Table::default();
        table
            .build_dist(&lengths, &mut Vec::new(), &mut Vec::new())
            .unwrap();
        assert_eq!(entry_kind(table.lookup(0)), K_DIST);
        assert_eq!(entry_kind(table.lookup(1)), K_INVALID);
    }
}
