//! LZ77 match finding with hash chains and lazy evaluation.
//!
//! This mirrors zlib's deflate strategy — hashed candidate positions, a
//! searcher that walks at most `max_chain` links and stops early once a match
//! of `nice_length` is found, and (at higher levels) one-position deferral of
//! a match when the next position starts a longer one ("lazy matching") —
//! with three libdeflate-style throughput upgrades on top:
//!
//! * **split hash3/hash4 dictionary** (the `hc_matchfinder` layout): chains
//!   are keyed by a 16-bit hash of the next *four* bytes, so every link in a
//!   chain shares a 4-byte prefix with the search position and chains stay
//!   short even when some 3-byte pattern saturates the input. Length-3
//!   matches are still found — through a separate most-recent-occurrence
//!   table keyed by a 15-bit 3-byte hash, probed once per search with no
//!   chain behind it. On the hi-plane residual streams this replaces
//!   budget-capped 128-link walks over 3-byte collision chains with a probe
//!   plus a handful of genuine 4-byte-prefix candidates;
//! * **word-at-a-time match extension**: candidate comparisons proceed eight
//!   bytes per step via `u64` loads and `trailing_zeros` on the XOR, with a
//!   scalar tail, instead of byte-by-byte;
//! * **adaptive skip-ahead**: after a run of consecutive literals (no match
//!   found), the scanner starts stepping over positions — the step grows with
//!   the run and is capped at [`MAX_SKIP`] — inserting hash entries only at
//!   the positions it actually visits. ISOBAR-classified-incompressible
//!   low-order bytes therefore fall through at near-`memcpy` speed instead of
//!   paying a hash insert + chain walk per byte. The trade-off: a match whose
//!   start lands on a skipped position is missed, costing a few literals of
//!   ratio on data that alternates incompressible stretches with sudden
//!   repetition (see `Level::params` for the per-level trigger; `Best`
//!   disables skipping entirely).
//!
//! All per-input state (hash heads, chain links, the token buffer) lives in a
//! reusable [`EncoderScratch`] so steady-state encoding performs no heap
//! allocation per chunk — the pipeline keeps one scratch per worker thread.

use super::{Level, MAX_MATCH, MIN_MATCH, WINDOW_SIZE};

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes behind.
    Match {
        /// Match length in `MIN_MATCH..=MAX_MATCH`.
        len: u16,
        /// Distance in `1..=WINDOW_SIZE`.
        dist: u16,
    },
}

const HASH3_BITS: u32 = 15;
const HASH3_SIZE: usize = 1 << HASH3_BITS;
const HASH4_BITS: u32 = 16;
const HASH4_SIZE: usize = 1 << HASH4_BITS;
const NO_POS: u32 = u32::MAX;
/// Upper bound on the skip-ahead step: at most one position in `MAX_SKIP` is
/// hashed/searched once a literal run has fully ramped up.
const MAX_SKIP: usize = 32;
/// The skip step grows by one every `2^SKIP_RAMP_SHIFT` literals past the
/// trigger, so ratio degrades gradually at the start of a literal run.
const SKIP_RAMP_SHIFT: u32 = 5;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = u32::from(data[i]) << 16 | u32::from(data[i + 1]) << 8 | u32::from(data[i + 2]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH3_BITS)) as usize
}

/// Hash of the four bytes at `i` (caller guarantees `i + 4 <= data.len()`).
#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let mut a = [0u8; 4];
    a.copy_from_slice(&data[i..i + 4]);
    (u32::from_le_bytes(a).wrapping_mul(0x9E37_79B1) >> (32 - HASH4_BITS)) as usize
}

/// Load eight little-endian bytes starting at `i` (caller guarantees
/// `i + 8 <= data.len()`).
#[inline]
fn load_u64(data: &[u8], i: usize) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&data[i..i + 8]);
    u64::from_le_bytes(a)
}

/// Length of the common prefix of `data[a..]` and `data[b..]`, capped at
/// `max_len`. Compares eight bytes per iteration; the first differing byte is
/// located with `trailing_zeros` on the XOR of the two words. The caller
/// guarantees `b + max_len <= data.len()` and `a < b`.
#[inline]
fn match_len(data: &[u8], a: usize, b: usize, max_len: usize) -> usize {
    let mut l = 0;
    while l + 8 <= max_len {
        let x = load_u64(data, a + l) ^ load_u64(data, b + l);
        if x != 0 {
            return l + (x.trailing_zeros() >> 3) as usize;
        }
        l += 8;
    }
    while l < max_len && data[a + l] == data[b + l] {
        l += 1;
    }
    l
}

/// Skip-ahead step for the current literal run: 1 below the trigger, then a
/// ramp that adds one position per `2^SKIP_RAMP_SHIFT` skipped literals,
/// capped at [`MAX_SKIP`].
#[inline]
fn skip_step(lit_run: usize, trigger: usize) -> usize {
    if lit_run < trigger {
        1
    } else {
        (((lit_run - trigger) >> SKIP_RAMP_SHIFT) + 2).min(MAX_SKIP)
    }
}

/// Reusable match-finder state: hash tables, chain links, the token buffer.
///
/// Constructing the hash dictionary used to cost fresh head-table allocations
/// plus a 4-bytes-per-input-byte `prev` allocation per chunk; a scratch is
/// allocated once and reused, so steady-state encoding (same or smaller chunk
/// size) performs **zero** heap allocations in the tokenizer — `prepare` only
/// memsets the head tables and the token buffer keeps its capacity across
/// [`tokenize_into`] calls. `prev` entries are never cleared: only positions
/// inserted for the *current* input are reachable from `head4`, so stale
/// links from earlier chunks are dead by construction.
#[derive(Debug, Default)]
pub struct EncoderScratch {
    /// Most recent position for each 3-byte hash — probed once, no chain.
    head3: Vec<u32>,
    /// Chain head for each 4-byte hash.
    head4: Vec<u32>,
    /// Chain links: `prev[i]` is the previous position sharing `i`'s hash4.
    prev: Vec<u32>,
    pub(crate) tokens: Vec<Token>,
    /// Dynamic-header build buffers, reused by the block emitter.
    pub(crate) header: super::encode::HeaderScratch,
}

impl EncoderScratch {
    /// An empty scratch; arrays are allocated lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The tokens produced by the most recent [`tokenize_into`] call.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// Split-borrow the token slice and the header scratch, so the block
    /// emitter can read tokens while mutating its header buffers.
    pub(crate) fn parts(&mut self) -> (&[Token], &mut super::encode::HeaderScratch) {
        (&self.tokens, &mut self.header)
    }

    /// Reset the dictionary for a new input of `len` bytes. Allocates only
    /// when `len` exceeds every previous input length.
    fn prepare(&mut self, len: usize) {
        if self.head3.is_empty() {
            self.head3 = vec![NO_POS; HASH3_SIZE];
            self.head4 = vec![NO_POS; HASH4_SIZE];
        } else {
            self.head3.fill(NO_POS);
            self.head4.fill(NO_POS);
        }
        if self.prev.len() < len {
            self.prev.resize(len, NO_POS);
        }
        self.tokens.clear();
    }

    /// Record position `i` in the dictionary: it becomes the most recent
    /// occurrence of its 3-byte hash and (when four bytes remain) the head of
    /// its hash4 chain.
    #[inline]
    fn insert(&mut self, data: &[u8], i: usize) {
        if i + MIN_MATCH > data.len() {
            return;
        }
        self.head3[hash3(data, i)] = i as u32;
        if i + 4 <= data.len() {
            let h = hash4(data, i);
            self.prev[i] = self.head4[h];
            self.head4[h] = i as u32;
        }
    }

    /// Find the longest match for position `i`: one probe of the hash3
    /// most-recent table (the only source of length-3 matches), then a walk
    /// of at most `max_chain` hash4-chain candidates. Returns
    /// `(len, dist, links_walked)` with `len == 0` when nothing of at least
    /// `MIN_MATCH` was found.
    fn longest_match(
        &self,
        data: &[u8],
        i: usize,
        max_chain: usize,
        nice_length: usize,
    ) -> (usize, usize, u32) {
        let remaining = data.len() - i;
        if remaining < MIN_MATCH {
            return (0, 0, 0);
        }
        let max_len = remaining.min(MAX_MATCH);
        let nice = nice_length.min(max_len);
        let window_floor = i.saturating_sub(WINDOW_SIZE);
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut links = 0u32;

        // hash3 probe: the single most recent 3-byte-hash occurrence. The
        // hash4 chains below can only yield 4-byte-prefix candidates, so this
        // probe is what keeps length-3 matches representable.
        let c3 = self.head3[hash3(data, i)];
        if c3 != NO_POS {
            let c = c3 as usize;
            // `c >= i` would be a self-reference (possible when the caller
            // pre-inserted positions); skip it rather than match in place.
            if c < i && c >= window_floor {
                links += 1;
                let l = match_len(data, c, i, max_len);
                if l >= MIN_MATCH {
                    best_len = l;
                    best_dist = i - c;
                    if l >= nice {
                        return (best_len, best_dist, links);
                    }
                }
            }
        }

        if remaining >= 4 {
            let mut cand = self.head4[hash4(data, i)];
            // Every visited candidate spends search budget — including
            // self-referential entries — so a pathological chain cannot
            // exceed the configured budget.
            let mut chain_left = max_chain;
            while cand != NO_POS && chain_left > 0 {
                chain_left -= 1;
                links += 1;
                let c = cand as usize;
                if c >= i {
                    cand = self.prev[c];
                    continue;
                }
                if c < window_floor {
                    break;
                }
                // Quick reject: the byte that would extend the best match
                // must agree before we pay for a full comparison. In-bounds
                // because best_len < max_len here (a best_len == max_len
                // match already hit `nice` and returned/broke out).
                if data[c + best_len] == data[i + best_len] {
                    let l = match_len(data, c, i, max_len);
                    if l > best_len {
                        best_len = l;
                        best_dist = i - c;
                        if l >= nice {
                            break;
                        }
                    }
                }
                cand = self.prev[c];
            }
        }
        if best_len >= MIN_MATCH {
            (best_len, best_dist, links)
        } else {
            (0, 0, links)
        }
    }
}

/// Run LZ77 over `input`, returning a fresh token stream. Convenience wrapper
/// over [`tokenize_into`] for one-shot callers; hot paths should hold an
/// [`EncoderScratch`] and avoid the per-call allocations.
pub fn tokenize(input: &[u8], level: Level) -> Vec<Token> {
    let mut scratch = EncoderScratch::new();
    tokenize_into(input, level, &mut scratch);
    std::mem::take(&mut scratch.tokens)
}

/// Run LZ77 over `input`, leaving the token stream in `scratch.tokens()`.
/// Reuses every buffer in `scratch`; steady state allocates nothing.
pub fn tokenize_into(input: &[u8], level: Level, scratch: &mut EncoderScratch) {
    let p = level.params();
    let n = input.len();
    scratch.prepare(n);
    if n == 0 {
        return;
    }
    scratch.tokens.reserve(n / 3 + 16);
    if p.lazy {
        tokenize_lazy(input, scratch, &p);
    } else {
        tokenize_greedy(input, scratch, &p);
    }
}

/// Emit literals for `data[i..end]` (the skip-ahead fallthrough), observing
/// the skip histogram when more than one position is covered.
#[inline]
fn push_literals(tokens: &mut Vec<Token>, data: &[u8], i: usize, end: usize) {
    // Slice-iterator `extend` hits the `TrustedLen` specialization: one
    // reservation and no per-element capacity check. On incompressible
    // planes nearly every input byte passes through here, so the per-push
    // branch is a measurable share of tokenize time.
    tokens.extend(data[i..end].iter().map(|&b| Token::Literal(b)));
    if end - i > 1 {
        primacy_trace::observe("deflate.skip", (end - i) as u64);
    }
}

fn tokenize_greedy(data: &[u8], scratch: &mut EncoderScratch, p: &super::MatchParams) {
    let n = data.len();
    let mut i = 0;
    let mut lit_run = 0usize;
    while i < n {
        let (mlen, mdist, links) = scratch.longest_match(data, i, p.max_chain, p.nice_length);
        if links > 0 {
            primacy_trace::observe("deflate.chain_len", u64::from(links));
        }
        scratch.insert(data, i);
        if mlen >= MIN_MATCH {
            scratch.tokens.push(Token::Match {
                len: mlen as u16,
                dist: mdist as u16,
            });
            for j in i + 1..i + mlen {
                scratch.insert(data, j);
            }
            i += mlen;
            lit_run = 0;
        } else {
            let end = (i + skip_step(lit_run, p.skip_trigger)).min(n);
            push_literals(&mut scratch.tokens, data, i, end);
            lit_run += end - i;
            i = end;
        }
    }
}

fn tokenize_lazy(data: &[u8], scratch: &mut EncoderScratch, p: &super::MatchParams) {
    let n = data.len();
    let mut i = 0;
    let mut lit_run = 0usize;
    // A match found at position i-1 that we deferred by one byte.
    let mut pending: Option<(usize, usize)> = None;
    while i < n {
        let (mlen, mdist, links) = scratch.longest_match(data, i, p.max_chain, p.nice_length);
        if links > 0 {
            primacy_trace::observe("deflate.chain_len", u64::from(links));
        }
        scratch.insert(data, i);
        match pending {
            Some((plen, pdist)) if mlen <= plen => {
                // The deferred match is at least as good: take it.
                scratch.tokens.push(Token::Match {
                    len: plen as u16,
                    dist: pdist as u16,
                });
                let end = i - 1 + plen;
                for j in i + 1..end {
                    scratch.insert(data, j);
                }
                i = end;
                pending = None;
                lit_run = 0;
            }
            Some(_) => {
                // Current match is strictly longer: the byte at i-1 becomes a
                // literal and the new match is deferred in turn.
                scratch.tokens.push(Token::Literal(data[i - 1]));
                pending = Some((mlen, mdist));
                i += 1;
                lit_run = 0;
            }
            None => {
                if mlen >= p.nice_length {
                    // Good enough that lazy deferral cannot pay off.
                    scratch.tokens.push(Token::Match {
                        len: mlen as u16,
                        dist: mdist as u16,
                    });
                    for j in i + 1..i + mlen {
                        scratch.insert(data, j);
                    }
                    i += mlen;
                    lit_run = 0;
                } else if mlen >= MIN_MATCH {
                    pending = Some((mlen, mdist));
                    i += 1;
                    lit_run = 0;
                } else {
                    let end = (i + skip_step(lit_run, p.skip_trigger)).min(n);
                    push_literals(&mut scratch.tokens, data, i, end);
                    lit_run += end - i;
                    i = end;
                }
            }
        }
    }
    if let Some((plen, pdist)) = pending {
        scratch.tokens.push(Token::Match {
            len: plen as u16,
            dist: pdist as u16,
        });
    }
}

/// Expand a token stream back to bytes (used by tests and by the encoder's
/// internal consistency checks). Match copies proceed in overlap-safe wide
/// chunks — each pass copies as much as the already-materialized suffix
/// allows, so a `dist < len` RLE-style reference doubles its copied span per
/// pass instead of moving byte by byte.
pub fn expand(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for &t in tokens {
        match t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = dist as usize;
                let len = len as usize;
                assert!(
                    dist >= 1 && dist <= out.len(),
                    "match reaches before stream start"
                );
                let start = out.len() - dist;
                out.reserve(len);
                let mut remaining = len;
                while remaining > 0 {
                    let avail = out.len() - start;
                    let chunk = avail.min(remaining);
                    out.extend_from_within(start..start + chunk);
                    remaining -= chunk;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_tokens_valid(data: &[u8], tokens: &[Token]) {
        let mut pos = 0usize;
        for &t in tokens {
            match t {
                Token::Literal(b) => {
                    assert_eq!(b, data[pos]);
                    pos += 1;
                }
                Token::Match { len, dist } => {
                    let (len, dist) = (len as usize, dist as usize);
                    assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
                    assert!((1..=WINDOW_SIZE).contains(&dist) && dist <= pos);
                    for k in 0..len {
                        assert_eq!(data[pos + k], data[pos - dist + k]);
                    }
                    pos += len;
                }
            }
        }
        assert_eq!(pos, data.len());
        assert_eq!(expand(tokens), data);
    }

    #[test]
    fn greedy_and_lazy_reproduce_input() {
        let data = b"abcabcabcabcXabcabcabcabcYabcabc".repeat(20);
        for level in [Level::Fast, Level::Default, Level::Best] {
            let tokens = tokenize(&data, level);
            check_tokens_valid(&data, &tokens);
        }
    }

    #[test]
    fn finds_long_run() {
        let data = vec![7u8; 1000];
        let tokens = tokenize(&data, Level::Default);
        check_tokens_valid(&data, &tokens);
        // A run compresses to a handful of tokens (first literal + matches).
        assert!(tokens.len() <= 1 + 1000 / MAX_MATCH + 2, "{}", tokens.len());
    }

    #[test]
    fn respects_window_distance() {
        // Repeat a marker 40KB apart: farther than the window, so it must
        // not be matched across that gap.
        let mut data = vec![0u8; 80_000];
        for (i, b) in b"UNIQUEMARKER".iter().enumerate() {
            data[100 + i] = *b;
            data[70_000 + i] = *b;
        }
        let tokens = tokenize(&data, Level::Best);
        check_tokens_valid(&data, &tokens);
    }

    #[test]
    fn lazy_prefers_longer_match() {
        // "ab" repeats early; "bcdef" repeats later. At the position of the
        // second "abcdef", greedy takes the short "ab" match, lazy should
        // emit 'a' as a literal and take the longer "bcdef"-anchored match.
        let data = b"ab__bcdefgh__abcdefgh".to_vec();
        let lazy_tokens = tokenize(&data, Level::Best);
        check_tokens_valid(&data, &lazy_tokens);
        let greedy_tokens = tokenize(&data, Level::Fast);
        check_tokens_valid(&data, &greedy_tokens);
        let lazy_cost: usize = lazy_tokens.len();
        assert!(lazy_cost <= greedy_tokens.len());
    }

    #[test]
    fn all_literals_for_random_bytes() {
        let mut x = 0x9e3779b9u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 11) as u8
            })
            .collect();
        let tokens = tokenize(&data, Level::Default);
        check_tokens_valid(&data, &tokens);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(tokenize(&[], Level::Default).is_empty());
        for n in 1..=4 {
            let data = vec![9u8; n];
            let tokens = tokenize(&data, Level::Default);
            check_tokens_valid(&data, &tokens);
        }
    }

    #[test]
    fn overlapping_match_is_representable() {
        // "aaaa..." forces dist=1 matches that overlap their own output.
        let data = vec![b'a'; 50];
        let tokens = tokenize(&data, Level::Default);
        check_tokens_valid(&data, &tokens);
        assert!(tokens
            .iter()
            .any(|t| matches!(t, Token::Match { dist: 1, .. })));
    }

    #[test]
    fn match_len_agrees_with_scalar() {
        // Pseudo-random buffer with planted agreements: the word-at-a-time
        // path must agree with a byte-at-a-time reference at every offset
        // and cap, including non-multiple-of-8 tails.
        let mut x = 0xabcdef12u32;
        let mut data: Vec<u8> = (0..600)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 8) as u8
            })
            .collect();
        // Plant a long identical stretch.
        let copy: Vec<u8> = data[40..140].to_vec();
        data[300..400].copy_from_slice(&copy);
        for (a, b) in [(40usize, 300usize), (41, 301), (45, 305), (0, 300)] {
            for max_len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 63, 99, 100, 200] {
                let max_len = max_len.min(data.len() - b);
                let scalar = data[a..]
                    .iter()
                    .zip(&data[b..])
                    .take(max_len)
                    .take_while(|(p, q)| p == q)
                    .count();
                assert_eq!(
                    match_len(&data, a, b, max_len),
                    scalar,
                    "a={a} b={b} max_len={max_len}"
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_is_equivalent_to_fresh_state() {
        // Tokenizing B after A with a reused scratch must give exactly the
        // tokens of a fresh tokenize(B): no stale chain state may leak.
        let a = b"abcabcabcabcabcabc".repeat(40);
        let mut x = 77u32;
        let b: Vec<u8> = (0..3000)
            .map(|_| {
                x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (x >> 17) as u8
            })
            .collect();
        for level in [Level::Fast, Level::Default, Level::Best] {
            let mut scratch = EncoderScratch::new();
            tokenize_into(&a, level, &mut scratch);
            check_tokens_valid(&a, scratch.tokens());
            tokenize_into(&b, level, &mut scratch);
            assert_eq!(scratch.tokens(), tokenize(&b, level), "level {level:?}");
            // And shrinking inputs (prev longer than the input) stay correct.
            tokenize_into(&a[..100], level, &mut scratch);
            assert_eq!(scratch.tokens(), tokenize(&a[..100], level));
        }
    }

    #[test]
    fn skip_ahead_still_finds_matches_after_literal_runs() {
        // A long incompressible stretch (skip fully ramped) followed by a
        // huge repeated block: the match region must still compress well
        // even though its first few positions may fall on skipped offsets.
        let mut x = 0x1234_5678u32;
        let mut data: Vec<u8> = (0..8000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 13) as u8
            })
            .collect();
        data.extend(b"the quick brown fox ".repeat(400));
        for level in [Level::Fast, Level::Default] {
            let tokens = tokenize(&data, level);
            check_tokens_valid(&data, &tokens);
            let matched: usize = tokens
                .iter()
                .map(|t| match t {
                    Token::Match { len, .. } => *len as usize,
                    Token::Literal(_) => 0,
                })
                .sum();
            // The 8000-byte repeated region must be almost entirely matches.
            assert!(matched > 7000, "level {level:?}: only {matched} matched");
        }
    }

    #[test]
    fn skip_step_ramps_and_caps() {
        let trigger = 64;
        assert_eq!(skip_step(0, trigger), 1);
        assert_eq!(skip_step(63, trigger), 1);
        assert_eq!(skip_step(64, trigger), 2);
        assert_eq!(skip_step(64 + 32, trigger), 3);
        assert!(skip_step(1 << 20, trigger) == MAX_SKIP);
        // Best disables skipping outright.
        assert_eq!(skip_step(1 << 20, usize::MAX), 1);
    }

    #[test]
    fn chain_budget_counts_self_references() {
        // Insert many positions with identical 3-byte hashes, then search
        // with a tiny max_chain: the walk must visit at most max_chain links
        // even though the head of the chain is a self-reference.
        let data = vec![5u8; 4096];
        let mut scratch = EncoderScratch::new();
        scratch.prepare(data.len());
        for i in 0..2048 {
            scratch.insert(&data, i);
        }
        let (_, _, links) = scratch.longest_match(&data, 1000, 8, MAX_MATCH);
        assert!(links <= 8, "walked {links} links with a budget of 8");
    }
}
