//! LZ77 match finding with hash chains and lazy evaluation.
//!
//! This mirrors zlib's deflate strategy: a 15-bit hash over the next three
//! bytes indexes chains of previous positions; the searcher walks at most
//! `max_chain` links, stops early once a match of `nice_length` is found, and
//! (at higher levels) defers emitting a match by one position if the next
//! position starts a longer one ("lazy matching").

use super::{Level, MAX_MATCH, MIN_MATCH, WINDOW_SIZE};

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes behind.
    Match {
        /// Match length in `MIN_MATCH..=MAX_MATCH`.
        len: u16,
        /// Distance in `1..=WINDOW_SIZE`.
        dist: u16,
    },
}

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
const NO_POS: u32 = u32::MAX;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = u32::from(data[i]) << 16 | u32::from(data[i + 1]) << 8 | u32::from(data[i + 2]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Hash-chain dictionary over the input.
struct Chains {
    head: Vec<u32>,
    prev: Vec<u32>,
}

impl Chains {
    fn new(len: usize) -> Self {
        Self {
            head: vec![NO_POS; HASH_SIZE],
            prev: vec![NO_POS; len],
        }
    }

    /// Record position `i` in the chain for its 3-byte hash.
    #[inline]
    fn insert(&mut self, data: &[u8], i: usize) {
        if i + MIN_MATCH > data.len() {
            return;
        }
        let h = hash3(data, i);
        self.prev[i] = self.head[h];
        self.head[h] = i as u32;
    }

    /// Find the longest match for position `i`, walking at most `max_chain`
    /// candidates. Returns `(len, dist)` with `len == 0` when nothing of at
    /// least `MIN_MATCH` was found.
    fn longest_match(
        &self,
        data: &[u8],
        i: usize,
        max_chain: usize,
        nice_length: usize,
    ) -> (usize, usize) {
        let remaining = data.len() - i;
        if remaining < MIN_MATCH {
            return (0, 0);
        }
        let max_len = remaining.min(MAX_MATCH);
        let nice = nice_length.min(max_len);
        let h = hash3(data, i);
        let mut cand = self.head[h];
        // The position itself may already be inserted; skip self-references.
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut chain_left = max_chain;
        let window_floor = i.saturating_sub(WINDOW_SIZE);
        while cand != NO_POS && chain_left > 0 {
            let c = cand as usize;
            if c >= i {
                cand = self.prev[c];
                continue;
            }
            if c < window_floor {
                break;
            }
            // Quick reject: the byte that would extend the best match must
            // agree before we pay for a full comparison.
            if data[c + best_len] == data[i + best_len] {
                let mut l = 0;
                while l < max_len && data[c + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - c;
                    if l >= nice {
                        break;
                    }
                }
            }
            cand = self.prev[c];
            chain_left -= 1;
        }
        if best_len >= MIN_MATCH {
            (best_len, best_dist)
        } else {
            (0, 0)
        }
    }
}

/// Run LZ77 over `input`, returning the token stream.
pub fn tokenize(input: &[u8], level: Level) -> Vec<Token> {
    let (max_chain, nice_length, lazy) = level.params();
    let n = input.len();
    let mut tokens = Vec::with_capacity(n / 3 + 16);
    if n == 0 {
        return tokens;
    }
    let mut chains = Chains::new(n);
    if lazy {
        tokenize_lazy(input, &mut chains, &mut tokens, max_chain, nice_length);
    } else {
        tokenize_greedy(input, &mut chains, &mut tokens, max_chain, nice_length);
    }
    tokens
}

fn tokenize_greedy(
    data: &[u8],
    chains: &mut Chains,
    tokens: &mut Vec<Token>,
    max_chain: usize,
    nice_length: usize,
) {
    let n = data.len();
    let mut i = 0;
    while i < n {
        let (mlen, mdist) = chains.longest_match(data, i, max_chain, nice_length);
        chains.insert(data, i);
        if mlen >= MIN_MATCH {
            tokens.push(Token::Match {
                len: mlen as u16,
                dist: mdist as u16,
            });
            for j in i + 1..i + mlen {
                chains.insert(data, j);
            }
            i += mlen;
        } else {
            tokens.push(Token::Literal(data[i]));
            i += 1;
        }
    }
}

fn tokenize_lazy(
    data: &[u8],
    chains: &mut Chains,
    tokens: &mut Vec<Token>,
    max_chain: usize,
    nice_length: usize,
) {
    let n = data.len();
    let mut i = 0;
    // A match found at position i-1 that we deferred by one byte.
    let mut pending: Option<(usize, usize)> = None;
    while i < n {
        let (mlen, mdist) = chains.longest_match(data, i, max_chain, nice_length);
        chains.insert(data, i);
        match pending {
            Some((plen, pdist)) if mlen <= plen => {
                // The deferred match is at least as good: take it.
                tokens.push(Token::Match {
                    len: plen as u16,
                    dist: pdist as u16,
                });
                let end = i - 1 + plen;
                for j in i + 1..end {
                    chains.insert(data, j);
                }
                i = end;
                pending = None;
            }
            Some(_) => {
                // Current match is strictly longer: the byte at i-1 becomes a
                // literal and the new match is deferred in turn.
                tokens.push(Token::Literal(data[i - 1]));
                pending = Some((mlen, mdist));
                i += 1;
            }
            None => {
                if mlen >= nice_length {
                    // Good enough that lazy deferral cannot pay off.
                    tokens.push(Token::Match {
                        len: mlen as u16,
                        dist: mdist as u16,
                    });
                    for j in i + 1..i + mlen {
                        chains.insert(data, j);
                    }
                    i += mlen;
                } else if mlen >= MIN_MATCH {
                    pending = Some((mlen, mdist));
                    i += 1;
                } else {
                    tokens.push(Token::Literal(data[i]));
                    i += 1;
                }
            }
        }
    }
    if let Some((plen, pdist)) = pending {
        tokens.push(Token::Match {
            len: plen as u16,
            dist: pdist as u16,
        });
    }
}

/// Expand a token stream back to bytes (used by tests and by the encoder's
/// internal consistency checks).
pub fn expand(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for &t in tokens {
        match t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = dist as usize;
                let len = len as usize;
                assert!(dist <= out.len(), "match reaches before stream start");
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_tokens_valid(data: &[u8], tokens: &[Token]) {
        let mut pos = 0usize;
        for &t in tokens {
            match t {
                Token::Literal(b) => {
                    assert_eq!(b, data[pos]);
                    pos += 1;
                }
                Token::Match { len, dist } => {
                    let (len, dist) = (len as usize, dist as usize);
                    assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
                    assert!((1..=WINDOW_SIZE).contains(&dist) && dist <= pos);
                    for k in 0..len {
                        assert_eq!(data[pos + k], data[pos - dist + k]);
                    }
                    pos += len;
                }
            }
        }
        assert_eq!(pos, data.len());
        assert_eq!(expand(tokens), data);
    }

    #[test]
    fn greedy_and_lazy_reproduce_input() {
        let data = b"abcabcabcabcXabcabcabcabcYabcabc".repeat(20);
        for level in [Level::Fast, Level::Default, Level::Best] {
            let tokens = tokenize(&data, level);
            check_tokens_valid(&data, &tokens);
        }
    }

    #[test]
    fn finds_long_run() {
        let data = vec![7u8; 1000];
        let tokens = tokenize(&data, Level::Default);
        check_tokens_valid(&data, &tokens);
        // A run compresses to a handful of tokens (first literal + matches).
        assert!(tokens.len() <= 1 + 1000 / MAX_MATCH + 2, "{}", tokens.len());
    }

    #[test]
    fn respects_window_distance() {
        // Repeat a marker 40KB apart: farther than the window, so it must
        // not be matched across that gap.
        let mut data = vec![0u8; 80_000];
        for (i, b) in b"UNIQUEMARKER".iter().enumerate() {
            data[100 + i] = *b;
            data[70_000 + i] = *b;
        }
        let tokens = tokenize(&data, Level::Best);
        check_tokens_valid(&data, &tokens);
    }

    #[test]
    fn lazy_prefers_longer_match() {
        // "ab" repeats early; "bcdef" repeats later. At the position of the
        // second "abcdef", greedy takes the short "ab" match, lazy should
        // emit 'a' as a literal and take the longer "bcdef"-anchored match.
        let data = b"ab__bcdefgh__abcdefgh".to_vec();
        let lazy_tokens = tokenize(&data, Level::Best);
        check_tokens_valid(&data, &lazy_tokens);
        let greedy_tokens = tokenize(&data, Level::Fast);
        check_tokens_valid(&data, &greedy_tokens);
        let lazy_cost: usize = lazy_tokens.len();
        assert!(lazy_cost <= greedy_tokens.len());
    }

    #[test]
    fn all_literals_for_random_bytes() {
        let mut x = 0x9e3779b9u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 11) as u8
            })
            .collect();
        let tokens = tokenize(&data, Level::Default);
        check_tokens_valid(&data, &tokens);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(tokenize(&[], Level::Default).is_empty());
        for n in 1..=4 {
            let data = vec![9u8; n];
            let tokens = tokenize(&data, Level::Default);
            check_tokens_valid(&data, &tokens);
        }
    }

    #[test]
    fn overlapping_match_is_representable() {
        // "aaaa..." forces dist=1 matches that overlap their own output.
        let data = vec![b'a'; 50];
        let tokens = tokenize(&data, Level::Default);
        check_tokens_valid(&data, &tokens);
        assert!(tokens
            .iter()
            .any(|t| matches!(t, Token::Match { dist: 1, .. })));
    }
}
