//! The gzip container (RFC 1952) around DEFLATE.
//!
//! Scientific I/O stacks frequently store zlib streams inside gzip framing
//! (HDF5 external filters, POSIX tooling); providing it makes the `zlib`
//! substitute a drop-in for the full deflate family. The implementation
//! covers the fields real encoders emit — magic, method, flags (FNAME and
//! FCOMMENT parsing included), mtime, CRC-32 and ISIZE — and rejects the
//! rest loudly.

use super::{decode, EncoderScratch, Level};
use crate::checksum::crc32;
use crate::error::{CodecError, Result};
use crate::{Codec, CodecScratch};

const MAGIC: [u8; 2] = [0x1f, 0x8b];
const METHOD_DEFLATE: u8 = 8;

const FTEXT: u8 = 1 << 0;
const FHCRC: u8 = 1 << 1;
const FEXTRA: u8 = 1 << 2;
const FNAME: u8 = 1 << 3;
const FCOMMENT: u8 = 1 << 4;

/// gzip-compatible codec.
#[derive(Debug, Clone, Default)]
pub struct Gzip {
    /// Compression effort.
    pub level: Level,
    /// Optional original-file-name header field (NUL-free Latin-1 in real
    /// gzip; enforced as NUL-free bytes here).
    pub file_name: Option<Vec<u8>>,
}

impl Gzip {
    /// Codec with an explicit effort level.
    pub fn with_level(level: Level) -> Self {
        Self {
            level,
            file_name: None,
        }
    }

    /// Compress into a gzip member.
    pub fn compress_bytes(&self, input: &[u8]) -> Result<Vec<u8>> {
        self.compress_bytes_with(input, &mut EncoderScratch::new())
    }

    /// Compress into a gzip member, reusing `scratch` for match-finder state.
    pub fn compress_bytes_with(
        &self,
        input: &[u8],
        scratch: &mut EncoderScratch,
    ) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(input.len() / 2 + 32);
        out.extend_from_slice(&MAGIC);
        out.push(METHOD_DEFLATE);
        let mut flags = 0u8;
        if let Some(name) = &self.file_name {
            if name.contains(&0) {
                return Err(CodecError::InvalidParameter(
                    "gzip file name must not contain NUL",
                ));
            }
            flags |= FNAME;
        }
        out.push(flags);
        out.extend_from_slice(&0u32.to_le_bytes()); // MTIME: unset
                                                    // XFL: 2 = max compression, 4 = fastest.
        out.push(match self.level {
            Level::Fast => 4,
            Level::Default => 0,
            Level::Best => 2,
        });
        out.push(255); // OS: unknown
        if let Some(name) = &self.file_name {
            out.extend_from_slice(name);
            out.push(0);
        }
        super::deflate_into(input, self.level, scratch, &mut out);
        out.extend_from_slice(&crc32(input).to_le_bytes());
        out.extend_from_slice(&(input.len() as u32).to_le_bytes());
        Ok(out)
    }

    /// Decompress a gzip member, verifying CRC-32 and ISIZE.
    pub fn decompress_bytes(&self, input: &[u8]) -> Result<Vec<u8>> {
        if input.len() < 18 {
            return Err(CodecError::Truncated);
        }
        if input[0..2] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        if input[2] != METHOD_DEFLATE {
            return Err(CodecError::Corrupt("gzip method is not deflate"));
        }
        let flags = input[3];
        if flags & FHCRC != 0 {
            return Err(CodecError::Corrupt("gzip FHCRC not supported"));
        }
        let mut pos = 10usize;
        if flags & FEXTRA != 0 {
            if pos + 2 > input.len() {
                return Err(CodecError::Truncated);
            }
            let xlen = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
            pos += 2 + xlen;
            if pos > input.len() {
                return Err(CodecError::Truncated);
            }
        }
        for field in [FNAME, FCOMMENT] {
            if flags & field != 0 {
                let nul = input
                    .get(pos..)
                    .ok_or(CodecError::Truncated)?
                    .iter()
                    .position(|&b| b == 0)
                    .ok_or(CodecError::Truncated)?;
                pos += nul + 1;
            }
        }
        let _ = flags & FTEXT; // advisory only
        if pos + 8 > input.len() {
            return Err(CodecError::Truncated);
        }
        let body = &input[pos..input.len() - 8];
        let out = decode::inflate(body)?;
        let stored_crc = u32::from_le_bytes(
            crate::read_array(input, input.len() - 8).ok_or(CodecError::Truncated)?,
        );
        let stored_isize = u32::from_le_bytes(
            crate::read_array(input, input.len() - 4).ok_or(CodecError::Truncated)?,
        );
        let actual = crc32(&out);
        if stored_crc != actual {
            return Err(CodecError::ChecksumMismatch {
                expected: stored_crc,
                actual,
            });
        }
        if stored_isize != out.len() as u32 {
            return Err(CodecError::LengthMismatch {
                expected: stored_isize as usize,
                actual: out.len(),
            });
        }
        Ok(out)
    }

    /// Extract the FNAME field of a gzip member, if present.
    pub fn read_file_name(input: &[u8]) -> Result<Option<Vec<u8>>> {
        if input.len() < 10 || input[0..2] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let flags = input[3];
        if flags & FNAME == 0 {
            return Ok(None);
        }
        let mut pos = 10usize;
        if flags & FEXTRA != 0 {
            if pos + 2 > input.len() {
                return Err(CodecError::Truncated);
            }
            let xlen = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
            pos += 2 + xlen;
        }
        let name_region = input.get(pos..).ok_or(CodecError::Truncated)?;
        let nul = name_region
            .iter()
            .position(|&b| b == 0)
            .ok_or(CodecError::Truncated)?;
        Ok(Some(name_region[..nul].to_vec()))
    }
}

impl Codec for Gzip {
    fn name(&self) -> &'static str {
        "gzip"
    }

    fn compress(&self, input: &[u8]) -> Result<Vec<u8>> {
        self.compress_bytes(input)
    }

    fn compress_with(&self, input: &[u8], scratch: &mut CodecScratch) -> Result<Vec<u8>> {
        self.compress_bytes_with(input, &mut scratch.deflate)
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        self.decompress_bytes(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_plain() {
        let g = Gzip::default();
        for data in [&b""[..], b"x", b"hello hello hello hello", &[7u8; 9000]] {
            let comp = g.compress_bytes(data).unwrap();
            assert_eq!(g.decompress_bytes(&comp).unwrap(), data);
        }
    }

    #[test]
    fn header_fields_are_rfc1952() {
        let comp = Gzip::with_level(Level::Best)
            .compress_bytes(b"abc")
            .unwrap();
        assert_eq!(&comp[0..2], &[0x1f, 0x8b]);
        assert_eq!(comp[2], 8); // deflate
        assert_eq!(comp[8], 2); // XFL: max compression
        assert_eq!(comp[9], 255); // OS: unknown
                                  // Trailer: ISIZE == 3.
        assert_eq!(
            u32::from_le_bytes(comp[comp.len() - 4..].try_into().unwrap()),
            3
        );
    }

    #[test]
    fn file_name_roundtrip() {
        let g = Gzip {
            level: Level::Default,
            file_name: Some(b"checkpoint_0042.bin".to_vec()),
        };
        let comp = g.compress_bytes(b"payload payload").unwrap();
        assert_eq!(
            Gzip::read_file_name(&comp).unwrap().as_deref(),
            Some(&b"checkpoint_0042.bin"[..])
        );
        assert_eq!(g.decompress_bytes(&comp).unwrap(), b"payload payload");
        // A name-less member reports None.
        let plain = Gzip::default().compress_bytes(b"x").unwrap();
        assert_eq!(Gzip::read_file_name(&plain).unwrap(), None);
    }

    #[test]
    fn nul_in_file_name_rejected() {
        let g = Gzip {
            level: Level::Default,
            file_name: Some(b"bad\0name".to_vec()),
        };
        assert!(g.compress_bytes(b"x").is_err());
    }

    #[test]
    fn crc_and_isize_guard_payload() {
        let g = Gzip::default();
        let mut comp = g.compress_bytes(&vec![3u8; 5000]).unwrap();
        let n = comp.len();
        comp[n - 6] ^= 1; // CRC byte
        assert!(g.decompress_bytes(&comp).is_err());

        let mut comp = g.compress_bytes(&vec![3u8; 5000]).unwrap();
        let n = comp.len();
        comp[n - 1] ^= 1; // ISIZE byte
        assert!(g.decompress_bytes(&comp).is_err());
    }

    #[test]
    fn rejects_foreign_magic_and_method() {
        let g = Gzip::default();
        let mut comp = g.compress_bytes(b"x").unwrap();
        comp[0] = 0x78;
        assert!(matches!(
            g.decompress_bytes(&comp),
            Err(CodecError::BadMagic)
        ));
        let mut comp = g.compress_bytes(b"x").unwrap();
        comp[2] = 7;
        assert!(g.decompress_bytes(&comp).is_err());
    }

    #[test]
    fn truncation_detected() {
        let g = Gzip::default();
        let comp = g.compress_bytes(b"some data to be framed").unwrap();
        for keep in [0usize, 5, 12, comp.len() - 4] {
            assert!(g.decompress_bytes(&comp[..keep]).is_err());
        }
    }
}
