//! DEFLATE block emission: stored / fixed-Huffman / dynamic-Huffman, chosen
//! per block by exact bit-cost comparison.

use super::lz77::Token;
use super::{
    dist_code, length_code, CODELEN_ORDER, END_OF_BLOCK, NUM_CODELEN, NUM_DIST, NUM_LITLEN,
};
use crate::bitio::BitWriter;
use crate::huffman::{package_merge_lengths, Encoder};

/// Number of tokens grouped into one DEFLATE block. Blocks re-derive their
/// Huffman tables, so shorter blocks adapt better at a small header cost.
const TOKENS_PER_BLOCK: usize = 100_000;
/// Stored blocks carry a 16-bit length, so at most 65535 bytes each.
const MAX_STORED: usize = 65_535;

/// Fixed literal/length code lengths (RFC 1951 §3.2.6).
pub(crate) fn fixed_litlen_lengths() -> Vec<u8> {
    let mut l = vec![8u8; NUM_LITLEN];
    for item in l.iter_mut().take(256).skip(144) {
        *item = 9;
    }
    for item in l.iter_mut().take(280).skip(256) {
        *item = 7;
    }
    l
}

/// Fixed distance code lengths: 32 five-bit codes.
pub(crate) fn fixed_dist_lengths() -> Vec<u8> {
    vec![5u8; 32]
}

/// Histograms and precomputed code/extra info for one block of tokens.
struct BlockStats {
    lit_freq: [u64; NUM_LITLEN],
    dist_freq: [u64; NUM_DIST],
    /// Total extra bits (length + distance) the tokens will carry regardless
    /// of the Huffman tables chosen.
    extra_bits: u64,
}

fn gather_stats(tokens: &[Token]) -> BlockStats {
    let mut stats = BlockStats {
        lit_freq: [0; NUM_LITLEN],
        dist_freq: [0; NUM_DIST],
        extra_bits: 0,
    };
    for &t in tokens {
        match t {
            Token::Literal(b) => stats.lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                let (lc, le, _) = length_code(len as usize);
                let (dc, de, _) = dist_code(dist as usize);
                stats.lit_freq[257 + lc as usize] += 1;
                stats.dist_freq[dc as usize] += 1;
                stats.extra_bits += u64::from(le) + u64::from(de);
            }
        }
    }
    stats.lit_freq[END_OF_BLOCK as usize] += 1;
    stats
}

/// Run-length encode the concatenated code lengths with symbols 16/17/18 as
/// RFC 1951 prescribes. Returns `(symbol, extra_value)` pairs.
fn rle_code_lengths(lengths: &[u8]) -> Vec<(u8, u8)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < lengths.len() {
        let cur = lengths[i];
        let mut run = 1;
        while i + run < lengths.len() && lengths[i + run] == cur {
            run += 1;
        }
        if cur == 0 {
            let mut left = run;
            while left >= 11 {
                let take = left.min(138);
                out.push((18, (take - 11) as u8));
                left -= take;
            }
            if left >= 3 {
                out.push((17, (left - 3) as u8));
                left = 0;
            }
            for _ in 0..left {
                out.push((0, 0));
            }
        } else {
            out.push((cur, 0));
            let mut left = run - 1;
            while left >= 3 {
                let take = left.min(6);
                out.push((16, (take - 3) as u8));
                left -= take;
            }
            for _ in 0..left {
                out.push((cur, 0));
            }
        }
        i += run;
    }
    out
}

/// A fully prepared dynamic header: the RLE'd lengths, the code-length code,
/// and the exact header size in bits.
struct DynamicHeader {
    rle: Vec<(u8, u8)>,
    cl_encoder: Encoder,
    cl_lengths: Vec<u8>,
    hclen: usize,
    header_bits: u64,
}

fn build_dynamic_header(
    lit_lengths: &[u8],
    dist_lengths: &[u8],
    hlit: usize,
    hdist: usize,
) -> DynamicHeader {
    let mut all = Vec::with_capacity(hlit + hdist);
    all.extend_from_slice(&lit_lengths[..hlit]);
    all.extend_from_slice(&dist_lengths[..hdist]);
    let rle = rle_code_lengths(&all);
    let mut cl_freq = [0u64; NUM_CODELEN];
    for &(sym, _) in &rle {
        cl_freq[sym as usize] += 1;
    }
    let cl_lengths = package_merge_lengths(&cl_freq, 7);
    let cl_encoder = Encoder::from_lengths(&cl_lengths);
    let hclen = (4..=NUM_CODELEN)
        .rev()
        .find(|&k| cl_lengths[CODELEN_ORDER[k - 1]] != 0)
        .unwrap_or(4);
    let mut header_bits = 5 + 5 + 4 + 3 * hclen as u64;
    for &(sym, _) in &rle {
        header_bits += u64::from(cl_encoder.lengths[sym as usize]);
        header_bits += match sym {
            16 => 2,
            17 => 3,
            18 => 7,
            _ => 0,
        };
    }
    DynamicHeader {
        rle,
        cl_encoder,
        cl_lengths,
        hclen,
        header_bits,
    }
}

/// Emit the token body (symbols + extra bits) with the given encoders.
fn write_body(w: &mut BitWriter, tokens: &[Token], lit: &Encoder, dist: &Encoder) {
    for &t in tokens {
        match t {
            Token::Literal(b) => {
                let s = b as usize;
                w.write_bits(u64::from(lit.codes[s]), u32::from(lit.lengths[s]));
            }
            Token::Match { len, dist: d } => {
                let (lc, le, lv) = length_code(len as usize);
                let s = 257 + lc as usize;
                w.write_bits(u64::from(lit.codes[s]), u32::from(lit.lengths[s]));
                if le > 0 {
                    w.write_bits(u64::from(lv), u32::from(le));
                }
                let (dc, de, dv) = dist_code(d as usize);
                let s = dc as usize;
                w.write_bits(u64::from(dist.codes[s]), u32::from(dist.lengths[s]));
                if de > 0 {
                    w.write_bits(u64::from(dv), u32::from(de));
                }
            }
        }
    }
    let eob = END_OF_BLOCK as usize;
    w.write_bits(u64::from(lit.codes[eob]), u32::from(lit.lengths[eob]));
}

/// Emit one block in whichever of the three encodings is cheapest.
///
/// `bytes` is the slice of original input this block covers (needed for the
/// stored fallback); `is_final` sets BFINAL.
fn emit_one_block(w: &mut BitWriter, tokens: &[Token], bytes: &[u8], is_final: bool) {
    let stats = gather_stats(tokens);

    // Dynamic tables.
    let lit_lengths = package_merge_lengths(&stats.lit_freq, 15);
    // Ensure at least the EOB symbol exists (gather_stats guarantees it).
    debug_assert!(lit_lengths[END_OF_BLOCK as usize] > 0);
    let mut dist_lengths = package_merge_lengths(&stats.dist_freq, 15);
    if dist_lengths.iter().all(|&l| l == 0) {
        // RFC 1951 permits an empty distance alphabet, but assigning one
        // dummy 1-bit code keeps every decoder happy at the cost of ≤3
        // header bits.
        dist_lengths[0] = 1;
    }
    let hlit = (257..=NUM_LITLEN)
        .rev()
        .find(|&k| lit_lengths[k - 1] != 0)
        .unwrap_or(257);
    let hdist = (1..=NUM_DIST)
        .rev()
        .find(|&k| dist_lengths[k - 1] != 0)
        .unwrap_or(1);

    let lit_enc = Encoder::from_lengths(&lit_lengths);
    let dist_enc = Encoder::from_lengths(&dist_lengths);
    let header = build_dynamic_header(&lit_lengths, &dist_lengths, hlit, hdist);
    let dynamic_bits = 3
        + header.header_bits
        + lit_enc.cost_bits(&stats.lit_freq)
        + dist_enc.cost_bits(&stats.dist_freq)
        + stats.extra_bits;

    // Fixed tables (built once per process).
    use std::sync::OnceLock;
    static FIXED: OnceLock<(Encoder, Encoder)> = OnceLock::new();
    let (fixed_lit, fixed_dist) = FIXED.get_or_init(|| {
        (
            Encoder::from_lengths(&fixed_litlen_lengths()),
            Encoder::from_lengths(&fixed_dist_lengths()),
        )
    });
    let fixed_bits = 3
        + fixed_lit.cost_bits(&stats.lit_freq)
        + {
            // Pad dist_freq to the 32-entry fixed alphabet.
            let mut padded = [0u64; 32];
            padded[..NUM_DIST].copy_from_slice(&stats.dist_freq);
            fixed_dist.cost_bits(&padded)
        }
        + stats.extra_bits;

    // Stored: 3 header bits, alignment (≤7), then 4 bytes + payload per
    // 65535-byte piece.
    let pieces = bytes.len().div_ceil(MAX_STORED).max(1);
    let stored_bits = (3 + 7) * pieces as u64 + (4 * pieces + bytes.len()) as u64 * 8;

    primacy_trace::observe("deflate.block_bytes", bytes.len() as u64);
    if stored_bits < dynamic_bits && stored_bits < fixed_bits {
        primacy_trace::counter("deflate.blocks_stored", 1);
        emit_stored(w, bytes, is_final);
        return;
    }

    let final_bit = u64::from(is_final);
    if fixed_bits <= dynamic_bits {
        primacy_trace::counter("deflate.blocks_fixed", 1);
        w.write_bits(final_bit, 1);
        w.write_bits(0b01, 2);
        write_body(w, tokens, fixed_lit, fixed_dist);
    } else {
        primacy_trace::counter("deflate.blocks_dynamic", 1);
        w.write_bits(final_bit, 1);
        w.write_bits(0b10, 2);
        w.write_bits(hlit as u64 - 257, 5);
        w.write_bits(hdist as u64 - 1, 5);
        w.write_bits(header.hclen as u64 - 4, 4);
        for &idx in CODELEN_ORDER.iter().take(header.hclen) {
            w.write_bits(u64::from(header.cl_lengths[idx]), 3);
        }
        for &(sym, extra) in &header.rle {
            let s = sym as usize;
            w.write_bits(
                u64::from(header.cl_encoder.codes[s]),
                u32::from(header.cl_encoder.lengths[s]),
            );
            match sym {
                16 => w.write_bits(u64::from(extra), 2),
                17 => w.write_bits(u64::from(extra), 3),
                18 => w.write_bits(u64::from(extra), 7),
                _ => {}
            }
        }
        write_body(w, tokens, &lit_enc, &dist_enc);
    }
}

fn emit_stored(w: &mut BitWriter, bytes: &[u8], is_final: bool) {
    let mut pieces: Vec<&[u8]> = bytes.chunks(MAX_STORED).collect();
    if pieces.is_empty() {
        pieces.push(&[]);
    }
    let last = pieces.len() - 1;
    for (k, piece) in pieces.iter().enumerate() {
        let final_bit = u64::from(is_final && k == last);
        w.write_bits(final_bit, 1);
        w.write_bits(0b00, 2);
        w.align_byte();
        let len = piece.len() as u16;
        w.write_bytes(&len.to_le_bytes());
        w.write_bytes(&(!len).to_le_bytes());
        w.write_bytes(piece);
    }
}

/// Number of input bytes a token span covers.
fn span_bytes(tokens: &[Token]) -> usize {
    tokens
        .iter()
        .map(|t| match t {
            Token::Literal(_) => 1,
            Token::Match { len, .. } => *len as usize,
        })
        .sum()
}

/// Encode the full token stream as a sequence of DEFLATE blocks.
pub fn emit_blocks(input: &[u8], tokens: &[Token]) -> Vec<u8> {
    let mut w = BitWriter::new();
    if tokens.is_empty() {
        // An empty stream still needs one (final, empty) block.
        emit_stored(&mut w, &[], true);
        return w.finish();
    }
    let mut offset = 0usize;
    let mut start = 0usize;
    while start < tokens.len() {
        let end = (start + TOKENS_PER_BLOCK).min(tokens.len());
        let block = &tokens[start..end];
        let nbytes = span_bytes(block);
        let is_final = end == tokens.len();
        emit_one_block(&mut w, block, &input[offset..offset + nbytes], is_final);
        offset += nbytes;
        start = end;
    }
    debug_assert_eq!(offset, input.len());
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::super::{decode::inflate, deflate, Level};
    use super::*;

    #[test]
    fn rle_examples() {
        // A run of 20 zeros: one 18-symbol (11-138) covers it.
        let rle = rle_code_lengths(&[0; 20]);
        assert_eq!(rle, vec![(18, 9)]);
        // A run of 5 sevens: literal then 16 with repeat 4.
        let rle = rle_code_lengths(&[7; 5]);
        assert_eq!(rle, vec![(7, 0), (16, 1)]);
        // Short zero runs fall back to literal zeros.
        let rle = rle_code_lengths(&[0, 0, 5]);
        assert_eq!(rle, vec![(0, 0), (0, 0), (5, 0)]);
    }

    #[test]
    fn rle_roundtrip_reconstructs_lengths() {
        let lengths: Vec<u8> = (0..300)
            .map(|i| match i % 11 {
                0..=4 => 0,
                5..=7 => 8,
                8 => 9,
                _ => 7,
            })
            .collect();
        let rle = rle_code_lengths(&lengths);
        // Reconstruct.
        let mut back: Vec<u8> = Vec::new();
        for &(sym, extra) in &rle {
            match sym {
                16 => {
                    let prev = *back.last().unwrap();
                    for _ in 0..(extra + 3) {
                        back.push(prev);
                    }
                }
                17 => back.extend(std::iter::repeat_n(0, extra as usize + 3)),
                18 => back.extend(std::iter::repeat_n(0, extra as usize + 11)),
                l => back.push(l),
            }
        }
        assert_eq!(back, lengths);
    }

    #[test]
    fn stored_block_roundtrip() {
        let mut w = BitWriter::new();
        emit_stored(&mut w, b"hello stored world", true);
        let out = w.finish();
        assert_eq!(inflate(&out).unwrap(), b"hello stored world");
    }

    #[test]
    fn stored_block_splits_at_65535() {
        let data = vec![0xAB; 70_000];
        let mut w = BitWriter::new();
        emit_stored(&mut w, &data, true);
        let out = w.finish();
        assert_eq!(inflate(&out).unwrap(), data);
    }

    #[test]
    fn multi_block_stream_roundtrip() {
        // More than TOKENS_PER_BLOCK literals of incompressible-ish data to
        // force several blocks.
        let mut x = 1u32;
        let data: Vec<u8> = (0..250_000)
            .map(|_| {
                x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (x >> 24) as u8
            })
            .collect();
        let comp = deflate(&data, Level::Fast);
        assert_eq!(inflate(&comp).unwrap(), data);
    }

    #[test]
    fn fixed_tables_have_rfc_shape() {
        let l = fixed_litlen_lengths();
        assert_eq!(l[0], 8);
        assert_eq!(l[143], 8);
        assert_eq!(l[144], 9);
        assert_eq!(l[255], 9);
        assert_eq!(l[256], 7);
        assert_eq!(l[279], 7);
        assert_eq!(l[280], 8);
        assert_eq!(l[287], 8);
        assert!(fixed_dist_lengths().iter().all(|&d| d == 5));
    }
}
