//! DEFLATE block emission: stored / fixed-Huffman / dynamic-Huffman, chosen
//! per block by exact bit-cost comparison.

use super::lz77::Token;
use super::{
    CODELEN_ORDER, DIST_BASE, DIST_EXTRA, END_OF_BLOCK, LENGTH_BASE, LENGTH_EXTRA, NUM_CODELEN,
    NUM_DIST, NUM_LITLEN,
};
use crate::bitio::BitWriter;
use crate::huffman::{package_merge_into, Encoder};

/// Number of tokens grouped into one DEFLATE block. Blocks re-derive their
/// Huffman tables, so shorter blocks adapt better at a small header cost.
const TOKENS_PER_BLOCK: usize = 100_000;
/// Stored blocks carry a 16-bit length, so at most 65535 bytes each.
const MAX_STORED: usize = 65_535;

/// Per-match-length entry, indexed by `len - 3` (lengths 3..=258): bits 0..5
/// hold the length-code index (0..=28), bits 5..8 the extra-bit count, bits
/// 8..13 the extra-bit value. Replaces the branchy `length_code()` arithmetic
/// on the two hottest encoder paths (histogramming and emission).
const LEN_SYM: [u16; 256] = build_len_sym();

const fn build_len_sym() -> [u16; 256] {
    let mut t = [0u16; 256];
    let mut len = 3usize;
    while len <= 258 {
        // Highest code whose base does not exceed `len`; scanning from 28
        // downward also lands len == 258 on its dedicated zero-extra code.
        let mut code = 28usize;
        while (LENGTH_BASE[code] as usize) > len {
            code -= 1;
        }
        let extra_val = len - LENGTH_BASE[code] as usize;
        t[len - 3] = code as u16 | ((LENGTH_EXTRA[code] as u16) << 5) | ((extra_val as u16) << 8);
        len += 1;
    }
    t
}

/// Distance-slot lookup split at 256 the way zlib's `dist_code[]` is: small
/// distances index directly, larger ones through a 128-aligned bucket (every
/// `DIST_BASE` entry above 256 is `128k + 1`, so `(dist - 1) >> 7` is
/// constant within a slot).
const DIST_SLOT_SMALL: [u8; 256] = build_dist_slot(0);
const DIST_SLOT_LARGE: [u8; 256] = build_dist_slot(7);

const fn build_dist_slot(shift: u32) -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        let dist = (i << shift) + 1;
        let mut slot = NUM_DIST - 1;
        while (DIST_BASE[slot] as usize) > dist {
            slot -= 1;
        }
        t[i] = slot as u8;
        i += 1;
    }
    t
}

/// Distance slot (0..=29) for `dist` in 1..=32768.
#[inline]
fn dist_slot(dist: u16) -> usize {
    let d = (dist as usize).wrapping_sub(1);
    if d < 256 {
        DIST_SLOT_SMALL[d] as usize
    } else {
        DIST_SLOT_LARGE[(d >> 7) & 0xff] as usize
    }
}

/// Fixed literal/length code lengths (RFC 1951 §3.2.6).
pub(crate) fn fixed_litlen_lengths() -> Vec<u8> {
    let mut l = vec![8u8; NUM_LITLEN];
    for item in l.iter_mut().take(256).skip(144) {
        *item = 9;
    }
    for item in l.iter_mut().take(280).skip(256) {
        *item = 7;
    }
    l
}

/// Fixed distance code lengths: 32 five-bit codes.
pub(crate) fn fixed_dist_lengths() -> Vec<u8> {
    vec![5u8; 32]
}

/// Histograms and precomputed code/extra info for one block of tokens.
struct BlockStats {
    lit_freq: [u64; NUM_LITLEN],
    dist_freq: [u64; NUM_DIST],
    /// Total extra bits (length + distance) the tokens will carry regardless
    /// of the Huffman tables chosen.
    extra_bits: u64,
}

fn gather_stats(tokens: &[Token]) -> BlockStats {
    let mut stats = BlockStats {
        lit_freq: [0; NUM_LITLEN],
        dist_freq: [0; NUM_DIST],
        extra_bits: 0,
    };
    // Literal counts go to four interleaved sub-histograms so repeated bytes
    // do not serialize on store-to-load forwarding of one counter; a block is
    // at most `TOKENS_PER_BLOCK` tokens, so `u32` lanes cannot overflow.
    let mut lanes = [[0u32; 256]; 4];
    let mut quads = tokens.chunks_exact(4);
    let tally = |t: Token, lane: &mut [u32; 256], stats: &mut BlockStats| match t {
        Token::Literal(b) => lane[b as usize] += 1,
        Token::Match { len, dist } => {
            let e = LEN_SYM[(len - 3) as usize];
            let ds = dist_slot(dist);
            stats.lit_freq[257 + (e & 0x1f) as usize] += 1;
            stats.dist_freq[ds] += 1;
            stats.extra_bits += u64::from((e >> 5) & 0x7) + u64::from(DIST_EXTRA[ds]);
        }
    };
    for quad in &mut quads {
        tally(quad[0], &mut lanes[0], &mut stats);
        tally(quad[1], &mut lanes[1], &mut stats);
        tally(quad[2], &mut lanes[2], &mut stats);
        tally(quad[3], &mut lanes[3], &mut stats);
    }
    for &t in quads.remainder() {
        tally(t, &mut lanes[0], &mut stats);
    }
    for lane in &lanes {
        for (f, &c) in stats.lit_freq.iter_mut().zip(lane.iter()) {
            *f += u64::from(c);
        }
    }
    stats.lit_freq[END_OF_BLOCK as usize] += 1;
    stats
}

/// Run-length encode the concatenated code lengths with symbols 16/17/18 as
/// RFC 1951 prescribes, replacing `out` with `(symbol, extra_value)` pairs.
fn rle_code_lengths_into(lengths: &[u8], out: &mut Vec<(u8, u8)>) {
    out.clear();
    let mut i = 0;
    while i < lengths.len() {
        let cur = lengths[i];
        let mut run = 1;
        while i + run < lengths.len() && lengths[i + run] == cur {
            run += 1;
        }
        if cur == 0 {
            let mut left = run;
            while left >= 11 {
                let take = left.min(138);
                out.push((18, (take - 11) as u8));
                left -= take;
            }
            if left >= 3 {
                out.push((17, (left - 3) as u8));
                left = 0;
            }
            for _ in 0..left {
                out.push((0, 0));
            }
        } else {
            out.push((cur, 0));
            let mut left = run - 1;
            while left >= 3 {
                let take = left.min(6);
                out.push((16, (take - 3) as u8));
                left -= take;
            }
            for _ in 0..left {
                out.push((cur, 0));
            }
        }
        i += run;
    }
}

/// Reusable buffers for building one block's dynamic header: code-length
/// vectors, their concatenation, and the RLE stream. One lives inside every
/// [`super::lz77::EncoderScratch`], so steady-state block emission re-derives
/// its Huffman tables without re-allocating them.
#[derive(Debug, Default)]
pub struct HeaderScratch {
    lit_lengths: Vec<u8>,
    dist_lengths: Vec<u8>,
    all_lengths: Vec<u8>,
    cl_lengths: Vec<u8>,
    rle: Vec<(u8, u8)>,
}

/// Sizing facts for an already-built dynamic header; the RLE stream and the
/// code-length lengths stay behind in the [`HeaderScratch`].
struct DynamicHeader {
    cl_encoder: Encoder,
    hclen: usize,
    header_bits: u64,
}

impl HeaderScratch {
    /// RLE the first `hlit`/`hdist` lit/dist lengths (already computed into
    /// this scratch) and build the code-length code over them.
    fn build_dynamic(&mut self, hlit: usize, hdist: usize) -> DynamicHeader {
        self.all_lengths.clear();
        self.all_lengths
            .extend_from_slice(&self.lit_lengths[..hlit]);
        self.all_lengths
            .extend_from_slice(&self.dist_lengths[..hdist]);
        rle_code_lengths_into(&self.all_lengths, &mut self.rle);
        let mut cl_freq = [0u64; NUM_CODELEN];
        for &(sym, _) in &self.rle {
            cl_freq[sym as usize] += 1;
        }
        package_merge_into(&cl_freq, 7, &mut self.cl_lengths);
        let cl_encoder = Encoder::from_lengths(&self.cl_lengths);
        let hclen = (4..=NUM_CODELEN)
            .rev()
            .find(|&k| self.cl_lengths[CODELEN_ORDER[k - 1]] != 0)
            .unwrap_or(4);
        let mut header_bits = 5 + 5 + 4 + 3 * hclen as u64;
        for &(sym, _) in &self.rle {
            header_bits += u64::from(cl_encoder.lengths[sym as usize]);
            header_bits += match sym {
                16 => 2,
                17 => 3,
                18 => 7,
                _ => 0,
            };
        }
        DynamicHeader {
            cl_encoder,
            hclen,
            header_bits,
        }
    }
}

/// Emit the token body (symbols + extra bits) with the given encoders.
///
/// Each match is assembled into one `u64` — length code, length extra bits,
/// distance code, distance extra bits, at most 15+5+15+13 = 48 bits — and
/// handed to the bit writer as a single call, so the writer's flush runs
/// once per token instead of up to four times. Runs of literals batch the
/// same way: consecutive literal codes pack into one `u64` until the
/// writer's 57-bit call limit would overflow (six-plus literals per call on
/// the 8-bit-ish residual planes), so literal-heavy blocks pay the writer's
/// flush once per group instead of once per byte.
fn write_body(w: &mut BitWriter, tokens: &[Token], lit: &Encoder, dist: &Encoder) {
    let mut i = 0;
    while let Some(&t) = tokens.get(i) {
        match t {
            Token::Literal(b) => {
                let s = b as usize;
                let mut bits = u64::from(lit.codes[s]);
                let mut n = u32::from(lit.lengths[s]);
                while let Some(&Token::Literal(b2)) = tokens.get(i + 1) {
                    let s2 = b2 as usize;
                    let l2 = u32::from(lit.lengths[s2]);
                    if n + l2 > 57 {
                        break;
                    }
                    bits |= u64::from(lit.codes[s2]) << n;
                    n += l2;
                    i += 1;
                }
                w.write_bits(bits, n);
            }
            Token::Match { len, dist: d } => {
                let e = LEN_SYM[(len - 3) as usize];
                let s = 257 + (e & 0x1f) as usize;
                let llen = u32::from(lit.lengths[s]);
                let mut bits = u64::from(lit.codes[s]) | (u64::from(e >> 8) << llen);
                let mut n = llen + ((u32::from(e) >> 5) & 0x7);

                let ds = dist_slot(d);
                let dlen = u32::from(dist.lengths[ds]);
                let dv = u64::from(d - DIST_BASE[ds]);
                bits |= (u64::from(dist.codes[ds]) | (dv << dlen)) << n;
                n += dlen + u32::from(DIST_EXTRA[ds]);
                w.write_bits(bits, n);
            }
        }
        i += 1;
    }
    let eob = END_OF_BLOCK as usize;
    w.write_bits(u64::from(lit.codes[eob]), u32::from(lit.lengths[eob]));
}

/// Emit one block in whichever of the three encodings is cheapest.
///
/// `bytes` is the slice of original input this block covers (needed for the
/// stored fallback); `is_final` sets BFINAL.
fn emit_one_block(
    w: &mut BitWriter,
    tokens: &[Token],
    bytes: &[u8],
    is_final: bool,
    hs: &mut HeaderScratch,
) {
    let stats = gather_stats(tokens);

    // Dynamic tables.
    let header_span = primacy_trace::span("deflate.header_build");
    package_merge_into(&stats.lit_freq, 15, &mut hs.lit_lengths);
    // Ensure at least the EOB symbol exists (gather_stats guarantees it).
    debug_assert!(hs.lit_lengths[END_OF_BLOCK as usize] > 0);
    package_merge_into(&stats.dist_freq, 15, &mut hs.dist_lengths);
    if hs.dist_lengths.iter().all(|&l| l == 0) {
        // RFC 1951 permits an empty distance alphabet, but assigning one
        // dummy 1-bit code keeps every decoder happy at the cost of ≤3
        // header bits.
        hs.dist_lengths[0] = 1;
    }
    let hlit = (257..=NUM_LITLEN)
        .rev()
        .find(|&k| hs.lit_lengths[k - 1] != 0)
        .unwrap_or(257);
    let hdist = (1..=NUM_DIST)
        .rev()
        .find(|&k| hs.dist_lengths[k - 1] != 0)
        .unwrap_or(1);

    let lit_enc = Encoder::from_lengths(&hs.lit_lengths);
    let dist_enc = Encoder::from_lengths(&hs.dist_lengths);
    let header = hs.build_dynamic(hlit, hdist);
    drop(header_span);
    let dynamic_bits = 3
        + header.header_bits
        + lit_enc.cost_bits(&stats.lit_freq)
        + dist_enc.cost_bits(&stats.dist_freq)
        + stats.extra_bits;

    // Fixed tables (built once per process).
    use std::sync::OnceLock;
    static FIXED: OnceLock<(Encoder, Encoder)> = OnceLock::new();
    let (fixed_lit, fixed_dist) = FIXED.get_or_init(|| {
        (
            Encoder::from_lengths(&fixed_litlen_lengths()),
            Encoder::from_lengths(&fixed_dist_lengths()),
        )
    });
    let fixed_bits = 3
        + fixed_lit.cost_bits(&stats.lit_freq)
        + {
            // Pad dist_freq to the 32-entry fixed alphabet.
            let mut padded = [0u64; 32];
            padded[..NUM_DIST].copy_from_slice(&stats.dist_freq);
            fixed_dist.cost_bits(&padded)
        }
        + stats.extra_bits;

    // Stored: 3 header bits, alignment (≤7), then 4 bytes + payload per
    // 65535-byte piece.
    let pieces = bytes.len().div_ceil(MAX_STORED).max(1);
    let stored_bits = (3 + 7) * pieces as u64 + (4 * pieces + bytes.len()) as u64 * 8;

    primacy_trace::observe("deflate.block_bytes", bytes.len() as u64);
    if stored_bits < dynamic_bits && stored_bits < fixed_bits {
        primacy_trace::counter("deflate.blocks_stored", 1);
        emit_stored(w, bytes, is_final);
        return;
    }

    let final_bit = u64::from(is_final);
    if fixed_bits <= dynamic_bits {
        primacy_trace::counter("deflate.blocks_fixed", 1);
        w.write_bits(final_bit, 1);
        w.write_bits(0b01, 2);
        write_body(w, tokens, fixed_lit, fixed_dist);
    } else {
        primacy_trace::counter("deflate.blocks_dynamic", 1);
        w.write_bits(final_bit, 1);
        w.write_bits(0b10, 2);
        w.write_bits(hlit as u64 - 257, 5);
        w.write_bits(hdist as u64 - 1, 5);
        w.write_bits(header.hclen as u64 - 4, 4);
        for &idx in CODELEN_ORDER.iter().take(header.hclen) {
            w.write_bits(u64::from(hs.cl_lengths[idx]), 3);
        }
        for &(sym, extra) in &hs.rle {
            let s = sym as usize;
            w.write_bits(
                u64::from(header.cl_encoder.codes[s]),
                u32::from(header.cl_encoder.lengths[s]),
            );
            match sym {
                16 => w.write_bits(u64::from(extra), 2),
                17 => w.write_bits(u64::from(extra), 3),
                18 => w.write_bits(u64::from(extra), 7),
                _ => {}
            }
        }
        write_body(w, tokens, &lit_enc, &dist_enc);
    }
}

fn emit_stored(w: &mut BitWriter, bytes: &[u8], is_final: bool) {
    let mut pieces: Vec<&[u8]> = bytes.chunks(MAX_STORED).collect();
    if pieces.is_empty() {
        pieces.push(&[]);
    }
    let last = pieces.len() - 1;
    for (k, piece) in pieces.iter().enumerate() {
        let final_bit = u64::from(is_final && k == last);
        w.write_bits(final_bit, 1);
        w.write_bits(0b00, 2);
        w.align_byte();
        let len = piece.len() as u16;
        w.write_bytes(&len.to_le_bytes());
        w.write_bytes(&(!len).to_le_bytes());
        w.write_bytes(piece);
    }
}

/// Number of input bytes a token span covers.
fn span_bytes(tokens: &[Token]) -> usize {
    tokens
        .iter()
        .map(|t| match t {
            Token::Literal(_) => 1,
            Token::Match { len, .. } => *len as usize,
        })
        .sum()
}

/// Encode the full token stream as a sequence of DEFLATE blocks.
///
/// One-shot convenience over [`emit_blocks_with`]; allocates fresh header
/// scratch per call. The pipeline threads the scratch embedded in
/// [`super::lz77::EncoderScratch`] instead.
pub fn emit_blocks(input: &[u8], tokens: &[Token]) -> Vec<u8> {
    emit_blocks_with(input, tokens, &mut HeaderScratch::default())
}

/// [`emit_blocks`] with caller-owned header scratch, so steady-state block
/// emission reuses the code-length/RLE buffers across blocks and calls.
pub fn emit_blocks_with(input: &[u8], tokens: &[Token], hs: &mut HeaderScratch) -> Vec<u8> {
    // Worst case is all-stored: 5 header bytes per 65535 plus the data.
    let buf = Vec::with_capacity(input.len() + input.len() / 250 + 64);
    emit_blocks_into(input, tokens, hs, buf)
}

/// [`emit_blocks_with`], appending to `buf` (byte-aligned) and returning it.
/// Lets the zlib/gzip containers hand the encoder their output buffer so the
/// finished stream is never copied into the container afterwards.
pub fn emit_blocks_into(
    input: &[u8],
    tokens: &[Token],
    hs: &mut HeaderScratch,
    buf: Vec<u8>,
) -> Vec<u8> {
    let mut w = BitWriter::with_buffer(buf);
    if tokens.is_empty() {
        // An empty stream still needs one (final, empty) block.
        emit_stored(&mut w, &[], true);
        return w.finish();
    }
    let mut offset = 0usize;
    let mut start = 0usize;
    while start < tokens.len() {
        let end = (start + TOKENS_PER_BLOCK).min(tokens.len());
        let block = &tokens[start..end];
        let nbytes = span_bytes(block);
        let is_final = end == tokens.len();
        emit_one_block(&mut w, block, &input[offset..offset + nbytes], is_final, hs);
        offset += nbytes;
        start = end;
    }
    debug_assert_eq!(offset, input.len());
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::super::{decode::inflate, deflate, Level};
    use super::*;

    fn rle_code_lengths(lengths: &[u8]) -> Vec<(u8, u8)> {
        let mut out = Vec::new();
        rle_code_lengths_into(lengths, &mut out);
        out
    }

    #[test]
    fn rle_examples() {
        // A run of 20 zeros: one 18-symbol (11-138) covers it.
        let rle = rle_code_lengths(&[0; 20]);
        assert_eq!(rle, vec![(18, 9)]);
        // A run of 5 sevens: literal then 16 with repeat 4.
        let rle = rle_code_lengths(&[7; 5]);
        assert_eq!(rle, vec![(7, 0), (16, 1)]);
        // Short zero runs fall back to literal zeros.
        let rle = rle_code_lengths(&[0, 0, 5]);
        assert_eq!(rle, vec![(0, 0), (0, 0), (5, 0)]);
        // A reused output vector is fully replaced, not appended to.
        let mut out = vec![(9u8, 9u8); 4];
        rle_code_lengths_into(&[7; 5], &mut out);
        assert_eq!(out, vec![(7, 0), (16, 1)]);
    }

    #[test]
    fn len_sym_table_matches_length_code() {
        for len in 3..=258usize {
            let (code, extra, value) = super::super::length_code(len);
            let e = LEN_SYM[len - 3];
            assert_eq!(e & 0x1f, code, "len {len} code");
            assert_eq!((e >> 5) & 0x7, u16::from(extra), "len {len} extra bits");
            assert_eq!(e >> 8, value, "len {len} extra value");
        }
    }

    #[test]
    fn dist_slot_tables_match_dist_code() {
        for dist in 1..=super::super::WINDOW_SIZE {
            let (code, extra, value) = super::super::dist_code(dist);
            let slot = dist_slot(dist as u16);
            assert_eq!(slot, code as usize, "dist {dist} slot");
            assert_eq!(DIST_EXTRA[slot], extra, "dist {dist} extra bits");
            assert_eq!(dist as u16 - DIST_BASE[slot], value, "dist {dist} value");
        }
    }

    #[test]
    fn rle_roundtrip_reconstructs_lengths() {
        let lengths: Vec<u8> = (0..300)
            .map(|i| match i % 11 {
                0..=4 => 0,
                5..=7 => 8,
                8 => 9,
                _ => 7,
            })
            .collect();
        let rle = rle_code_lengths(&lengths);
        // Reconstruct.
        let mut back: Vec<u8> = Vec::new();
        for &(sym, extra) in &rle {
            match sym {
                16 => {
                    let prev = *back.last().unwrap();
                    for _ in 0..(extra + 3) {
                        back.push(prev);
                    }
                }
                17 => back.extend(std::iter::repeat_n(0, extra as usize + 3)),
                18 => back.extend(std::iter::repeat_n(0, extra as usize + 11)),
                l => back.push(l),
            }
        }
        assert_eq!(back, lengths);
    }

    #[test]
    fn stored_block_roundtrip() {
        let mut w = BitWriter::new();
        emit_stored(&mut w, b"hello stored world", true);
        let out = w.finish();
        assert_eq!(inflate(&out).unwrap(), b"hello stored world");
    }

    #[test]
    fn stored_block_splits_at_65535() {
        let data = vec![0xAB; 70_000];
        let mut w = BitWriter::new();
        emit_stored(&mut w, &data, true);
        let out = w.finish();
        assert_eq!(inflate(&out).unwrap(), data);
    }

    #[test]
    fn multi_block_stream_roundtrip() {
        // More than TOKENS_PER_BLOCK literals of incompressible-ish data to
        // force several blocks.
        let mut x = 1u32;
        let data: Vec<u8> = (0..250_000)
            .map(|_| {
                x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (x >> 24) as u8
            })
            .collect();
        let comp = deflate(&data, Level::Fast);
        assert_eq!(inflate(&comp).unwrap(), data);
    }

    #[test]
    fn fixed_tables_have_rfc_shape() {
        let l = fixed_litlen_lengths();
        assert_eq!(l[0], 8);
        assert_eq!(l[143], 8);
        assert_eq!(l[144], 9);
        assert_eq!(l[255], 9);
        assert_eq!(l[256], 7);
        assert_eq!(l[279], 7);
        assert_eq!(l[280], 8);
        assert_eq!(l[287], 8);
        assert!(fixed_dist_lengths().iter().all(|&d| d == 5));
    }
}
