//! The zlib container (RFC 1950): a 2-byte header, a DEFLATE stream, and a
//! big-endian Adler-32 of the uncompressed data.

use super::{decode, EncoderScratch, Level};
use crate::checksum::adler32;
use crate::error::{CodecError, Result};
use crate::{Codec, CodecScratch};

/// zlib-compatible codec: the paper's `zlib` baseline and PRIMACY's default
/// backend "solver".
#[derive(Debug, Clone, Copy)]
pub struct Zlib {
    /// Compression effort; the paper runs zlib at its default level.
    pub level: Level,
}

impl Default for Zlib {
    fn default() -> Self {
        Self {
            level: Level::Default,
        }
    }
}

impl Zlib {
    /// Codec with an explicit effort level.
    pub fn with_level(level: Level) -> Self {
        Self { level }
    }

    /// Compress into a zlib stream.
    pub fn compress_bytes(&self, input: &[u8]) -> Vec<u8> {
        self.compress_bytes_with(input, &mut EncoderScratch::new())
    }

    /// Compress into a zlib stream, reusing `scratch` for match-finder state.
    pub fn compress_bytes_with(&self, input: &[u8], scratch: &mut EncoderScratch) -> Vec<u8> {
        // Header + worst-case stored-block expansion + trailer, reserved up
        // front; the encoder appends the body directly (no finished-stream
        // copy, no doubling growth while it is written).
        let mut out = Vec::with_capacity(input.len() + input.len() / 250 + 70);
        // CMF: CM=8 (deflate), CINFO=7 (32K window).
        let cmf: u8 = 0x78;
        // FLG: FLEVEL=2 (default), FDICT=0, FCHECK makes (CMF<<8|FLG) % 31 == 0.
        let mut flg: u8 = 2 << 6;
        let rem = ((u16::from(cmf) << 8) | u16::from(flg)) % 31;
        if rem != 0 {
            flg += (31 - rem) as u8;
        }
        out.push(cmf);
        out.push(flg);
        super::deflate_into(input, self.level, scratch, &mut out);
        out.extend_from_slice(&adler32(input).to_be_bytes());
        out
    }

    /// Decompress a zlib stream, verifying header and Adler-32 trailer.
    pub fn decompress_bytes(&self, input: &[u8]) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(input.len().saturating_mul(3));
        self.decompress_bytes_into(input, &mut decode::InflateScratch::new(), &mut out)?;
        Ok(out)
    }

    /// Decompress a zlib stream into `out` (cleared first, capacity kept),
    /// reusing `scratch` for the inflater's Huffman tables. A warm call on a
    /// sufficiently-large `out` performs no allocations.
    pub fn decompress_bytes_into(
        &self,
        input: &[u8],
        scratch: &mut decode::InflateScratch,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        if input.len() < 6 {
            return Err(CodecError::Truncated);
        }
        let cmf = input[0];
        let flg = input[1];
        if cmf & 0x0f != 8 {
            return Err(CodecError::Corrupt("zlib CM is not deflate"));
        }
        if (cmf >> 4) > 7 {
            return Err(CodecError::Corrupt("zlib window size exceeds 32K"));
        }
        if ((u16::from(cmf) << 8) | u16::from(flg)) % 31 != 0 {
            return Err(CodecError::Corrupt("zlib header check failed"));
        }
        if flg & 0x20 != 0 {
            return Err(CodecError::Corrupt("preset dictionaries not supported"));
        }
        let body = &input[2..input.len() - 4];
        out.clear();
        decode::inflate_with(body, scratch, out)?;
        let stored = u32::from_be_bytes(
            crate::read_array(input, input.len() - 4).ok_or(CodecError::Truncated)?,
        );
        let actual = adler32(out);
        if stored != actual {
            return Err(CodecError::ChecksumMismatch {
                expected: stored,
                actual,
            });
        }
        Ok(())
    }
}

impl Codec for Zlib {
    fn name(&self) -> &'static str {
        match self.level {
            Level::Fast => "zlib-1",
            Level::Default => "zlib",
            Level::Best => "zlib-9",
        }
    }

    fn compress(&self, input: &[u8]) -> Result<Vec<u8>> {
        Ok(self.compress_bytes(input))
    }

    fn compress_with(&self, input: &[u8], scratch: &mut CodecScratch) -> Result<Vec<u8>> {
        Ok(self.compress_bytes_with(input, &mut scratch.deflate))
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        self.decompress_bytes(input)
    }

    fn decompress_into(
        &self,
        input: &[u8],
        scratch: &mut CodecScratch,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        self.decompress_bytes_into(input, &mut scratch.inflate, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_is_standard_78_9c() {
        let out = Zlib::default().compress_bytes(b"x");
        assert_eq!(out[0], 0x78);
        assert_eq!(out[1], 0x9c);
    }

    #[test]
    fn roundtrip_texts() {
        let z = Zlib::default();
        for data in [
            &b""[..],
            b"a",
            b"hello world hello world hello world",
            &[0u8; 5000][..],
        ] {
            let comp = z.compress_bytes(data);
            assert_eq!(z.decompress_bytes(&comp).unwrap(), data);
        }
    }

    #[test]
    fn detects_payload_corruption() {
        let z = Zlib::default();
        let mut comp = z.compress_bytes(&vec![3u8; 10_000]);
        // Flip a bit somewhere in the deflate body.
        let mid = comp.len() / 2;
        comp[mid] ^= 0x10;
        assert!(z.decompress_bytes(&comp).is_err());
    }

    #[test]
    fn detects_trailer_corruption() {
        let z = Zlib::default();
        let mut comp = z.compress_bytes(b"check the adler trailer");
        let n = comp.len();
        comp[n - 1] ^= 0xff;
        assert!(matches!(
            z.decompress_bytes(&comp),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_header() {
        let z = Zlib::default();
        assert!(z.decompress_bytes(&[0x79, 0x9c, 0, 0, 0, 1]).is_err());
        assert!(z.decompress_bytes(&[0x78]).is_err());
    }

    #[test]
    fn levels_trade_ratio_for_speed() {
        // On repetitive data, Best must not be worse than Fast.
        let data: Vec<u8> = (0..200_000u32).map(|i| ((i / 50) % 251) as u8).collect();
        let fast = Zlib::with_level(Level::Fast).compress_bytes(&data);
        let best = Zlib::with_level(Level::Best).compress_bytes(&data);
        assert!(best.len() <= fast.len());
        assert_eq!(Zlib::default().decompress_bytes(&fast).unwrap(), data);
        assert_eq!(Zlib::default().decompress_bytes(&best).unwrap(), data);
    }
}
