//! DEFLATE (RFC 1951) and the zlib container (RFC 1950), from scratch.
//!
//! The compressor is a classic zlib-style design: LZ77 with hash-chain match
//! finding and optional lazy evaluation ([`lz77`]), followed by per-block
//! entropy coding that picks the cheapest of stored / fixed-Huffman /
//! dynamic-Huffman encodings ([`encode`]). The decompressor ([`decode`]) is a
//! complete inflater. [`Zlib`] wraps both in the RFC 1950 container with an
//! Adler-32 trailer and implements [`crate::Codec`] — this is the `zlib`
//! baseline of the PRIMACY paper and the default solver behind the
//! preconditioner.

/// Inflate: block and stream decoding.
pub mod decode;
/// Deflate: block and stream encoding.
pub mod encode;
mod gzip;
/// LZ77 match finding shared by the encoder.
pub mod lz77;
mod zlib;

pub use decode::InflateScratch;
pub use gzip::Gzip;
pub use lz77::EncoderScratch;
pub use zlib::Zlib;

use crate::error::Result;

/// Maximum LZ77 back-reference distance (the DEFLATE window).
pub const WINDOW_SIZE: usize = 32 * 1024;
/// Shortest representable match.
pub const MIN_MATCH: usize = 3;
/// Longest representable match.
pub const MAX_MATCH: usize = 258;
/// End-of-block symbol in the literal/length alphabet.
pub const END_OF_BLOCK: u16 = 256;
/// Size of the literal/length alphabet (288 includes two reserved codes).
pub const NUM_LITLEN: usize = 288;
/// Size of the distance alphabet (30 used + 2 reserved).
pub const NUM_DIST: usize = 30;
/// Size of the code-length alphabet used to compress the dynamic header.
pub const NUM_CODELEN: usize = 19;

/// Base match length for each length code `257 + i`.
pub const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
/// Extra bits carried by each length code.
pub const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// Base distance for each distance code.
pub const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
/// Extra bits carried by each distance code.
pub const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];
/// Transmission order of the code-length code lengths (RFC 1951 §3.2.7).
pub const CODELEN_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// Map a match length (3..=258) to `(length_code_index, extra_bits, extra_value)`.
#[inline]
pub fn length_code(len: usize) -> (u16, u8, u16) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    if len == MAX_MATCH {
        return (28, 0, 0);
    }
    let l = (len - MIN_MATCH) as u32;
    if l < 8 {
        return (l as u16, 0, 0);
    }
    let e = (31 - l.leading_zeros()) - 2;
    let code = 4 * (e + 1) + ((l >> e) & 3);
    let base = u32::from(LENGTH_BASE[code as usize]);
    (
        code as u16,
        LENGTH_EXTRA[code as usize],
        (len as u32 - base) as u16,
    )
}

/// Map a match distance (1..=32768) to `(dist_code_index, extra_bits, extra_value)`.
#[inline]
pub fn dist_code(dist: usize) -> (u16, u8, u16) {
    debug_assert!((1..=WINDOW_SIZE).contains(&dist));
    if dist <= 4 {
        return ((dist - 1) as u16, 0, 0);
    }
    let d = (dist - 1) as u32;
    let l = 31 - d.leading_zeros();
    let code = 2 * l + ((d >> (l - 1)) & 1);
    let base = u32::from(DIST_BASE[code as usize]);
    (
        code as u16,
        DIST_EXTRA[code as usize],
        (dist as u32 - base) as u16,
    )
}

/// Compression effort levels, mirroring zlib's familiar 1/6/9 scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Level {
    /// Greedy parsing, short hash chains — `zlib -1`.
    Fast,
    /// Lazy parsing, moderate chains — `zlib -6` (paper default).
    #[default]
    Default,
    /// Lazy parsing, long chains — `zlib -9`.
    Best,
}

/// Per-level match-finder tuning knobs.
pub(crate) struct MatchParams {
    /// Chain links visited per search before giving up.
    pub max_chain: usize,
    /// A match at least this long stops the search ("good enough").
    pub nice_length: usize,
    /// Defer matches by one position when the next position matches longer.
    pub lazy: bool,
    /// Consecutive unmatched literals before skip-ahead engages
    /// (`usize::MAX` disables skipping; see `lz77::skip_step`).
    pub skip_trigger: usize,
}

impl Level {
    /// Match-finder tuning parameters for this level.
    pub(crate) fn params(self) -> MatchParams {
        match self {
            Level::Fast => MatchParams {
                max_chain: 16,
                nice_length: 16,
                lazy: false,
                skip_trigger: 32,
            },
            Level::Default => MatchParams {
                max_chain: 16,
                nice_length: 65,
                lazy: true,
                skip_trigger: 64,
            },
            Level::Best => MatchParams {
                max_chain: 1024,
                nice_length: MAX_MATCH,
                lazy: true,
                skip_trigger: usize::MAX,
            },
        }
    }
}

/// Compress `input` into a raw DEFLATE stream (no container).
///
/// One-shot convenience over [`deflate_with`]; allocates a fresh
/// [`EncoderScratch`] per call. Hot paths (the pipeline's per-chunk loop)
/// should hold a scratch and call [`deflate_with`] instead.
pub fn deflate(input: &[u8], level: Level) -> Vec<u8> {
    let mut scratch = EncoderScratch::new();
    deflate_with(input, level, &mut scratch)
}

/// Compress `input` into a raw DEFLATE stream, reusing `scratch` for all
/// match-finder state. Steady-state calls (same or smaller input length)
/// perform no tokenizer heap allocation.
pub fn deflate_with(input: &[u8], level: Level, scratch: &mut EncoderScratch) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() + input.len() / 250 + 64);
    deflate_into(input, level, scratch, &mut out);
    out
}

/// [`deflate_with`], appending the stream to `out` (which must be
/// byte-aligned). The containers (zlib, gzip) use this so the multi-megabyte
/// DEFLATE body lands directly in the container buffer instead of being
/// produced in a temporary and copied across.
pub fn deflate_into(input: &[u8], level: Level, scratch: &mut EncoderScratch, out: &mut Vec<u8>) {
    // Spans are named `deflate.encode`/`deflate.decode` — distinct from the
    // pipeline-level "deflate" stage span so the CLI stage table never
    // counts codec time twice.
    let _span = primacy_trace::span("deflate.encode");
    {
        let _tok_span = primacy_trace::span("deflate.tokenize");
        lz77::tokenize_into(input, level, scratch);
    }
    let (tokens, header) = scratch.parts();
    primacy_trace::counter("deflate.tokens", tokens.len() as u64);
    let _emit_span = primacy_trace::span("deflate.emit");
    let before = out.len();
    let buf = std::mem::take(out);
    *out = encode::emit_blocks_into(input, tokens, header, buf);
    drop(_emit_span);
    primacy_trace::counter("deflate.encode_bytes_in", input.len() as u64);
    primacy_trace::counter("deflate.encode_bytes_out", (out.len() - before) as u64);
}

/// Decompress a raw DEFLATE stream.
pub fn inflate(input: &[u8]) -> Result<Vec<u8>> {
    let _span = primacy_trace::span("deflate.decode");
    let out = decode::inflate(input)?;
    primacy_trace::counter("deflate.decode_bytes_in", input.len() as u64);
    primacy_trace::counter("deflate.decode_bytes_out", out.len() as u64);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_code_covers_every_length() {
        for len in MIN_MATCH..=MAX_MATCH {
            let (code, extra, value) = length_code(len);
            let code = code as usize;
            assert!(code < 29, "len {len} gave code {code}");
            assert_eq!(extra, LENGTH_EXTRA[code]);
            let base = LENGTH_BASE[code] as usize;
            assert!(len >= base, "len {len} below base of code {code}");
            assert_eq!(len, base + value as usize);
            assert!((value as u32) < (1u32 << extra) || extra == 0 && value == 0);
        }
    }

    #[test]
    fn dist_code_covers_every_distance() {
        for dist in 1..=WINDOW_SIZE {
            let (code, extra, value) = dist_code(dist);
            let code = code as usize;
            assert!(code < 30, "dist {dist} gave code {code}");
            assert_eq!(extra, DIST_EXTRA[code]);
            let base = DIST_BASE[code] as usize;
            assert!(dist >= base);
            assert_eq!(dist, base + value as usize);
            assert!((value as u32) < (1u32 << extra) || extra == 0 && value == 0);
        }
    }

    #[test]
    fn deflate_roundtrip_all_levels() {
        let data: Vec<u8> = (0..10_000u32)
            .map(|i| ((i / 7) % 64 + (i % 13) * 2) as u8)
            .collect();
        for level in [Level::Fast, Level::Default, Level::Best] {
            let comp = deflate(&data, level);
            let back = inflate(&comp).unwrap();
            assert_eq!(back, data, "level {level:?}");
        }
    }

    #[test]
    fn deflate_empty_input() {
        let comp = deflate(&[], Level::Default);
        assert_eq!(inflate(&comp).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn deflate_compresses_repetitive_data() {
        let data = vec![42u8; 100_000];
        let comp = deflate(&data, Level::Default);
        assert!(comp.len() < data.len() / 50, "got {} bytes", comp.len());
        assert_eq!(inflate(&comp).unwrap(), data);
    }

    #[test]
    fn deflate_handles_incompressible_data() {
        // A xorshift stream is effectively random: stored blocks should kick
        // in and expansion must stay under the stored-block overhead bound.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..70_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 24) as u8
            })
            .collect();
        let comp = deflate(&data, Level::Default);
        assert!(comp.len() < data.len() + data.len() / 1000 + 64);
        assert_eq!(inflate(&comp).unwrap(), data);
    }
}
