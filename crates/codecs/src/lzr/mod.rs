//! LZR — a byte-oriented LZ codec in the `lzo` speed class.
//!
//! The PRIMACY paper uses `lzo` as its "very fast, nearly no compression"
//! baseline. LZR reproduces that profile with the classic single-probe
//! hash-table design (the same family as LZO1X and LZ4): a 16-bit hash over
//! the next four bytes indexes the most recent occurrence; on a 4-byte match
//! the sequence is emitted as `(literal run, match)` pairs with a token byte
//! whose high nibble counts literals and low nibble counts match length, each
//! nibble extended by 255-saturated continuation bytes.
//!
//! Stream layout:
//! `magic "LZR1" | varint uncompressed_len | sequences… | crc32(uncompressed)`

use crate::checksum::crc32;
use crate::error::{CodecError, Result};
use crate::{read_varint, write_varint, Codec};

const MAGIC: &[u8; 4] = b"LZR1";
const MIN_MATCH: usize = 4;
const HASH_BITS: u32 = 16;
const HASH_SIZE: usize = 1 << HASH_BITS;
/// Window bound; offsets are stored in two bytes.
const MAX_OFFSET: usize = 65_535;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    // Callers guarantee i + 4 <= data.len(); a zero hash on a (impossible)
    // short read only costs one missed match, never a panic.
    let v = crate::read_array(data, i).map_or(0, u32::from_le_bytes);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// The codec object. LZR has no tuning parameters; construction is free.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lzr;

impl Lzr {
    /// Compress `input`.
    pub fn compress_bytes(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 32);
        out.extend_from_slice(MAGIC);
        write_varint(&mut out, input.len() as u64);
        compress_body(input, &mut out);
        out.extend_from_slice(&crc32(input).to_le_bytes());
        out
    }

    /// Decompress a stream produced by [`Lzr::compress_bytes`].
    pub fn decompress_bytes(&self, input: &[u8]) -> Result<Vec<u8>> {
        if input.len() < MAGIC.len() + 4 {
            return Err(CodecError::Truncated);
        }
        if input.get(..4) != Some(MAGIC.as_slice()) {
            return Err(CodecError::BadMagic);
        }
        let (orig_len, used) = read_varint(input.get(4..).unwrap_or(&[]))?;
        // A varint long enough to overlap the CRC trailer inverts this
        // range; `get` turns that into a typed error instead of a panic.
        let body = input
            .get(4usize.saturating_add(used)..input.len() - 4)
            .ok_or(CodecError::Truncated)?;
        let out = decompress_body(body, orig_len as usize)?;
        let stored = u32::from_le_bytes(
            crate::read_array(input, input.len() - 4).ok_or(CodecError::Truncated)?,
        );
        let actual = crc32(&out);
        if stored != actual {
            return Err(CodecError::ChecksumMismatch {
                expected: stored,
                actual,
            });
        }
        Ok(out)
    }
}

fn write_extended(out: &mut Vec<u8>, mut v: usize) {
    while v >= 255 {
        out.push(255);
        v -= 255;
    }
    out.push(v as u8);
}

fn compress_body(input: &[u8], out: &mut Vec<u8>) {
    let n = input.len();
    if n == 0 {
        return;
    }
    let mut table = vec![u32::MAX; HASH_SIZE];
    let mut i = 0usize;
    let mut literal_start = 0usize;
    // Stop probing once fewer than MIN_MATCH + 1 bytes remain so the final
    // sequence is literal-only (mirrors LZ4's end condition).
    let probe_limit = n.saturating_sub(MIN_MATCH + 1);
    while i < probe_limit {
        let h = hash4(input, i);
        // lint: allow(index) -- hash4 masks h below HASH_SIZE == table.len()
        let cand = table[h];
        // lint: allow(index) -- hash4 masks h below HASH_SIZE == table.len()
        table[h] = i as u32;
        let matched = cand != u32::MAX && {
            let c = cand as usize;
            // lint: allow(index) -- encoder-owned input; c < i < probe_limit leaves 4 readable bytes
            i - c <= MAX_OFFSET && input[c..c + 4] == input[i..i + 4]
        };
        if !matched {
            i += 1;
            continue;
        }
        let c = cand as usize;
        // Extend the match forward: count the equal prefix beyond the
        // verified MIN_MATCH bytes (the candidate side may overlap `i`).
        let extra = input
            .get(c + MIN_MATCH..)
            .unwrap_or(&[])
            .iter()
            .zip(input.get(i + MIN_MATCH..).unwrap_or(&[]))
            .take_while(|(a, b)| a == b)
            .count();
        let len = MIN_MATCH + extra;
        // lint: allow(index) -- encoder-owned input; literal_start <= i <= n by construction
        emit_sequence(out, &input[literal_start..i], len - MIN_MATCH, i - c);
        i = i.saturating_add(len);
        literal_start = i;
    }
    // Trailing literals: token with match nibble 0 and no offset.
    let lits = input.get(literal_start..).unwrap_or(&[]);
    let lit_len = lits.len();
    let token = if lit_len >= 15 {
        0xF0
    } else {
        (lit_len as u8) << 4
    };
    out.push(token);
    if lit_len >= 15 {
        write_extended(out, lit_len - 15);
    }
    out.extend_from_slice(lits);
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], match_extra: usize, offset: usize) {
    let lit_len = literals.len();
    let lit_nibble = lit_len.min(15) as u8;
    // Match nibble values 1..=15 encode extra lengths 0..=14; value 15 also
    // signals continuation bytes. 0 is reserved for the literal-only tail.
    let match_code = match_extra + 1;
    let match_nibble = match_code.min(15) as u8;
    out.push((lit_nibble << 4) | match_nibble);
    if lit_len >= 15 {
        write_extended(out, lit_len - 15);
    }
    out.extend_from_slice(literals);
    out.extend_from_slice(&(offset as u16).to_le_bytes());
    if match_code >= 15 {
        write_extended(out, match_code - 15);
    }
}

fn read_extended(body: &[u8], pos: &mut usize) -> Result<usize> {
    let mut total = 0usize;
    loop {
        let b = *body.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        // The byte run is attacker-length: saturate rather than wrap; an
        // absurd total then fails the downstream range checks.
        total = total.saturating_add(b as usize);
        if b != 255 {
            return Ok(total);
        }
    }
}

fn decompress_body(body: &[u8], orig_len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(crate::clamped_capacity(orig_len as u64));
    let mut pos = 0usize;
    if orig_len == 0 {
        return Ok(out);
    }
    loop {
        let token = *body.get(pos).ok_or(CodecError::Truncated)?;
        pos += 1;
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            lit_len = lit_len.saturating_add(read_extended(body, &mut pos)?);
        }
        let lit_end = pos.checked_add(lit_len).ok_or(CodecError::Truncated)?;
        let literals = body.get(pos..lit_end).ok_or(CodecError::Truncated)?;
        out.extend_from_slice(literals);
        pos = lit_end;
        let match_code = (token & 0x0f) as usize;
        if match_code == 0 {
            // Literal-only tail sequence terminates the stream.
            break;
        }
        let offset =
            u16::from_le_bytes(crate::read_array(body, pos).ok_or(CodecError::Truncated)?) as usize;
        pos += 2;
        let mut match_len = match_code - 1 + MIN_MATCH;
        if match_code == 15 {
            match_len = match_len.saturating_add(read_extended(body, &mut pos)?);
        }
        if offset == 0 || offset > out.len() {
            return Err(CodecError::Corrupt("lzr offset out of range"));
        }
        // Copy in doubling passes so the self-overlapping case
        // (offset < match_len) needs no per-byte indexing.
        let start = out.len() - offset;
        out.reserve(match_len);
        let mut remaining = match_len;
        while remaining > 0 {
            let avail = out.len() - start;
            let chunk = avail.min(remaining);
            out.extend_from_within(start..start.saturating_add(chunk));
            remaining -= chunk;
        }
        if out.len() > orig_len {
            return Err(CodecError::LengthMismatch {
                expected: orig_len,
                actual: out.len(),
            });
        }
    }
    if out.len() != orig_len {
        return Err(CodecError::LengthMismatch {
            expected: orig_len,
            actual: out.len(),
        });
    }
    Ok(out)
}

impl Codec for Lzr {
    fn name(&self) -> &'static str {
        "lzr"
    }

    fn compress(&self, input: &[u8]) -> Result<Vec<u8>> {
        Ok(self.compress_bytes(input))
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        self.decompress_bytes(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let lzr = Lzr;
        let comp = lzr.compress_bytes(data);
        assert_eq!(lzr.decompress_bytes(&comp).unwrap(), data);
    }

    #[test]
    fn roundtrip_assorted_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abcd");
        roundtrip(b"abcde");
        roundtrip(&b"tobeornottobetobeornottobe".repeat(10));
        roundtrip(&vec![0u8; 100_000]);
    }

    #[test]
    fn roundtrip_random_data() {
        let mut x = 42u64;
        let data: Vec<u8> = (0..65_537)
            .map(|_| {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn compresses_runs_heavily() {
        let data = vec![7u8; 1_000_000];
        let comp = Lzr.compress_bytes(&data);
        assert!(comp.len() < 5000, "run compressed to {} bytes", comp.len());
    }

    #[test]
    fn bounded_expansion_on_random_data() {
        let mut x = 7u64;
        let data: Vec<u8> = (0..100_000)
            .map(|_| {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        let comp = Lzr.compress_bytes(&data);
        // Worst case is ~ one token per 255 literals plus framing.
        assert!(comp.len() < data.len() + data.len() / 200 + 64);
    }

    #[test]
    fn long_match_uses_extension_bytes() {
        // 16 distinct bytes, then the same 16 repeated many times: produces a
        // match far longer than the nibble can hold.
        let unit: Vec<u8> = (0..16).collect();
        let mut data = unit.clone();
        for _ in 0..200 {
            data.extend_from_slice(&unit);
        }
        roundtrip(&data);
    }

    #[test]
    fn rejects_corruption() {
        let data = b"payload payload payload payload".repeat(8);
        let mut comp = Lzr.compress_bytes(&data);
        let mid = comp.len() / 2;
        comp[mid] ^= 0x81;
        assert!(Lzr.decompress_bytes(&comp).is_err());
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let comp = Lzr.compress_bytes(b"hello");
        let mut bad = comp.clone();
        bad[0] = b'X';
        assert!(matches!(
            Lzr.decompress_bytes(&bad),
            Err(CodecError::BadMagic)
        ));
        assert!(Lzr.decompress_bytes(&comp[..3]).is_err());
    }

    #[test]
    fn offsets_never_exceed_window() {
        // Marker repeats 70K apart — farther than MAX_OFFSET, so it must be
        // emitted as literals, and the stream must still roundtrip.
        let mut data = vec![0x11u8; 80_000];
        for (i, b) in b"0123456789abcdef".iter().enumerate() {
            data[i] = *b;
            data[70_000 + i] = *b;
        }
        roundtrip(&data);
    }
}
