//! FPC — Burtscher & Ratanaworabhan's high-speed compressor for
//! double-precision floating-point data (IEEE TC 2009), reimplemented as a
//! related-work comparator for PRIMACY (§V of the paper).
//!
//! Each double is predicted twice — by an FCM (finite context method) table
//! and a DFCM (differential FCM) table — and XOR'd with the better
//! prediction. The XOR residual of a good prediction has many leading zero
//! bytes; FPC emits a 4-bit code per value (1 selector bit + 3 bits of
//! leading-zero-byte count, with count 4 folded to 3 as in the original) and
//! then only the nonzero residual tail bytes.
//!
//! Stream layout: `magic "FPC1" | u8 table_log2 | varint count | header
//! nibbles (2 values per byte) | residual bytes | crc32(payload doubles)`.

use crate::checksum::crc32;
use crate::error::{CodecError, Result};
use crate::{read_varint, write_varint, Codec};

const MAGIC: &[u8; 4] = b"FPC1";
/// Default predictor table size: 2^20 entries × 8 bytes = 8 MiB per table,
/// mirroring the reference implementation's sweet spot.
pub const DEFAULT_TABLE_LOG2: u8 = 20;

/// The FPC codec. `table_log2` trades memory for prediction accuracy.
#[derive(Debug, Clone, Copy)]
pub struct Fpc {
    /// log2 of the FCM/DFCM table sizes (1..=28).
    pub table_log2: u8,
}

impl Default for Fpc {
    fn default() -> Self {
        Self {
            table_log2: DEFAULT_TABLE_LOG2,
        }
    }
}

impl Fpc {
    /// Codec with an explicit table size.
    pub fn with_table_log2(table_log2: u8) -> Result<Self> {
        if !(1..=28).contains(&table_log2) {
            return Err(CodecError::InvalidParameter("table_log2 must be 1..=28"));
        }
        Ok(Self { table_log2 })
    }
}

/// Shared FCM/DFCM predictor state, updated identically on both sides.
struct Predictors {
    fcm: Vec<u64>,
    dfcm: Vec<u64>,
    fcm_hash: usize,
    dfcm_hash: usize,
    last: u64,
    mask: usize,
}

impl Predictors {
    fn new(table_log2: u8) -> Self {
        let size = 1usize << table_log2;
        Self {
            fcm: vec![0; size],
            dfcm: vec![0; size],
            fcm_hash: 0,
            dfcm_hash: 0,
            last: 0,
            mask: size - 1,
        }
    }

    /// Current predictions `(fcm_pred, dfcm_pred)`.
    #[inline]
    fn predict(&self) -> (u64, u64) {
        (
            self.fcm[self.fcm_hash],
            self.dfcm[self.dfcm_hash].wrapping_add(self.last),
        )
    }

    /// Fold the true value into both tables and advance the hashes, exactly
    /// as the reference FPC does.
    #[inline]
    fn update(&mut self, actual: u64) {
        self.fcm[self.fcm_hash] = actual;
        self.fcm_hash = ((self.fcm_hash << 6) ^ (actual >> 48) as usize) & self.mask;
        let delta = actual.wrapping_sub(self.last);
        self.dfcm[self.dfcm_hash] = delta;
        self.dfcm_hash = ((self.dfcm_hash << 2) ^ (delta >> 40) as usize) & self.mask;
        self.last = actual;
    }
}

/// Map a leading-zero-byte count to its 3-bit code. FPC cannot encode the
/// value 4 (3 bits cover {0,1,2,3,5,6,7,8}), so 4 is demoted to 3.
#[inline]
fn lzb_to_code(lzb: u32) -> u32 {
    match lzb {
        0..=3 => lzb,
        4 => 3,
        _ => lzb - 1,
    }
}

/// Inverse of [`lzb_to_code`].
#[inline]
fn code_to_lzb(code: u32) -> u32 {
    if code <= 3 {
        code
    } else {
        code + 1
    }
}

impl Fpc {
    /// Compress a raw little-endian stream of f64 bit patterns. The input
    /// length must be a multiple of 8.
    pub fn compress_bytes(&self, input: &[u8]) -> Result<Vec<u8>> {
        if !input.len().is_multiple_of(8) {
            return Err(CodecError::InvalidParameter(
                "fpc input must be a multiple of 8 bytes",
            ));
        }
        let count = input.len() / 8;
        let mut out = Vec::with_capacity(input.len() / 2 + 32);
        out.extend_from_slice(MAGIC);
        out.push(self.table_log2);
        write_varint(&mut out, count as u64);

        let mut pred = Predictors::new(self.table_log2);
        let mut headers: Vec<u8> = Vec::with_capacity(count.div_ceil(2));
        let mut residuals: Vec<u8> = Vec::with_capacity(input.len() / 2);
        let mut pending_nibble: Option<u8> = None;

        for chunk in input.chunks_exact(8) {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk); // chunks_exact(8) guarantees the length
            let actual = u64::from_le_bytes(word);
            let (fcm_pred, dfcm_pred) = pred.predict();
            let xor_fcm = actual ^ fcm_pred;
            let xor_dfcm = actual ^ dfcm_pred;
            let (selector, xor) = if xor_fcm <= xor_dfcm {
                (0u32, xor_fcm)
            } else {
                (1u32, xor_dfcm)
            };
            let lzb = (xor.leading_zeros() / 8).min(8);
            let code = lzb_to_code(lzb);
            let nibble = ((selector << 3) | code) as u8;
            match pending_nibble.take() {
                None => pending_nibble = Some(nibble),
                Some(hi) => headers.push((hi << 4) | nibble),
            }
            // Emit the residual tail (8 - effective_lzb bytes, big-end first
            // skipped: we store the low-order bytes little-endian).
            let keep = 8 - code_to_lzb(code) as usize;
            residuals.extend_from_slice(&xor.to_le_bytes()[..keep]);
            pred.update(actual);
        }
        if let Some(hi) = pending_nibble {
            headers.push(hi << 4);
        }
        out.extend_from_slice(&headers);
        out.extend_from_slice(&residuals);
        out.extend_from_slice(&crc32(input).to_le_bytes());
        Ok(out)
    }

    /// Decompress a stream produced by [`Fpc::compress_bytes`].
    pub fn decompress_bytes(&self, input: &[u8]) -> Result<Vec<u8>> {
        if input.len() < MAGIC.len() + 1 + 1 + 4 {
            return Err(CodecError::Truncated);
        }
        if &input[..4] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let table_log2 = input[4];
        if !(1..=28).contains(&table_log2) {
            return Err(CodecError::Corrupt("fpc table size out of range"));
        }
        let (count, used) = read_varint(&input[5..])?;
        let count = count as usize;
        let mut pos = 5usize.saturating_add(used);
        let header_bytes = count.div_ceil(2);
        let body_end = input.len() - 4;
        // `count` is an attacker-controllable varint: checked arithmetic only.
        let headers_end = pos
            .checked_add(header_bytes)
            .filter(|&e| e <= body_end)
            .ok_or(CodecError::Truncated)?;
        let headers = input.get(pos..headers_end).ok_or(CodecError::Truncated)?;
        pos = headers_end;

        let mut pred = Predictors::new(table_log2);
        let mut out = Vec::with_capacity(crate::clamped_capacity((count as u64).saturating_mul(8)));
        for i in 0..count {
            let byte = headers[i / 2];
            let nibble = if i % 2 == 0 { byte >> 4 } else { byte & 0x0f };
            let selector = u32::from(nibble >> 3);
            let lzb = code_to_lzb(u32::from(nibble & 0x07));
            let keep = 8 - lzb as usize;
            if pos + keep > body_end {
                return Err(CodecError::Truncated);
            }
            let mut xor_bytes = [0u8; 8];
            xor_bytes[..keep].copy_from_slice(&input[pos..pos + keep]);
            pos += keep;
            let xor = u64::from_le_bytes(xor_bytes);
            let (fcm_pred, dfcm_pred) = pred.predict();
            let prediction = if selector == 0 { fcm_pred } else { dfcm_pred };
            let actual = xor ^ prediction;
            out.extend_from_slice(&actual.to_le_bytes());
            pred.update(actual);
        }
        if pos != body_end {
            return Err(CodecError::Corrupt("fpc trailing residual bytes"));
        }
        let stored =
            u32::from_le_bytes(crate::read_array(input, body_end).ok_or(CodecError::Truncated)?);
        let actual_crc = crc32(&out);
        if stored != actual_crc {
            return Err(CodecError::ChecksumMismatch {
                expected: stored,
                actual: actual_crc,
            });
        }
        Ok(out)
    }

    /// Convenience: compress a slice of doubles.
    pub fn compress_f64(&self, values: &[f64]) -> Result<Vec<u8>> {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.compress_bytes(&bytes)
    }

    /// Convenience: decompress into doubles.
    pub fn decompress_f64(&self, input: &[u8]) -> Result<Vec<f64>> {
        let bytes = self.decompress_bytes(input)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                let mut a = [0u8; 8];
                a.copy_from_slice(c);
                f64::from_le_bytes(a)
            })
            .collect())
    }
}

impl Codec for Fpc {
    fn name(&self) -> &'static str {
        "fpc"
    }

    /// FPC operates on whole doubles; trailing bytes (input length not a
    /// multiple of 8) are stored raw after the coded stream.
    fn compress(&self, input: &[u8]) -> Result<Vec<u8>> {
        let whole = input.len() / 8 * 8;
        let mut out = self.compress_bytes(&input[..whole])?;
        out.extend_from_slice(&input[whole..]);
        write_varint(&mut out, (input.len() - whole) as u64);
        Ok(out)
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        if input.is_empty() {
            return Err(CodecError::Truncated);
        }
        // The tail varint is a single byte (< 8).
        let tail_len = input[input.len() - 1] as usize;
        if tail_len >= 8 || input.len() < 1 + tail_len {
            return Err(CodecError::Corrupt("fpc tail length invalid"));
        }
        let body = &input[..input.len() - 1 - tail_len];
        let tail = &input[input.len() - 1 - tail_len..input.len() - 1];
        let mut out = self.decompress_bytes(body)?;
        out.extend_from_slice(tail);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.001).sin() * 100.0 + i as f64 * 0.5)
            .collect()
    }

    #[test]
    fn roundtrip_smooth_series() {
        let fpc = Fpc::default();
        let values = smooth_series(10_000);
        let comp = fpc.compress_f64(&values).unwrap();
        let back = fpc.decompress_f64(&comp).unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn compresses_predictable_data() {
        let fpc = Fpc::default();
        // A constant-step ramp is perfectly DFCM-predictable.
        let values: Vec<f64> = (0..50_000).map(|i| i as f64).collect();
        let comp = fpc.compress_f64(&values).unwrap();
        assert!(
            comp.len() * 2 < values.len() * 8,
            "ramp compressed to {} of {}",
            comp.len(),
            values.len() * 8
        );
    }

    #[test]
    fn roundtrip_random_doubles() {
        let fpc = Fpc::default();
        let mut x = 0xABCDEFu64;
        let values: Vec<f64> = (0..8_192)
            .map(|_| {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                f64::from_bits((x >> 2) | 0x3FF0_0000_0000_0000)
            })
            .collect();
        let comp = fpc.compress_f64(&values).unwrap();
        assert_eq!(fpc.decompress_f64(&comp).unwrap(), values);
    }

    #[test]
    fn roundtrip_special_values() {
        let fpc = Fpc::default();
        let values = vec![
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN,
            f64::MAX,
            f64::MIN_POSITIVE,
            1e-308,
            std::f64::consts::PI,
        ];
        let comp = fpc.compress_f64(&values).unwrap();
        let back = fpc.decompress_f64(&comp).unwrap();
        assert_eq!(
            back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            values.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn nan_bit_patterns_survive() {
        let fpc = Fpc::default();
        let values = vec![f64::from_bits(0x7FF8_0000_0000_0001), f64::NAN, 1.0];
        let comp = fpc.compress_f64(&values).unwrap();
        let back = fpc.decompress_f64(&comp).unwrap();
        for (a, b) in back.iter().zip(&values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn lzb_code_mapping_is_consistent() {
        for lzb in 0..=8u32 {
            let code = lzb_to_code(lzb);
            assert!(code < 8);
            let back = code_to_lzb(code);
            if lzb == 4 {
                assert_eq!(back, 3); // folded case loses one zero byte
            } else {
                assert_eq!(back, lzb);
            }
        }
    }

    #[test]
    fn byte_interface_handles_ragged_tail() {
        let fpc = Fpc::default();
        let mut data: Vec<u8> = smooth_series(100)
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        data.extend_from_slice(&[1, 2, 3]); // not a multiple of 8
        let comp = fpc.compress(&data).unwrap();
        assert_eq!(fpc.decompress(&comp).unwrap(), data);
    }

    #[test]
    fn rejects_corruption_and_bad_magic() {
        let fpc = Fpc::default();
        let comp = fpc.compress_f64(&smooth_series(1000)).unwrap();
        let mut bad = comp.clone();
        bad[0] = b'X';
        assert!(matches!(
            fpc.decompress_bytes(&bad),
            Err(CodecError::BadMagic)
        ));
        let mut bad = comp.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        assert!(fpc.decompress_bytes(&bad).is_err());
    }

    #[test]
    fn small_tables_still_roundtrip() {
        let fpc = Fpc::with_table_log2(4).unwrap();
        let values = smooth_series(5_000);
        let comp = fpc.compress_f64(&values).unwrap();
        // Decompressor reads the table size from the stream, so a
        // differently-configured instance can decode it.
        let back = Fpc::default().decompress_f64(&comp).unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn invalid_table_log2_rejected() {
        assert!(Fpc::with_table_log2(0).is_err());
        assert!(Fpc::with_table_log2(29).is_err());
    }
}
