//! Error type shared by every codec in this crate.

/// Errors produced while compressing or decompressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The compressed stream ended before decoding finished.
    Truncated,
    /// The compressed stream is structurally invalid; the message names the
    /// first inconsistency found.
    Corrupt(&'static str),
    /// An embedded checksum did not match the decoded payload.
    ChecksumMismatch {
        /// Checksum stored in the stream.
        expected: u32,
        /// Checksum recomputed over the decoded data.
        actual: u32,
    },
    /// The stream was produced by an incompatible codec or format version.
    BadMagic,
    /// A parameter is outside the supported range (e.g. unsupported grid
    /// dimensions for the Lorenzo predictor).
    InvalidParameter(&'static str),
    /// A decoded section's length disagrees with the length the stream
    /// declared for it.
    LengthMismatch {
        /// Length the stream declared.
        expected: usize,
        /// Length actually decoded.
        actual: usize,
    },
    /// A serialized Huffman table does not describe a usable prefix code
    /// (over-subscribed, under-subscribed, or empty).
    InvalidHuffmanTable(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "compressed stream is truncated"),
            CodecError::Corrupt(msg) => write!(f, "corrupt stream: {msg}"),
            CodecError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: stored {expected:#010x}, computed {actual:#010x}"
            ),
            CodecError::BadMagic => write!(f, "stream does not start with the expected magic"),
            CodecError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            CodecError::LengthMismatch { expected, actual } => write!(
                f,
                "length mismatch: stream declared {expected} bytes, decoded {actual}"
            ),
            CodecError::InvalidHuffmanTable(msg) => write!(f, "invalid huffman table: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CodecError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(CodecError::Truncated.to_string().contains("truncated"));
        assert!(CodecError::Corrupt("bad block type")
            .to_string()
            .contains("bad block type"));
        let msg = CodecError::ChecksumMismatch {
            expected: 0xdeadbeef,
            actual: 1,
        }
        .to_string();
        assert!(msg.contains("0xdeadbeef"));
        assert!(CodecError::BadMagic.to_string().contains("magic"));
        assert!(CodecError::InvalidParameter("dims")
            .to_string()
            .contains("dims"));
        let msg = CodecError::LengthMismatch {
            expected: 100,
            actual: 7,
        }
        .to_string();
        assert!(msg.contains("100") && msg.contains('7'));
        assert!(CodecError::InvalidHuffmanTable("incomplete code")
            .to_string()
            .contains("incomplete code"));
    }
}
