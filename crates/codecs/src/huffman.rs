//! Canonical, length-limited Huffman coding shared by the DEFLATE and BWT
//! codecs.
//!
//! Code lengths are computed with the package-merge algorithm, which produces
//! optimal codes under a maximum-length constraint (15 bits for DEFLATE's
//! literal/length and distance alphabets, 7 bits for its code-length
//! alphabet). Codes are assigned canonically — shorter codes first, ties
//! broken by symbol index — which is exactly the convention RFC 1951 decoders
//! reconstruct from lengths alone.

use crate::bitio::{reverse_bits, BitReader};
use crate::error::{CodecError, Result};

/// Compute optimal length-limited code lengths for `freqs` using
/// package-merge. Symbols with zero frequency get length 0 (no code).
///
/// Returns a vector of code lengths in `0..=max_len`. If only one symbol has
/// nonzero frequency it is assigned length 1, as DEFLATE requires every coded
/// symbol to have at least one bit.
pub fn package_merge_lengths(freqs: &[u64], max_len: u32) -> Vec<u8> {
    let mut lengths = vec![0u8; freqs.len()];
    package_merge_into(freqs, max_len, &mut lengths);
    lengths
}

/// Tag bit marking a package-merge item as a leaf (low bits carry the
/// active-symbol index); items without it are packages (low bits carry the
/// package index into the previous level).
const PM_LEAF: u32 = 1 << 31;

/// [`package_merge_lengths`] writing into a caller-owned buffer, so per-block
/// encoder calls reuse one allocation.
///
/// The merge schedule is the textbook one (packages of adjacent pairs merged
/// against the sorted leaves, ties taking the leaf), but items carry a
/// 32-bit *tag* — leaf symbol or package index into the previous level —
/// instead of materializing each item's leaf multiset. Selected items are
/// expanded by walking tags level by level at the end. That turns the
/// dominant per-block header cost from thousands of small `Vec` clones into
/// flat array traffic while producing bit-identical code lengths.
pub fn package_merge_into(freqs: &[u64], max_len: u32, lengths: &mut Vec<u8>) {
    let n = freqs.len();
    lengths.clear();
    lengths.resize(n, 0);
    let active: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    match active.len() {
        0 => return,
        1 => {
            lengths[active[0]] = 1;
            return;
        }
        _ => {}
    }
    assert!(
        (1u64 << max_len) >= active.len() as u64,
        "max_len {max_len} cannot code {} symbols",
        active.len()
    );

    // Leaves sorted by weight; the sort is stable so ties keep symbol order.
    let leaves: Vec<(u64, u32)> = {
        let mut items: Vec<(u64, u32)> = active
            .iter()
            .enumerate()
            .map(|(ai, &sym)| (freqs[sym], PM_LEAF | ai as u32))
            .collect();
        items.sort_by_key(|it| it.0);
        items
    };

    // One merged item list per level; each item is (weight, tag).
    let mut levels: Vec<Vec<(u64, u32)>> = Vec::with_capacity(max_len as usize);
    for _level in 0..max_len {
        let prev: &[(u64, u32)] = levels.last().map_or(&[], Vec::as_slice);
        let num_pkg = prev.len() / 2;
        let mut merged: Vec<(u64, u32)> = Vec::with_capacity(leaves.len() + num_pkg);
        let (mut i, mut j) = (0usize, 0usize);
        while i < leaves.len() || j < num_pkg {
            let take_leaf = if i >= leaves.len() {
                false
            } else if j >= num_pkg {
                true
            } else {
                leaves[i].0 <= prev[2 * j].0 + prev[2 * j + 1].0
            };
            if take_leaf {
                merged.push(leaves[i]);
                i += 1;
            } else {
                merged.push((prev[2 * j].0 + prev[2 * j + 1].0, j as u32));
                j += 1;
            }
        }
        levels.push(merged);
    }

    // Select the cheapest 2·(m−1) items of the final level; each time a leaf
    // appears in the selection (directly or inside a package) its code length
    // grows by one. Packages exist only at level ≥ 1, so `level - 1` below
    // cannot underflow.
    let m = active.len();
    let mut depth = vec![0u32; m];
    let top = levels.len() - 1;
    let mut stack: Vec<(usize, u32)> = levels[top]
        .iter()
        .take(2 * (m - 1))
        .map(|&(_, tag)| (top, tag))
        .collect();
    while let Some((level, tag)) = stack.pop() {
        if tag & PM_LEAF != 0 {
            depth[(tag & !PM_LEAF) as usize] += 1;
        } else {
            let child = &levels[level - 1];
            let k = tag as usize;
            stack.push((level - 1, child[2 * k].1));
            stack.push((level - 1, child[2 * k + 1].1));
        }
    }
    for (ai, &sym) in active.iter().enumerate() {
        debug_assert!(depth[ai] >= 1 && depth[ai] <= max_len);
        lengths[sym] = depth[ai] as u8;
    }
    debug_assert!(kraft_ok(lengths));
}

/// Kraft sum in units of 2^-60 (exact for lengths ≤ 60). A complete prefix
/// code sums to exactly [`KRAFT_FULL`]; larger is over-subscribed (ambiguous),
/// smaller is under-subscribed (some bit patterns decode to nothing).
const KRAFT_FULL: u64 = 1 << 60;

fn kraft_sum(lengths: &[u8]) -> u64 {
    lengths
        .iter()
        .filter(|&&l| l > 0)
        .map(|&l| 1u64 << (60 - u32::from(l)))
        .sum()
}

fn kraft_ok(lengths: &[u8]) -> bool {
    kraft_sum(lengths) <= KRAFT_FULL
}

/// Validate that `lengths` describe a *complete* prefix code and return the
/// maximum code length. An over-subscribed Kraft sum makes decoding
/// ambiguous; an under-subscribed one leaves bit patterns that decode to
/// nothing — both are accepted by naive decoders and are classic
/// malformed-stream attack surface. The single exception, per RFC 1951
/// §3.2.7, is a degenerate alphabet with exactly one symbol, which must be
/// coded with one bit. Shared by [`Decoder::from_lengths`] and the DEFLATE
/// multi-symbol table builder so both enforce identical stream hygiene.
pub(crate) fn validate_prefix_code(lengths: &[u8]) -> Result<u32> {
    let max_len = u32::from(lengths.iter().copied().max().unwrap_or(0));
    if max_len == 0 {
        return Err(CodecError::InvalidHuffmanTable("table has no symbols"));
    }
    if max_len > 15 {
        return Err(CodecError::InvalidHuffmanTable("code length exceeds 15"));
    }
    let sum = kraft_sum(lengths);
    if sum > KRAFT_FULL {
        return Err(CodecError::InvalidHuffmanTable("over-subscribed code"));
    }
    let coded = lengths.iter().filter(|&&l| l > 0).count();
    if sum < KRAFT_FULL && !(coded == 1 && max_len == 1) {
        return Err(CodecError::InvalidHuffmanTable("under-subscribed code"));
    }
    Ok(max_len)
}

/// Assign canonical codes (MSB-first integers) to `lengths`.
///
/// Returns `codes[sym]`; symbols with length 0 get code 0.
pub fn canonical_codes(lengths: &[u8]) -> Vec<u32> {
    let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
    let mut bl_count = vec![0u32; max_len + 1];
    for &l in lengths {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u32; max_len + 2];
    let mut code = 0u32;
    for bits in 1..=max_len {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    let mut codes = vec![0u32; lengths.len()];
    for (sym, &l) in lengths.iter().enumerate() {
        if l > 0 {
            codes[sym] = next_code[l as usize];
            next_code[l as usize] += 1;
        }
    }
    codes
}

/// [`canonical_codes`] into a caller-owned buffer, for lengths already
/// validated to RFC 1951's 15-bit cap: the count arrays live on the stack,
/// so a warm `codes` buffer makes the call allocation-free. This is the
/// per-chunk decode hot path's twin of [`canonical_codes`]; callers must run
/// [`validate_prefix_code`] (or otherwise bound lengths to ≤ 15) first.
pub(crate) fn canonical_codes_into(lengths: &[u8], codes: &mut Vec<u32>) {
    let max_len = usize::from(lengths.iter().copied().max().unwrap_or(0));
    debug_assert!(max_len <= 15, "lengths must be validated to <= 15 bits");
    let mut bl_count = [0u32; 16];
    for &l in lengths {
        if let Some(c) = bl_count.get_mut(usize::from(l)) {
            if l > 0 {
                *c += 1;
            }
        }
    }
    let mut next_code = [0u32; 17];
    let mut code = 0u32;
    for bits in 1..=max_len.min(15) {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    codes.clear();
    codes.resize(lengths.len(), 0);
    for (slot, &l) in codes.iter_mut().zip(lengths) {
        if l == 0 {
            continue;
        }
        if let Some(next) = next_code.get_mut(usize::from(l)) {
            *slot = *next;
            *next += 1;
        }
    }
}

/// An encoder-side Huffman table: per-symbol code (already bit-reversed for
/// LSB-first emission) and length.
#[derive(Debug, Clone)]
pub struct Encoder {
    /// `codes[sym]` is the LSB-first bit pattern to emit.
    pub codes: Vec<u32>,
    /// `lengths[sym]` in bits; 0 means the symbol is absent.
    pub lengths: Vec<u8>,
}

impl Encoder {
    /// Build an encoder from canonical code lengths.
    pub fn from_lengths(lengths: &[u8]) -> Self {
        let canonical = canonical_codes(lengths);
        let codes = canonical
            .iter()
            .zip(lengths)
            .map(|(&c, &l)| {
                if l == 0 {
                    0
                } else {
                    reverse_bits(c, u32::from(l))
                }
            })
            .collect();
        Self {
            codes,
            lengths: lengths.to_vec(),
        }
    }

    /// Total encoded size in bits of a frequency histogram under this code.
    pub fn cost_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .zip(&self.lengths)
            .map(|(&f, &l)| f * u64::from(l))
            .sum()
    }
}

/// A decoder-side Huffman table: a flat lookup table indexed by the next
/// `max_len` (LSB-first) bits of the stream.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// `table[bits] = (symbol, code_len)`.
    table: Vec<(u16, u8)>,
    /// Width of the lookup index in bits.
    pub max_len: u32,
}

impl Default for Decoder {
    /// An empty decoder with no table. It must be [`Decoder::rebuild`]-ed
    /// before [`Decoder::decode`] is called; this exists only so scratch
    /// structs can hold a reusable decoder slot.
    fn default() -> Self {
        Self {
            table: Vec::new(),
            max_len: 0,
        }
    }
}

impl Decoder {
    /// Build a decoder from canonical code lengths. Fails unless the lengths
    /// pass [`validate_prefix_code`] (complete prefix code, or the RFC 1951
    /// §3.2.7 degenerate single-symbol exception).
    pub fn from_lengths(lengths: &[u8]) -> Result<Self> {
        let mut dec = Self::default();
        let mut codes = Vec::new();
        dec.rebuild(lengths, &mut codes)?;
        Ok(dec)
    }

    /// Rebuild this decoder in place from canonical code lengths, reusing the
    /// lookup table and the caller's `codes` buffer so a warm decoder makes
    /// the rebuild allocation-free. Same validation as
    /// [`Decoder::from_lengths`].
    pub fn rebuild(&mut self, lengths: &[u8], codes: &mut Vec<u32>) -> Result<()> {
        let max_len = validate_prefix_code(lengths)?;
        canonical_codes_into(lengths, codes);
        let size = 1usize << max_len;
        self.table.clear();
        self.table.resize(size, (u16::MAX, 0u8));
        for (sym, &len) in lengths.iter().enumerate() {
            if len == 0 {
                continue;
            }
            let len32 = u32::from(len);
            let rev = reverse_bits(codes[sym], len32) as usize;
            // Every index whose low `len` bits equal the reversed code maps
            // to this symbol.
            let step = 1usize << len32;
            let mut idx = rev;
            while idx < size {
                self.table[idx] = (sym as u16, len);
                idx += step;
            }
        }
        self.max_len = max_len;
        Ok(())
    }

    /// Decode one symbol from `reader`.
    #[inline]
    pub fn decode(&self, reader: &mut BitReader<'_>) -> Result<u16> {
        let bits = reader.peek_bits(self.max_len) as usize;
        let (sym, len) = self.table[bits];
        if sym == u16::MAX {
            return Err(CodecError::Corrupt("invalid huffman code"));
        }
        reader.consume(u32::from(len))?;
        Ok(sym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::BitWriter;

    fn roundtrip_symbols(lengths: &[u8], symbols: &[u16]) {
        let enc = Encoder::from_lengths(lengths);
        let mut w = BitWriter::new();
        for &s in symbols {
            let s = s as usize;
            assert!(enc.lengths[s] > 0);
            w.write_bits(u64::from(enc.codes[s]), u32::from(enc.lengths[s]));
        }
        let bytes = w.finish();
        let dec = Decoder::from_lengths(lengths).unwrap();
        let mut r = BitReader::new(&bytes);
        for &s in symbols {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn package_merge_matches_entropy_shape() {
        // Frequencies 8,4,2,1,1 — optimal lengths 1,2,3,4,4.
        let lengths = package_merge_lengths(&[8, 4, 2, 1, 1], 15);
        assert_eq!(lengths, vec![1, 2, 3, 4, 4]);
    }

    #[test]
    fn package_merge_respects_limit() {
        // Fibonacci-like frequencies force deep trees without a limit.
        let freqs: Vec<u64> = vec![1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144];
        let lengths = package_merge_lengths(&freqs, 6);
        assert!(lengths.iter().all(|&l| (1..=6).contains(&l)));
        assert!(kraft_ok(&lengths));
        // Still decodable.
        let syms: Vec<u16> = (0..freqs.len() as u16).collect();
        roundtrip_symbols(&lengths, &syms);
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let lengths = package_merge_lengths(&[0, 7, 0], 15);
        assert_eq!(lengths, vec![0, 1, 0]);
    }

    #[test]
    fn zero_frequencies_get_no_code() {
        let lengths = package_merge_lengths(&[5, 0, 5, 0], 15);
        assert_eq!(lengths[1], 0);
        assert_eq!(lengths[3], 0);
    }

    #[test]
    fn canonical_codes_rfc1951_example() {
        // RFC 1951 §3.2.2 example: lengths (3,3,3,3,3,2,4,4)
        // -> codes 010,011,100,101,110,00,1110,1111.
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let codes = canonical_codes(&lengths);
        assert_eq!(
            codes,
            vec![0b010, 0b011, 0b100, 0b101, 0b110, 0b00, 0b1110, 0b1111]
        );
    }

    #[test]
    fn encode_decode_roundtrip_random_stream() {
        let lengths = package_merge_lengths(&[100, 50, 20, 10, 5, 5, 3, 1], 15);
        let symbols: Vec<u16> = (0..2000).map(|i| ((i * 7 + i / 3) % 8) as u16).collect();
        roundtrip_symbols(&lengths, &symbols);
    }

    #[test]
    fn decoder_rejects_oversubscribed() {
        // Three symbols of length 1 is not a prefix code.
        assert!(matches!(
            Decoder::from_lengths(&[1, 1, 1]),
            Err(CodecError::InvalidHuffmanTable("over-subscribed code"))
        ));
    }

    #[test]
    fn decoder_rejects_undersubscribed() {
        // Two symbols of length 2 leave half the code space dangling; a
        // decoder accepting this would read undefined symbols from valid-
        // looking bit patterns.
        assert!(matches!(
            Decoder::from_lengths(&[2, 2, 0]),
            Err(CodecError::InvalidHuffmanTable("under-subscribed code"))
        ));
        // One symbol of length 3 is also incomplete: the degenerate
        // single-symbol exception requires exactly one bit (RFC 1951).
        assert!(Decoder::from_lengths(&[0, 3, 0]).is_err());
    }

    #[test]
    fn decoder_allows_degenerate_single_symbol_code() {
        // RFC 1951 §3.2.7: an alphabet with one used symbol is coded with a
        // single 1-bit code even though the Kraft sum is only one half.
        let dec = Decoder::from_lengths(&[0, 1, 0]).unwrap();
        let mut r = BitReader::new(&[0b0000_0000]);
        assert_eq!(dec.decode(&mut r).unwrap(), 1);
    }

    #[test]
    fn decoder_rejects_empty() {
        assert!(Decoder::from_lengths(&[0, 0, 0]).is_err());
    }

    #[test]
    fn cost_bits_accounts_all_symbols() {
        let lengths = [1u8, 2, 2];
        let enc = Encoder::from_lengths(&lengths);
        assert_eq!(enc.cost_bits(&[10, 5, 5]), 10 + 10 + 10);
    }

    #[test]
    fn large_alphabet_package_merge() {
        // 300-symbol alphabet with a skewed distribution, limit 15.
        let freqs: Vec<u64> = (0..300u64).map(|i| 1 + (300 - i) * (i % 7 + 1)).collect();
        let lengths = package_merge_lengths(&freqs, 15);
        assert!(kraft_ok(&lengths));
        assert!(lengths.iter().all(|&l| (1..=15).contains(&l)));
        let dec = Decoder::from_lengths(&lengths);
        assert!(dec.is_ok());
    }
}
