//! LSB-first bit-level readers and writers.
//!
//! DEFLATE (RFC 1951) packs bits starting from the least-significant bit of
//! each byte; Huffman codes are stored with their own most-significant bit
//! first, which callers handle by bit-reversing the code before writing. The
//! BWT and FPZ codecs reuse the same convention so the whole crate shares one
//! bit-I/O implementation.

use crate::error::{CodecError, Result};

/// Accumulates bits LSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    /// Pending bits, lowest bit written first.
    bitbuf: u64,
    /// Number of valid bits in `bitbuf` (always < 8 after `flush_bytes`).
    bitcount: u32,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a writer that appends to an existing buffer (byte-aligned).
    pub fn with_buffer(out: Vec<u8>) -> Self {
        Self {
            out,
            bitbuf: 0,
            bitcount: 0,
        }
    }

    /// Write the low `count` bits of `bits` (LSB first). `count` must be ≤ 57
    /// so the internal 64-bit buffer cannot overflow.
    ///
    /// Complete bytes are flushed as one little-endian `u64` store plus a
    /// length adjustment (libdeflate-style), not a per-byte push loop — the
    /// DEFLATE encoder emits merged code+extra-bit groups of up to 48 bits
    /// per call, so the flush is the hot path of the whole entropy coder.
    #[inline]
    pub fn write_bits(&mut self, bits: u64, count: u32) {
        debug_assert!(count <= 57);
        debug_assert!(count == 64 || bits < (1u64 << count));
        self.bitbuf |= bits << self.bitcount;
        self.bitcount += count;
        if self.bitcount >= 8 {
            self.flush_whole_bytes();
        }
    }

    /// Move every complete byte of `bitbuf` into `out` with a single wide
    /// store, leaving `bitcount < 8`.
    #[inline]
    fn flush_whole_bytes(&mut self) {
        let nbytes = (self.bitcount >> 3) as usize;
        let len = self.out.len();
        // One unconditional 8-byte append, then trim to the bytes that are
        // actually complete: the grow check is the only branch.
        self.out.extend_from_slice(&self.bitbuf.to_le_bytes());
        self.out.truncate(len + nbytes);
        // nbytes == 8 (a shift of 64) only when bitcount hit exactly 64;
        // checked_shr turns that into the zero buffer it should be.
        self.bitbuf = self.bitbuf.checked_shr(self.bitcount & !7).unwrap_or(0);
        self.bitcount &= 7;
    }

    /// Pad with zero bits to the next byte boundary.
    pub fn align_byte(&mut self) {
        if self.bitcount > 0 {
            self.out.push((self.bitbuf & 0xff) as u8);
            self.bitbuf = 0;
            self.bitcount = 0;
        }
    }

    /// Append raw bytes; the writer must be byte-aligned.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        assert_eq!(self.bitcount, 0, "write_bytes requires byte alignment");
        self.out.extend_from_slice(bytes);
    }

    /// Number of complete bytes emitted so far.
    pub fn byte_len(&self) -> usize {
        self.out.len()
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.out.len() as u64 * 8 + u64::from(self.bitcount)
    }

    /// Pad to a byte boundary and return the underlying buffer.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.out
    }
}

/// Reads bits LSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    input: &'a [u8],
    /// Next byte to load into `bitbuf`.
    pos: usize,
    bitbuf: u64,
    bitcount: u32,
}

impl<'a> BitReader<'a> {
    /// Start reading from the beginning of `input`.
    pub fn new(input: &'a [u8]) -> Self {
        Self {
            input,
            pos: 0,
            bitbuf: 0,
            bitcount: 0,
        }
    }

    /// Pull bytes from the input until at least 56 bits are buffered or the
    /// input is exhausted.
    ///
    /// Away from the end of input this is branch-light: one unaligned 8-byte
    /// little-endian load ORed above the pending bits tops the buffer up to
    /// ≥ 56 valid bits in a single step (the bytes that do not fit are
    /// reloaded by the next refill — loads are idempotent because `pos` only
    /// advances by the bytes actually consumed into `bitbuf`).
    #[inline]
    fn refill(&mut self) {
        if self.bitcount > 56 {
            return;
        }
        if let Some(chunk) = self.input.get(self.pos..self.pos + 8) {
            let mut a = [0u8; 8];
            a.copy_from_slice(chunk);
            self.bitbuf |= u64::from_le_bytes(a) << self.bitcount;
            let loaded = (63 - self.bitcount) >> 3;
            self.pos += loaded as usize;
            self.bitcount += loaded * 8;
            return;
        }
        while self.bitcount <= 56 && self.pos < self.input.len() {
            self.bitbuf |= u64::from(self.input[self.pos]) << self.bitcount;
            self.pos += 1;
            self.bitcount += 8;
        }
    }

    /// Look at the next `count` (≤ 56) bits without consuming them. Bits past
    /// the end of input read as zero, which lets Huffman decoders peek a full
    /// table width near the end of the stream; `consume` still enforces
    /// stream bounds.
    #[inline]
    pub fn peek_bits(&mut self, count: u32) -> u64 {
        debug_assert!(count <= 56);
        self.refill();
        self.bitbuf & ((1u64 << count) - 1)
    }

    /// Consume `count` bits previously observed with `peek_bits`.
    #[inline]
    pub fn consume(&mut self, count: u32) -> Result<()> {
        if count > self.bitcount {
            return Err(CodecError::Truncated);
        }
        self.bitbuf >>= count;
        self.bitcount -= count;
        Ok(())
    }

    /// Read and consume `count` (≤ 56) bits.
    #[inline]
    pub fn read_bits(&mut self, count: u32) -> Result<u64> {
        let v = self.peek_bits(count);
        if count > self.bitcount {
            return Err(CodecError::Truncated);
        }
        self.consume(count)?;
        Ok(v)
    }

    /// Discard buffered bits up to the next byte boundary.
    pub fn align_byte(&mut self) {
        let drop = self.bitcount % 8;
        self.bitbuf >>= drop;
        self.bitcount -= drop;
    }

    /// Read `len` raw bytes; the reader must be byte-aligned.
    pub fn read_bytes(&mut self, len: usize, out: &mut Vec<u8>) -> Result<()> {
        assert_eq!(self.bitcount % 8, 0, "read_bytes requires byte alignment");
        // Drain whole bytes that are already buffered.
        let mut remaining = len;
        while remaining > 0 && self.bitcount >= 8 {
            out.push((self.bitbuf & 0xff) as u8);
            self.bitbuf >>= 8;
            self.bitcount -= 8;
            remaining -= 1;
        }
        if remaining == 0 {
            return Ok(());
        }
        if self.pos + remaining > self.input.len() {
            return Err(CodecError::Truncated);
        }
        // The drain stopped at bitcount == 0 (the caller is byte-aligned),
        // but `bitbuf` may still hold uncounted look-ahead bits from a wide
        // refill. Advancing `pos` past them would leave them describing
        // bytes we are about to skip, so clear the buffer explicitly.
        debug_assert_eq!(self.bitcount, 0);
        self.bitbuf = 0;
        out.extend_from_slice(&self.input[self.pos..self.pos + remaining]);
        self.pos += remaining;
        Ok(())
    }

    /// Number of bytes not yet consumed (buffered bits count as unconsumed).
    pub fn remaining_bytes(&self) -> usize {
        self.input.len() - self.pos + (self.bitcount / 8) as usize
    }

    /// Byte offset of the first byte not yet loaded into the bit buffer,
    /// after aligning: the position where byte-oriented parsing may resume.
    pub fn byte_position(&mut self) -> usize {
        self.align_byte();
        self.pos - (self.bitcount / 8) as usize
    }
}

/// Reverse the low `len` bits of `code` (used to convert MSB-first Huffman
/// codes to the LSB-first bit stream order of DEFLATE).
#[inline]
pub fn reverse_bits(code: u32, len: u32) -> u32 {
    debug_assert!(len <= 16);
    code.reverse_bits() >> (32 - len.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xabcd, 16);
        w.write_bits(1, 1);
        w.write_bits(0x1f_ffff, 21);
        let bytes = w.finish();

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xabcd);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.read_bits(21).unwrap(), 0x1f_ffff);
    }

    #[test]
    fn lsb_first_byte_layout() {
        let mut w = BitWriter::new();
        // 0b1 then 0b0101: byte should be 0000_1011 = 0x0b.
        w.write_bits(1, 1);
        w.write_bits(0b0101, 4);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0x0b]);
    }

    #[test]
    fn align_and_raw_bytes_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        w.align_byte();
        w.write_bytes(&[1, 2, 3]);
        let bytes = w.finish();

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        r.align_byte();
        let mut out = Vec::new();
        r.read_bytes(3, &mut out).unwrap();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn read_past_end_is_truncated() {
        let mut r = BitReader::new(&[0xff]);
        assert_eq!(r.read_bits(8).unwrap(), 0xff);
        assert!(matches!(r.read_bits(1), Err(CodecError::Truncated)));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut r = BitReader::new(&[0b1010_1010]);
        assert_eq!(r.peek_bits(4), 0b1010);
        assert_eq!(r.peek_bits(4), 0b1010);
        r.consume(4).unwrap();
        assert_eq!(r.peek_bits(4), 0b1010);
    }

    #[test]
    fn peek_past_end_reads_zero_bits() {
        let mut r = BitReader::new(&[0x01]);
        assert_eq!(r.peek_bits(16), 0x0001);
    }

    #[test]
    fn reverse_bits_examples() {
        assert_eq!(reverse_bits(0b1, 1), 0b1);
        assert_eq!(reverse_bits(0b100, 3), 0b001);
        assert_eq!(reverse_bits(0b1100, 4), 0b0011);
        assert_eq!(reverse_bits(0x0001, 16), 0x8000);
    }

    #[test]
    fn read_bytes_drains_buffered_bits_first() {
        let mut w = BitWriter::new();
        w.write_bytes(&[9, 8, 7, 6]);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        // Force a refill so bytes are sitting in the bit buffer.
        assert_eq!(r.peek_bits(8), 9);
        let mut out = Vec::new();
        r.read_bytes(4, &mut out).unwrap();
        assert_eq!(out, vec![9, 8, 7, 6]);
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0b1, 1);
        assert_eq!(w.bit_len(), 1);
        w.write_bits(0x7f, 7);
        assert_eq!(w.bit_len(), 8);
        assert_eq!(w.byte_len(), 1);
    }
}
