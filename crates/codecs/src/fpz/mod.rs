//! FPZ — an `fpzip`-class predictive floating-point compressor.
//!
//! Like Lindstrom & Isenburg's fpzip (IEEE TVCG 2006), FPZ predicts each
//! double with an n-dimensional Lorenzo predictor over the grid the data was
//! produced on, maps doubles to order-preserving unsigned integers, and
//! entropy-codes the prediction residuals: the bit-width "class" of each
//! zigzagged residual goes through an adaptive bit-tree model and the
//! remaining payload bits are coded directly ([`range`]).
//!
//! PRIMACY's related-work section stresses that predictive coders win on
//! smooth, dimensionally-correlated fields but fall behind on turbulent or
//! reorganized data — FPZ reproduces exactly that behaviour.
//!
//! Stream layout: `magic "FPZ1" | u8 rank | varint dims… | varint count |
//! range-coded payload | crc32(raw doubles)`.

/// Adaptive binary range coder backing the residual stream.
pub mod range;

use crate::checksum::crc32;
use crate::error::{CodecError, Result};
use crate::{read_varint, write_varint, Codec};
use range::{BitTreeModel, RangeDecoder, RangeEncoder};

const MAGIC: &[u8; 4] = b"FPZ1";
/// Decompression-bomb bound: an adaptive range-coded payload of `B` bytes
/// cannot encode more than `B * MAX_ELEMENTS_PER_BYTE` doubles. The coder's
/// saturated cost per constant element is ~0.02 bits (≈370 elements/byte);
/// 4096 leaves an order of magnitude of margin while rejecting forged counts
/// before any per-element work happens.
pub const MAX_ELEMENTS_PER_BYTE: usize = 4096;
/// Slack allowed between the decoder cursor and the end of the payload. The
/// encoder flushes 5 bytes, so a valid stream never overruns by more than
/// that; past this bound every decoded bit comes from synthesized zeros.
pub const MAX_RANGE_OVERRUN: usize = 16;

/// Grid shape the Lorenzo predictor runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grid {
    /// Stream of values; predictor uses the previous value.
    D1,
    /// Row-major `(nx, ny)` grid.
    D2(usize, usize),
    /// Row-major `(nx, ny, nz)` grid, `x` fastest.
    D3(usize, usize, usize),
}

impl Grid {
    fn rank(&self) -> u8 {
        match self {
            Grid::D1 => 1,
            Grid::D2(..) => 2,
            Grid::D3(..) => 3,
        }
    }

    /// Total element count, or `None` for the shapeless 1-D stream. An
    /// overflowing product saturates to `usize::MAX`, which can never match a
    /// decodable element count, so callers reject it by plain comparison.
    fn element_count(&self) -> Option<usize> {
        match *self {
            Grid::D1 => None,
            Grid::D2(nx, ny) => Some(nx.saturating_mul(ny)),
            Grid::D3(nx, ny, nz) => Some(nx.saturating_mul(ny).saturating_mul(nz)),
        }
    }
}

/// The FPZ codec.
#[derive(Debug, Clone, Copy)]
pub struct Fpz {
    /// Grid the predictor assumes. [`Grid::D1`] works for any length.
    pub grid: Grid,
}

impl Default for Fpz {
    fn default() -> Self {
        Self { grid: Grid::D1 }
    }
}

/// Map f64 bit patterns to unsigned integers whose order matches the total
/// order on the floats (negative values inverted, positives offset).
#[inline]
fn map_bits(bits: u64) -> u64 {
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Inverse of [`map_bits`].
#[inline]
fn unmap_bits(mapped: u64) -> u64 {
    if mapped >> 63 == 1 {
        mapped & !(1u64 << 63)
    } else {
        !mapped
    }
}

/// Zigzag a signed residual into an unsigned code.
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Lorenzo prediction for element `i` given all previously seen (mapped)
/// values. Out-of-grid neighbours contribute zero.
fn lorenzo_predict(prev: &[u64], i: usize, grid: Grid) -> u64 {
    let get = |idx: Option<usize>| idx.map_or(0u64, |j| prev.get(j).copied().unwrap_or(0));
    match grid {
        Grid::D1 => {
            if i == 0 {
                0
            } else {
                prev.get(i - 1).copied().unwrap_or(0)
            }
        }
        Grid::D2(nx, _) => {
            let x = i % nx;
            let y = i / nx;
            let west = if x > 0 { Some(i - 1) } else { None };
            let south = if y > 0 { Some(i - nx) } else { None };
            let sw = if x > 0 && y > 0 {
                Some(i - nx - 1)
            } else {
                None
            };
            get(west).wrapping_add(get(south)).wrapping_sub(get(sw))
        }
        Grid::D3(nx, ny, _) => {
            // Validated grids satisfy nx * ny <= element count, so the
            // saturating product is exact (and nonzero whenever i exists).
            let plane = nx.saturating_mul(ny);
            let x = i % nx;
            let y = (i / nx) % ny;
            let z = i / plane;
            let at = |dx: usize, dy: usize, dz: usize| -> Option<usize> {
                if (dx == 1 && x == 0) || (dy == 1 && y == 0) || (dz == 1 && z == 0) {
                    None
                } else {
                    let back = dx
                        .saturating_add(dy.saturating_mul(nx))
                        .saturating_add(dz.saturating_mul(plane));
                    i.checked_sub(back)
                }
            };
            // Third-order Lorenzo: +face neighbours, −edge, +corner.
            get(at(1, 0, 0))
                .wrapping_add(get(at(0, 1, 0)))
                .wrapping_add(get(at(0, 0, 1)))
                .wrapping_sub(get(at(1, 1, 0)))
                .wrapping_sub(get(at(1, 0, 1)))
                .wrapping_sub(get(at(0, 1, 1)))
                .wrapping_add(get(at(1, 1, 1)))
        }
    }
}

impl Fpz {
    /// Codec over an explicit grid.
    pub fn with_grid(grid: Grid) -> Self {
        Self { grid }
    }

    /// Compress a slice of doubles.
    pub fn compress_f64(&self, values: &[f64]) -> Result<Vec<u8>> {
        if let Some(expected) = self.grid.element_count() {
            if expected != values.len() {
                return Err(CodecError::InvalidParameter(
                    "value count does not match grid shape",
                ));
            }
        }
        let mut out = Vec::with_capacity(values.len() * 2 + 32);
        out.extend_from_slice(MAGIC);
        out.push(self.grid.rank());
        match self.grid {
            Grid::D1 => {}
            Grid::D2(nx, ny) => {
                write_varint(&mut out, nx as u64);
                write_varint(&mut out, ny as u64);
            }
            Grid::D3(nx, ny, nz) => {
                write_varint(&mut out, nx as u64);
                write_varint(&mut out, ny as u64);
                write_varint(&mut out, nz as u64);
            }
        }
        write_varint(&mut out, values.len() as u64);

        let mapped: Vec<u64> = values.iter().map(|v| map_bits(v.to_bits())).collect();
        let mut enc = RangeEncoder::new();
        // 65 classes (0..=64 significant bits) fit a 7-bit tree.
        let mut class_model = BitTreeModel::new(7);
        for i in 0..mapped.len() {
            let pred = lorenzo_predict(&mapped, i, self.grid);
            // lint: allow(index) -- encoder-owned buffer; i < mapped.len() by the loop bound
            let residual = zigzag(mapped[i].wrapping_sub(pred) as i64);
            let class = 64 - residual.leading_zeros(); // 0..=64
            class_model.encode(&mut enc, class);
            if class > 1 {
                // MSB is implicit; emit the low class-1 bits.
                enc.encode_direct(residual & ((1u64 << (class - 1)) - 1), class - 1);
            }
        }
        out.extend_from_slice(&enc.finish());
        let raw: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        out.extend_from_slice(&crc32(&raw).to_le_bytes());
        Ok(out)
    }

    /// Decompress a stream produced by [`Fpz::compress_f64`].
    pub fn decompress_f64(&self, input: &[u8]) -> Result<Vec<f64>> {
        if input.len() < 10 {
            return Err(CodecError::Truncated);
        }
        if input.get(..4) != Some(MAGIC.as_slice()) {
            return Err(CodecError::BadMagic);
        }
        let rank = input.get(4).copied().ok_or(CodecError::Truncated)?;
        let mut pos = 5usize;
        let mut dims = [0usize; 3];
        if !(1..=3).contains(&rank) {
            return Err(CodecError::Corrupt("fpz rank must be 1..=3"));
        }
        let n_dims = if rank == 1 { 0 } else { rank as usize };
        for d in dims.iter_mut().take(n_dims) {
            let (v, used) = read_varint(input.get(pos..).ok_or(CodecError::Truncated)?)?;
            *d = v as usize;
            pos = pos.checked_add(used).ok_or(CodecError::Truncated)?;
        }
        let (count, used) = read_varint(input.get(pos..).ok_or(CodecError::Truncated)?)?;
        let count = count as usize;
        pos = pos.checked_add(used).ok_or(CodecError::Truncated)?;
        let [d0, d1, d2] = dims;
        let grid = match rank {
            1 => Grid::D1,
            2 => Grid::D2(d0, d1),
            _ => Grid::D3(d0, d1, d2),
        };
        if let Some(expected) = grid.element_count() {
            if expected != count {
                return Err(CodecError::Corrupt("fpz grid/count mismatch"));
            }
            if dims.iter().take(n_dims).any(|&d| d == 0) {
                return Err(CodecError::Corrupt("fpz zero grid dimension"));
            }
        }
        let body_end = input.len() - 4;
        let body = input.get(pos..body_end).ok_or(CodecError::Truncated)?;
        if count > body.len().saturating_mul(MAX_ELEMENTS_PER_BYTE) {
            return Err(CodecError::Corrupt("fpz count implausible for payload"));
        }
        let mut dec = RangeDecoder::new(body)?;
        let mut class_model = BitTreeModel::new(7);
        let mut mapped = Vec::with_capacity(crate::clamped_capacity(count as u64));
        for i in 0..count {
            if dec.overrun() > MAX_RANGE_OVERRUN {
                return Err(CodecError::Truncated);
            }
            let class = class_model.decode(&mut dec);
            if class > 64 {
                return Err(CodecError::Corrupt("fpz residual class exceeds 64"));
            }
            let residual = match class {
                0 => 0u64,
                1 => 1u64,
                c => (1u64 << (c - 1)) | dec.decode_direct(c - 1),
            };
            let pred = lorenzo_predict(&mapped, i, grid);
            mapped.push(pred.wrapping_add(unzigzag(residual) as u64));
        }
        let values: Vec<f64> = mapped
            .iter()
            .map(|&m| f64::from_bits(unmap_bits(m)))
            .collect();
        let raw: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let stored =
            u32::from_le_bytes(crate::read_array(input, body_end).ok_or(CodecError::Truncated)?);
        let actual = crc32(&raw);
        if stored != actual {
            return Err(CodecError::ChecksumMismatch {
                expected: stored,
                actual,
            });
        }
        Ok(values)
    }
}

impl Codec for Fpz {
    fn name(&self) -> &'static str {
        "fpz"
    }

    /// Byte interface: whole doubles are coded (always on a 1-D grid, since
    /// an arbitrary byte stream has no shape), a ragged tail is stored raw.
    fn compress(&self, input: &[u8]) -> Result<Vec<u8>> {
        let whole = input.len() / 8 * 8;
        let values: Vec<f64> = input
            .chunks_exact(8)
            .map(|c| {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(c); // chunks_exact(8) guarantees the length
                f64::from_le_bytes(bytes)
            })
            .collect();
        let mut out = Fpz::default().compress_f64(&values)?;
        out.extend_from_slice(input.get(whole..).unwrap_or(&[]));
        out.push((input.len() - whole) as u8);
        Ok(out)
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        let tail_len = usize::from(*input.last().ok_or(CodecError::Truncated)?);
        if tail_len >= 8 || input.len() < 1 + tail_len {
            return Err(CodecError::Corrupt("fpz tail length invalid"));
        }
        let split = input.len() - 1 - tail_len;
        let body = input.get(..split).ok_or(CodecError::Truncated)?;
        let tail = input.get(split..input.len() - 1).unwrap_or(&[]);
        let values = Fpz::default().decompress_f64(body)?;
        let mut out: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        out.extend_from_slice(tail);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_bits_preserves_order() {
        let samples = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -1.0,
            -1e-300,
            -0.0,
            0.0,
            1e-300,
            1.0,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for w in samples.windows(2) {
            let a = map_bits(w[0].to_bits());
            let b = map_bits(w[1].to_bits());
            assert!(a <= b, "{} -> {a:#x} vs {} -> {b:#x}", w[0], w[1]);
        }
        for v in samples {
            assert_eq!(unmap_bits(map_bits(v.to_bits())), v.to_bits());
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn roundtrip_1d_smooth() {
        let fpz = Fpz::default();
        let values: Vec<f64> = (0..20_000)
            .map(|i| (i as f64 * 0.01).cos() * 42.0)
            .collect();
        let comp = fpz.compress_f64(&values).unwrap();
        let back = fpz.decompress_f64(&comp).unwrap();
        assert_eq!(
            back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            values.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn roundtrip_2d_field() {
        let (nx, ny) = (64, 48);
        let fpz = Fpz::with_grid(Grid::D2(nx, ny));
        let values: Vec<f64> = (0..nx * ny)
            .map(|i| {
                let (x, y) = ((i % nx) as f64, (i / nx) as f64);
                (x * 0.1).sin() + (y * 0.07).cos()
            })
            .collect();
        let comp = fpz.compress_f64(&values).unwrap();
        assert_eq!(fpz.decompress_f64(&comp).unwrap(), values);
    }

    #[test]
    fn roundtrip_3d_field() {
        let (nx, ny, nz) = (16, 12, 10);
        let fpz = Fpz::with_grid(Grid::D3(nx, ny, nz));
        let values: Vec<f64> = (0..nx * ny * nz)
            .map(|i| {
                let x = (i % nx) as f64;
                let y = ((i / nx) % ny) as f64;
                let z = (i / (nx * ny)) as f64;
                x * 1.5 + y * 2.5 + z * 3.5
            })
            .collect();
        let comp = fpz.compress_f64(&values).unwrap();
        assert_eq!(fpz.decompress_f64(&comp).unwrap(), values);
    }

    #[test]
    fn smooth_2d_beats_1d_grid() {
        // Dimensional correlation is what fpzip exploits; a 2-D Lorenzo
        // predictor must beat the 1-D chain on a genuinely 2-D field.
        let (nx, ny) = (128, 128);
        let values: Vec<f64> = (0..nx * ny)
            .map(|i| {
                let (x, y) = ((i % nx) as f64, (i / nx) as f64);
                (x * 0.05).sin() * (y * 0.03).cos() * 1000.0
            })
            .collect();
        let c2 = Fpz::with_grid(Grid::D2(nx, ny))
            .compress_f64(&values)
            .unwrap();
        let c1 = Fpz::default().compress_f64(&values).unwrap();
        assert!(c2.len() < c1.len(), "2D {} vs 1D {}", c2.len(), c1.len());
    }

    #[test]
    fn grid_shape_mismatch_rejected() {
        let fpz = Fpz::with_grid(Grid::D2(10, 10));
        assert!(fpz.compress_f64(&[1.0; 99]).is_err());
    }

    #[test]
    fn roundtrip_random_doubles() {
        let fpz = Fpz::default();
        let mut x = 31u64;
        let values: Vec<f64> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(7);
                f64::from_bits((x >> 2) | 0x3FF0_0000_0000_0000)
            })
            .collect();
        let comp = fpz.compress_f64(&values).unwrap();
        assert_eq!(fpz.decompress_f64(&comp).unwrap(), values);
    }

    #[test]
    fn special_values_roundtrip() {
        let fpz = Fpz::default();
        let values = vec![
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::MIN_POSITIVE,
            -f64::MAX,
        ];
        let comp = fpz.compress_f64(&values).unwrap();
        let back = fpz.decompress_f64(&comp).unwrap();
        for (a, b) in back.iter().zip(&values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn byte_interface_with_tail() {
        let fpz = Fpz::default();
        let data: Vec<u8> = (0u8..=255).cycle().take(83).collect(); // ragged
        let comp = fpz.compress(&data).unwrap();
        assert_eq!(fpz.decompress(&comp).unwrap(), data);
    }

    #[test]
    fn corruption_detected() {
        let fpz = Fpz::default();
        let values: Vec<f64> = (0..2000).map(|i| i as f64 * 0.25).collect();
        let mut comp = fpz.compress_f64(&values).unwrap();
        let mid = comp.len() / 2;
        comp[mid] ^= 0x20;
        assert!(fpz.decompress_f64(&comp).is_err());
    }

    #[test]
    fn empty_input() {
        let fpz = Fpz::default();
        let comp = fpz.compress_f64(&[]).unwrap();
        assert!(fpz.decompress_f64(&comp).unwrap().is_empty());
    }
}
