//! Adaptive binary range coder (carry-cached, LZMA-style renormalization).
//!
//! Probabilities are 11-bit (`0..2048`) and adapt with shift-5 exponential
//! decay. Besides modeled bits, the coder supports "direct" (unmodeled,
//! probability-½) bits for residual payloads.

use crate::error::{CodecError, Result};

/// Number of probability quantization bits.
const PROB_BITS: u32 = 11;
/// Initial probability: one half.
pub const PROB_INIT: u16 = (1 << PROB_BITS) / 2;
/// Adaptation shift.
const ADAPT_SHIFT: u32 = 5;
const TOP: u32 = 1 << 24;

/// An adaptive probability of the next bit being 0.
#[derive(Debug, Clone, Copy)]
pub struct Prob(pub u16);

impl Default for Prob {
    fn default() -> Self {
        Prob(PROB_INIT)
    }
}

impl Prob {
    #[inline]
    fn update(&mut self, bit: u32) {
        if bit == 0 {
            self.0 += ((1 << PROB_BITS) - self.0) >> ADAPT_SHIFT;
        } else {
            self.0 -= self.0 >> ADAPT_SHIFT;
        }
    }
}

/// Range encoder writing to an internal buffer.
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// Fresh encoder.
    pub fn new() -> Self {
        Self {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    #[inline]
    fn shift_low(&mut self) {
        if (self.low as u32) < 0xFF00_0000 || (self.low >> 32) != 0 {
            let carry = (self.low >> 32) as u8;
            if self.cache_size != 0 {
                self.out.push(self.cache.wrapping_add(carry));
                for _ in 1..self.cache_size {
                    self.out.push(0xFFu8.wrapping_add(carry));
                }
            }
            self.cache = (self.low >> 24) as u8;
            self.cache_size = 0;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    /// Encode one modeled bit.
    #[inline]
    pub fn encode_bit(&mut self, prob: &mut Prob, bit: u32) {
        // range>>11 < 2^21 times an 11-bit probability stays under 2^32,
        // and low < 2^33 plus a u32 stays far under 2^64: wrap-free.
        let bound = (self.range >> PROB_BITS).wrapping_mul(u32::from(prob.0));
        if bit == 0 {
            self.range = bound;
        } else {
            self.low = self.low.wrapping_add(u64::from(bound));
            self.range -= bound;
        }
        prob.update(bit);
        if self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    /// Encode `count` unmodeled bits of `value`, most-significant first.
    pub fn encode_direct(&mut self, value: u64, count: u32) {
        for i in (0..count).rev() {
            let bit = ((value >> i) & 1) as u32;
            self.range >>= 1;
            if bit != 0 {
                // low < 2^33 plus a u32 cannot wrap a u64.
                self.low = self.low.wrapping_add(u64::from(self.range));
            }
            if self.range < TOP {
                self.range <<= 8;
                self.shift_low();
            }
        }
    }

    /// Flush and return the encoded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// Range decoder reading from a byte slice.
pub struct RangeDecoder<'a> {
    code: u32,
    range: u32,
    input: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    /// Initialize from an encoded stream (consumes the 5-byte preamble).
    pub fn new(input: &'a [u8]) -> Result<Self> {
        if input.len() < 5 {
            return Err(CodecError::Truncated);
        }
        let mut code = 0u32;
        // The first byte is the encoder's initial zero cache; skip it.
        for &b in input.get(1..5).ok_or(CodecError::Truncated)? {
            code = (code << 8) | u32::from(b);
        }
        Ok(Self {
            code,
            range: u32::MAX,
            input,
            pos: 5,
        })
    }

    /// Bytes consumed beyond the end of the input. A well-formed stream
    /// never overruns by more than the coder's flush slack; a growing
    /// overrun means the decoder is pulling synthesized zeros — callers
    /// bound it to cap decompression work on forged element counts.
    pub fn overrun(&self) -> usize {
        self.pos.saturating_sub(self.input.len())
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        // Reading past the end yields zeros; a truncated stream will fail
        // the container checksum instead.
        let b = self.input.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Decode one modeled bit.
    #[inline]
    // lint: allow(decode-result) -- coder primitive: zero-fills past end by design; the container CRC rejects truncation
    pub fn decode_bit(&mut self, prob: &mut Prob) -> u32 {
        // Same bound proof as `encode_bit`: the product stays under 2^32.
        let bound = (self.range >> PROB_BITS).wrapping_mul(u32::from(prob.0));
        let bit = if self.code < bound {
            self.range = bound;
            0
        } else {
            self.code -= bound;
            self.range -= bound;
            1
        };
        prob.update(bit);
        if self.range < TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | u32::from(self.next_byte());
        }
        bit
    }

    /// Decode `count` unmodeled bits, most-significant first.
    // lint: allow(decode-result) -- coder primitive: zero-fills past end by design; the container CRC rejects truncation
    pub fn decode_direct(&mut self, count: u32) -> u64 {
        let mut value = 0u64;
        for _ in 0..count {
            self.range >>= 1;
            let bit = if self.code >= self.range {
                self.code -= self.range;
                1u64
            } else {
                0u64
            };
            value = (value << 1) | bit;
            if self.range < TOP {
                self.range <<= 8;
                self.code = (self.code << 8) | u32::from(self.next_byte());
            }
        }
        value
    }
}

/// A complete binary context tree for coding an `n_bits`-wide symbol, one
/// adaptive probability per internal node.
#[derive(Debug, Clone)]
pub struct BitTreeModel {
    probs: Vec<Prob>,
    n_bits: u32,
}

impl BitTreeModel {
    /// Model for symbols in `0..(1 << n_bits)`.
    pub fn new(n_bits: u32) -> Self {
        Self {
            probs: vec![Prob::default(); 1 << n_bits],
            n_bits,
        }
    }

    /// Encode `symbol` (must fit in `n_bits`).
    pub fn encode(&mut self, enc: &mut RangeEncoder, symbol: u32) {
        debug_assert!(symbol < (1 << self.n_bits));
        let mut ctx = 1usize;
        for i in (0..self.n_bits).rev() {
            let bit = (symbol >> i) & 1;
            // lint: allow(index) -- tree walk invariant: ctx < 2^n_bits == probs.len()
            enc.encode_bit(&mut self.probs[ctx], bit);
            ctx = (ctx << 1) | bit as usize;
        }
    }

    /// Decode one symbol.
    // lint: allow(decode-result) -- coder primitive: zero-fills past end by design; the container CRC rejects truncation
    pub fn decode(&mut self, dec: &mut RangeDecoder<'_>) -> u32 {
        let mut ctx = 1usize;
        for _ in 0..self.n_bits {
            // lint: allow(index) -- tree walk invariant: ctx < 2^n_bits == probs.len()
            let bit = dec.decode_bit(&mut self.probs[ctx]);
            ctx = (ctx << 1) | bit as usize;
        }
        (ctx as u32) - (1 << self.n_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modeled_bits_roundtrip() {
        let bits: Vec<u32> = (0..5000).map(|i| u32::from(i % 7 == 0)).collect();
        let mut enc = RangeEncoder::new();
        let mut p = Prob::default();
        for &b in &bits {
            enc.encode_bit(&mut p, b);
        }
        let data = enc.finish();
        let mut dec = RangeDecoder::new(&data).unwrap();
        let mut p = Prob::default();
        for &b in &bits {
            assert_eq!(dec.decode_bit(&mut p), b);
        }
    }

    #[test]
    fn skewed_bits_compress_below_one_bit_each() {
        // 1% ones: an adaptive coder should get well under n/8 bytes.
        let bits: Vec<u32> = (0..80_000).map(|i| u32::from(i % 100 == 0)).collect();
        let mut enc = RangeEncoder::new();
        let mut p = Prob::default();
        for &b in &bits {
            enc.encode_bit(&mut p, b);
        }
        let data = enc.finish();
        assert!(
            data.len() < bits.len() / 8 / 4,
            "80000 skewed bits took {} bytes",
            data.len()
        );
    }

    #[test]
    fn direct_bits_roundtrip() {
        let values: Vec<(u64, u32)> = vec![
            (0, 1),
            (1, 1),
            (0xdead, 16),
            (0xFFFF_FFFF_FFFF, 48),
            (0, 33),
            (u64::MAX >> 1, 63),
        ];
        let mut enc = RangeEncoder::new();
        for &(v, n) in &values {
            enc.encode_direct(v, n);
        }
        let data = enc.finish();
        let mut dec = RangeDecoder::new(&data).unwrap();
        for &(v, n) in &values {
            assert_eq!(dec.decode_direct(n), v, "value {v:#x} width {n}");
        }
    }

    #[test]
    fn mixed_modeled_and_direct() {
        let mut enc = RangeEncoder::new();
        let mut tree = BitTreeModel::new(7);
        for i in 0..2000u32 {
            tree.encode(&mut enc, i % 65);
            enc.encode_direct(u64::from(i), 11);
        }
        let data = enc.finish();
        let mut dec = RangeDecoder::new(&data).unwrap();
        let mut tree = BitTreeModel::new(7);
        for i in 0..2000u32 {
            assert_eq!(tree.decode(&mut dec), i % 65);
            assert_eq!(dec.decode_direct(11), u64::from(i) & 0x7FF);
        }
    }

    #[test]
    fn bit_tree_skewed_symbols_compress() {
        let mut enc = RangeEncoder::new();
        let mut tree = BitTreeModel::new(7);
        for _ in 0..10_000 {
            tree.encode(&mut enc, 3);
        }
        let data = enc.finish();
        // Adaptive probabilities saturate near (but not at) certainty, so a
        // constant symbol still costs a fraction of a bit: well under the
        // 8750 bytes a flat 7-bit encoding would take.
        assert!(
            data.len() < 500,
            "constant symbol took {} bytes",
            data.len()
        );
    }

    #[test]
    fn decoder_needs_five_bytes() {
        assert!(RangeDecoder::new(&[1, 2, 3]).is_err());
    }
}
