//! Adler-32 (RFC 1950) and CRC-32 (IEEE 802.3) checksums.
//!
//! Adler-32 terminates every zlib stream; CRC-32 guards the framed containers
//! of the non-DEFLATE codecs in this crate.

/// Largest prime smaller than 2^16, per RFC 1950.
const ADLER_MOD: u32 = 65_521;
/// Largest n such that 255·n·(n+1)/2 + (n+1)·(MOD−1) ≤ 2^32−1; allows
/// deferring the modulo reduction (same constant zlib uses).
const ADLER_NMAX: usize = 5552;

/// Streaming Adler-32 state.
#[derive(Debug, Clone)]
pub struct Adler32 {
    a: u32,
    b: u32,
}

impl Default for Adler32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Adler32 {
    /// Initial state (checksum of the empty string is 1).
    pub fn new() -> Self {
        Self { a: 1, b: 0 }
    }

    /// Fold `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        for chunk in data.chunks(ADLER_NMAX) {
            for &byte in chunk {
                self.a += u32::from(byte);
                self.b += self.a;
            }
            self.a %= ADLER_MOD;
            self.b %= ADLER_MOD;
        }
    }

    /// Current checksum value.
    pub fn finish(&self) -> u32 {
        (self.b << 16) | self.a
    }
}

/// Adler-32 of a whole buffer.
pub fn adler32(data: &[u8]) -> u32 {
    let mut state = Adler32::new();
    state.update(data);
    state.finish()
}

/// Slice-by-8 CRC-32 tables for the reflected IEEE polynomial 0xEDB88320.
/// Table 0 is the classic byte-at-a-time table; tables 1..7 fold 8 input
/// bytes per iteration, which is ~4-8× faster than the scalar loop.
const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 8] = crc32_tables();

/// Streaming CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Initial state.
    pub fn new() -> Self {
        Self { state: 0xffff_ffff }
    }

    /// Fold `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk); // chunks_exact(8) guarantees the length
            let v = u64::from_le_bytes(word);
            let lo = (v as u32) ^ crc;
            let hi = (v >> 32) as u32;
            crc = CRC_TABLES[7][(lo & 0xff) as usize]
                ^ CRC_TABLES[6][((lo >> 8) & 0xff) as usize]
                ^ CRC_TABLES[5][((lo >> 16) & 0xff) as usize]
                ^ CRC_TABLES[4][(lo >> 24) as usize]
                ^ CRC_TABLES[3][(hi & 0xff) as usize]
                ^ CRC_TABLES[2][((hi >> 8) & 0xff) as usize]
                ^ CRC_TABLES[1][((hi >> 16) & 0xff) as usize]
                ^ CRC_TABLES[0][(hi >> 24) as usize];
        }
        for &byte in chunks.remainder() {
            let idx = ((crc ^ u32::from(byte)) & 0xff) as usize;
            crc = (crc >> 8) ^ CRC_TABLES[0][idx];
        }
        self.state = crc;
    }

    /// Current checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

/// CRC-32 of a whole buffer.
pub fn crc32(data: &[u8]) -> u32 {
    let mut state = Crc32::new();
    state.update(data);
    state.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adler32_known_vectors() {
        // Reference values from the zlib implementation.
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"a"), 0x0062_0062);
        assert_eq!(adler32(b"abc"), 0x024d_0127);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn adler32_streaming_matches_oneshot() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut s = Adler32::new();
        for chunk in data.chunks(977) {
            s.update(chunk);
        }
        assert_eq!(s.finish(), adler32(&data));
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_streaming_matches_oneshot() {
        let data: Vec<u8> = (0..50_000u32).map(|i| (i * 17 % 256) as u8).collect();
        let mut s = Crc32::new();
        for chunk in data.chunks(313) {
            s.update(chunk);
        }
        assert_eq!(s.finish(), crc32(&data));
    }

    #[test]
    fn checksums_detect_single_bit_flip() {
        let mut data = vec![0u8; 4096];
        data[17] = 0x40;
        let a0 = adler32(&data);
        let c0 = crc32(&data);
        data[17] ^= 1;
        assert_ne!(adler32(&data), a0);
        assert_ne!(crc32(&data), c0);
    }
}
