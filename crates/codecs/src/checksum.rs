//! Adler-32 (RFC 1950) and CRC-32 (IEEE 802.3) checksums.
//!
//! Adler-32 terminates every zlib stream; CRC-32 guards the framed containers
//! of the non-DEFLATE codecs in this crate.

/// Largest prime smaller than 2^16, per RFC 1950.
const ADLER_MOD: u32 = 65_521;
/// Largest n such that 255·n·(n+1)/2 + (n+1)·(MOD−1) ≤ 2^32−1; allows
/// deferring the modulo reduction (same constant zlib uses). Rounded down
/// to a multiple of [`ADLER_GROUP`] so the vectorizable inner loop never
/// straddles a reduction boundary.
const ADLER_NMAX: usize = 5552 - 5552 % ADLER_GROUP;
/// Bytes folded per inner-loop step of [`Adler32::update`]. The group is
/// wide enough that the two per-group reductions (a plain sum and a
/// position-weighted sum) auto-vectorize; 32 keeps the weight vector in one
/// or two SIMD registers on any lane width LLVM picks.
const ADLER_GROUP: usize = 32;

/// Streaming Adler-32 state.
#[derive(Debug, Clone)]
pub struct Adler32 {
    a: u32,
    b: u32,
}

impl Default for Adler32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Adler32 {
    /// Initial state (checksum of the empty string is 1).
    pub fn new() -> Self {
        Self { a: 1, b: 0 }
    }

    /// Fold `data` into the checksum.
    ///
    /// The byte recurrence `a += x; b += a` serializes on `a`, so each
    /// [`ADLER_NMAX`] window is restated per [`ADLER_GROUP`]-byte group in
    /// closed form: `b' = b + G·a + Σ (G−i)·x_i` and `a' = a + Σ x_i`. Both
    /// sums are independent element-wise reductions; on x86-64 with AVX2 the
    /// whole window is folded by [`avx2::fold_window`] (~10× the scalar
    /// loop), elsewhere the grouped scalar form still shortens the carried
    /// dependency chain from every byte to every group.
    pub fn update(&mut self, data: &[u8]) {
        for chunk in data.chunks(ADLER_NMAX) {
            let whole = chunk.len() - chunk.len() % ADLER_GROUP;
            let (groups, tail) = chunk.split_at(whole);
            if !self.fold_groups_simd(groups) {
                for g in groups.chunks_exact(ADLER_GROUP) {
                    let mut sum = 0u32;
                    let mut weighted = 0u32;
                    for (i, &byte) in g.iter().enumerate() {
                        let x = u32::from(byte);
                        sum += x;
                        weighted += (ADLER_GROUP - i) as u32 * x;
                    }
                    self.b += ADLER_GROUP as u32 * self.a + weighted;
                    self.a += sum;
                }
            }
            for &byte in tail {
                self.a += u32::from(byte);
                self.b += self.a;
            }
            self.a %= ADLER_MOD;
            self.b %= ADLER_MOD;
        }
    }

    /// Fold a multiple-of-[`ADLER_GROUP`] slice (at most one [`ADLER_NMAX`]
    /// window, unreduced) with SIMD when the host supports it. Returns false
    /// when the caller must take the scalar path instead.
    #[cfg(target_arch = "x86_64")]
    fn fold_groups_simd(&mut self, groups: &[u8]) -> bool {
        if groups.is_empty() || !std::arch::is_x86_feature_detected!("avx2") {
            return false;
        }
        // SAFETY: AVX2 support was just verified, and `groups` is a whole
        // number of 32-byte groups within one NMAX window by construction.
        unsafe { avx2::fold_window(&mut self.a, &mut self.b, groups) };
        true
    }

    #[cfg(not(target_arch = "x86_64"))]
    fn fold_groups_simd(&mut self, _groups: &[u8]) -> bool {
        false
    }

    /// Current checksum value.
    pub fn finish(&self) -> u32 {
        (self.b << 16) | self.a
    }
}

/// Adler-32 of a whole buffer.
pub fn adler32(data: &[u8]) -> u32 {
    let mut state = Adler32::new();
    state.update(data);
    state.finish()
}

/// AVX2 Adler-32 kernel (the zlib-ng formulation).
///
/// Per 32-byte block `j` with running sums `(a, b)`, the scalar recurrence
/// expands to `b += 32·a_{j-1} + Σ_i (32−i)·x_i` and `a += Σ_i x_i`. All
/// three reductions are linear, so they accumulate in vector lanes across
/// the whole window and reduce horizontally once at the end:
///
/// * `vs1` accumulates plain byte sums via `psadbw` (sum of absolute
///   differences against zero — eight bytes collapse per u64 lane).
/// * `vs2` accumulates the position-weighted sums via `pmaddubsw` against
///   the constant weights `32..1`, plus `32 × vs1-before-this-block` for the
///   `32·a_{j-1}` prefix term; the scalar `32·k·a₀` part stays outside.
///
/// Lane bounds over one NMAX window (≤ 173 blocks of all-0xFF input): `vs1`
/// lanes ≤ 173·2040 < 2³², `vs2` lanes ≤ 32·2040·Σj + 173·2·16065 < 2³⁰, and
/// the horizontally-summed totals obey the NMAX bound (< 2³²) by
/// construction, so u64 accumulation of the lane sums is exact.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::ADLER_GROUP;
    use std::arch::x86_64::*;

    /// Weights for `pmaddubsw`: byte `i` of a block contributes `(32−i)·x`.
    const WEIGHTS: [i8; 32] = {
        let mut w = [0i8; 32];
        let mut i = 0;
        while i < 32 {
            w[i] = (32 - i) as i8;
            i += 1;
        }
        w
    };

    /// Fold `groups` (a non-empty multiple of [`ADLER_GROUP`] bytes, at most
    /// one NMAX window) into the running `(a, b)` state, without reducing.
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX2.
    #[target_feature(enable = "avx2")]
    // SAFETY: the caller contract is the `# Safety` section above.
    pub unsafe fn fold_window(a: &mut u32, b: &mut u32, groups: &[u8]) {
        // All intrinsics below are AVX2/SSE2 register operations on
        // in-bounds loads; `loadu` variants have no alignment requirement.
        // SAFETY: every 32-byte load stays inside `groups` because the
        // slice length is a multiple of ADLER_GROUP.
        unsafe {
            let zero = _mm256_setzero_si256();
            let ones = _mm256_set1_epi16(1);
            let weights = _mm256_loadu_si256(WEIGHTS.as_ptr().cast());
            let mut vs1 = zero;
            let mut vs2 = zero;
            let blocks = groups.len() / ADLER_GROUP;
            for j in 0..blocks {
                let block = _mm256_loadu_si256(groups.as_ptr().add(j * ADLER_GROUP).cast());
                // b gains 32 × (byte sums accumulated before this block).
                vs2 = _mm256_add_epi32(vs2, _mm256_slli_epi32(vs1, 5));
                vs1 = _mm256_add_epi32(vs1, _mm256_sad_epu8(block, zero));
                let mad = _mm256_maddubs_epi16(block, weights);
                vs2 = _mm256_add_epi32(vs2, _mm256_madd_epi16(mad, ones));
            }
            let mut l1 = [0u32; 8];
            let mut l2 = [0u32; 8];
            _mm256_storeu_si256(l1.as_mut_ptr().cast(), vs1);
            _mm256_storeu_si256(l2.as_mut_ptr().cast(), vs2);
            let s1: u64 = l1.iter().map(|&v| u64::from(v)).sum();
            let s2: u64 = l2.iter().map(|&v| u64::from(v)).sum();
            // The NMAX bound keeps both window totals below 2^32.
            *b += (blocks as u32) * ADLER_GROUP as u32 * *a + s2 as u32;
            *a += s1 as u32;
        }
    }
}

/// Slice-by-16 CRC-32 tables for the reflected IEEE polynomial 0xEDB88320.
/// Table 0 is the classic byte-at-a-time table; table `t` advances a byte
/// `t` further positions through the polynomial, so sixteen table loads fold
/// sixteen input bytes per iteration. Two independent 8-byte halves per
/// iteration roughly double slice-by-8: the second half's XOR tree does not
/// depend on the first's loads, hiding table-lookup latency.
const fn crc32_tables() -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 16] = crc32_tables();

/// Streaming CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Initial state.
    pub fn new() -> Self {
        Self { state: 0xffff_ffff }
    }

    /// Fold `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let data = self.fold_simd(data);
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(16);
        for chunk in &mut chunks {
            let mut w0 = [0u8; 8];
            let mut w1 = [0u8; 8];
            w0.copy_from_slice(&chunk[..8]); // chunks_exact(16) guarantees the length
            w1.copy_from_slice(&chunk[8..]);
            let v0 = u64::from_le_bytes(w0);
            let v1 = u64::from_le_bytes(w1);
            let lo = (v0 as u32) ^ crc;
            let hi = (v0 >> 32) as u32;
            let lo1 = v1 as u32;
            let hi1 = (v1 >> 32) as u32;
            crc = CRC_TABLES[15][(lo & 0xff) as usize]
                ^ CRC_TABLES[14][((lo >> 8) & 0xff) as usize]
                ^ CRC_TABLES[13][((lo >> 16) & 0xff) as usize]
                ^ CRC_TABLES[12][(lo >> 24) as usize]
                ^ CRC_TABLES[11][(hi & 0xff) as usize]
                ^ CRC_TABLES[10][((hi >> 8) & 0xff) as usize]
                ^ CRC_TABLES[9][((hi >> 16) & 0xff) as usize]
                ^ CRC_TABLES[8][(hi >> 24) as usize]
                ^ CRC_TABLES[7][(lo1 & 0xff) as usize]
                ^ CRC_TABLES[6][((lo1 >> 8) & 0xff) as usize]
                ^ CRC_TABLES[5][((lo1 >> 16) & 0xff) as usize]
                ^ CRC_TABLES[4][(lo1 >> 24) as usize]
                ^ CRC_TABLES[3][(hi1 & 0xff) as usize]
                ^ CRC_TABLES[2][((hi1 >> 8) & 0xff) as usize]
                ^ CRC_TABLES[1][((hi1 >> 16) & 0xff) as usize]
                ^ CRC_TABLES[0][(hi1 >> 24) as usize];
        }
        for &byte in chunks.remainder() {
            let idx = ((crc ^ u32::from(byte)) & 0xff) as usize;
            crc = (crc >> 8) ^ CRC_TABLES[0][idx];
        }
        self.state = crc;
    }

    /// Run the PCLMULQDQ folding kernel over as much of `data` as it
    /// handles, updating `self.state`; returns the tail the table-driven
    /// path must still consume. A no-op passthrough off x86-64, for short
    /// inputs, or when the host lacks the carry-less multiply unit.
    #[cfg(target_arch = "x86_64")]
    fn fold_simd<'a>(&mut self, data: &'a [u8]) -> &'a [u8] {
        if data.len() < 128
            || !std::arch::is_x86_feature_detected!("pclmulqdq")
            || !std::arch::is_x86_feature_detected!("sse4.1")
        {
            return data;
        }
        let whole = data.len() - data.len() % 16;
        let (folded, tail) = data.split_at(whole);
        // SAFETY: PCLMULQDQ and SSE4.1 support was just verified, and
        // `folded` is a multiple of 16 bytes of at least 128.
        self.state = unsafe { pclmul::crc32_fold(self.state, folded) };
        tail
    }

    #[cfg(not(target_arch = "x86_64"))]
    fn fold_simd<'a>(&mut self, data: &'a [u8]) -> &'a [u8] {
        data
    }

    /// Current checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

/// CRC-32 folding with carry-less multiplication (PCLMULQDQ), after Gopal et
/// al., "Fast CRC Computation for Generic Polynomials Using PCLMULQDQ"
/// (Intel, 2009), in the bit-reflected form every fast zlib uses.
///
/// Four 128-bit lanes fold 64 input bytes per step: appending 64 bytes
/// multiplies the accumulated polynomial by x^512, and `K1 = x^(512+64) mod
/// P` / `K2 = x^512 mod P` reduce that product back into 128 bits per lane.
/// The lanes then fold into one with `K3/K4` (x^(128+64), x^128), the last
/// 128 bits reduce to 64 with `K5 = x^64 mod P`, and a Barrett reduction
/// (`U' = floor(x^64/P)`, `P'` the polynomial) produces the 32-bit remainder
/// without any table walk.
#[cfg(target_arch = "x86_64")]
mod pclmul {
    use std::arch::x86_64::*;

    const K1: i64 = 0x0001_5444_2bd4;
    const K2: i64 = 0x0001_c6e4_1596;
    const K3: i64 = 0x0001_7519_97d0;
    const K4: i64 = 0x0000_ccaa_009e;
    const K5: i64 = 0x0001_63cd_6124;
    const P_X: i64 = 0x0001_db71_0641;
    const U_PRIME: i64 = 0x0001_f701_1641;

    /// One 128-bit fold step: `b ⊕ lo(a)·keys.lo ⊕ hi(a)·keys.hi`.
    #[inline]
    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    // SAFETY: callers guarantee the CPU features; the body is register-only.
    unsafe fn fold16(a: __m128i, b: __m128i, keys: __m128i) -> __m128i {
        // Register-only carry-less multiplies; the caller guarantees the
        // required CPU features, and the `unsafe fn` body is already an
        // unsafe context for these feature-gated intrinsics.
        let lo = _mm_clmulepi64_si128(a, keys, 0x00);
        let hi = _mm_clmulepi64_si128(a, keys, 0x11);
        _mm_xor_si128(_mm_xor_si128(b, lo), hi)
    }

    /// Fold `data` (≥ 128 bytes, a multiple of 16) into `crc`.
    ///
    /// # Safety
    /// Caller must ensure the host supports PCLMULQDQ and SSE4.1.
    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    // SAFETY: the caller contract is the `# Safety` section above.
    pub unsafe fn crc32_fold(crc: u32, data: &[u8]) -> u32 {
        debug_assert!(data.len() >= 128 && data.len().is_multiple_of(16));
        // SAFETY: every 16-byte load below is kept in bounds by the length
        // contract; all other intrinsics are register-only.
        unsafe {
            let mut chunks = data.chunks_exact(16);
            let mut load = || -> __m128i {
                // The length contract guarantees the iterator yields enough
                // chunks; an empty default keeps the closure panic-free.
                let c = chunks.next().unwrap_or(&[]);
                _mm_loadu_si128(c.as_ptr().cast())
            };
            let mut x3 = load();
            let mut x2 = load();
            let mut x1 = load();
            let mut x0 = load();
            // XOR the running CRC into the lowest lane (reflected layout).
            x3 = _mm_xor_si128(x3, _mm_cvtsi32_si128(crc as i32));

            let k1k2 = _mm_set_epi64x(K2, K1);
            let blocks64 = (data.len() - 64) / 64;
            for _ in 0..blocks64 {
                x3 = fold16(x3, load(), k1k2);
                x2 = fold16(x2, load(), k1k2);
                x1 = fold16(x1, load(), k1k2);
                x0 = fold16(x0, load(), k1k2);
            }
            let k3k4 = _mm_set_epi64x(K4, K3);
            let mut x = fold16(x3, x2, k3k4);
            x = fold16(x, x1, k3k4);
            x = fold16(x, x0, k3k4);
            for c in chunks {
                x = fold16(x, _mm_loadu_si128(c.as_ptr().cast()), k3k4);
            }

            // 128 → 96 → 64 bits.
            let mask32 = _mm_set_epi32(0, 0, 0, !0);
            x = _mm_xor_si128(
                _mm_clmulepi64_si128(x, _mm_set_epi64x(0, K4), 0x00),
                _mm_srli_si128(x, 8),
            );
            x = _mm_xor_si128(
                _mm_clmulepi64_si128(_mm_and_si128(x, mask32), _mm_set_epi64x(0, K5), 0x00),
                _mm_srli_si128(x, 4),
            );

            // Barrett reduction to the 32-bit remainder.
            let pu = _mm_set_epi64x(U_PRIME, P_X);
            let t1 = _mm_clmulepi64_si128(_mm_and_si128(x, mask32), pu, 0x10);
            let t2 = _mm_xor_si128(_mm_clmulepi64_si128(_mm_and_si128(t1, mask32), pu, 0x00), x);
            _mm_extract_epi32(t2, 1) as u32
        }
    }
}

/// CRC-32 of a whole buffer.
pub fn crc32(data: &[u8]) -> u32 {
    let mut state = Crc32::new();
    state.update(data);
    state.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adler32_known_vectors() {
        // Reference values from the zlib implementation.
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"a"), 0x0062_0062);
        assert_eq!(adler32(b"abc"), 0x024d_0127);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn adler32_streaming_matches_oneshot() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut s = Adler32::new();
        for chunk in data.chunks(977) {
            s.update(chunk);
        }
        assert_eq!(s.finish(), adler32(&data));
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_streaming_matches_oneshot() {
        let data: Vec<u8> = (0..50_000u32).map(|i| (i * 17 % 256) as u8).collect();
        let mut s = Crc32::new();
        for chunk in data.chunks(313) {
            s.update(chunk);
        }
        assert_eq!(s.finish(), crc32(&data));
    }

    /// Bit-at-a-time CRC-32: the definitional form both the sliced table
    /// path and the PCLMULQDQ fold must reproduce exactly.
    fn crc32_reference(data: &[u8]) -> u32 {
        let mut crc = 0xffff_ffffu32;
        for &byte in data {
            crc ^= u32::from(byte);
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
        }
        crc ^ 0xffff_ffff
    }

    /// Byte-at-a-time Adler-32, reduced every step: the definitional form
    /// the grouped/SIMD windows must reproduce exactly.
    fn adler32_reference(data: &[u8]) -> u32 {
        let (mut a, mut b) = (1u32, 0u32);
        for &byte in data {
            a = (a + u32::from(byte)) % ADLER_MOD;
            b = (b + a) % ADLER_MOD;
        }
        (b << 16) | a
    }

    #[test]
    fn fast_paths_match_reference_at_every_boundary_length() {
        // Cover: below the SIMD minimum, the 16/32-byte group boundaries,
        // the PCLMUL 128-byte entry point, an NMAX window crossing, and
        // misaligned tails on either side of each.
        let data: Vec<u8> = (0..20_000u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8)
            .collect();
        for len in [
            0, 1, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 129, 143, 144, 191, 192, 255, 256,
            1024, 5551, 5552, 5553, 11104, 16384, 20_000,
        ] {
            let d = &data[..len];
            assert_eq!(crc32(d), crc32_reference(d), "crc32 at len {len}");
            assert_eq!(adler32(d), adler32_reference(d), "adler32 at len {len}");
        }
        // Worst-case bytes for Adler's deferred-modulo bounds.
        let ff = vec![0xffu8; 3 * 5552 + 17];
        assert_eq!(adler32(&ff), adler32_reference(&ff));
        assert_eq!(crc32(&ff), crc32_reference(&ff));
    }

    #[test]
    fn checksums_detect_single_bit_flip() {
        let mut data = vec![0u8; 4096];
        data[17] = 0x40;
        let a0 = adler32(&data);
        let c0 = crc32(&data);
        data[17] ^= 1;
        assert_ne!(adler32(&data), a0);
        assert_ne!(crc32(&data), c0);
    }
}
