//! Decompression-bomb regressions: tiny forged streams that *declare*
//! enormous outputs must fail fast with a typed error — no panic, no
//! allocation or loop proportional to the declared (rather than actual)
//! size. Each forged stream here is under 100 bytes but claims terabytes.

use primacy_codecs::bwt::BwtCodec;
use primacy_codecs::fpz::{Fpz, MAX_ELEMENTS_PER_BYTE};
use primacy_codecs::lzr::Lzr;
use primacy_codecs::Codec;

/// LEB128, matching the crate's internal framing.
fn varint(mut v: u64) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
    out
}

#[test]
fn fpz_rejects_implausible_element_count() {
    // Rank-1 stream claiming 2^40 doubles backed by a 16-byte payload.
    let mut stream = b"FPZ1".to_vec();
    stream.push(1); // rank
    stream.extend_from_slice(&varint(1 << 40));
    stream.extend_from_slice(&[0u8; 16]); // "payload"
    stream.extend_from_slice(&[0u8; 4]); // "crc"
    let err = Fpz::default().decompress_f64(&stream);
    assert!(err.is_err(), "2^40-element claim must be rejected");
}

#[test]
fn fpz_overrun_guard_stops_zero_synthesis() {
    // A count that squeaks under the plausibility cap over a minimal 5-byte
    // coder preamble: the decoder runs out of real bytes almost immediately
    // and must stop via the overrun guard, not decode millions of zeros.
    let body_len = 5usize;
    let count = body_len * MAX_ELEMENTS_PER_BYTE;
    let mut stream = b"FPZ1".to_vec();
    stream.push(1);
    stream.extend_from_slice(&varint(count as u64));
    stream.extend_from_slice(&vec![0u8; body_len]);
    stream.extend_from_slice(&[0u8; 4]);
    let err = Fpz::default().decompress_f64(&stream);
    assert!(err.is_err(), "overrun past the payload must be an error");
}

#[test]
fn lzr_huge_declared_length_fails_without_huge_allocation() {
    // Valid magic, orig_len = 2^50, then an empty-ish body: the decoder must
    // hit Truncated once the body runs dry, with its preallocation clamped.
    let mut stream = b"LZR1".to_vec();
    stream.extend_from_slice(&varint(1 << 50));
    stream.push(0x10); // one literal...
    stream.push(b'x'); // ...which leaves the stream short of its claim
    stream.extend_from_slice(&[0u8; 4]);
    assert!(Lzr.decompress_bytes(&stream).is_err());
}

#[test]
fn bwt_huge_declared_length_fails_without_huge_allocation() {
    let mut stream = b"BWT1".to_vec();
    stream.extend_from_slice(&varint(1 << 50));
    stream.extend_from_slice(&[0u8; 8]); // not enough blocks to satisfy it
    assert!(BwtCodec::default().decompress(&stream).is_err());
}

#[test]
fn truncating_a_real_fpz_stream_is_detected() {
    // End-to-end: a genuine stream cut mid-payload must error via the
    // checksum/overrun path for every truncation point.
    let values: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.01).sin()).collect();
    let full = Fpz::default().compress_f64(&values).unwrap();
    for cut in [10, full.len() / 2, full.len() - 5] {
        assert!(
            Fpz::default().decompress_f64(&full[..cut]).is_err(),
            "truncation at {cut} must not roundtrip"
        );
    }
}
