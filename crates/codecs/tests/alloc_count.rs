//! Steady-state allocation gate for the encode hot path (ISSUE 5 acceptance
//! criterion): once an `EncoderScratch` has been warmed by one chunk, the
//! LZ77 tokenizer must perform **zero** heap allocations for subsequent
//! chunks of the same or smaller size — the hash-chain arrays and token
//! buffer are reused, not reallocated.
//!
//! Verified with a counting global allocator. This file contains exactly one
//! test so no sibling test thread can allocate inside the measured window
//! (integration-test binaries run tests in-process threads).

use primacy_codecs::deflate::lz77::{tokenize_into, EncoderScratch};
use primacy_codecs::deflate::Level;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation unchanged to the `System` allocator; the
// only addition is a relaxed counter bump, which has no effect on the
// allocator contract.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; caller upholds the GlobalAlloc contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; caller upholds the GlobalAlloc contract.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; caller upholds the GlobalAlloc contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; caller upholds the GlobalAlloc contract.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocs() -> usize {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// A deterministic mixed-compressibility chunk: structured prefix, random
/// middle, run-heavy suffix — exercises match emission, skip-ahead, and the
/// literal path in one pass.
fn chunk(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        let b = match i % 3 {
            0 => (i / 17) as u8,
            1 => (x >> 33) as u8,
            _ => 42,
        };
        out.push(b);
    }
    out
}

#[test]
fn steady_state_tokenize_allocates_nothing() {
    const CHUNK: usize = 64 * 1024;
    let warmup = chunk(CHUNK, 0xA11C);
    let chunks: Vec<Vec<u8>> = (0..4)
        .map(|i| chunk(CHUNK - i * 1024, 0xBEEF + i as u64))
        .collect();

    for level in [Level::Fast, Level::Default, Level::Best] {
        let mut scratch = EncoderScratch::new();
        // Warm the scratch: this call allocates head/prev/token buffers.
        tokenize_into(&warmup, level, &mut scratch);
        let token_capacity_floor = scratch.tokens().len();

        // Steady state: same-or-smaller chunks must not touch the allocator.
        let before = allocs();
        for c in &chunks {
            tokenize_into(c, level, &mut scratch);
        }
        let delta = allocs() - before;
        assert_eq!(
            delta, 0,
            "{level:?}: tokenizer hit the allocator {delta} time(s) in steady state"
        );
        // Sanity: the measured calls really did produce work.
        assert!(!scratch.tokens().is_empty() && token_capacity_floor > 0);
    }
}
