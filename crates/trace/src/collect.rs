//! The collecting sink and human-readable rendering.

use crate::agg::{Aggregate, Histogram};
use crate::TraceSink;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Duration;

/// A [`TraceSink`] that folds every thread's aggregate into one shared
/// [`Aggregate`] under a mutex.
///
/// The mutex is taken once per thread-scope merge, not per record, so the
/// hot path stays lock-free. `new` is `const`, so a collector can live in a
/// `static` and be [`crate::install`]ed without allocation.
pub struct Collector {
    inner: Mutex<Aggregate>,
}

impl Collector {
    /// An empty collector.
    pub const fn new() -> Self {
        Self {
            inner: Mutex::new(Aggregate::new()),
        }
    }

    /// Clone the current totals.
    pub fn snapshot(&self) -> Aggregate {
        self.lock().clone()
    }

    /// Discard everything collected so far.
    pub fn reset(&self) {
        *self.lock() = Aggregate::new();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Aggregate> {
        // A panic while holding the lock cannot corrupt the plain-data
        // aggregate; recover it rather than poisoning all future traces.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink for Collector {
    fn enabled(&self) -> bool {
        true
    }

    fn merge(&self, agg: &Aggregate) {
        self.lock().merge_from(agg);
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Render the per-stage breakdown table for the spans named in `stages`
/// (in that order), followed by any other recorded spans, counters and
/// histogram summaries. `wall` is the caller-measured wall time the
/// percentages are relative to; stage time can exceed it when several
/// threads ran stages concurrently.
pub fn render_table(agg: &Aggregate, stages: &[&str], wall: Duration) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>12} {:>8} {:>10} {:>12}",
        "stage", "total", "% wall", "count", "mean"
    );
    let wall_s = wall.as_secs_f64();
    let mut stage_total = Duration::ZERO;
    for &stage in stages {
        let stat = agg.spans.get(stage).copied().unwrap_or_default();
        stage_total += stat.total();
        let pct = if wall_s > 0.0 {
            100.0 * stat.total().as_secs_f64() / wall_s
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<22} {:>12} {:>7.1}% {:>10} {:>12}",
            stage,
            fmt_duration(stat.total()),
            pct,
            stat.count,
            fmt_duration(stat.mean()),
        );
    }
    let pct = if wall_s > 0.0 {
        100.0 * stage_total.as_secs_f64() / wall_s
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "{:<22} {:>12} {:>7.1}%",
        "stages total",
        fmt_duration(stage_total),
        pct
    );
    let _ = writeln!(out, "{:<22} {:>12}", "wall", fmt_duration(wall));

    let extra: Vec<_> = agg
        .spans
        .iter()
        .filter(|(name, _)| !stages.contains(*name))
        .collect();
    if !extra.is_empty() {
        let _ = writeln!(out, "\nother spans:");
        for (name, stat) in extra {
            let _ = writeln!(
                out,
                "  {:<28} {:>12} {:>10} x {:>12}",
                name,
                fmt_duration(stat.total()),
                stat.count,
                fmt_duration(stat.mean()),
            );
        }
    }
    if !agg.counters.is_empty() {
        let _ = writeln!(out, "\ncounters:");
        for (name, value) in &agg.counters {
            let _ = writeln!(out, "  {name:<34} {value:>14}");
        }
    }
    if !agg.histograms.is_empty() {
        let _ = writeln!(out, "\nhistograms (log2 buckets, low..):");
        for (name, hist) in &agg.histograms {
            let _ = writeln!(
                out,
                "  {:<34} n={} mean={:.1}",
                name,
                hist.count,
                hist.mean()
            );
            for (i, &c) in hist.buckets.iter().enumerate() {
                if c > 0 {
                    let _ = writeln!(out, "    >= {:<16} {:>12}", Histogram::bucket_low(i), c);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_merges_and_snapshots() {
        let c = Collector::new();
        assert!(c.enabled());
        let mut a = Aggregate::new();
        a.record_span("split", 1_000);
        a.record_counter("chunks", 3);
        c.merge(&a);
        c.merge(&a);
        let snap = c.snapshot();
        assert_eq!(snap.spans["split"].count, 2);
        assert_eq!(snap.counter("chunks"), 6);
        c.reset();
        assert!(c.snapshot().is_empty());
    }

    #[test]
    fn table_lists_stages_in_order_with_percentages() {
        let mut a = Aggregate::new();
        a.record_span("split", 250_000_000);
        a.record_span("deflate", 500_000_000);
        a.record_span("archive.read_chunk", 10_000_000);
        a.record_counter("chunk.compress", 4);
        a.record_observation("chunk.plain_bytes", 4096);
        let table = render_table(&a, &["split", "freq", "deflate"], Duration::from_secs(1));
        let split_line = table
            .lines()
            .find(|l| l.starts_with("split"))
            .expect("split row");
        assert!(split_line.contains("25.0%"), "{split_line}");
        let freq_line = table
            .lines()
            .find(|l| l.starts_with("freq"))
            .expect("freq row present even when unrecorded");
        assert!(freq_line.contains("0 ns"), "{freq_line}");
        assert!(table.contains("stages total"));
        assert!(table.contains("75.0%"), "{table}");
        assert!(table.contains("archive.read_chunk"));
        assert!(table.contains("chunk.compress"));
        assert!(table.contains("chunk.plain_bytes"));
        // Stage order follows the argument order, not alphabetical.
        let si = table.find("split").expect("split");
        let fi = table.find("freq").expect("freq");
        let di = table.find("deflate").expect("deflate");
        assert!(si < fi && fi < di);
    }

    #[test]
    fn table_handles_zero_wall() {
        let a = Aggregate::new();
        let table = render_table(&a, &["split"], Duration::ZERO);
        assert!(table.contains("wall"));
    }
}
