//! `primacy-trace` — zero-dependency observability for the PRIMACY suite.
//!
//! The paper's throughput claims (§III, Tables III–V) hinge on knowing where
//! time goes inside the pipeline — preconditioner vs. solver vs. ISOBAR
//! partitioning. This crate is the in-tree substitute for the `tracing` +
//! `metrics` crates the dependency policy (DESIGN.md) rules out: a facade of
//! **span timers**, **monotonic counters** and **fixed-bucket log2
//! histograms**, aggregated per thread and merged into a process-global
//! [`TraceSink`] at scope exit.
//!
//! Design, in order of importance:
//!
//! 1. **Zero overhead when disabled.** The default sink is [`Noop`]; every
//!    record function first checks one relaxed atomic bool and returns
//!    immediately — no `Instant::now`, no thread-local touch, no lock.
//!    `crates/bench/tests/trace_overhead.rs` pins this with the harness.
//! 2. **Lock-cheap when enabled.** Records go to a plain thread-local
//!    [`Aggregate`]; the installed sink's mutex is taken once per
//!    [`ThreadScope`] merge (typically once per worker thread per call),
//!    never per record.
//! 3. **Deterministic output.** Aggregates use `BTreeMap`, so tables and
//!    JSON render in a stable order.
//!
//! ```
//! use primacy_trace as trace;
//!
//! // A worker thread brackets its work in a scope...
//! let scope = trace::thread_scope();
//! {
//!     let _span = trace::span("split");        // timed until dropped
//!     trace::counter("chunk.compress", 1);     // monotonic counter
//!     trace::observe("chunk.plain_bytes", 4096); // log2 histogram
//! }
//! drop(scope); // ...and the thread's aggregate merges into the sink here.
//! ```
//!
//! Installation is once per process, exactly like the `log` crate:
//! [`install`] a `&'static` sink (e.g. a `static` [`Collector`]) before the
//! traced work runs. Without an installed sink everything above is inert.

mod agg;
mod collect;

pub use agg::{Aggregate, Histogram, SpanStat, HISTOGRAM_BUCKETS};
pub use collect::{render_table, Collector};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A destination for per-thread trace aggregates.
///
/// The contract is deliberately coarse: a sink never sees individual
/// records, only whole [`Aggregate`]s, handed over when a [`ThreadScope`]
/// ends (or a recording thread exits). Implementations must be cheap to
/// call concurrently; [`Collector`] is the standard one, [`Noop`] the
/// default.
pub trait TraceSink: Send + Sync {
    /// Whether record sites should do any work at all. Checked once at
    /// [`install`] time and cached in an atomic, so implementations cannot
    /// toggle dynamically.
    fn enabled(&self) -> bool {
        false
    }

    /// Absorb one thread's aggregate. Called at scope exit, not per record.
    fn merge(&self, agg: &Aggregate) {
        let _ = agg;
    }
}

/// The do-nothing sink: tracing disabled. This is what runs when nothing
/// was [`install`]ed.
pub struct Noop;

impl TraceSink for Noop {}

static NOOP: Noop = Noop;
static SINK: OnceLock<&'static dyn TraceSink> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Error returned by [`install`] when a sink is already installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstallError;

impl std::fmt::Display for InstallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("a trace sink is already installed for this process")
    }
}

impl std::error::Error for InstallError {}

/// Install the process-global sink. Like `log::set_logger`, this succeeds
/// at most once per process; later calls fail with [`InstallError`].
pub fn install(sink: &'static dyn TraceSink) -> Result<(), InstallError> {
    SINK.set(sink).map_err(|_| InstallError)?;
    ENABLED.store(sink.enabled(), Ordering::Release);
    Ok(())
}

/// The installed sink, or [`Noop`] when none was installed.
pub fn installed() -> &'static dyn TraceSink {
    SINK.get().copied().unwrap_or(&NOOP)
}

/// Whether tracing is live. One relaxed atomic load — this is the entire
/// disabled-path cost of every record function.
#[inline]
pub fn enabled() -> bool {
    // ORDERING: a monotonic on/off flag read on the hot path; the sink
    // pointer it gates is published by `OnceLock`, which synchronizes.
    ENABLED.load(Ordering::Relaxed)
}

thread_local! {
    static LOCAL: RefCell<LocalAgg> = const { RefCell::new(LocalAgg(Aggregate::new())) };
}

/// Thread-local accumulator; its `Drop` flushes to the sink at thread exit
/// so records are not lost if a thread never opened a [`ThreadScope`].
struct LocalAgg(Aggregate);

impl Drop for LocalAgg {
    fn drop(&mut self) {
        if !self.0.is_empty() {
            installed().merge(&self.0);
        }
    }
}

/// Best-effort record into the thread-local aggregate. Silently drops the
/// record during thread teardown (destroyed TLS) or re-entrant borrows —
/// tracing must never panic or abort the traced program.
#[inline]
fn with_local(f: impl FnOnce(&mut Aggregate)) {
    let _ = LOCAL.try_with(|l| {
        if let Ok(mut local) = l.try_borrow_mut() {
            f(&mut local.0);
        }
    });
}

/// Merge this thread's pending records into the installed sink now.
/// Called automatically by [`ThreadScope`]; call it directly on the main
/// thread before snapshotting a [`Collector`].
pub fn flush_thread() {
    let mut taken = Aggregate::new();
    with_local(|agg| taken = std::mem::take(agg));
    if !taken.is_empty() {
        installed().merge(&taken);
    }
}

/// Guard that merges the current thread's aggregate into the sink when
/// dropped. Open one at the top of every worker thread (and around the
/// traced region on the main thread).
#[must_use = "the scope merges at drop; binding it to _ merges immediately"]
pub struct ThreadScope(());

impl Drop for ThreadScope {
    fn drop(&mut self) {
        flush_thread();
    }
}

/// Open a [`ThreadScope`] for the current thread.
pub fn thread_scope() -> ThreadScope {
    ThreadScope(())
}

/// A running span timer; records its elapsed time under `name` when
/// dropped. Inert (no clock read) when tracing is disabled.
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            span_duration(self.name, start.elapsed());
        }
    }
}

/// Start timing the span `name` until the returned guard drops.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        name,
        start: enabled().then(Instant::now),
    }
}

/// Record an already-measured duration under the span `name`. Use this when
/// the caller measures the interval itself (the pipeline's `StageTimings`
/// does) so the clock is read only once.
#[inline]
pub fn span_duration(name: &'static str, d: Duration) {
    if enabled() {
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        with_local(|agg| agg.record_span(name, nanos));
    }
}

/// Add `delta` to the monotonic counter `name`.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if enabled() {
        with_local(|agg| agg.record_counter(name, delta));
    }
}

/// Record `value` into the log2 histogram `name`.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if enabled() {
        with_local(|agg| agg.record_observation(name, value));
    }
}

/// Record `count` identical observations of `value` into the log2 histogram
/// `name`. Hot loops tally locally and flush once per batch through this,
/// so per-event record overhead stays out of the loop; a zero `count` is a
/// no-op and leaves the histogram untouched.
#[inline]
pub fn observe_many(name: &'static str, value: u64, count: u64) {
    if enabled() && count > 0 {
        with_local(|agg| agg.record_observation_n(name, value, count));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global sink installs at most once per process, and the test
    // harness runs every #[test] in one process — so exactly one test
    // exercises the full install → record → scope-merge path and the
    // rest stay off the global. (Aggregate/Collector logic is covered
    // without globals in agg.rs / collect.rs.)
    #[test]
    fn end_to_end_install_record_merge() {
        static COLLECTOR: Collector = Collector::new();
        assert!(!enabled());
        // Records before install are dropped by the enabled() gate.
        counter("early", 1);
        span_duration("early", Duration::from_nanos(5));

        install(&COLLECTOR).expect("first install succeeds");
        assert!(enabled());
        assert!(install(&COLLECTOR).is_err(), "second install must fail");

        {
            let _scope = thread_scope();
            let _span = span("outer");
            span_duration("stage", Duration::from_micros(3));
            counter("chunks", 2);
            observe("bytes", 4096);
            std::thread::sleep(Duration::from_millis(1));
        }
        // A worker thread with no explicit scope flushes at thread exit.
        std::thread::spawn(|| {
            counter("chunks", 5);
        })
        .join()
        .expect("worker thread");

        let snap = COLLECTOR.snapshot();
        assert_eq!(snap.counter("early"), 0);
        assert_eq!(snap.counter("chunks"), 7);
        assert_eq!(snap.spans["stage"].total_nanos, 3_000);
        assert!(snap.spans["outer"].total() >= Duration::from_millis(1));
        assert_eq!(snap.histograms["bytes"].count, 1);

        COLLECTOR.reset();
        assert!(COLLECTOR.snapshot().is_empty());
    }

    #[test]
    fn noop_sink_reports_disabled() {
        assert!(!Noop.enabled());
        // merge on a Noop is a no-op and must not panic.
        let mut a = Aggregate::new();
        a.record_counter("x", 1);
        Noop.merge(&a);
    }

    #[test]
    fn span_guard_is_inert_without_clock_when_disabled() {
        // Can't observe the Instant directly, but the guard must be safely
        // droppable regardless of sink state.
        let g = SpanGuard {
            name: "inert",
            start: None,
        };
        drop(g);
    }
}
