//! The aggregation model: per-thread accumulators for spans, counters and
//! fixed-bucket log2 histograms.
//!
//! Everything here is plain data — no locks, no globals. A thread records
//! into its own [`Aggregate`] (see the facade in [`crate`]) and the whole
//! aggregate is merged into a [`crate::TraceSink`] in one call at scope
//! exit, so the hot path never takes a lock per record.

use std::collections::BTreeMap;
use std::time::Duration;

/// Number of histogram buckets. Bucket `i` (for `i >= 1`) counts values `v`
/// with `floor(log2(v)) == i - 1`, i.e. `v` in `[2^(i-1), 2^i)`; bucket 0
/// counts zeros. 64 buckets cover the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Accumulated wall time of one named span across many activations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of span activations.
    pub count: u64,
    /// Total nanoseconds across all activations (saturating).
    pub total_nanos: u64,
}

impl SpanStat {
    /// Total time as a [`Duration`].
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_nanos)
    }

    /// Mean time per activation (zero when never activated).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.total_nanos / self.count)
    }

    fn add(&mut self, nanos: u64) {
        self.count += 1;
        self.total_nanos = self.total_nanos.saturating_add(nanos);
    }

    fn merge(&mut self, other: &SpanStat) {
        self.count += other.count;
        self.total_nanos = self.total_nanos.saturating_add(other.total_nanos);
    }
}

/// Fixed-bucket log2 histogram of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket counts; see [`HISTOGRAM_BUCKETS`] for the bucket boundaries.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Number of observations.
    pub count: u64,
    /// Sum of observations (saturating), for quick means.
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive lower bound of bucket `i` (0 for buckets 0 and 1).
    pub fn bucket_low(i: usize) -> u64 {
        if i <= 1 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        // bucket_index is < HISTOGRAM_BUCKETS by construction (leading_zeros
        // of a non-zero u64 is at most 63).
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Record `n` observations of the same `value` in one step. Equivalent
    /// to calling [`Histogram::observe`] `n` times; record sites that tally a
    /// value locally in a hot loop (e.g. the inflate symbol loop) use this to
    /// pay the record cost once per batch instead of once per event.
    pub fn observe_n(&mut self, value: u64, n: u64) {
        self.buckets[Self::bucket_index(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
    }

    /// Mean observation (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// One thread's (or one collector's) worth of trace data.
///
/// Keys are `&'static str` because every record site names its metric with a
/// string literal; `BTreeMap` keeps iteration (and therefore every rendered
/// table and JSON document) deterministically ordered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Aggregate {
    /// Named span timers.
    pub spans: BTreeMap<&'static str, SpanStat>,
    /// Named monotonic counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Named log2 histograms.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl Aggregate {
    /// An empty aggregate (const so it can seed a thread-local).
    pub const fn new() -> Self {
        Self {
            spans: BTreeMap::new(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Record a completed span of `nanos` nanoseconds under `name`.
    pub fn record_span(&mut self, name: &'static str, nanos: u64) {
        self.spans.entry(name).or_default().add(nanos);
    }

    /// Add `delta` to the counter `name`.
    pub fn record_counter(&mut self, name: &'static str, delta: u64) {
        let c = self.counters.entry(name).or_default();
        *c = c.saturating_add(delta);
    }

    /// Record one histogram observation under `name`.
    pub fn record_observation(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().observe(value);
    }

    /// Record `n` identical histogram observations under `name` in one step.
    pub fn record_observation_n(&mut self, name: &'static str, value: u64, n: u64) {
        self.histograms.entry(name).or_default().observe_n(value, n);
    }

    /// Fold another aggregate (typically a thread's) into this one.
    pub fn merge_from(&mut self, other: &Aggregate) {
        for (name, stat) in &other.spans {
            self.spans.entry(name).or_default().merge(stat);
        }
        for (name, delta) in &other.counters {
            let c = self.counters.entry(name).or_default();
            *c = c.saturating_add(*delta);
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name).or_default().merge(hist);
        }
    }

    /// Total time of the span `name` ([`Duration::ZERO`] when absent).
    pub fn span_total(&self, name: &str) -> Duration {
        self.spans
            .get(name)
            .map(SpanStat::total)
            .unwrap_or(Duration::ZERO)
    }

    /// Value of the counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        // Lower bounds invert the index mapping.
        for i in 2..HISTOGRAM_BUCKETS {
            let low = Histogram::bucket_low(i);
            assert_eq!(Histogram::bucket_index(low), i, "bucket {i}");
            assert_eq!(Histogram::bucket_index(low - 1), i - 1, "bucket {i} low-1");
        }
    }

    #[test]
    fn histogram_observes_and_merges() {
        let mut a = Histogram::default();
        a.observe(0);
        a.observe(5);
        a.observe(5);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 10);
        assert_eq!(a.buckets[0], 1);
        assert_eq!(a.buckets[Histogram::bucket_index(5)], 2);
        let mut b = Histogram::default();
        b.observe(1 << 40);
        a.merge(&b);
        assert_eq!(a.count, 4);
        assert_eq!(a.buckets[41], 1);
        assert!((a.mean() - (10.0 + (1u64 << 40) as f64) / 4.0).abs() < 1e-6);
    }

    #[test]
    fn observe_n_matches_repeated_observe() {
        let mut a = Histogram::default();
        a.observe_n(5, 3);
        a.observe_n(0, 2);
        a.observe_n(7, 0); // zero batch is a no-op
        let mut b = Histogram::default();
        for _ in 0..3 {
            b.observe(5);
        }
        for _ in 0..2 {
            b.observe(0);
        }
        assert_eq!(a, b);

        let mut agg = Aggregate::new();
        agg.record_observation_n("syms", 2, 10);
        assert_eq!(agg.histograms["syms"].count, 10);
        assert_eq!(agg.histograms["syms"].sum, 20);
    }

    #[test]
    fn aggregate_records_and_merges() {
        let mut a = Aggregate::new();
        assert!(a.is_empty());
        a.record_span("split", 100);
        a.record_span("split", 200);
        a.record_counter("chunks", 2);
        a.record_observation("bytes", 4096);
        assert!(!a.is_empty());

        let mut b = Aggregate::new();
        b.record_span("split", 50);
        b.record_span("codec", 1_000);
        b.record_counter("chunks", 1);
        b.record_observation("bytes", 0);

        a.merge_from(&b);
        assert_eq!(a.spans["split"].count, 3);
        assert_eq!(a.spans["split"].total_nanos, 350);
        assert_eq!(a.spans["codec"].total_nanos, 1_000);
        assert_eq!(a.counter("chunks"), 3);
        assert_eq!(a.counter("missing"), 0);
        assert_eq!(a.histograms["bytes"].count, 2);
        assert_eq!(a.span_total("split"), Duration::from_nanos(350));
        assert_eq!(a.span_total("absent"), Duration::ZERO);
    }

    #[test]
    fn span_stat_mean_is_safe() {
        let s = SpanStat::default();
        assert_eq!(s.mean(), Duration::ZERO);
        let s = SpanStat {
            count: 4,
            total_nanos: 1_000,
        };
        assert_eq!(s.mean(), Duration::from_nanos(250));
    }

    #[test]
    fn saturating_accumulation_never_wraps() {
        let mut a = Aggregate::new();
        a.record_counter("c", u64::MAX);
        a.record_counter("c", 10);
        assert_eq!(a.counter("c"), u64::MAX);
        a.record_span("s", u64::MAX);
        a.record_span("s", 10);
        assert_eq!(a.spans["s"].total_nanos, u64::MAX);
    }
}
