//! A shallow item-tree/statement parser over the lexed token stream.
//!
//! This is not a Rust grammar: it recovers just enough structure for the
//! flow-aware rules — which items exist (functions, impl blocks, modules,
//! consts, ...), their visibility and doc-comment anchor line, and the
//! token span of every function body so the taint pass can walk
//! let-bindings and expressions intraprocedurally. Anything it does not
//! understand it skips token by token, so unknown syntax degrades to
//! "no structure here" rather than a parse failure.

use crate::lexer::{Tok, Token};

/// Index of the close delimiter matching the open delimiter at `open_idx`.
/// Returns `None` when the stream ends first.
pub(crate) fn matching_close(tokens: &[Token], open_idx: usize, open: char) -> Option<usize> {
    let close = match open {
        '(' => ')',
        '[' => ']',
        '{' => '}',
        _ => return None,
    };
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open_idx) {
        match t.tok {
            Tok::Open(c) if c == open => depth += 1,
            Tok::Close(c) if c == close => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Item visibility, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// `pub` — part of the crate's public API.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in ...)` — restricted.
    Restricted,
    /// No visibility qualifier.
    Private,
}

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free, associated, or trait method).
    Fn,
    /// `struct`.
    Struct,
    /// `enum`.
    Enum,
    /// `trait`.
    Trait,
    /// `impl` block (children are its associated items).
    Impl,
    /// `mod` (children are its items when the body is inline).
    Mod,
    /// `const` item.
    Const,
    /// `static` item.
    Static,
    /// `type` alias.
    TypeAlias,
    /// `use` declaration.
    Use,
    /// `macro_rules!` definition.
    MacroDef,
}

/// One parsed item.
#[derive(Debug)]
pub struct Item {
    /// The item kind.
    pub kind: ItemKind,
    /// Item name where one exists (`impl` blocks have none).
    pub name: Option<String>,
    /// Parsed visibility.
    pub vis: Vis,
    /// 1-based line of the introducing keyword.
    pub line: u32,
    /// 1-based line the item starts on, including its attributes — the
    /// line a doc comment must sit directly above.
    pub start_line: u32,
    /// Inclusive token span of the `{ ... }` body, when there is one.
    pub body: Option<(usize, usize)>,
    /// For [`ItemKind::Impl`]: is this a trait impl (`impl T for U`)?
    pub trait_impl: bool,
    /// Items nested in a `mod`/`impl`/`trait` body.
    pub children: Vec<Item>,
}

/// Parse the item tree of a whole file.
pub fn parse_items(tokens: &[Token]) -> Vec<Item> {
    parse_range(tokens, 0, tokens.len())
}

/// Keywords that may prefix `fn`/items without changing their identity.
const MODIFIERS: [&str; 4] = ["const", "unsafe", "async", "extern"];

fn parse_range(tokens: &[Token], mut i: usize, end: usize) -> Vec<Item> {
    let mut items = Vec::new();
    while i < end {
        // Attributes: remember where the run starts so the doc-comment
        // anchor sits above `#[derive(...)]`, not between it and the item.
        let mut start_line: Option<u32> = None;
        while is_attr_at(tokens, i) {
            let open = if tokens[i + 1].tok == Tok::Punct('!') {
                i + 2
            } else {
                i + 1
            };
            start_line.get_or_insert(tokens[i].line);
            match matching_close(tokens, open, '[') {
                Some(close) => i = close + 1,
                None => return items,
            }
        }
        if i >= end {
            break;
        }

        // Visibility.
        let mut vis = Vis::Private;
        if let Tok::Ident(w) = &tokens[i].tok {
            if w == "pub" {
                start_line.get_or_insert(tokens[i].line);
                vis = Vis::Pub;
                i += 1;
                if i < end && tokens[i].tok == Tok::Open('(') {
                    vis = Vis::Restricted;
                    match matching_close(tokens, i, '(') {
                        Some(close) => i = close + 1,
                        None => return items,
                    }
                }
            }
        }

        // Modifiers before `fn` (`const fn`, `unsafe fn`, `extern "C" fn`).
        // A lone `const NAME: ...` is an item, so only consume the word as
        // a modifier when a `fn` (possibly after more modifiers) follows.
        let mut j = i;
        while j < end {
            match &tokens[j].tok {
                Tok::Ident(w) if MODIFIERS.contains(&w.as_str()) => j += 1,
                Tok::Str => j += 1, // the ABI string of `extern "C"`
                _ => break,
            }
        }
        let is_fn = j < end && j > i && matches!(&tokens[j].tok, Tok::Ident(w) if w == "fn");
        if is_fn {
            i = j;
        }

        let Some(t) = tokens.get(i) else { break };
        let line = t.line;
        let start_line = start_line.unwrap_or(line);
        let word = match &t.tok {
            Tok::Ident(w) => w.as_str(),
            _ => {
                i += 1;
                continue;
            }
        };
        match word {
            "fn" => {
                let name = ident_at(tokens, i + 1);
                let (body, next) = seek_body_or_semi(tokens, i + 1, end);
                items.push(Item {
                    kind: ItemKind::Fn,
                    name,
                    vis,
                    line,
                    start_line,
                    body,
                    trait_impl: false,
                    children: Vec::new(),
                });
                i = next;
            }
            "struct" => {
                let name = ident_at(tokens, i + 1);
                let (body, next) = seek_body_or_semi(tokens, i + 1, end);
                items.push(Item {
                    kind: ItemKind::Struct,
                    name,
                    vis,
                    line,
                    start_line,
                    body,
                    trait_impl: false,
                    children: Vec::new(),
                });
                i = next;
            }
            "enum" | "union" => {
                let name = ident_at(tokens, i + 1);
                let (body, next) = seek_body_or_semi(tokens, i + 1, end);
                items.push(Item {
                    kind: ItemKind::Enum,
                    name,
                    vis,
                    line,
                    start_line,
                    body,
                    trait_impl: false,
                    children: Vec::new(),
                });
                i = next;
            }
            "trait" => {
                let name = ident_at(tokens, i + 1);
                let (body, next) = seek_body_or_semi(tokens, i + 1, end);
                let children = body
                    .map(|(o, c)| parse_range(tokens, o + 1, c))
                    .unwrap_or_default();
                items.push(Item {
                    kind: ItemKind::Trait,
                    name,
                    vis,
                    line,
                    start_line,
                    body,
                    trait_impl: false,
                    children,
                });
                i = next;
            }
            "impl" => {
                // `for` between `impl` and `{` marks a trait impl, unless
                // it is the `for<'a>` of a higher-ranked bound.
                let (body, next) = seek_body_or_semi(tokens, i + 1, end);
                let header_end = body.map(|(o, _)| o).unwrap_or(next);
                let trait_impl = (i + 1..header_end).any(|k| {
                    matches!(&tokens[k].tok, Tok::Ident(w) if w == "for")
                        && tokens.get(k + 1).map(|t| &t.tok) != Some(&Tok::Punct('<'))
                });
                let children = body
                    .map(|(o, c)| parse_range(tokens, o + 1, c))
                    .unwrap_or_default();
                items.push(Item {
                    kind: ItemKind::Impl,
                    name: None,
                    vis,
                    line,
                    start_line,
                    body,
                    trait_impl,
                    children,
                });
                i = next;
            }
            "mod" => {
                let name = ident_at(tokens, i + 1);
                let (body, next) = seek_body_or_semi(tokens, i + 1, end);
                let children = body
                    .map(|(o, c)| parse_range(tokens, o + 1, c))
                    .unwrap_or_default();
                items.push(Item {
                    kind: ItemKind::Mod,
                    name,
                    vis,
                    line,
                    start_line,
                    body,
                    trait_impl: false,
                    children,
                });
                i = next;
            }
            "const" | "static" => {
                let kind = if word == "const" {
                    ItemKind::Const
                } else {
                    ItemKind::Static
                };
                // Skip `static mut` / `const _`.
                let mut n = i + 1;
                if matches!(&tokens.get(n).map(|t| &t.tok), Some(Tok::Ident(w)) if w == "mut") {
                    n += 1;
                }
                let name = ident_at(tokens, n);
                let next = seek_semi(tokens, i + 1, end);
                items.push(Item {
                    kind,
                    name,
                    vis,
                    line,
                    start_line,
                    body: None,
                    trait_impl: false,
                    children: Vec::new(),
                });
                i = next;
            }
            "type" => {
                let name = ident_at(tokens, i + 1);
                let next = seek_semi(tokens, i + 1, end);
                items.push(Item {
                    kind: ItemKind::TypeAlias,
                    name,
                    vis,
                    line,
                    start_line,
                    body: None,
                    trait_impl: false,
                    children: Vec::new(),
                });
                i = next;
            }
            "use" => {
                let next = seek_semi(tokens, i + 1, end);
                items.push(Item {
                    kind: ItemKind::Use,
                    name: None,
                    vis,
                    line,
                    start_line,
                    body: None,
                    trait_impl: false,
                    children: Vec::new(),
                });
                i = next;
            }
            "macro_rules" => {
                let name = ident_at(tokens, i + 2); // past the `!`
                let (body, next) = seek_body_or_semi(tokens, i + 1, end);
                items.push(Item {
                    kind: ItemKind::MacroDef,
                    name,
                    vis,
                    line,
                    start_line,
                    body,
                    trait_impl: false,
                    children: Vec::new(),
                });
                i = next;
            }
            _ => i += 1,
        }
    }
    items
}

/// Is `tokens[i]` the `#` of an attribute (`#[...]` or `#![...]`)?
fn is_attr_at(tokens: &[Token], i: usize) -> bool {
    if !matches!(tokens.get(i), Some(t) if t.tok == Tok::Punct('#')) {
        return false;
    }
    match tokens.get(i + 1).map(|t| &t.tok) {
        Some(Tok::Open('[')) => true,
        Some(Tok::Punct('!')) => matches!(tokens.get(i + 2), Some(t) if t.tok == Tok::Open('[')),
        _ => false,
    }
}

fn ident_at(tokens: &[Token], i: usize) -> Option<String> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(name)) => Some(name.clone()),
        _ => None,
    }
}

/// From `i`, scan for the item's `{` body or a terminating `;`. Returns
/// the body span (if any) and the index just past the item.
fn seek_body_or_semi(tokens: &[Token], i: usize, end: usize) -> (Option<(usize, usize)>, usize) {
    for j in i..end {
        match tokens[j].tok {
            Tok::Open('{') => {
                let close = matching_close(tokens, j, '{').unwrap_or(end.saturating_sub(1));
                return (Some((j, close)), close + 1);
            }
            Tok::Punct(';') => return (None, j + 1),
            _ => {}
        }
    }
    (None, end)
}

/// From `i`, scan for the `;` ending a braceless item, skipping over any
/// balanced `{ ... }` (a const's block initializer).
fn seek_semi(tokens: &[Token], i: usize, end: usize) -> usize {
    let mut j = i;
    while j < end {
        match tokens[j].tok {
            Tok::Open('{') => {
                j = matching_close(tokens, j, '{')
                    .unwrap_or(end.saturating_sub(1))
                    .saturating_add(1);
            }
            Tok::Punct(';') => return j + 1,
            _ => j += 1,
        }
    }
    end
}

/// Token spans of every `fn` body in the stream, including methods and
/// nested functions — the units the taint pass analyzes. Spans of nested
/// functions also appear inside their parent's span; callers dedup any
/// doubled findings.
pub fn fn_body_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let is_fn = matches!(&tokens[i].tok, Tok::Ident(w) if w == "fn");
        // `fn` as a function-pointer type (after `:` or `<`) has no body;
        // the seek below then stops at the statement's `;` harmlessly.
        if !is_fn {
            i += 1;
            continue;
        }
        let (body, next) = seek_body_or_semi(tokens, i + 1, tokens.len());
        if let Some(span) = body {
            spans.push(span);
        }
        // Re-scan from just inside the body so nested fns are found too.
        i = body.map(|(o, _)| o + 1).unwrap_or(next);
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Item> {
        parse_items(&lex(src).tokens)
    }

    #[test]
    fn top_level_items_with_visibility() {
        let src = "pub fn f() {}\n\
                   pub(crate) fn g() {}\n\
                   fn h() {}\n\
                   pub struct S { a: u8 }\n\
                   pub enum E { A }\n\
                   pub const MAX_N: usize = 4;\n\
                   pub type Alias = u8;\n\
                   use std::fmt;";
        let items = parse(src);
        let kinds: Vec<(ItemKind, Vis)> = items.iter().map(|i| (i.kind, i.vis)).collect();
        assert_eq!(
            kinds,
            vec![
                (ItemKind::Fn, Vis::Pub),
                (ItemKind::Fn, Vis::Restricted),
                (ItemKind::Fn, Vis::Private),
                (ItemKind::Struct, Vis::Pub),
                (ItemKind::Enum, Vis::Pub),
                (ItemKind::Const, Vis::Pub),
                (ItemKind::TypeAlias, Vis::Pub),
                (ItemKind::Use, Vis::Private),
            ]
        );
        assert_eq!(items[0].name.as_deref(), Some("f"));
        assert_eq!(items[5].name.as_deref(), Some("MAX_N"));
    }

    #[test]
    fn impl_blocks_recurse_and_classify() {
        let src = "impl Foo {\n pub fn a(&self) {}\n fn b(&self) {}\n}\n\
                   impl Display for Foo {\n fn fmt(&self) {}\n}";
        let items = parse(src);
        assert_eq!(items.len(), 2);
        assert!(!items[0].trait_impl);
        assert_eq!(items[0].children.len(), 2);
        assert_eq!(items[0].children[0].vis, Vis::Pub);
        assert!(items[1].trait_impl);
    }

    #[test]
    fn hrtb_for_is_not_a_trait_impl() {
        let src = "impl<F: for<'a> Fn(&'a u8)> Holder<F> { fn go(&self) {} }";
        let items = parse(src);
        assert!(!items[0].trait_impl);
    }

    #[test]
    fn mods_nest_and_attrs_anchor_start_line() {
        let src = "/// doc\n#[derive(Debug)]\npub struct S;\n\
                   mod inner {\n    pub fn leaf() {}\n}";
        let items = parse(src);
        assert_eq!(items[0].kind, ItemKind::Struct);
        assert_eq!(items[0].line, 3);
        assert_eq!(items[0].start_line, 2); // the attribute line
        assert_eq!(items[1].kind, ItemKind::Mod);
        assert_eq!(items[1].children[0].name.as_deref(), Some("leaf"));
    }

    #[test]
    fn modifier_fns_and_trait_methods() {
        let src = "pub const fn c() -> u8 { 1 }\n\
                   pub unsafe fn u() {}\n\
                   trait T {\n    fn required(&self);\n    fn provided(&self) {}\n}";
        let items = parse(src);
        assert_eq!(items[0].kind, ItemKind::Fn);
        assert_eq!(items[0].name.as_deref(), Some("c"));
        assert_eq!(items[1].kind, ItemKind::Fn);
        let t = &items[2];
        assert_eq!(t.kind, ItemKind::Trait);
        assert_eq!(t.children.len(), 2);
        assert!(t.children[0].body.is_none());
        assert!(t.children[1].body.is_some());
    }

    #[test]
    fn fn_bodies_cover_methods_and_nested_fns() {
        let src = "fn outer() {\n    fn inner() { let x = 1; }\n}\n\
                   impl S { fn m(&self) { } }";
        let tokens = lex(src).tokens;
        let spans = fn_body_spans(&tokens);
        assert_eq!(spans.len(), 3);
        // The outer span contains the inner one.
        assert!(spans[0].0 < spans[1].0 && spans[1].1 <= spans[0].1);
    }
}
