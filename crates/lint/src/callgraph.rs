//! Whole-workspace call graph over the shallow parser's token streams.
//!
//! The graph is name-based: the analyzer has no type information, so a
//! call site `helper(x)` resolves to *every* function named `helper` in
//! the workspace. Consumers merge facts across same-name candidates
//! conservatively (see [`crate::summary`]). Methods (`recv.helper(x)`)
//! resolve the same way — the receiver is ignored, which matches how the
//! source list in [`crate::taint::SOURCES`] already treats reader
//! methods as reserved names.
//!
//! Per function the graph records the parameter names, the body token
//! span, and every call site inside the body with the token span of each
//! top-level argument — exactly what the summary pass needs to push
//! taint through a call boundary.

use crate::lexer::{Tok, Token};
use crate::parser::matching_close;

/// One function definition (with a body) found in a file.
#[derive(Debug)]
pub struct FnNode {
    /// Index of the owning file in the workspace file list.
    pub file: usize,
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameter names in order. Non-trivial patterns (tuples, `self`
    /// receivers) become `"_"` placeholders that never match taint.
    pub params: Vec<String>,
    /// Token indices of the body's `{` and `}` in the owning file.
    pub body: (usize, usize),
    /// The signature declares a `->` return type. Unit functions cannot
    /// taint a return value.
    pub has_return: bool,
}

/// One call site inside a function body.
#[derive(Debug)]
pub struct CallSite {
    pub callee: String,
    /// Token index of the callee name.
    pub idx: usize,
    /// 1-based line of the callee name.
    pub line: u32,
    /// Inclusive token span of each top-level argument.
    pub args: Vec<(usize, usize)>,
    /// `recv.callee(...)` method form (receiver not part of `args`).
    pub method: bool,
}

/// The workspace call graph: every function definition, ordered by file.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub fns: Vec<FnNode>,
}

impl CallGraph {
    /// Build the graph from per-file token streams (indices into `files`
    /// become [`FnNode::file`]).
    pub fn build(files: &[&[Token]]) -> CallGraph {
        let mut graph = CallGraph::default();
        for (file, tokens) in files.iter().enumerate() {
            collect_fns(file, tokens, &mut graph.fns);
        }
        graph
    }

    /// Indices of every function named `name`.
    pub fn resolve(&self, name: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.name == name)
            .map(|(i, _)| i)
            .collect()
    }
}

fn collect_fns(file: usize, tokens: &[Token], out: &mut Vec<FnNode>) {
    let mut i = 0usize;
    while i < tokens.len() {
        if !matches!(&tokens[i].tok, Tok::Ident(w) if w == "fn") {
            i += 1;
            continue;
        }
        let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) else {
            i += 1;
            continue;
        };
        let line = tokens[i].line;
        let name = name.clone();
        // Skip generics to the parameter list.
        let mut j = i + 2;
        if matches!(tokens.get(j), Some(t) if t.tok == Tok::Punct('<')) {
            let mut depth = 0i32;
            while let Some(t) = tokens.get(j) {
                match t.tok {
                    Tok::Punct('<') => depth += 1,
                    Tok::Punct('>') => {
                        depth -= 1;
                        if depth <= 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if !matches!(tokens.get(j), Some(t) if t.tok == Tok::Open('(')) {
            i += 2;
            continue;
        }
        let Some(params_close) = matching_close(tokens, j, '(') else {
            i += 2;
            continue;
        };
        let params = parse_params(tokens, j, params_close);
        // Body `{` before any depth-0 `;` (trait method signatures have
        // none; a `;` inside a return type like `-> [u8; 4]` is nested).
        let mut k = params_close + 1;
        let mut depth = 0usize;
        let mut body = None;
        let mut has_return = false;
        while let Some(t) = tokens.get(k) {
            match t.tok {
                Tok::Punct(';') if depth == 0 => break,
                Tok::Open('{') if depth == 0 => {
                    body = matching_close(tokens, k, '{').map(|close| (k, close));
                    break;
                }
                Tok::Punct('-') if matches!(tokens.get(k + 1), Some(t) if t.tok == Tok::Punct('>')) =>
                {
                    has_return = true;
                    k += 1;
                }
                Tok::Open(_) => depth += 1,
                Tok::Close(_) => depth = depth.saturating_sub(1),
                _ => {}
            }
            k += 1;
        }
        if let Some(body) = body {
            out.push(FnNode {
                file,
                name,
                line,
                params,
                body,
                has_return,
            });
        }
        i += 2;
    }
}

/// Parameter names from the token span between `(` at `open` and `)` at
/// `close`: one entry per top-level comma, the pattern's identifier (or
/// `"_"` for receivers and destructuring patterns).
fn parse_params(tokens: &[Token], open: usize, close: usize) -> Vec<String> {
    let mut params = Vec::new();
    let mut start = open + 1;
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().take(close + 1).skip(open + 1) {
        let at_end = k == close;
        let splits = at_end || (depth == 0 && t.tok == Tok::Punct(','));
        match t.tok {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) if !at_end => depth = depth.saturating_sub(1),
            _ => {}
        }
        if !splits {
            continue;
        }
        if k > start {
            params.push(param_name(tokens, start, k - 1));
        }
        start = k + 1;
    }
    params
}

fn param_name(tokens: &[Token], from: usize, to: usize) -> String {
    // Skip leading `&`, lifetimes, and `mut`; the next plain identifier
    // before the `:` is the name. `self` receivers and destructuring
    // patterns get the never-matching placeholder.
    let mut j = from;
    while j <= to {
        match &tokens[j].tok {
            Tok::Punct('&') | Tok::Lifetime => j += 1,
            Tok::Ident(w) if w == "mut" => j += 1,
            Tok::Ident(w) if w == "self" => return "_".to_string(),
            Tok::Ident(w) => {
                if matches!(tokens.get(j + 1), Some(t) if t.tok == Tok::Punct(':')) {
                    return w.clone();
                }
                return "_".to_string();
            }
            _ => return "_".to_string(),
        }
    }
    "_".to_string()
}

/// Names that look like calls but never are: control-flow keywords and
/// declaration heads followed by `(`.
const NON_CALL_KEYWORDS: [&str; 10] = [
    "fn", "if", "while", "match", "for", "return", "in", "let", "move", "pub",
];

/// Every call site in the token span `[lo, hi]`: `name(...)` and
/// `.name(...)` forms, with top-level argument spans split on commas.
/// Macro invocations (`name!(...)`) do not match — the `!` sits between
/// the name and the parenthesis.
pub fn call_sites(tokens: &[Token], lo: usize, hi: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in lo..=hi.min(tokens.len().saturating_sub(1)) {
        let Tok::Ident(name) = &tokens[i].tok else {
            continue;
        };
        if NON_CALL_KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        if !matches!(tokens.get(i + 1), Some(t) if t.tok == Tok::Open('(')) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &tokens[p].tok);
        if matches!(prev, Some(Tok::Ident(w)) if w == "fn") {
            continue; // a definition, not a call
        }
        let Some(close) = matching_close(tokens, i + 1, '(') else {
            continue;
        };
        out.push(CallSite {
            callee: name.clone(),
            idx: i,
            line: tokens[i].line,
            args: split_args(tokens, i + 1, close),
            method: matches!(prev, Some(Tok::Punct('.'))),
        });
    }
    out
}

/// Split the argument list between `(` at `open` and `)` at `close` into
/// inclusive per-argument token spans.
fn split_args(tokens: &[Token], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut args = Vec::new();
    let mut start = open + 1;
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().take(close + 1).skip(open + 1) {
        let at_end = k == close;
        let splits = at_end || (depth == 0 && t.tok == Tok::Punct(','));
        match t.tok {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) if !at_end => depth = depth.saturating_sub(1),
            _ => {}
        }
        if splits {
            if k > start {
                args.push((start, k - 1));
            }
            start = k + 1;
        }
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn functions_params_and_bodies_are_recovered() {
        let a = lex("fn read_len(input: &[u8], pos: usize) -> usize { input.len() - pos }\n\
                     pub(crate) fn helper<T: Clone>(n: usize, items: &mut Vec<T>) { items.truncate(n); }");
        let b = lex("impl Decoder {\n\
                     fn fill(&mut self, count: usize) { self.buf.reserve(count); }\n\
                     }\n\
                     trait Reader { fn peek(&self) -> u8; }");
        let files = [&a.tokens[..], &b.tokens[..]];
        let graph = CallGraph::build(&files);
        let names: Vec<(&str, usize)> = graph
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.file))
            .collect();
        // `peek` has no body and is not a node.
        assert_eq!(
            names,
            vec![("read_len", 0), ("helper", 0), ("fill", 1)],
            "{names:?}"
        );
        assert_eq!(graph.fns[0].params, vec!["input", "pos"]);
        assert_eq!(graph.fns[1].params, vec!["n", "items"]);
        assert_eq!(graph.fns[2].params, vec!["_", "count"]);
        assert_eq!(graph.resolve("helper"), vec![1]);
        assert!(graph.resolve("peek").is_empty());
    }

    #[test]
    fn call_sites_split_arguments_at_top_level_commas() {
        let lexed = lex("fn f() { helper(a + 1, g(x, y), b); v.resize(n, 0); check!(n, m); }");
        let tokens = &lexed.tokens;
        let graph = CallGraph::build(&[&tokens[..]]);
        let (lo, hi) = graph.fns[0].body;
        let sites = call_sites(tokens, lo, hi);
        let names: Vec<(&str, bool, usize)> = sites
            .iter()
            .map(|s| (s.callee.as_str(), s.method, s.args.len()))
            .collect();
        // The macro `check!` does not match; `g(x, y)` is a nested call
        // whose comma does not split `helper`'s second argument.
        assert_eq!(
            names,
            vec![("helper", false, 3), ("g", false, 2), ("resize", true, 2)],
            "{names:?}"
        );
    }
}
