//! Machine-readable diagnostics and the checked-in baseline gate.
//!
//! `primacy-lint --json` emits the full diagnostic set as JSON (via the
//! in-tree `primacy_bench::json`, per the zero-dependency policy), and
//! `--baseline lint-baseline.json` compares the current run against a
//! checked-in snapshot: the gate fails when any `(file, rule)` pair has
//! *more* findings, suppressed findings, or allow directives than the
//! baseline records. Counts may only burn down; regenerate the snapshot
//! with `--write-baseline` after removing debt. On failure the gate
//! prints a per-rule delta table rather than a raw JSON diff.

use std::collections::BTreeMap;

use primacy_bench::json::Value;

use crate::rules::FileReport;

/// The lint results for one scanned file.
#[derive(Debug)]
pub struct FileEntry {
    /// Workspace-relative `/`-separated path.
    pub rel: String,
    /// The rule findings for the file.
    pub report: FileReport,
}

/// Results for a whole workspace scan.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Per-file results, in path order.
    pub files: Vec<FileEntry>,
}

impl WorkspaceReport {
    /// Surviving findings across all files.
    pub fn total_findings(&self) -> usize {
        self.files.iter().map(|f| f.report.findings.len()).sum()
    }

    /// Allow directives across all files.
    pub fn total_allows(&self) -> usize {
        self.files.iter().map(|f| f.report.allow_count).sum()
    }

    /// Full diagnostics document for `--json`.
    pub fn to_json(&self) -> Value {
        let diagnostics: Vec<Value> = self
            .files
            .iter()
            .flat_map(|entry| {
                entry.report.findings.iter().map(|f| {
                    Value::object([
                        ("file", Value::from(entry.rel.as_str())),
                        ("line", Value::from(f.line as usize)),
                        ("rule", Value::from(f.rule.name())),
                        ("message", Value::from(f.message.as_str())),
                    ])
                })
            })
            .collect();
        let mut doc = match self.baseline() {
            Value::Object(map) => map,
            _ => BTreeMap::new(),
        };
        doc.insert("diagnostics".to_string(), Value::Array(diagnostics));
        doc.insert("files_scanned".to_string(), Value::from(self.files.len()));
        Value::Object(doc)
    }

    /// The baseline snapshot: per-`(file, rule)` finding, suppression,
    /// and allow-directive counts. This is what gets checked in as
    /// `lint-baseline.json` and diffed by [`compare`].
    pub fn baseline(&self) -> Value {
        let mut findings: BTreeMap<String, Value> = BTreeMap::new();
        let mut suppressions: BTreeMap<String, Value> = BTreeMap::new();
        let mut directives: BTreeMap<String, Value> = BTreeMap::new();
        for entry in &self.files {
            for f in &entry.report.findings {
                bump(&mut findings, format!("{} {}", entry.rel, f.rule.name()), 1);
            }
            for (rule, n) in &entry.report.suppressed {
                bump(&mut suppressions, format!("{} {rule}", entry.rel), *n);
            }
            for (rule, n) in &entry.report.allows_by_rule {
                bump(&mut directives, format!("{} {rule}", entry.rel), *n);
            }
        }
        Value::object([
            ("findings", Value::Object(findings)),
            ("suppressions", Value::Object(suppressions)),
            ("directives", Value::Object(directives)),
        ])
    }
}

fn bump(map: &mut BTreeMap<String, Value>, key: String, by: usize) {
    let prev = map.get(&key).and_then(Value::as_f64).unwrap_or(0.0) as usize;
    map.insert(key, Value::from(prev + by));
}

/// One `(section, key)` count that grew past the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// `findings`, `suppressions`, or `directives`.
    pub section: &'static str,
    /// The baseline key: `<file> <rule>`.
    pub key: String,
    /// Count in the current run.
    pub now: usize,
    /// Count recorded in the baseline.
    pub was: usize,
}

impl Regression {
    /// The rule name embedded in the key (its last space-separated
    /// token), for per-rule aggregation.
    pub fn rule(&self) -> &str {
        self.key.rsplit(' ').next().unwrap_or(&self.key)
    }
}

/// Compare a current snapshot against the checked-in baseline. Empty
/// means the gate passes. Improvements (counts below baseline) are not
/// regressions — they mean the baseline can be regenerated tighter.
pub fn compare(current: &Value, baseline: &Value) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for section in ["findings", "suppressions", "directives"] {
        let cur = section_map(current, section);
        let base = section_map(baseline, section);
        let empty = BTreeMap::new();
        let cur = cur.unwrap_or(&empty);
        let base_counts = base.unwrap_or(&empty);
        for (key, v) in cur {
            let now = v.as_f64().unwrap_or(0.0) as usize;
            let was = base_counts.get(key).and_then(Value::as_f64).unwrap_or(0.0) as usize;
            if now > was {
                regressions.push(Regression {
                    section,
                    key: key.clone(),
                    now,
                    was,
                });
            }
        }
    }
    regressions
}

/// Render regressions as a per-rule delta table followed by the
/// offending keys — what the baseline gate prints on failure instead of
/// a raw JSON diff.
pub fn render_delta_table(regressions: &[Regression]) -> String {
    // Aggregate by (section, rule).
    let mut rows: Vec<(&'static str, String, usize, usize)> = Vec::new();
    for r in regressions {
        let rule = r.rule().to_string();
        match rows
            .iter_mut()
            .find(|(s, rl, _, _)| *s == r.section && *rl == rule)
        {
            Some((_, _, now, was)) => {
                *now += r.now;
                *was += r.was;
            }
            None => rows.push((r.section, rule, r.now, r.was)),
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "  {:<13} {:<22} {:>8} {:>8} {:>7}\n",
        "section", "rule", "baseline", "now", "delta"
    ));
    for (section, rule, now, was) in &rows {
        out.push_str(&format!(
            "  {:<13} {:<22} {:>8} {:>8} {:>+7}\n",
            section,
            rule,
            was,
            now,
            *now as i64 - *was as i64
        ));
    }
    for r in regressions {
        out.push_str(&format!(
            "    {} [{}]: {} (baseline {})\n",
            r.key, r.section, r.now, r.was
        ));
    }
    out
}

fn section_map<'a>(doc: &'a Value, section: &str) -> Option<&'a BTreeMap<String, Value>> {
    match doc.get(section) {
        Some(Value::Object(map)) => Some(map),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, Rule};

    fn sample() -> WorkspaceReport {
        WorkspaceReport {
            files: vec![
                FileEntry {
                    rel: "crates/a/src/lib.rs".to_string(),
                    report: FileReport {
                        findings: vec![
                            Finding {
                                line: 3,
                                rule: Rule::Panic,
                                message: "`panic!` in non-test library code".to_string(),
                            },
                            Finding {
                                line: 9,
                                rule: Rule::Panic,
                                message: "`.unwrap()` in non-test library code".to_string(),
                            },
                        ],
                        suppressed: vec![("index", 2)],
                        allow_count: 2,
                        allows_by_rule: vec![("index", 2)],
                    },
                },
                FileEntry {
                    rel: "crates/b/src/lib.rs".to_string(),
                    report: FileReport::default(),
                },
            ],
        }
    }

    #[test]
    fn baseline_counts_by_file_and_rule() {
        let b = sample().baseline();
        assert_eq!(
            b.get("findings")
                .unwrap()
                .get("crates/a/src/lib.rs panic")
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
        assert_eq!(
            b.get("suppressions")
                .unwrap()
                .get("crates/a/src/lib.rs index")
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
        assert_eq!(
            b.get("directives")
                .unwrap()
                .get("crates/a/src/lib.rs index")
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
    }

    #[test]
    fn identical_snapshots_pass_the_gate() {
        let b = sample().baseline();
        assert!(compare(&b, &b).is_empty());
    }

    #[test]
    fn new_findings_and_suppressions_fail_the_gate() {
        let base = sample().baseline();
        let mut worse = sample();
        worse.files[1].report.findings.push(Finding {
            line: 1,
            rule: Rule::Taint,
            message: "x".to_string(),
        });
        worse.files[1].report.suppressed = vec![("taint", 1)];
        worse.files[1].report.allow_count = 1;
        worse.files[1].report.allows_by_rule = vec![("taint", 1)];
        let regressions = compare(&worse.baseline(), &base);
        assert_eq!(regressions.len(), 3, "{regressions:?}");
        assert_eq!(regressions[0].section, "findings");
        assert_eq!(regressions[0].key, "crates/b/src/lib.rs taint");
        assert_eq!((regressions[0].now, regressions[0].was), (1, 0));
        assert_eq!(regressions[0].rule(), "taint");
        let table = render_delta_table(&regressions);
        assert!(table.contains("taint"), "{table}");
        assert!(table.contains("delta"), "{table}");
    }

    #[test]
    fn burning_down_counts_passes_the_gate() {
        let base = sample().baseline();
        let mut better = sample();
        better.files[0].report.findings.pop();
        better.files[0].report.suppressed = vec![("index", 1)];
        better.files[0].report.allow_count = 1;
        better.files[0].report.allows_by_rule = vec![("index", 1)];
        assert!(compare(&better.baseline(), &base).is_empty());
    }

    #[test]
    fn json_document_carries_diagnostics_and_counts() {
        let doc = sample().to_json();
        let diags = doc.get("diagnostics").unwrap().as_array().unwrap();
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].get("rule").unwrap().as_str(), Some("panic"));
        assert_eq!(doc.get("files_scanned").unwrap().as_f64(), Some(2.0));
        // The document round-trips through the in-tree JSON parser.
        let text = doc.to_json();
        assert_eq!(primacy_bench::json::parse(&text).unwrap(), doc);
    }
}
