//! Rule engine: scans a lexed token stream for project-invariant
//! violations and reconciles them with `// lint: allow` directives.
//!
//! Rules:
//! - `panic` — no `.unwrap()`, `.expect()`, `panic!`, `unreachable!`,
//!   `todo!`, or `unimplemented!` in non-test library code. Plain
//!   `assert!`/`assert_eq!`/`debug_assert!` are deliberately permitted:
//!   they express invariants, not error handling.
//! - `index` — no unchecked slice indexing (`buf[i]`, `&buf[a..b]`) in
//!   designated untrusted-input modules (decode paths fed by external
//!   bytes). Only enforced when the caller marks the file untrusted, and
//!   only at sites the loop-bound prover ([`crate::bounds`]) cannot
//!   discharge.
//! - `decode-result` — every `pub fn` whose name is `open` or starts with
//!   `read_`/`decode`/`decompress`/`inflate` must return a `Result`.
//! - `taint` — untrusted-length data flow (see [`crate::taint`]): a value
//!   from a designated untrusted-read primitive — or from a *derived
//!   source*, a helper whose return the interprocedural fixed point
//!   ([`crate::summary`]) proved tainted — must pass a sanitizer before
//!   it reaches arithmetic, an allocation site, or a slice index.
//! - `overflow` — unchecked `+ * <<` arithmetic anywhere in the
//!   untrusted-module list (literal operands exempt).
//! - `safety-comment` — every `unsafe` keyword needs a `// SAFETY:`
//!   comment on the same line or directly above.
//! - `pub-doc` — `pub` items in the designated API crates need doc
//!   comments.
//! - `unsafe-boundary` — `#[target_feature]` files need a runtime
//!   feature-detection guard; arch-gated fns need a same-name
//!   `#[cfg(not(target_arch ...))]` scalar fallback.
//! - `concurrency-discipline` — `Ordering::Relaxed` needs an
//!   `// ORDERING:` justification, `.lock().unwrap()` propagates poison,
//!   and `&mut` captures in scoped-spawn closures are races.
//!
//! Binary sources ([`FileContext::binary`]) relax the panic-family rules
//! (`panic`, `decode-result`, `index`, `overflow`, `pub-doc`); the
//! unsafety rules stay on everywhere.
//!
//! Escape hatches, counted and reported:
//! - `// lint: allow(<rule>) -- <justification>` on the flagged line or
//!   the line directly above it;
//! - `// lint: allow-file(<rule>) -- <justification>` anywhere in the file.
//!
//! The justification is mandatory; a directive without one (or naming an
//! unknown rule) is itself a violation that no directive can suppress.

use crate::lexer::{lex, CommentKind, LineComment, Tok, Token};
use crate::parser::{self, matching_close, Item, ItemKind, Vis};
use crate::taint;

/// Which invariant a finding violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Panicking construct in non-test library code.
    Panic,
    /// Unchecked slice indexing in an untrusted-input module.
    Index,
    /// Public decode entry point that does not return `Result`.
    DecodeResult,
    /// Malformed `// lint:` directive.
    BadAllow,
    /// Untrusted value reaches arithmetic/allocation/indexing unsanitized.
    Taint,
    /// Unchecked arithmetic in an untrusted-input module.
    Overflow,
    /// `unsafe` without a `// SAFETY:` comment.
    SafetyComment,
    /// Undocumented `pub` item in an API crate.
    PubDoc,
    /// `target_feature` intrinsics without a runtime detection guard, or
    /// a `cfg(target_arch)`-gated fn without a scalar fallback.
    UnsafeBoundary,
    /// Relaxed atomics without justification, lock-then-panic, or shared
    /// mutable captures in scoped threads.
    Concurrency,
}

impl Rule {
    /// The name used inside `allow(...)` directives and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Index => "index",
            Rule::DecodeResult => "decode-result",
            Rule::BadAllow => "bad-allow",
            Rule::Taint => "taint",
            Rule::Overflow => "overflow",
            Rule::SafetyComment => "safety-comment",
            Rule::PubDoc => "pub-doc",
            Rule::UnsafeBoundary => "unsafe-boundary",
            Rule::Concurrency => "concurrency-discipline",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "panic" => Some(Rule::Panic),
            "index" => Some(Rule::Index),
            "decode-result" => Some(Rule::DecodeResult),
            "taint" => Some(Rule::Taint),
            "overflow" => Some(Rule::Overflow),
            "safety-comment" => Some(Rule::SafetyComment),
            "pub-doc" => Some(Rule::PubDoc),
            "unsafe-boundary" => Some(Rule::UnsafeBoundary),
            "concurrency-discipline" => Some(Rule::Concurrency),
            _ => None,
        }
    }

    /// Every rule name, for reporting.
    pub const ALL_NAMES: [&'static str; 10] = [
        "panic",
        "index",
        "decode-result",
        "bad-allow",
        "taint",
        "overflow",
        "safety-comment",
        "pub-doc",
        "unsafe-boundary",
        "concurrency-discipline",
    ];
}

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// 1-based source line.
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

/// Result of checking one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations that survived directive reconciliation.
    pub findings: Vec<Finding>,
    /// Count of findings suppressed by an allow directive, per rule name.
    pub suppressed: Vec<(&'static str, usize)>,
    /// Total well-formed allow directives seen in the file.
    pub allow_count: usize,
    /// Well-formed allow directives per rule name (sums to `allow_count`);
    /// the baseline keys directives by `(file, rule)` so counts survive
    /// refactors that move rules between files.
    pub allows_by_rule: Vec<(&'static str, usize)>,
}

#[derive(Debug)]
struct Allow {
    line: u32,
    rule: Rule,
    whole_file: bool,
}

/// Per-file rule configuration.
#[derive(Debug, Default, Clone, Copy)]
pub struct FileContext {
    /// The file decodes untrusted external bytes: enables the `index`
    /// and `overflow` rules.
    pub untrusted: bool,
    /// The file belongs to a published-API crate: enables `pub-doc`.
    pub require_docs: bool,
    /// The file is a binary/CLI entry point: library-hygiene rules
    /// (`panic`, `index`, `overflow`, `decode-result`, `pub-doc`) are
    /// off — a CLI may unwrap and index freely — while the data-flow and
    /// unsafety rules (`taint`, `safety-comment`, `unsafe-boundary`,
    /// `concurrency-discipline`) stay on.
    pub binary: bool,
}

/// Check one source file. `untrusted` enables the `index` and `overflow`
/// rules; `pub-doc` stays off. Kept as the minimal entry point for tests
/// and embedding — the binary uses [`check_file`].
pub fn check_source(src: &str, untrusted: bool) -> FileReport {
    check_file(
        src,
        FileContext {
            untrusted,
            require_docs: false,
            binary: false,
        },
    )
}

/// Check one source file with full per-file configuration.
pub fn check_file(src: &str, ctx: FileContext) -> FileReport {
    check_file_with(src, ctx, &[], Vec::new())
}

/// [`check_file`] with interprocedural context: `extra_sources` extends
/// the taint source list with derived source names proved by the summary
/// pass, and `extra` carries precomputed cross-function findings (they
/// are reconciled against allow directives like any local finding).
pub fn check_file_with(
    src: &str,
    ctx: FileContext,
    extra_sources: &[String],
    mut extra: Vec<Finding>,
) -> FileReport {
    let lexed = lex(src);
    let tokens = &lexed.tokens;
    let test_mask = test_region_mask(tokens);

    let mut raw: Vec<Finding> = Vec::new();
    if !ctx.binary {
        scan_panics(tokens, &test_mask, &mut raw);
        scan_decode_signatures(tokens, &test_mask, &mut raw);
    }
    if ctx.untrusted && !ctx.binary {
        let proven = crate::bounds::proven_index_mask(tokens);
        scan_indexing(tokens, &test_mask, &proven, &mut raw);
        taint::scan_overflow(tokens, &test_mask, &mut raw);
    }
    taint::scan_taint_with(tokens, &test_mask, extra_sources, &mut raw);
    scan_safety_comments(tokens, &lexed.comments, &test_mask, &mut raw);
    scan_unsafe_boundary(tokens, &test_mask, &mut raw);
    scan_concurrency(tokens, &lexed.comments, &test_mask, &mut raw);
    if ctx.require_docs {
        scan_pub_docs(tokens, &lexed.comments, &mut raw);
    }
    raw.append(&mut extra);

    let (allows, mut bad) = parse_directives(&lexed.comments);
    reconcile(raw, &allows, &mut bad)
}

/// Public wrapper over the test-region mask for workspace-level passes
/// that flag call sites outside this module.
pub fn test_region_mask_for(tokens: &[Token]) -> Vec<bool> {
    test_region_mask(tokens)
}

/// Mark every token that lives inside `#[cfg(test)]`-gated items or
/// `#[test]`/`#[bench]` functions, so rules skip test code.
fn test_region_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_attr_start(tokens, i) {
            i += 1;
            continue;
        }
        // Consume a run of attributes, remembering whether any is a
        // test gate.
        let mut gated = false;
        while is_attr_start(tokens, i) {
            let end = match matching_close(tokens, i + 1, '[') {
                Some(e) => e,
                None => return mask,
            };
            if attr_is_test_gate(&tokens[i + 2..end]) {
                gated = true;
            }
            i = end + 1;
        }
        if !gated {
            continue;
        }
        // Skip the gated item: everything up to and including its brace
        // block (or a terminating `;` for body-less items).
        let start = i;
        while i < tokens.len() {
            match &tokens[i].tok {
                Tok::Open('{') => {
                    let end = matching_close(tokens, i, '{').unwrap_or(tokens.len() - 1);
                    for m in mask.iter_mut().take(end + 1).skip(start) {
                        *m = true;
                    }
                    i = end + 1;
                    break;
                }
                Tok::Punct(';') => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
    }
    mask
}

/// Is `tokens[i]` the `#` of an outer attribute `#[...]`?
fn is_attr_start(tokens: &[Token], i: usize) -> bool {
    matches!(tokens.get(i), Some(t) if t.tok == Tok::Punct('#'))
        && matches!(tokens.get(i + 1), Some(t) if t.tok == Tok::Open('['))
}

/// Does this attribute body gate test code? True for `test`, `bench`, and
/// `cfg(...)` whose predicate can only be satisfied under `cfg(test)` —
/// i.e. it mentions `test` outside any `not(...)` group.
fn attr_is_test_gate(body: &[Token]) -> bool {
    match body.first().map(|t| &t.tok) {
        Some(Tok::Ident(name)) if name == "test" || name == "bench" => body.len() == 1,
        Some(Tok::Ident(name)) if name == "cfg" => cfg_mentions_test(body),
        _ => false,
    }
}

fn cfg_mentions_test(body: &[Token]) -> bool {
    // Track group heads (`any`, `all`, `not`, ...) so `cfg(not(test))`
    // does not count as a test gate.
    let mut not_depth = 0usize;
    let mut paren_not_levels: Vec<bool> = Vec::new();
    let mut last_ident: Option<&str> = None;
    for t in body {
        match &t.tok {
            Tok::Ident(name) => {
                if name == "test" && not_depth == 0 && last_ident != Some("not") {
                    return true;
                }
                last_ident = Some(name);
            }
            Tok::Open('(') => {
                let is_not = last_ident == Some("not");
                paren_not_levels.push(is_not);
                if is_not {
                    not_depth += 1;
                }
                last_ident = None;
            }
            Tok::Close(')') => {
                if paren_not_levels.pop() == Some(true) {
                    not_depth = not_depth.saturating_sub(1);
                }
                last_ident = None;
            }
            _ => last_ident = None,
        }
    }
    false
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

fn scan_panics(tokens: &[Token], test_mask: &[bool], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        let next = tokens.get(i + 1).map(|t| &t.tok);
        if PANIC_MACROS.contains(&name.as_str()) && next == Some(&Tok::Punct('!')) {
            out.push(Finding {
                line: t.line,
                rule: Rule::Panic,
                message: format!("`{name}!` in non-test library code"),
            });
            continue;
        }
        let prev = i.checked_sub(1).and_then(|p| tokens.get(p)).map(|t| &t.tok);
        if PANIC_METHODS.contains(&name.as_str())
            && prev == Some(&Tok::Punct('.'))
            && next == Some(&Tok::Open('('))
        {
            out.push(Finding {
                line: t.line,
                rule: Rule::Panic,
                message: format!("`.{name}()` in non-test library code"),
            });
        }
    }
}

/// Keywords after which a `[` starts an array literal or pattern, never an
/// index expression.
const NON_INDEX_KEYWORDS: [&str; 16] = [
    "return", "in", "if", "else", "match", "break", "loop", "while", "for", "as", "mut", "ref",
    "move", "let", "const", "static",
];

fn scan_indexing(tokens: &[Token], test_mask: &[bool], proven: &[bool], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if test_mask.get(i).copied().unwrap_or(false) || proven.get(i).copied().unwrap_or(false) {
            continue;
        }
        if t.tok != Tok::Open('[') {
            continue;
        }
        let indexes = match i.checked_sub(1).and_then(|p| tokens.get(p)).map(|t| &t.tok) {
            Some(Tok::Ident(name)) => !NON_INDEX_KEYWORDS.contains(&name.as_str()),
            Some(Tok::Close(')')) | Some(Tok::Close(']')) => true,
            _ => false,
        };
        if indexes {
            out.push(Finding {
                line: t.line,
                rule: Rule::Index,
                message: "unchecked slice indexing in untrusted-input module".to_string(),
            });
        }
    }
}

/// Does `name` mark a public decode entry point?
fn is_decode_entry_name(name: &str) -> bool {
    name == "open"
        || name.starts_with("read_")
        || name.starts_with("decode")
        || name.starts_with("decompress")
        || name.starts_with("inflate")
}

fn scan_decode_signatures(tokens: &[Token], test_mask: &[bool], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        // Match `pub fn <name>`. Restricted visibility (`pub(crate)`,
        // `pub(super)`) is not a public entry point and is exempt.
        if t.tok != Tok::Ident("pub".to_string()) {
            continue;
        }
        let j = i + 1;
        if matches!(tokens.get(j), Some(t) if t.tok == Tok::Open('(')) {
            continue;
        }
        if !matches!(tokens.get(j), Some(t) if t.tok == Tok::Ident("fn".to_string())) {
            continue;
        }
        let Some(name_tok) = tokens.get(j + 1) else {
            continue;
        };
        let Tok::Ident(name) = &name_tok.tok else {
            continue;
        };
        if !is_decode_entry_name(name) {
            continue;
        }
        if !signature_returns_result(tokens, j + 2) {
            out.push(Finding {
                line: name_tok.line,
                rule: Rule::DecodeResult,
                message: format!("public decode entry point `{name}` does not return `Result`"),
            });
        }
    }
}

/// From just past the fn name, skip generics and the parameter list, then
/// look for `Result` between `->` and the body `{` (or a trailing `;`).
fn signature_returns_result(tokens: &[Token], mut j: usize) -> bool {
    // Skip generics `<...>`; `<` nests but never contains parens or braces
    // at signature level.
    if matches!(tokens.get(j), Some(t) if t.tok == Tok::Punct('<')) {
        let mut depth = 0i32;
        while let Some(t) = tokens.get(j) {
            match t.tok {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => {
                    depth -= 1;
                    if depth <= 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Parameter list.
    if !matches!(tokens.get(j), Some(t) if t.tok == Tok::Open('(')) {
        return false;
    }
    let Some(params_end) = matching_close(tokens, j, '(') else {
        return false;
    };
    j = params_end + 1;
    // Return type and where clause run until the body opens.
    let mut saw_arrow = false;
    let mut saw_result = false;
    while let Some(t) = tokens.get(j) {
        match &t.tok {
            Tok::Open('{') | Tok::Punct(';') => break,
            Tok::Punct('-') if matches!(tokens.get(j + 1), Some(t) if t.tok == Tok::Punct('>')) => {
                saw_arrow = true;
                j += 1;
            }
            Tok::Ident(name) if name == "where" => break,
            Tok::Ident(name) if name.ends_with("Result") => saw_result = true,
            _ => {}
        }
        j += 1;
    }
    saw_arrow && saw_result
}

/// `unsafe` requires a `// SAFETY:` comment on the same line or within
/// the two lines above (the comment may sit above an attribute).
fn scan_safety_comments(
    tokens: &[Token],
    comments: &[LineComment],
    test_mask: &[bool],
    out: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        if !matches!(&t.tok, Tok::Ident(w) if w == "unsafe") {
            continue;
        }
        let justified = comments.iter().any(|c| {
            c.text.trim_start().starts_with("SAFETY:") && c.line <= t.line && t.line - c.line <= 2
        });
        if !justified {
            out.push(Finding {
                line: t.line,
                rule: Rule::SafetyComment,
                message: "`unsafe` without a `// SAFETY:` comment".to_string(),
            });
        }
    }
}

/// The `unsafe-boundary` rule: SIMD/intrinsic code must keep its escape
/// hatches paired with guards. Two checks, both aimed at `checksum.rs`
/// and any future kernel code:
///
/// - a file using `#[target_feature(...)]` must also contain a runtime
///   feature-detection call (any identifier containing
///   `feature_detected`) — compiling for a feature is not the same as
///   checking the CPU has it;
/// - every `#[cfg(target_arch = ...)]`-gated *function* needs a same-name
///   fn under `#[cfg(not(target_arch ...))]` — the named scalar fallback.
///   Arch-gated `mod`s are exempt: gating a whole intrinsics module is
///   the idiom, and its call sites are the paired fns this check covers.
///
/// The `// SAFETY:` comment requirement on the `unsafe` blocks themselves
/// is the existing `safety-comment` rule; together the three checks form
/// the full boundary contract.
fn scan_unsafe_boundary(tokens: &[Token], test_mask: &[bool], out: &mut Vec<Finding>) {
    let has_detection = tokens
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(w) if w.contains("feature_detected")));
    let mut gated: Vec<(String, u32)> = Vec::new();
    let mut fallbacks: Vec<String> = Vec::new();

    let mut i = 0usize;
    while i < tokens.len() {
        if !is_attr_start(tokens, i) {
            i += 1;
            continue;
        }
        let in_test = test_mask.get(i).copied().unwrap_or(false);
        // Walk the attribute run attached to the next item.
        let mut arch_polarity: Option<bool> = None;
        let mut target_feature_line: Option<u32> = None;
        while is_attr_start(tokens, i) {
            let Some(end) = matching_close(tokens, i + 1, '[') else {
                return;
            };
            let body = &tokens[i + 2..end];
            match body.first().map(|t| &t.tok) {
                Some(Tok::Ident(w)) if w == "target_feature" => {
                    target_feature_line = Some(tokens[i].line);
                }
                Some(Tok::Ident(w)) if w == "cfg" => {
                    if let Some(pol) = cfg_arch_polarity(body) {
                        arch_polarity = Some(pol);
                    }
                }
                _ => {}
            }
            i = end + 1;
        }
        if in_test {
            continue;
        }
        if let (Some(line), false) = (target_feature_line, has_detection) {
            out.push(Finding {
                line,
                rule: Rule::UnsafeBoundary,
                message: "`#[target_feature]` in a file with no runtime feature-detection guard"
                    .to_string(),
            });
        }
        if let Some(pol) = arch_polarity {
            if let Some(name) = attached_fn_name(tokens, i) {
                if pol {
                    gated.push((name, tokens.get(i).map_or(0, |t| t.line)));
                } else {
                    fallbacks.push(name);
                }
            }
        }
    }
    for (name, line) in gated {
        if !fallbacks.contains(&name) {
            out.push(Finding {
                line,
                rule: Rule::UnsafeBoundary,
                message: format!(
                    "arch-gated fn `{name}` has no `#[cfg(not(target_arch ...))]` scalar fallback"
                ),
            });
        }
    }
}

/// Does this `cfg(...)` attribute body mention `target_arch`, and with
/// what polarity? `Some(true)` = outside any `not(...)` (the gated side),
/// `Some(false)` = only inside `not(...)` (the fallback side), `None` =
/// no mention.
fn cfg_arch_polarity(body: &[Token]) -> Option<bool> {
    let mut not_depth = 0usize;
    let mut paren_not_levels: Vec<bool> = Vec::new();
    let mut last_ident: Option<&str> = None;
    let mut inside = false;
    for t in body {
        match &t.tok {
            Tok::Ident(name) => {
                if name == "target_arch" {
                    if not_depth == 0 {
                        return Some(true);
                    }
                    inside = true;
                }
                last_ident = Some(name);
            }
            Tok::Open('(') => {
                let is_not = last_ident == Some("not");
                paren_not_levels.push(is_not);
                if is_not {
                    not_depth += 1;
                }
                last_ident = None;
            }
            Tok::Close(')') => {
                if paren_not_levels.pop() == Some(true) {
                    not_depth = not_depth.saturating_sub(1);
                }
                last_ident = None;
            }
            _ => last_ident = None,
        }
    }
    if inside {
        Some(false)
    } else {
        None
    }
}

/// If the item starting at `i` (just past its attributes) is a fn,
/// return its name. Modifier keywords and restricted visibility are
/// skipped; any other item kind (notably `mod`) returns `None`.
fn attached_fn_name(tokens: &[Token], mut i: usize) -> Option<String> {
    loop {
        match tokens.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(w)) if w == "fn" => {
                return match tokens.get(i + 1).map(|t| &t.tok) {
                    Some(Tok::Ident(name)) => Some(name.clone()),
                    _ => None,
                };
            }
            Some(Tok::Ident(w))
                if matches!(w.as_str(), "pub" | "const" | "unsafe" | "async" | "extern") =>
            {
                i += 1;
            }
            Some(Tok::Open('(')) => {
                // `pub(crate)` restriction.
                i = matching_close(tokens, i, '(')? + 1;
            }
            Some(Tok::Str) => i += 1, // `extern "C"`
            _ => return None,
        }
    }
}

/// The `concurrency-discipline` rule, covering the three sharp edges of
/// the scoped-thread pipeline code:
///
/// - `Ordering::Relaxed` outside tests needs an `// ORDERING:` comment on
///   the same line or within the two lines above, stating why relaxed
///   ordering is sufficient. Acquire/Release/SeqCst are self-describing
///   and exempt.
/// - `.lock().unwrap()` / `.lock().expect(...)` panics on poison and
///   poisons every later consumer; recover with
///   `unwrap_or_else(|e| e.into_inner())` instead.
/// - inside a `scope(...)` block, a `&mut name` capture in a `.spawn(...)`
///   closure is flagged unless `name` is `let`-bound inside that closure
///   — a shared mutable capture across workers is a race (or a compile
///   error waiting to move).
fn scan_concurrency(
    tokens: &[Token],
    comments: &[LineComment],
    test_mask: &[bool],
    out: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        match &t.tok {
            // `Ordering :: Relaxed`
            Tok::Ident(w) if w == "Ordering" => {
                let tail = matches!(tokens.get(i + 1), Some(t) if t.tok == Tok::Punct(':'))
                    && matches!(tokens.get(i + 2), Some(t) if t.tok == Tok::Punct(':'))
                    && matches!(tokens.get(i + 3), Some(t) if matches!(&t.tok, Tok::Ident(w) if w == "Relaxed"));
                if !tail {
                    continue;
                }
                let line = tokens[i + 3].line;
                let justified = comments.iter().any(|c| {
                    c.text.trim_start().starts_with("ORDERING:")
                        && c.line <= line
                        && line - c.line <= 2
                });
                if !justified {
                    out.push(Finding {
                        line,
                        rule: Rule::Concurrency,
                        message: "`Ordering::Relaxed` without an `// ORDERING:` justification"
                            .to_string(),
                    });
                }
            }
            // `.lock().unwrap()` / `.lock().expect(...)`
            Tok::Ident(w) if w == "lock" => {
                let prev = i.checked_sub(1).map(|p| &tokens[p].tok);
                let shape = matches!(prev, Some(Tok::Punct('.')))
                    && matches!(tokens.get(i + 1), Some(t) if t.tok == Tok::Open('('))
                    && matches!(tokens.get(i + 2), Some(t) if t.tok == Tok::Close(')'))
                    && matches!(tokens.get(i + 3), Some(t) if t.tok == Tok::Punct('.'));
                if !shape {
                    continue;
                }
                if let Some(Tok::Ident(m)) = tokens.get(i + 4).map(|t| &t.tok) {
                    if (m == "unwrap" || m == "expect")
                        && matches!(tokens.get(i + 5), Some(t) if t.tok == Tok::Open('('))
                    {
                        out.push(Finding {
                            line: tokens[i + 4].line,
                            rule: Rule::Concurrency,
                            message: format!(
                                "`.lock().{m}()` panics on poison; use \
                                 `unwrap_or_else(|e| e.into_inner())`"
                            ),
                        });
                    }
                }
            }
            // `scope(...)` — look inside for `.spawn(...)` closures.
            Tok::Ident(w) if w == "scope" => {
                if !matches!(tokens.get(i + 1), Some(t) if t.tok == Tok::Open('(')) {
                    continue;
                }
                let Some(close) = matching_close(tokens, i + 1, '(') else {
                    continue;
                };
                scan_spawn_captures(tokens, i + 2, close, out);
            }
            _ => {}
        }
    }
}

/// Flag `&mut name` inside `.spawn(...)` argument spans when `name` is
/// not `let`-bound within that same span.
fn scan_spawn_captures(tokens: &[Token], lo: usize, hi: usize, out: &mut Vec<Finding>) {
    for i in lo..hi {
        let spawn = matches!(&tokens[i].tok, Tok::Ident(w) if w == "spawn")
            && i > 0
            && tokens[i - 1].tok == Tok::Punct('.')
            && matches!(tokens.get(i + 1), Some(t) if t.tok == Tok::Open('('));
        if !spawn {
            continue;
        }
        let Some(close) = matching_close(tokens, i + 1, '(') else {
            continue;
        };
        // Names the closure itself declares.
        let mut local: Vec<&str> = Vec::new();
        for k in i + 2..close {
            if matches!(&tokens[k].tok, Tok::Ident(w) if w == "let") {
                let mut j = k + 1;
                if matches!(tokens.get(j), Some(t) if matches!(&t.tok, Tok::Ident(w) if w == "mut"))
                {
                    j += 1;
                }
                if let Some(Tok::Ident(name)) = tokens.get(j).map(|t| &t.tok) {
                    local.push(name);
                }
            }
        }
        for k in i + 2..close.saturating_sub(1) {
            if tokens[k].tok != Tok::Punct('&') {
                continue;
            }
            if !matches!(&tokens[k + 1].tok, Tok::Ident(w) if w == "mut") {
                continue;
            }
            if let Some(Tok::Ident(name)) = tokens.get(k + 2).map(|t| &t.tok) {
                if !local.contains(&name.as_str()) {
                    out.push(Finding {
                        line: tokens[k].line,
                        rule: Rule::Concurrency,
                        message: format!(
                            "`&mut {name}` captured in a scoped-thread closure \
                             without a closure-local binding"
                        ),
                    });
                }
            }
        }
    }
}

/// Item kinds the `pub-doc` rule covers. `use` re-exports and `impl`
/// blocks themselves are exempt (the items inside an impl are checked).
fn pub_doc_applies(kind: ItemKind) -> bool {
    !matches!(kind, ItemKind::Use | ItemKind::Impl)
}

/// `pub` items in API crates need an outer doc comment directly above the
/// item (above its attributes when it has any).
fn scan_pub_docs(tokens: &[Token], comments: &[LineComment], out: &mut Vec<Finding>) {
    let items = parser::parse_items(tokens);
    scan_pub_docs_in(&items, comments, out);
}

fn scan_pub_docs_in(items: &[Item], comments: &[LineComment], out: &mut Vec<Finding>) {
    for item in items {
        match item.kind {
            ItemKind::Impl => {
                // Trait impls document nothing new: the trait's docs
                // apply. Inherent-impl methods are API surface.
                if !item.trait_impl {
                    scan_pub_docs_in(&item.children, comments, out);
                }
                continue;
            }
            ItemKind::Mod => {
                if item.vis == Vis::Pub {
                    check_item_doc(item, comments, out);
                    scan_pub_docs_in(&item.children, comments, out);
                }
                continue;
            }
            _ => {}
        }
        if item.vis == Vis::Pub && pub_doc_applies(item.kind) {
            check_item_doc(item, comments, out);
        }
    }
}

fn check_item_doc(item: &Item, comments: &[LineComment], out: &mut Vec<Finding>) {
    // Walk upward from the item through its attribute lines and any plain
    // comments (e.g. `// lint:` directives) until a doc comment or a
    // non-comment line is hit.
    let mut ln = item.line.saturating_sub(1);
    let documented = loop {
        if ln == 0 {
            break false;
        }
        match comments.iter().find(|c| c.line == ln) {
            Some(c) if c.kind == CommentKind::DocOuter => break true,
            Some(_) => ln -= 1,
            None if ln >= item.start_line => ln -= 1, // an attribute line
            None => break false,
        }
    };
    if !documented {
        let name = item.name.as_deref().unwrap_or("<unnamed>");
        out.push(Finding {
            line: item.line,
            rule: Rule::PubDoc,
            message: format!("public item `{name}` has no doc comment"),
        });
    }
}

/// Parse every `lint:` directive out of the file's line comments.
fn parse_directives(comments: &[LineComment]) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("lint:") else {
            continue;
        };
        match parse_allow(rest.trim()) {
            Some((rule, whole_file)) => allows.push(Allow {
                line: c.line,
                rule,
                whole_file,
            }),
            None => bad.push(Finding {
                line: c.line,
                rule: Rule::BadAllow,
                message: "malformed lint directive; expected \
                          `lint: allow(<rule>) -- <justification>`"
                    .to_string(),
            }),
        }
    }
    (allows, bad)
}

/// Parse `allow(<rule>) -- <justification>` / `allow-file(<rule>) -- ...`.
fn parse_allow(s: &str) -> Option<(Rule, bool)> {
    let (head, tail) = s.split_once("--")?;
    if tail.trim().is_empty() {
        return None; // the justification is mandatory
    }
    let head = head.trim();
    let (whole_file, args) = if let Some(rest) = head.strip_prefix("allow-file") {
        (true, rest)
    } else if let Some(rest) = head.strip_prefix("allow") {
        (false, rest)
    } else {
        return None;
    };
    let args = args.trim();
    let inner = args.strip_prefix('(')?.strip_suffix(')')?;
    let rule = Rule::from_name(inner.trim())?;
    Some((rule, whole_file))
}

/// Apply allow directives to raw findings; malformed directives join the
/// surviving findings.
fn reconcile(raw: Vec<Finding>, allows: &[Allow], bad: &mut Vec<Finding>) -> FileReport {
    let mut allows_by_rule: Vec<(&'static str, usize)> = Vec::new();
    for a in allows {
        match allows_by_rule
            .iter_mut()
            .find(|(name, _)| *name == a.rule.name())
        {
            Some((_, n)) => *n += 1,
            None => allows_by_rule.push((a.rule.name(), 1)),
        }
    }
    let mut report = FileReport {
        allow_count: allows.len(),
        allows_by_rule,
        ..FileReport::default()
    };
    let mut suppressed: Vec<(&'static str, usize)> = Vec::new();
    for f in raw {
        let covered = allows.iter().any(|a| {
            a.rule == f.rule && (a.whole_file || a.line == f.line || a.line + 1 == f.line)
        });
        if covered {
            match suppressed
                .iter_mut()
                .find(|(name, _)| *name == f.rule.name())
            {
                Some((_, n)) => *n += 1,
                None => suppressed.push((f.rule.name(), 1)),
            }
        } else {
            report.findings.push(f);
        }
    }
    report.findings.append(bad);
    report.findings.sort_by_key(|f| f.line);
    report.suppressed = suppressed;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines_of(report: &FileReport, rule: Rule) -> Vec<u32> {
        report
            .findings
            .iter()
            .filter(|f| f.rule == rule)
            .map(|f| f.line)
            .collect()
    }

    #[test]
    fn flags_unwrap_expect_and_panic_macros() {
        let src = "fn f(x: Option<u8>) -> u8 {\n\
                   let a = x.unwrap();\n\
                   let b = x.expect(\"msg\");\n\
                   panic!(\"boom\");\n\
                   unreachable!();\n\
                   todo!()\n\
                   }";
        let r = check_source(src, false);
        assert_eq!(lines_of(&r, Rule::Panic), vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn asserts_are_not_flagged() {
        let src = "fn f(x: usize) {\nassert!(x > 0);\nassert_eq!(x, 1);\ndebug_assert!(x < 9);\n}";
        assert!(check_source(src, false).findings.is_empty());
    }

    #[test]
    fn unwrap_or_family_is_not_flagged() {
        let src = "fn f(x: Option<u8>) -> u8 {\nx.unwrap_or(0).min(x.unwrap_or_default())\n}";
        assert!(check_source(src, false).findings.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "fn lib() -> u8 { 1 }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   #[test]\n\
                   fn t() { None::<u8>.unwrap(); panic!(); }\n\
                   }";
        assert!(check_source(src, false).findings.is_empty());
    }

    #[test]
    fn test_attr_fn_is_exempt_but_neighbors_are_not() {
        let src = "#[test]\n\
                   fn t() { None::<u8>.unwrap(); }\n\
                   fn lib() { None::<u8>.unwrap(); }";
        let r = check_source(src, false);
        assert_eq!(lines_of(&r, Rule::Panic), vec![3]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_gate() {
        let src = "#[cfg(not(test))]\nfn lib() { None::<u8>.unwrap(); }";
        let r = check_source(src, false);
        assert_eq!(lines_of(&r, Rule::Panic), vec![2]);
    }

    #[test]
    fn cfg_any_test_is_a_test_gate() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nfn helper() { None::<u8>.unwrap(); }";
        assert!(check_source(src, false).findings.is_empty());
    }

    #[test]
    fn allow_on_same_line_suppresses_and_is_counted() {
        let src = "fn f(x: Option<u8>) -> u8 {\n\
                   x.unwrap() // lint: allow(panic) -- documented invariant\n\
                   }";
        let r = check_source(src, false);
        assert!(r.findings.is_empty());
        assert_eq!(r.allow_count, 1);
        assert_eq!(r.suppressed, vec![("panic", 1)]);
    }

    #[test]
    fn allow_on_line_above_suppresses() {
        let src = "fn f(x: Option<u8>) -> u8 {\n\
                   // lint: allow(panic) -- checked two lines up\n\
                   x.unwrap()\n\
                   }";
        assert!(check_source(src, false).findings.is_empty());
    }

    #[test]
    fn allow_does_not_leak_to_other_lines_or_rules() {
        let src = "fn f(x: Option<u8>) -> u8 {\n\
                   // lint: allow(panic) -- only covers the next line\n\
                   let a = x.unwrap();\n\
                   let b = x.unwrap();\n\
                   a + b\n\
                   }";
        let r = check_source(src, false);
        assert_eq!(lines_of(&r, Rule::Panic), vec![4]);
    }

    #[test]
    fn allow_file_covers_whole_file() {
        let src = "// lint: allow-file(panic) -- generated table module\n\
                   fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   fn g(x: Option<u8>) -> u8 { x.unwrap() }";
        let r = check_source(src, false);
        assert!(r.findings.is_empty());
        assert_eq!(r.suppressed, vec![("panic", 2)]);
    }

    #[test]
    fn allow_without_justification_is_a_violation() {
        let src = "fn f(x: Option<u8>) -> u8 {\n\
                   x.unwrap() // lint: allow(panic)\n\
                   }";
        let r = check_source(src, false);
        assert_eq!(lines_of(&r, Rule::BadAllow), vec![2]);
        // The unwrap itself is also still reported.
        assert_eq!(lines_of(&r, Rule::Panic), vec![2]);
    }

    #[test]
    fn allow_with_unknown_rule_is_a_violation() {
        let src = "// lint: allow(everything) -- please\nfn f() {}";
        let r = check_source(src, false);
        assert_eq!(lines_of(&r, Rule::BadAllow), vec![1]);
    }

    #[test]
    fn indexing_flagged_only_in_untrusted_modules() {
        let src = "fn f(buf: &[u8], i: usize) -> u8 {\nbuf[i]\n}";
        assert!(check_source(src, false).findings.is_empty());
        let r = check_source(src, true);
        assert_eq!(lines_of(&r, Rule::Index), vec![2]);
    }

    #[test]
    fn slicing_is_indexing_too() {
        let src = "fn f(buf: &[u8]) -> &[u8] {\n&buf[1..4]\n}";
        let r = check_source(src, true);
        assert_eq!(lines_of(&r, Rule::Index), vec![2]);
    }

    #[test]
    fn array_literals_types_and_attributes_are_not_indexing() {
        let src = "#[derive(Debug)]\n\
                   struct S { a: [u8; 4] }\n\
                   fn f() -> [u8; 2] {\n\
                   let x: Vec<[u8; 8]> = vec![[0u8; 8]];\n\
                   let y = [0u8, 1u8];\n\
                   let [p, q] = y;\n\
                   for _v in [1, 2] {}\n\
                   if let [a, b] = y { let _ = (a, b); }\n\
                   let _ = (x, p, q);\n\
                   y\n\
                   }";
        let r = check_source(src, true);
        assert!(
            lines_of(&r, Rule::Index).is_empty(),
            "false positives: {:?}",
            r.findings
        );
    }

    #[test]
    fn chained_and_call_result_indexing_flagged() {
        let src = "fn f(m: &[Vec<u8>]) -> u8 {\nm[0][1] + helper()[2]\n}\nfn helper() -> Vec<u8> { vec![] }";
        let r = check_source(src, true);
        assert_eq!(lines_of(&r, Rule::Index), vec![2, 2, 2]);
    }

    #[test]
    fn get_based_access_is_clean() {
        let src = "fn f(buf: &[u8]) -> u8 {\nbuf.get(3).copied().unwrap_or(0)\n}";
        assert!(check_source(src, true).findings.is_empty());
    }

    #[test]
    fn decode_entry_without_result_is_flagged() {
        let src = "pub fn decompress_fast(input: &[u8]) -> Vec<u8> { input.to_vec() }";
        let r = check_source(src, false);
        assert_eq!(lines_of(&r, Rule::DecodeResult), vec![1]);
        // With Result it is clean.
        let ok =
            "pub fn decompress_fast(input: &[u8]) -> Result<Vec<u8>, E> { Ok(input.to_vec()) }";
        assert!(check_source(ok, false).findings.is_empty());
    }

    #[test]
    fn decode_rule_covers_open_and_inflate_but_not_pub_crate() {
        let bad = "pub fn open(b: &[u8]) -> usize { b.len() }\n\
                   pub(crate) fn read_header(b: &[u8]) -> usize { b.len() }\n\
                   pub fn inflate_all(b: &[u8]) {}";
        let r = check_source(bad, false);
        assert_eq!(lines_of(&r, Rule::DecodeResult), vec![1, 3]);
    }

    #[test]
    fn decode_rule_ignores_private_fns_and_other_names() {
        let src = "fn decompress_impl(b: &[u8]) -> Vec<u8> { b.to_vec() }\n\
                   pub fn compress(b: &[u8]) -> Vec<u8> { b.to_vec() }\n\
                   pub fn reader(b: &[u8]) -> usize { b.len() }";
        assert!(check_source(src, false).findings.is_empty());
    }

    #[test]
    fn decode_rule_handles_generics_and_where_clauses() {
        let src = "pub fn read_array<const N: usize>(buf: &[u8]) -> Option<[u8; N]> { None }";
        let r = check_source(src, false);
        assert_eq!(lines_of(&r, Rule::DecodeResult), vec![1]);
        let ok = "pub fn read_into<R>(r: R) -> io::Result<Vec<u8>> where R: Sized { todo()\n}\nfn todo() -> io::Result<Vec<u8>> { unimplemented() }\nfn unimplemented() -> io::Result<Vec<u8>> { Ok(vec![]) }";
        assert!(check_source(ok, false).findings.is_empty());
    }

    #[test]
    fn panic_site_in_string_literal_is_not_flagged() {
        let src = "fn f() -> &'static str { \"do not call .unwrap() or panic!\" }";
        assert!(check_source(src, false).findings.is_empty());
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let src = "fn f(p: *const u8) -> u8 {\nunsafe { *p }\n}";
        let r = check_source(src, false);
        assert_eq!(lines_of(&r, Rule::SafetyComment), vec![2]);
    }

    #[test]
    fn unsafe_with_safety_comment_is_clean() {
        let src = "fn f(p: *const u8) -> u8 {\n\
                   // SAFETY: caller guarantees p is valid\n\
                   unsafe { *p }\n}";
        assert!(check_source(src, false).findings.is_empty());
        let attr = "// SAFETY: no interior mutability\n\
                    #[allow(dead_code)]\n\
                    unsafe fn g() {}";
        let r = check_source(attr, false);
        assert!(lines_of(&r, Rule::SafetyComment).is_empty());
    }

    fn doc_report(src: &str) -> FileReport {
        check_file(
            src,
            FileContext {
                untrusted: false,
                require_docs: true,
                binary: false,
            },
        )
    }

    #[test]
    fn undocumented_pub_items_are_flagged() {
        let src = "pub fn f() {}\n\
                   /// Documented.\n\
                   pub fn g() {}\n\
                   pub(crate) fn h() {}\n\
                   fn i() {}";
        let r = doc_report(src);
        assert_eq!(lines_of(&r, Rule::PubDoc), vec![1]);
    }

    #[test]
    fn doc_comment_above_attributes_counts() {
        let src = "/// Documented struct.\n\
                   #[derive(Debug)]\n\
                   pub struct S { pub a: u8 }";
        assert!(doc_report(src).findings.is_empty());
    }

    #[test]
    fn inherent_impl_methods_need_docs_but_trait_impls_do_not() {
        let src = "/// A type.\npub struct S;\n\
                   impl S {\n    pub fn m(&self) {}\n}\n\
                   impl Default for S {\n    fn default() -> Self { S }\n}";
        let r = doc_report(src);
        assert_eq!(lines_of(&r, Rule::PubDoc), vec![4]);
    }

    #[test]
    fn private_mod_contents_are_not_public_api() {
        let src = "mod detail {\n    pub fn helper() {}\n}";
        assert!(doc_report(src).findings.is_empty());
    }

    #[test]
    fn new_rules_are_suppressible() {
        let src = "pub fn f() {} // lint: allow(pub-doc) -- internal shim\n\
                   fn g(p: *const u8) -> u8 {\n\
                   // lint: allow(safety-comment) -- justified elsewhere\n\
                   unsafe { *p }\n}";
        let r = doc_report(src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.allow_count, 2);
    }
    #[test]
    fn target_feature_without_detection_fires() {
        let src = "mod simd {\n\
                   #[target_feature(enable = \"avx2\")]\n\
                   unsafe fn fold() {}\n\
                   }";
        let r = check_source(src, false);
        assert_eq!(lines_of(&r, Rule::UnsafeBoundary), vec![2]);
    }

    #[test]
    fn target_feature_with_detection_is_clean() {
        let src = "fn entry() -> bool { is_x86_feature_detected!(\"avx2\") }\n\
                   mod simd {\n\
                   // SAFETY: caller checked avx2.\n\
                   #[target_feature(enable = \"avx2\")]\n\
                   unsafe fn fold() {}\n\
                   }";
        let r = check_source(src, false);
        assert!(lines_of(&r, Rule::UnsafeBoundary).is_empty());
    }

    #[test]
    fn arch_gated_fn_without_fallback_fires() {
        let src = "#[cfg(target_arch = \"x86_64\")]\n\
                   fn fold_simd(x: u32) -> u32 { x }";
        let r = check_source(src, false);
        assert_eq!(lines_of(&r, Rule::UnsafeBoundary), vec![2]);
    }

    #[test]
    fn arch_gated_fn_with_named_fallback_is_clean() {
        let src = "#[cfg(target_arch = \"x86_64\")]\n\
                   fn fold_simd(x: u32) -> u32 { x }\n\
                   #[cfg(not(target_arch = \"x86_64\"))]\n\
                   fn fold_simd(x: u32) -> u32 { x + 1 }";
        let r = check_source(src, false);
        assert!(lines_of(&r, Rule::UnsafeBoundary).is_empty());
    }

    #[test]
    fn arch_gated_mod_is_exempt() {
        let src = "#[cfg(target_arch = \"x86_64\")]\n\
                   mod avx2 {\n\
                   fn inner() {}\n\
                   }";
        let r = check_source(src, false);
        assert!(lines_of(&r, Rule::UnsafeBoundary).is_empty());
    }

    #[test]
    fn relaxed_ordering_needs_justification() {
        let src = "fn bump(c: &AtomicUsize) -> usize {\n\
                   c.fetch_add(1, Ordering::Relaxed)\n}";
        let r = check_source(src, false);
        assert_eq!(lines_of(&r, Rule::Concurrency), vec![2]);
    }

    #[test]
    fn justified_relaxed_and_stronger_orderings_are_clean() {
        let src = "fn bump(c: &AtomicUsize) -> usize {\n\
                   // ORDERING: a monotonic ticket counter; no data is published.\n\
                   c.fetch_add(1, Ordering::Relaxed)\n}\n\
                   fn publish(f: &AtomicBool) {\n\
                   f.store(true, Ordering::Release);\n}";
        let r = check_source(src, false);
        assert!(lines_of(&r, Rule::Concurrency).is_empty());
    }

    #[test]
    fn lock_then_panic_fires_and_poison_recovery_is_clean() {
        let src = "fn f(m: &Mutex<u32>) -> u32 {\n\
                   let a = *m.lock().unwrap();\n\
                   let b = *m.lock().expect(\"poisoned\");\n\
                   let c = *m.lock().unwrap_or_else(|e| e.into_inner());\n\
                   a + b + c\n}";
        let r = check_source(src, false);
        assert_eq!(lines_of(&r, Rule::Concurrency), vec![2, 3]);
    }

    #[test]
    fn spawn_shared_mut_capture_fires_but_locals_are_clean() {
        let src = "fn run(jobs: &[Job], tallies: &mut [u32]) {\n\
                   std::thread::scope(|scope| {\n\
                   scope.spawn(|| {\n\
                   let mut scratch = Scratch::new();\n\
                   work(&mut scratch, &mut tallies[0]);\n\
                   });\n\
                   });\n}";
        let r = check_source(src, false);
        // `scratch` is closure-local; `tallies` is captured.
        assert_eq!(lines_of(&r, Rule::Concurrency), vec![5]);
    }

    #[test]
    fn test_code_is_exempt_from_concurrency_rules() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                   fn f(c: &AtomicUsize) -> usize { c.load(Ordering::Relaxed) }\n\
                   }";
        let r = check_source(src, false);
        assert!(lines_of(&r, Rule::Concurrency).is_empty());
    }
}
