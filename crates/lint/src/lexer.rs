//! A hand-rolled Rust lexer, just deep enough for rule scanning.
//!
//! Produces a flat token stream (identifiers, literals, delimiters,
//! single-char punctuation) with 1-based line numbers, and collects line
//! comments separately so the rule engine can parse `// lint: allow(...)`
//! directives. It is not a full Rust lexer — it only needs to never
//! mis-tokenize real code in ways that would make the rules fire inside
//! strings or comments, and to survive the tricky cases: raw strings with
//! `#` fences, nested block comments, byte/char literals, lifetimes, raw
//! identifiers, and numeric literals that sit next to `..` ranges.

/// One lexed token. Multi-character punctuation (`::`, `->`, `..`) is
/// emitted one char at a time; rules match short sequences instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword; raw identifiers arrive without the `r#`.
    Ident(String),
    /// A lifetime such as `'a` (the name is irrelevant to every rule).
    Lifetime,
    /// String, raw-string, byte-string, byte, or char literal.
    Str,
    /// Numeric literal, including suffixes (`0xFFu8`, `1.5e-3`). Carries
    /// the literal text so the bound-inference pass can evaluate constant
    /// array lengths and range offsets.
    Num(String),
    /// Opening delimiter: `(`, `[`, or `{`.
    Open(char),
    /// Closing delimiter: `)`, `]`, or `}`.
    Close(char),
    /// Any other single punctuation character.
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// What flavor of `//` comment a [`LineComment`] is. The pub-doc rule
/// needs to tell documentation apart from plain commentary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommentKind {
    /// A plain `//` comment (including `////` ruler lines).
    Plain,
    /// An outer doc comment, `/// ...`.
    DocOuter,
    /// An inner doc comment, `//! ...`.
    DocInner,
}

/// A `//` comment (doc comments included), with its text after the slashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    /// 1-based source line the comment sits on.
    pub line: u32,
    /// Comment body with the leading `//`, `///`, or `//!` stripped.
    pub text: String,
    /// Plain comment vs outer/inner doc comment.
    pub kind: CommentKind,
}

/// Full lexer output for one source file.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// Significant tokens in source order.
    pub tokens: Vec<Token>,
    /// Every `//` comment, for directive parsing.
    pub comments: Vec<LineComment>,
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek().is_some_and(&pred) {
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Consume a (possibly escaped) quoted literal body after the opening quote.
fn eat_quoted(cur: &mut Cursor, quote: char) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            c if c == quote => break,
            _ => {}
        }
    }
}

/// Consume a raw-string body: `hashes` fence hashes were seen before the
/// opening quote, so the literal ends at `"` followed by that many `#`s.
fn eat_raw_string(cur: &mut Cursor, hashes: usize) {
    while let Some(c) = cur.bump() {
        if c == '"' {
            let mut seen = 0;
            while seen < hashes && cur.peek() == Some('#') {
                cur.bump();
                seen += 1;
            }
            if seen == hashes {
                break;
            }
        }
    }
}

/// Consume a block comment (Rust block comments nest).
fn eat_block_comment(cur: &mut Cursor) {
    let mut depth = 1usize;
    while depth > 0 {
        match cur.bump() {
            Some('/') if cur.peek() == Some('*') => {
                cur.bump();
                depth += 1;
            }
            Some('*') if cur.peek() == Some('/') => {
                cur.bump();
                depth -= 1;
            }
            Some(_) => {}
            None => break,
        }
    }
}

/// Consume a numeric literal. The first digit has already been bumped and
/// is passed as `first`. Handles hex/octal/binary prefixes, underscores,
/// type suffixes, and a fractional dot — but never swallows the `..` of a
/// range expression, the `+`/`-` after a hex digit `E` (`0xE+2` is an
/// addition, not an exponent), or the operator after a suffix that happens
/// to end in `e` (`1usize+2`).
fn eat_number(cur: &mut Cursor, first: char) {
    // A radix prefix (0x/0o/0b) rules out a decimal exponent entirely.
    let radix_prefixed =
        first == '0' && matches!(cur.peek(), Some('x') | Some('X') | Some('o') | Some('b'));
    let mut seen_dot = false;
    let mut prev = first;
    loop {
        match cur.peek() {
            Some(c) if c.is_alphanumeric() || c == '_' => {
                // An exponent sign is only valid in a decimal literal and
                // only when the `e`/`E` directly follows a digit (not a
                // type-suffix letter as in `1usize`).
                let was_exp = (c == 'e' || c == 'E') && !radix_prefixed && prev.is_ascii_digit();
                cur.bump();
                prev = c;
                if was_exp && matches!(cur.peek(), Some('+') | Some('-')) {
                    cur.bump();
                    prev = '+';
                }
            }
            Some('.') if !seen_dot => {
                // `1.5` continues the number; `1..n` does not.
                if cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                    seen_dot = true;
                    cur.bump();
                    prev = '.';
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
}

/// Lex `src` into tokens plus line comments.
pub fn lex(src: &str) -> LexOutput {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut out = LexOutput::default();

    // A shebang line (`#!/usr/bin/env ...`) is trivia, but `#![...]` at the
    // top of a file is an inner attribute and must reach the token stream.
    if cur.peek() == Some('#') && cur.peek_at(1) == Some('!') && cur.peek_at(2) != Some('[') {
        while cur.peek().is_some_and(|c| c != '\n') {
            cur.bump();
        }
    }

    while let Some(c) = cur.peek() {
        let line = cur.line;
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek_at(1) == Some('/') => {
                cur.bump();
                cur.bump();
                // Classify and strip the doc-comment marker: `/// text`
                // and `//! text` both yield ` text`. Four-plus slashes
                // (`////`) is a plain ruler comment, not documentation.
                let kind = match (cur.peek(), cur.peek_at(1)) {
                    (Some('/'), next) if next != Some('/') => {
                        cur.bump();
                        CommentKind::DocOuter
                    }
                    (Some('!'), _) => {
                        cur.bump();
                        CommentKind::DocInner
                    }
                    _ => CommentKind::Plain,
                };
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if c == '\n' {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                out.comments.push(LineComment { line, text, kind });
            }
            '/' if cur.peek_at(1) == Some('*') => {
                cur.bump();
                cur.bump();
                eat_block_comment(&mut cur);
            }
            '"' => {
                cur.bump();
                eat_quoted(&mut cur, '"');
                out.tokens.push(Token {
                    tok: Tok::Str,
                    line,
                });
            }
            '\'' => {
                cur.bump();
                // Lifetime vs char literal: `'a` followed by anything but a
                // closing quote is a lifetime; `'a'`, `'\n'`, `'('` are
                // char literals.
                let is_lifetime =
                    cur.peek().is_some_and(is_ident_start) && cur.peek_at(1) != Some('\'');
                if is_lifetime {
                    cur.eat_while(is_ident_continue);
                    out.tokens.push(Token {
                        tok: Tok::Lifetime,
                        line,
                    });
                } else {
                    eat_quoted(&mut cur, '\'');
                    out.tokens.push(Token {
                        tok: Tok::Str,
                        line,
                    });
                }
            }
            'r' | 'b' if starts_prefixed_literal(&cur) => {
                lex_prefixed_literal(&mut cur, &mut out, line);
            }
            c if is_ident_start(c) => {
                let start = cur.pos;
                cur.eat_while(is_ident_continue);
                let ident: String = cur.chars[start..cur.pos].iter().collect();
                out.tokens.push(Token {
                    tok: Tok::Ident(ident),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = cur.pos;
                cur.bump();
                eat_number(&mut cur, c);
                let text: String = cur.chars[start..cur.pos].iter().collect();
                out.tokens.push(Token {
                    tok: Tok::Num(text),
                    line,
                });
            }
            '(' | '[' | '{' => {
                cur.bump();
                out.tokens.push(Token {
                    tok: Tok::Open(c),
                    line,
                });
            }
            ')' | ']' | '}' => {
                cur.bump();
                out.tokens.push(Token {
                    tok: Tok::Close(c),
                    line,
                });
            }
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
            }
        }
    }
    out
}

/// Does the cursor sit on `r"`, `r#"`, `r#ident`, `b"`, `b'`, `br"`, or
/// `br#"` — i.e. a prefixed literal or raw identifier rather than a plain
/// identifier that happens to start with `r` or `b`?
fn starts_prefixed_literal(cur: &Cursor) -> bool {
    let c0 = cur.peek();
    let c1 = cur.peek_at(1);
    match (c0, c1) {
        (Some('r'), Some('"')) | (Some('r'), Some('#')) => true,
        (Some('b'), Some('"')) | (Some('b'), Some('\'')) => true,
        (Some('b'), Some('r')) => matches!(cur.peek_at(2), Some('"') | Some('#')),
        _ => false,
    }
}

fn lex_prefixed_literal(cur: &mut Cursor, out: &mut LexOutput, line: u32) {
    let c0 = cur.peek();
    let c1 = cur.peek_at(1);
    match (c0, c1) {
        (Some('r'), Some('"')) => {
            cur.bump();
            cur.bump();
            eat_raw_string(cur, 0);
            out.tokens.push(Token {
                tok: Tok::Str,
                line,
            });
        }
        (Some('r'), Some('#')) => {
            // Either a raw string `r#"..."#` (any fence depth) or a raw
            // identifier `r#match`.
            let mut hashes = 0usize;
            while cur.peek_at(1 + hashes) == Some('#') {
                hashes += 1;
            }
            if cur.peek_at(1 + hashes) == Some('"') {
                cur.bump(); // r
                for _ in 0..hashes {
                    cur.bump();
                }
                cur.bump(); // "
                eat_raw_string(cur, hashes);
                out.tokens.push(Token {
                    tok: Tok::Str,
                    line,
                });
            } else {
                cur.bump(); // r
                cur.bump(); // #
                let start = cur.pos;
                cur.eat_while(is_ident_continue);
                let ident: String = cur.chars[start..cur.pos].iter().collect();
                out.tokens.push(Token {
                    tok: Tok::Ident(ident),
                    line,
                });
            }
        }
        (Some('b'), Some('"')) => {
            cur.bump();
            cur.bump();
            eat_quoted(cur, '"');
            out.tokens.push(Token {
                tok: Tok::Str,
                line,
            });
        }
        (Some('b'), Some('\'')) => {
            cur.bump();
            cur.bump();
            eat_quoted(cur, '\'');
            out.tokens.push(Token {
                tok: Tok::Str,
                line,
            });
        }
        (Some('b'), Some('r')) => {
            let mut hashes = 0usize;
            while cur.peek_at(2 + hashes) == Some('#') {
                hashes += 1;
            }
            cur.bump(); // b
            cur.bump(); // r
            for _ in 0..hashes {
                cur.bump();
            }
            cur.bump(); // "
            eat_raw_string(cur, hashes);
            out.tokens.push(Token {
                tok: Tok::Str,
                line,
            });
        }
        _ => {
            cur.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let out = lex("let x = 1;\nlet y = x;");
        assert_eq!(out.tokens[0].tok, Tok::Ident("let".into()));
        assert_eq!(out.tokens[0].line, 1);
        let second_let = out
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Ident("let".into()))
            .nth(1)
            .unwrap();
        assert_eq!(second_let.line, 2);
    }

    #[test]
    fn strings_hide_their_contents() {
        // The `unwrap(` inside the string must not surface as tokens.
        let out = lex(r#"let s = "call .unwrap() here";"#);
        assert!(idents(r#"let s = "call .unwrap() here";"#)
            .iter()
            .all(|i| i != "unwrap"));
        assert!(out.tokens.iter().any(|t| t.tok == Tok::Str));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = "let s = r#\"quote \" and # inside\"#; let t = x.unwrap();";
        let ids = idents(src);
        assert!(ids.contains(&"unwrap".to_string()));
        // Exactly one Str token for the raw string.
        let strs = lex(src).tokens.iter().filter(|t| t.tok == Tok::Str).count();
        assert_eq!(strs, 1);
    }

    #[test]
    fn double_fence_raw_string() {
        let src = "r##\"has \"# inside\"##";
        let out = lex(src);
        assert_eq!(out.tokens.len(), 1);
        assert_eq!(out.tokens[0].tok, Tok::Str);
    }

    #[test]
    fn byte_strings_and_byte_literals() {
        let src = "let m = b\"FPZ1\"; let c = b'x'; let r = br#\"raw\"#;";
        let strs = lex(src).tokens.iter().filter(|t| t.tok == Tok::Str).count();
        assert_eq!(strs, 3);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'b' }";
        let out = lex(src);
        let lifetimes = out.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let chars = out.tokens.iter().filter(|t| t.tok == Tok::Str).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
        // Escaped and punctuation char literals are chars, not lifetimes.
        let out = lex(r"let a = '\n'; let b = '('; let c = '\'';");
        assert_eq!(out.tokens.iter().filter(|t| t.tok == Tok::Str).count(), 3);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#match = 1;"), vec!["let", "match"]);
    }

    #[test]
    fn nested_generics_emit_single_angles() {
        let src = "fn f() -> Result<Vec<Option<u8>>> {}";
        let out = lex(src);
        let closes = out
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Punct('>'))
            .count();
        assert_eq!(closes, 4); // three generic closes + the arrow head
    }

    #[test]
    fn comments_are_trivia_but_collected() {
        let src = "// plain .unwrap() mention\nlet x = 1; // lint: allow(panic) -- why\n/* block\n.unwrap()\n*/\nlet y = 2;";
        let out = lex(src);
        assert!(!out
            .tokens
            .iter()
            .any(|t| t.tok == Tok::Ident("unwrap".into())));
        assert_eq!(out.comments.len(), 2);
        assert_eq!(out.comments[1].line, 2);
        assert!(out.comments[1].text.contains("lint: allow(panic)"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let x = 1;";
        assert_eq!(idents(src), vec!["let", "x"]);
    }

    #[test]
    fn doc_comments_collected_with_marker_stripped() {
        let out = lex("/// summary line\n//! inner doc\n// plain\n//// ruler\nfn f() {}");
        assert_eq!(out.comments.len(), 4);
        assert_eq!(out.comments[0].text, " summary line");
        assert_eq!(out.comments[0].kind, CommentKind::DocOuter);
        assert_eq!(out.comments[1].text, " inner doc");
        assert_eq!(out.comments[1].kind, CommentKind::DocInner);
        assert_eq!(out.comments[2].kind, CommentKind::Plain);
        // Four or more slashes is a ruler, not documentation.
        assert_eq!(out.comments[3].kind, CommentKind::Plain);
    }

    #[test]
    fn shebang_is_trivia_but_inner_attrs_are_not() {
        let out = lex("#!/usr/bin/env run-cargo-script\nfn f() {}");
        assert_eq!(
            out.tokens.first().map(|t| t.tok.clone()),
            Some(Tok::Ident("fn".into()))
        );
        assert_eq!(out.tokens[0].line, 2);
        // `#![...]` at file start is an inner attribute, not a shebang.
        let attr = lex("#![deny(missing_docs)]\nfn f() {}");
        assert_eq!(attr.tokens[0].tok, Tok::Punct('#'));
        assert_eq!(attr.tokens[1].tok, Tok::Punct('!'));
    }

    #[test]
    fn hex_digits_and_suffixes_do_not_swallow_operators() {
        // `0xE+2` is `0xE + 2`, never a malformed exponent.
        let out = lex("let x = 0xE+2;");
        let nums = out
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Num(_)))
            .count();
        assert_eq!(nums, 2);
        assert!(out.tokens.iter().any(|t| t.tok == Tok::Punct('+')));
        // A type suffix ending in `e` is not an exponent either.
        let out = lex("let y = 1usize+2;");
        let nums = out
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Num(_)))
            .count();
        assert_eq!(nums, 2);
        assert!(out.tokens.iter().any(|t| t.tok == Tok::Punct('+')));
        // Real exponents still lex as one number.
        let out = lex("let z = 1.5e-3 + 2E+6;");
        let nums = out
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Num(_)))
            .count();
        assert_eq!(nums, 2);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let src = "for i in 0..10 { a[i]; } let f = 1.5e-3; let h = 0xFFu8;";
        let out = lex(src);
        let nums = out
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Num(_)))
            .count();
        assert_eq!(nums, 4); // 0, 10, 1.5e-3, 0xFFu8
                             // The range dots survive as punctuation.
        let dots = out
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Punct('.'))
            .count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn idents_starting_with_r_or_b_are_not_literals() {
        assert_eq!(
            idents("let range = 1; let bytes = 2; let b = 3; let r = 4;"),
            vec!["let", "range", "let", "bytes", "let", "b", "let", "r"]
        );
    }
}
