//! Loop-bound inference: discharging index checks by proof.
//!
//! The `index` rule flags every unchecked `v[i]` in untrusted modules, but
//! a large class of sites is provably in bounds from local structure
//! alone: `for i in 0..v.len() { v[i] }`, `for i in 0..n` where
//! `v = vec![x; n]`, or `for (i, _) in v.iter().enumerate()` indexing a
//! same-length companion vector. This pass recognizes those shapes and
//! returns a mask of `[` tokens whose index expression is proven safe, so
//! the rule skips them instead of demanding a suppression.
//!
//! The model, per function body:
//!
//! - **Length facts**: `let v = vec![x; n]` / `let v = [x; N]` record the
//!   length of `v` as the symbol `n` or the literal `N`; `let n = v.len()`
//!   records that scalar `n` equals the length of `v`.
//! - **Loop bounds**: `for i in 0..B` (also `a..B`, `(..).rev()`, and
//!   `0..=B` with a literal offset such as `n - 1`) bounds `i` by `B`
//!   exclusive within the loop body; `for (i, _) in v.iter().enumerate()`
//!   bounds `i` by `v.len()`.
//! - **Proofs**: `v[i]` is safe when `i`'s bound is at most the recorded
//!   length of `v`; `v[i + c]` needs the bound to sit `c` below the
//!   length (e.g. `for i in 0..n - 1` proves `v[i + 1]`); `v[i - c]`
//!   additionally needs the loop's literal lower bound to be at least `c`;
//!   `v[K]` with literal `K` is safe against a literal length fact.
//! - **Invalidation**: any name that is reassigned, re-`let`, passed as
//!   `&mut`, or hit by a length-changing method (`push`, `truncate`,
//!   `resize`, ...) anywhere in the body forfeits all facts — sound but
//!   conservative, which is the right trade for a prover.
//!
//! Anything the pass cannot prove stays a finding; the pass never creates
//! one.

use crate::lexer::{Tok, Token};
use crate::parser::{fn_body_spans, matching_close};

/// A symbolic length or loop bound.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Key {
    /// A constant literal length/bound.
    Lit(u64),
    /// A named scalar binding (`n` in `vec![0; n]`).
    Sym(String),
    /// The length of a named container (`v.len()` in a range bound).
    LenOf(String),
}

/// One recognized `for` loop and the bound it gives its index variable:
/// `var < key + offset` inside `body`, with `low` the literal lower bound
/// when one is known.
#[derive(Debug)]
struct LoopBound {
    var: String,
    key: Key,
    offset: i64,
    low: Option<u64>,
    body: (usize, usize),
}

/// All facts recovered from one function body.
#[derive(Debug, Default)]
struct Facts {
    /// Container name -> proven length, from `let` initializers.
    lens: Vec<(String, Key)>,
    /// Scalar known to equal a container's length (`let n = v.len()`).
    len_syms: Vec<(String, String)>,
    /// Names whose facts are void: reassigned, re-bound, `&mut`-borrowed,
    /// or mutated by a length-changing method anywhere in the body.
    dirty: Vec<String>,
    loops: Vec<LoopBound>,
}

/// Vec/String methods that can change a container's length.
const LEN_MUTATORS: [&str; 14] = [
    "push",
    "pop",
    "insert",
    "remove",
    "swap_remove",
    "clear",
    "truncate",
    "resize",
    "resize_with",
    "extend",
    "extend_from_slice",
    "append",
    "drain",
    "split_off",
];

/// Mask over `tokens`: true at every `[` that opens an index expression
/// proven in bounds. Computed per function body; nested bodies are walked
/// twice with identical results.
pub(crate) fn proven_index_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    for (lo, hi) in fn_body_spans(tokens) {
        let facts = collect_facts(tokens, lo, hi);
        mark_proven(tokens, lo, hi, &facts, &mut mask);
    }
    mask
}

fn ident_eq(tokens: &[Token], i: usize, word: &str) -> bool {
    matches!(tokens.get(i), Some(t) if matches!(&t.tok, Tok::Ident(w) if w == word))
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(w)) => Some(w.as_str()),
        _ => None,
    }
}

fn num_at(tokens: &[Token], i: usize) -> Option<u64> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Num(text)) => parse_literal(text),
        _ => None,
    }
}

/// Parse a numeric literal's value: decimal and hex forms with optional
/// `_` separators and type suffixes. Floats and exotic radixes return
/// `None` (they never appear as lengths or bounds worth proving).
fn parse_literal(text: &str) -> Option<u64> {
    let cleaned: String = text.chars().filter(|c| *c != '_').collect();
    let (radix, digits) = match cleaned.strip_prefix("0x").or(cleaned.strip_prefix("0X")) {
        Some(hex) => (16, hex),
        None => (10, cleaned.as_str()),
    };
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    let (value, suffix) = digits.split_at(end);
    if value.is_empty() || !matches!(suffix, "" | "u8" | "u16" | "u32" | "u64" | "usize" | "i32") {
        return None;
    }
    u64::from_str_radix(value, radix).ok()
}

fn mark_dirty(facts: &mut Facts, name: &str) {
    if !facts.dirty.iter().any(|d| d == name) {
        facts.dirty.push(name.to_string());
    }
}

fn collect_facts(tokens: &[Token], lo: usize, hi: usize) -> Facts {
    let mut facts = Facts::default();
    let mut let_counts: Vec<(String, usize)> = Vec::new();

    let mut i = lo;
    while i <= hi {
        match &tokens[i].tok {
            Tok::Ident(w) if w == "let" => {
                if let Some((name, eq)) = let_single_name(tokens, i, hi) {
                    match let_counts.iter_mut().find(|(n, _)| *n == name) {
                        Some((_, c)) => {
                            *c += 1;
                            mark_dirty(&mut facts, &name);
                        }
                        None => let_counts.push((name.clone(), 1)),
                    }
                    record_len_fact(tokens, hi, &name, eq + 1, &mut facts);
                }
            }
            Tok::Ident(w) if w == "for" => {
                if let Some(l) = parse_loop(tokens, i, hi) {
                    facts.loops.push(l);
                }
            }
            // `&mut name` forfeits name's facts: the borrow may resize.
            Tok::Punct('&') if ident_eq(tokens, i + 1, "mut") => {
                if let Some(name) = ident_at(tokens, i + 2) {
                    let name = name.to_string();
                    mark_dirty(&mut facts, &name);
                }
            }
            // `name.push(...)` and friends change the length.
            Tok::Ident(name) if matches!(tokens.get(i + 1), Some(t) if t.tok == Tok::Punct('.')) => {
                if let Some(m) = ident_at(tokens, i + 2) {
                    if LEN_MUTATORS.contains(&m)
                        && matches!(tokens.get(i + 3), Some(t) if t.tok == Tok::Open('('))
                    {
                        let name = name.clone();
                        mark_dirty(&mut facts, &name);
                    }
                }
            }
            _ => {}
        }
        // Plain or compound reassignment of a simple name voids its facts.
        if let Tok::Ident(name) = &tokens[i].tok {
            let prev = i.checked_sub(1).map(|p| &tokens[p].tok);
            let after_binder = matches!(prev, Some(Tok::Ident(w)) if w == "let" || w == "mut");
            let field_or_path = matches!(prev, Some(Tok::Punct('.')) | Some(Tok::Punct(':')));
            if !after_binder && !field_or_path && is_assignment_head(tokens, i + 1) {
                let name = name.clone();
                mark_dirty(&mut facts, &name);
            }
        }
        i += 1;
    }
    facts
}

/// Does an assignment operator (`=`, `+=`, `<<=`, ...) start at `at`?
fn is_assignment_head(tokens: &[Token], at: usize) -> bool {
    match tokens.get(at).map(|t| &t.tok) {
        Some(Tok::Punct('=')) => !matches!(
            tokens.get(at + 1).map(|t| &t.tok),
            Some(Tok::Punct('=')) | Some(Tok::Punct('>'))
        ),
        Some(Tok::Punct('+' | '-' | '*' | '/' | '%' | '&' | '|' | '^')) => {
            matches!(tokens.get(at + 1), Some(t) if t.tok == Tok::Punct('='))
        }
        Some(Tok::Punct(c @ ('<' | '>'))) => {
            matches!(tokens.get(at + 1), Some(t) if t.tok == Tok::Punct(*c))
                && matches!(tokens.get(at + 2), Some(t) if t.tok == Tok::Punct('='))
        }
        _ => false,
    }
}

/// `let [mut] name [: ty] = ...` with a single-identifier pattern: returns
/// the name and the index of the `=`.
fn let_single_name(tokens: &[Token], let_idx: usize, hi: usize) -> Option<(String, usize)> {
    let mut j = let_idx + 1;
    if ident_eq(tokens, j, "mut") {
        j += 1;
    }
    let name = ident_at(tokens, j)?.to_string();
    let mut k = j + 1;
    // Skip a type annotation; give up on tuple/struct patterns.
    let mut depth = 0usize;
    while k <= hi {
        match &tokens[k].tok {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => depth = depth.saturating_sub(1),
            Tok::Punct(';') if depth == 0 => return None,
            Tok::Punct('=') if depth == 0 => {
                if tokens.get(k + 1).map(|t| &t.tok) != Some(&Tok::Punct('=')) {
                    return Some((name, k));
                }
                k += 1;
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// Record a length fact from the initializer starting at `rhs`:
/// `vec![x; L]`, `[x; L]`, or `v.len()`.
fn record_len_fact(tokens: &[Token], hi: usize, name: &str, rhs: usize, facts: &mut Facts) {
    // `let n = v.len();`
    if let Some(v) = ident_at(tokens, rhs) {
        if matches!(tokens.get(rhs + 1), Some(t) if t.tok == Tok::Punct('.'))
            && ident_eq(tokens, rhs + 2, "len")
            && matches!(tokens.get(rhs + 3), Some(t) if t.tok == Tok::Open('('))
            && matches!(tokens.get(rhs + 4), Some(t) if t.tok == Tok::Close(')'))
            && matches!(tokens.get(rhs + 5), Some(t) if t.tok == Tok::Punct(';'))
        {
            facts.len_syms.push((name.to_string(), v.to_string()));
            return;
        }
    }
    // `vec![x; L]` / `[x; L]`
    let open = if ident_eq(tokens, rhs, "vec")
        && matches!(tokens.get(rhs + 1), Some(t) if t.tok == Tok::Punct('!'))
        && matches!(tokens.get(rhs + 2), Some(t) if t.tok == Tok::Open('['))
    {
        rhs + 2
    } else if matches!(tokens.get(rhs), Some(t) if t.tok == Tok::Open('[')) {
        rhs
    } else {
        return;
    };
    let Some(close) = matching_close(tokens, open, '[') else {
        return;
    };
    if close > hi || !matches!(tokens.get(close + 1), Some(t) if t.tok == Tok::Punct(';')) {
        return;
    }
    // Length expression: after the last `;` at depth 0 inside the brackets.
    let mut semi = None;
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().take(close).skip(open + 1) {
        match t.tok {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => depth = depth.saturating_sub(1),
            Tok::Punct(';') if depth == 0 => semi = Some(k),
            _ => {}
        }
    }
    let Some(semi) = semi else { return };
    if let Some(key) = single_token_key(tokens, semi + 1, close - 1) {
        facts.lens.push((name.to_string(), key));
    }
}

/// A one-token bound/length expression: a scalar name or a literal.
fn single_token_key(tokens: &[Token], from: usize, to: usize) -> Option<Key> {
    if from != to {
        return None;
    }
    match &tokens[from].tok {
        Tok::Ident(w) => Some(Key::Sym(w.clone())),
        Tok::Num(text) => parse_literal(text).map(Key::Lit),
        _ => None,
    }
}

/// Parse one `for` loop header starting at the `for` keyword.
fn parse_loop(tokens: &[Token], for_idx: usize, hi: usize) -> Option<LoopBound> {
    // Pattern tokens run to the `in` keyword at depth 0.
    let mut depth = 0usize;
    let mut in_idx = None;
    for (j, t) in tokens.iter().enumerate().take(hi + 1).skip(for_idx + 1) {
        match &t.tok {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => depth = depth.saturating_sub(1),
            Tok::Ident(w) if w == "in" && depth == 0 => {
                in_idx = Some(j);
                break;
            }
            _ => {}
        }
    }
    let in_idx = in_idx?;
    // Iterator expression runs to the body `{` at depth 0.
    let mut depth = 0usize;
    let mut open = None;
    for (j, t) in tokens.iter().enumerate().take(hi + 1).skip(in_idx + 1) {
        match &t.tok {
            Tok::Open('{') if depth == 0 => {
                open = Some(j);
                break;
            }
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => depth = depth.saturating_sub(1),
            _ => {}
        }
    }
    let open = open?;
    let close = matching_close(tokens, open, '{')?;
    let body = (open, close.min(hi));

    // Tuple pattern `(i, _)` + `v.iter().enumerate()`: i < v.len().
    if matches!(tokens.get(for_idx + 1), Some(t) if t.tok == Tok::Open('(')) {
        let var = ident_at(tokens, for_idx + 2)?.to_string();
        let v = enumerate_target(tokens, in_idx + 1, open - 1)?;
        return Some(LoopBound {
            var,
            key: Key::LenOf(v),
            offset: 0,
            low: Some(0),
            body,
        });
    }

    // Single-identifier pattern + a range bound.
    let mut p = for_idx + 1;
    if ident_eq(tokens, p, "mut") {
        p += 1;
    }
    let var = ident_at(tokens, p)?.to_string();
    if p + 1 != in_idx {
        return None;
    }
    let (key, offset, low) = parse_range(tokens, in_idx + 1, open - 1)?;
    Some(LoopBound {
        var,
        key,
        offset,
        low,
        body,
    })
}

/// `v.iter().enumerate()` / `v.iter_mut().enumerate()` over tokens
/// `[from, to]`: returns `v`.
fn enumerate_target(tokens: &[Token], from: usize, to: usize) -> Option<String> {
    let v = ident_at(tokens, from)?.to_string();
    let mut j = from + 1;
    let mut saw_enumerate = false;
    while j + 3 <= to + 1 {
        if !matches!(tokens.get(j), Some(t) if t.tok == Tok::Punct('.')) {
            return None;
        }
        let m = ident_at(tokens, j + 1)?;
        if !matches!(m, "iter" | "iter_mut" | "enumerate") {
            return None;
        }
        if !matches!(tokens.get(j + 2), Some(t) if t.tok == Tok::Open('(')) {
            return None;
        }
        if !matches!(tokens.get(j + 3), Some(t) if t.tok == Tok::Close(')')) {
            return None;
        }
        saw_enumerate = m == "enumerate";
        j += 4;
    }
    if saw_enumerate && j == to + 1 {
        Some(v)
    } else {
        None
    }
}

/// Parse a range iterator expression over `[from, to]`:
/// `LO..B`, `LO..=B`, `(..).rev()`, with `B` one of `n`, `v.len()`, a
/// literal, optionally `± literal`. Returns the exclusive bound as
/// `(key, offset, low)`.
fn parse_range(
    tokens: &[Token],
    mut from: usize,
    mut to: usize,
) -> Option<(Key, i64, Option<u64>)> {
    // Unwrap `( range )` and `( range ).rev()`.
    if matches!(tokens.get(from), Some(t) if t.tok == Tok::Open('(')) {
        let close = matching_close(tokens, from, '(')?;
        let tail_is_rev = matches!(tokens.get(close + 1), Some(t) if t.tok == Tok::Punct('.'))
            && ident_eq(tokens, close + 2, "rev")
            && matches!(tokens.get(close + 3), Some(t) if t.tok == Tok::Open('('))
            && matches!(tokens.get(close + 4), Some(t) if t.tok == Tok::Close(')'))
            && close + 4 == to;
        if close == to || tail_is_rev {
            from += 1;
            to = close - 1;
        }
    }
    // Find the `..` at depth 0.
    let mut depth = 0usize;
    let mut dots = None;
    for j in from..to {
        match tokens[j].tok {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => depth = depth.saturating_sub(1),
            Tok::Punct('.')
                if depth == 0
                    && matches!(tokens.get(j + 1), Some(t) if t.tok == Tok::Punct('.')) =>
            {
                dots = Some(j);
                break;
            }
            _ => {}
        }
    }
    let dots = dots?;
    let low = if dots == from {
        None
    } else {
        num_at(tokens, from).filter(|_| dots == from + 1)
    };
    let mut rhs = dots + 2;
    let mut offset = 0i64;
    if matches!(tokens.get(rhs), Some(t) if t.tok == Tok::Punct('=')) {
        offset += 1; // inclusive range
        rhs += 1;
    }
    if rhs > to {
        return None;
    }
    // The bound itself: `n`, `v.len()`, or a literal...
    let (key, mut after) = if let Some(v) = ident_at(tokens, rhs).map(str::to_string) {
        if matches!(tokens.get(rhs + 1), Some(t) if t.tok == Tok::Punct('.'))
            && ident_eq(tokens, rhs + 2, "len")
            && matches!(tokens.get(rhs + 3), Some(t) if t.tok == Tok::Open('('))
            && matches!(tokens.get(rhs + 4), Some(t) if t.tok == Tok::Close(')'))
        {
            (Key::LenOf(v), rhs + 5)
        } else {
            (Key::Sym(v), rhs + 1)
        }
    } else if let Some(n) = num_at(tokens, rhs) {
        (Key::Lit(n), rhs + 1)
    } else {
        return None;
    };
    // ...optionally followed by `± literal`.
    if after <= to {
        let sign = match tokens.get(after).map(|t| &t.tok) {
            Some(Tok::Punct('-')) => -1i64,
            Some(Tok::Punct('+')) => 1i64,
            _ => return None,
        };
        let c = num_at(tokens, after + 1)?;
        if after + 1 != to || c > i64::MAX as u64 {
            return None;
        }
        offset += sign * c as i64;
        after += 2;
    }
    if after != to + 1 {
        return None;
    }
    Some((key, offset, low))
}

fn is_dirty(facts: &Facts, name: &str) -> bool {
    facts.dirty.iter().any(|d| d == name)
}

/// The single recorded length fact for `name`, if exactly one exists and
/// the name is clean.
fn len_fact<'a>(facts: &'a Facts, name: &str) -> Option<&'a Key> {
    if is_dirty(facts, name) {
        return None;
    }
    let mut it = facts.lens.iter().filter(|(n, _)| n == name);
    match (it.next(), it.next()) {
        (Some((_, key)), None) => Some(key),
        _ => None,
    }
}

/// Does `var < key + offset` imply `var` is in bounds for container `v`?
fn bound_covers(facts: &Facts, key: &Key, offset: i64, v: &str) -> bool {
    if is_dirty(facts, v) {
        return false;
    }
    match key {
        Key::LenOf(u) => {
            if is_dirty(facts, u) {
                return false;
            }
            if u == v {
                return offset <= 0;
            }
            // Same-length companions: both containers carry the same fact.
            match (len_fact(facts, u), len_fact(facts, v)) {
                (Some(a), Some(b)) => a == b && offset <= 0,
                _ => false,
            }
        }
        Key::Sym(n) => {
            if is_dirty(facts, n) || offset > 0 {
                return false;
            }
            len_fact(facts, v) == Some(&Key::Sym(n.clone()))
                || facts.len_syms.iter().any(|(s, c)| s == n && c == v)
        }
        Key::Lit(b) => match len_fact(facts, v) {
            Some(Key::Lit(m)) => {
                let bound = *b as i64 + offset;
                bound >= 0 && (bound as u64) <= *m
            }
            _ => false,
        },
    }
}

/// The innermost clean loop bound for `var` covering token index `site`.
fn loop_for<'a>(facts: &'a Facts, var: &str, site: usize) -> Option<&'a LoopBound> {
    if is_dirty(facts, var) {
        return None;
    }
    facts
        .loops
        .iter()
        .filter(|l| l.var == var && l.body.0 < site && site <= l.body.1)
        .min_by_key(|l| l.body.1 - l.body.0)
}

fn mark_proven(tokens: &[Token], lo: usize, hi: usize, facts: &Facts, mask: &mut [bool]) {
    for i in lo..=hi.min(tokens.len().saturating_sub(1)) {
        if tokens[i].tok != Tok::Open('[') {
            continue;
        }
        // Only `ident [` sites are provable: the container must be named.
        let Some(v) = i.checked_sub(1).and_then(|p| ident_at(tokens, p)) else {
            continue;
        };
        let Some(close) = matching_close(tokens, i, '[') else {
            continue;
        };
        let proven = match close - i {
            // `v[i]` or `v[K]`
            2 => match &tokens[i + 1].tok {
                Tok::Ident(x) => {
                    loop_for(facts, x, i).is_some_and(|l| bound_covers(facts, &l.key, l.offset, v))
                }
                Tok::Num(text) => matches!(
                    (parse_literal(text), len_fact(facts, v)),
                    (Some(k), Some(Key::Lit(m))) if k < *m
                ),
                _ => false,
            },
            // `v[i + c]` / `v[i - c]`
            4 => {
                let x = ident_at(tokens, i + 1);
                let sign = match tokens.get(i + 2).map(|t| &t.tok) {
                    Some(Tok::Punct('+')) => Some(1i64),
                    Some(Tok::Punct('-')) => Some(-1i64),
                    _ => None,
                };
                let c = num_at(tokens, i + 3);
                match (x, sign, c) {
                    (Some(x), Some(sign), Some(c)) if c <= i64::MAX as u64 => loop_for(facts, x, i)
                        .is_some_and(|l| {
                            let shift = if sign > 0 { c as i64 } else { 0 };
                            let low_ok = sign > 0 || l.low.is_some_and(|lb| lb >= c);
                            low_ok && bound_covers(facts, &l.key, l.offset + shift, v)
                        }),
                    _ => false,
                }
            }
            _ => false,
        };
        if proven {
            mask[i] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    /// Lines of `[` tokens the pass proves safe.
    fn proven_lines(src: &str) -> Vec<u32> {
        let tokens = lex(src).tokens;
        let mask = proven_index_mask(&tokens);
        tokens
            .iter()
            .enumerate()
            .filter(|(k, _)| mask[*k])
            .map(|(_, t)| t.line)
            .collect()
    }

    #[test]
    fn loop_over_own_len_is_proven() {
        let src = "fn f(v: &[u8]) -> u32 {\n\
                   let mut acc = 0;\n\
                   for i in 0..v.len() { acc += u32::from(v[i]); }\n\
                   acc\n}";
        assert_eq!(proven_lines(src), vec![3]);
    }

    #[test]
    fn vec_len_symbol_binds_loop_to_container() {
        let src = "fn f(n: usize) {\n\
                   let mut v = vec![0u8; n];\n\
                   for i in 0..n { v[i] = 1; }\n\
                   for i in (0..n).rev() { v[i] = 2; }\n}";
        assert_eq!(proven_lines(src), vec![3, 4]);
    }

    #[test]
    fn len_binding_aliases_param_slices() {
        let src = "fn f(s: &[u8]) -> u8 {\n\
                   let n = s.len();\n\
                   let mut last = 0;\n\
                   for i in 0..n { last = s[i]; }\n\
                   last\n}";
        assert_eq!(proven_lines(src), vec![4]);
    }

    #[test]
    fn offset_bound_proves_lookahead() {
        let src = "fn f(s: &[u8]) {\n\
                   let n = s.len();\n\
                   let mut v = vec![false; n];\n\
                   for i in (0..n - 1).rev() {\n\
                   v[i] = s[i] < s[i + 1];\n\
                   }\n}";
        // v[i], s[i], and s[i + 1] are all proven.
        assert_eq!(proven_lines(src), vec![5, 5, 5]);
    }

    #[test]
    fn plain_bound_does_not_prove_lookahead() {
        let src = "fn f(s: &[u8]) -> u8 {\n\
                   let mut x = 0;\n\
                   for i in 0..s.len() { x = s[i + 1]; }\n\
                   x\n}";
        assert!(proven_lines(src).is_empty());
    }

    #[test]
    fn lower_bound_proves_lookback() {
        let src = "fn f(s: &[u8]) -> u8 {\n\
                   let mut x = 0;\n\
                   for i in 1..s.len() { x = s[i - 1]; }\n\
                   for i in 0..s.len() { x = s[i - 1]; }\n\
                   x\n}";
        assert_eq!(proven_lines(src), vec![3]);
    }

    #[test]
    fn inclusive_range_needs_the_extra_slot() {
        let src = "fn f(n: usize) {\n\
                   let mut v = vec![0u8; n];\n\
                   for i in 0..=n { v[i] = 1; }\n\
                   for i in 0..=n - 1 { v[i] = 2; }\n}";
        // `0..=n` overruns; `0..=n - 1` is exactly in bounds.
        assert_eq!(proven_lines(src), vec![4]);
    }

    #[test]
    fn enumerate_proves_same_length_companions() {
        let src = "fn f(count: &[u32]) {\n\
                   let mut starts = vec![0u32; 258];\n\
                   let table = [0u8; 258];\n\
                   let mut x = 0;\n\
                   for (c, _b) in starts.iter().enumerate() {\n\
                   starts[c] = 1;\n\
                   x = table[c];\n\
                   count[c];\n\
                   }\n}";
        // starts (self) and table (equal literal length) are proven; the
        // `count` param has no length fact.
        assert_eq!(proven_lines(src), vec![6, 7]);
    }

    #[test]
    fn literal_index_into_literal_length_is_proven() {
        let src = "fn f() -> u8 {\n\
                   let v = [0u8; 8];\n\
                   let w = vec![0u8; 8];\n\
                   v[7];\n\
                   v[8];\n\
                   w[0]\n}";
        assert_eq!(proven_lines(src), vec![4, 6]);
    }

    #[test]
    fn mutation_voids_facts() {
        let src = "fn f(n: usize) {\n\
                   let mut v = vec![0u8; n];\n\
                   v.truncate(1);\n\
                   for i in 0..n { v[i] = 1; }\n}";
        assert!(proven_lines(src).is_empty());
    }

    #[test]
    fn mut_borrow_and_reassignment_void_facts() {
        let src = "fn f(n: usize, w: Vec<u8>) {\n\
                   let mut v = vec![0u8; n];\n\
                   shrink(&mut v);\n\
                   for i in 0..n { v[i] = 1; }\n\
                   let mut u = vec![0u8; n];\n\
                   u = w;\n\
                   for i in 0..n { u[i] = 1; }\n}";
        assert!(proven_lines(src).is_empty());
    }

    #[test]
    fn reassigned_loop_var_is_not_trusted() {
        let src = "fn f(s: &[u8]) -> u8 {\n\
                   let mut x = 0;\n\
                   for i in 0..s.len() { i += 1; x = s[i]; }\n\
                   x\n}";
        assert!(proven_lines(src).is_empty());
    }

    #[test]
    fn rebound_length_symbol_is_not_trusted() {
        let src = "fn f(s: &[u8], t: &[u8]) -> u8 {\n\
                   let n = s.len();\n\
                   let n = t.len();\n\
                   let mut x = 0;\n\
                   for i in 0..n { x = s[i]; }\n\
                   x\n}";
        assert!(proven_lines(src).is_empty());
    }

    #[test]
    fn unrelated_or_outer_variables_are_not_proven() {
        let src = "fn f(s: &[u8], j: usize) -> u8 {\n\
                   let mut x = 0;\n\
                   for i in 0..s.len() { x = s[j]; }\n\
                   s[0];\n\
                   x\n}";
        assert!(proven_lines(src).is_empty());
    }

    #[test]
    fn range_over_different_container_does_not_cover() {
        let src = "fn f(a: &[u8], b: &[u8]) -> u8 {\n\
                   let mut x = 0;\n\
                   for i in 0..a.len() { x = b[i]; }\n\
                   x\n}";
        assert!(proven_lines(src).is_empty());
    }
}
