//! Workspace walker and report front-end for `primacy-lint`.
//!
//! Usage: `primacy-lint [workspace-root]` (default: current directory).
//! Scans library sources under `crates/*/src` and the root `src/`,
//! skipping binaries (`src/bin/`, `main.rs`) — the rules target library
//! code that can end up in another process's address space. Exits 0 when
//! clean, 1 when any violation survives, and prints per-rule violation
//! and allow counts either way.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use primacy_lint::is_untrusted_module;
use primacy_lint::rules::{check_source, FileReport};

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));

    let mut files = Vec::new();
    collect_sources(&root, &mut files);
    if files.is_empty() {
        eprintln!(
            "primacy-lint: no library sources found under {}",
            root.display()
        );
        return ExitCode::FAILURE;
    }
    files.sort();

    let mut total_findings = 0usize;
    let mut total_allows = 0usize;
    let mut per_rule: Vec<(&'static str, usize)> = Vec::new();
    let mut suppressed: Vec<(&'static str, usize)> = Vec::new();

    for path in &files {
        let rel = relative_unix(&root, path);
        let src = match fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("primacy-lint: cannot read {rel}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let report: FileReport = check_source(&src, is_untrusted_module(&rel));
        total_allows += report.allow_count;
        for (name, n) in &report.suppressed {
            bump(&mut suppressed, name, *n);
        }
        for f in &report.findings {
            println!("{rel}:{}: [{}] {}", f.line, f.rule.name(), f.message);
            bump(&mut per_rule, f.rule.name(), 1);
            total_findings += 1;
        }
    }

    println!(
        "primacy-lint: {} file(s) scanned, {} violation(s), {} allow directive(s)",
        files.len(),
        total_findings,
        total_allows
    );
    for (name, n) in &per_rule {
        println!("  violations[{name}] = {n}");
    }
    for (name, n) in &suppressed {
        println!("  suppressed[{name}] = {n}");
    }

    if total_findings > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn bump(counts: &mut Vec<(&'static str, usize)>, name: &str, by: usize) {
    match counts.iter_mut().find(|(n, _)| *n == name) {
        Some((_, n)) => *n += by,
        None => {
            // The rule names are the only strings that reach here; map
            // them back to 'static so the counter stays allocation-free.
            for known in ["panic", "index", "decode-result", "bad-allow"] {
                if known == name {
                    counts.push((known, by));
                    return;
                }
            }
        }
    }
}

/// Gather every library `.rs` under `crates/*/src` and the root `src/`.
fn collect_sources(root: &Path, out: &mut Vec<PathBuf>) {
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                walk_rs(&src, out);
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk_rs(&root_src, out);
    }
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // Binary sources are exempt: aborting on bad CLI input is
            // acceptable there, and they never run in-process elsewhere.
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            walk_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs")
            && path.file_name().is_some_and(|n| n != "main.rs")
        {
            out.push(path);
        }
    }
}

/// `path` relative to `root`, `/`-separated regardless of platform.
fn relative_unix(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
