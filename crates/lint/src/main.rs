//! Workspace walker and report front-end for `primacy-lint`.
//!
//! Usage:
//!
//! ```text
//! primacy-lint [workspace-root] [--json] [--baseline FILE] [--write-baseline FILE]
//! ```
//!
//! Scans every source under `crates/*/src` and the root `src/`. Library
//! sources get the full rule set; binary sources (`src/bin/`, `main.rs`)
//! get the interprocedural taint and unsafe/concurrency rules but are
//! exempt from the panic-discipline rules — aborting on bad CLI input is
//! acceptable there, and they never run in another process's address
//! space. The whole workspace is analyzed together so untrusted lengths
//! track through helper functions via the call graph.
//!
//! - `--json` prints the full diagnostics document instead of the human
//!   report;
//! - `--baseline FILE` additionally gates against a checked-in snapshot:
//!   any `(file, rule)` pair with more findings, more suppressions, or
//!   more allow directives than the snapshot fails the run, printing a
//!   per-rule delta table;
//! - `--write-baseline FILE` regenerates the snapshot from this run.
//!
//! Exits 0 when clean (and within baseline), 1 otherwise.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use primacy_lint::report::{compare, render_delta_table, FileEntry, WorkspaceReport};
use primacy_lint::rules::{FileContext, Rule};
use primacy_lint::{analyze_workspace, is_untrusted_module, requires_docs, SourceFile};

struct Options {
    root: PathBuf,
    json: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        json: false,
        baseline: None,
        write_baseline: None,
    };
    let mut args = std::env::args().skip(1);
    let mut saw_root = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--baseline" => {
                let path = args.next().ok_or("--baseline needs a file argument")?;
                opts.baseline = Some(PathBuf::from(path));
            }
            "--write-baseline" => {
                let path = args
                    .next()
                    .ok_or("--write-baseline needs a file argument")?;
                opts.write_baseline = Some(PathBuf::from(path));
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag}"));
            }
            root => {
                if saw_root {
                    return Err(format!("unexpected extra argument {root}"));
                }
                saw_root = true;
                opts.root = PathBuf::from(root);
            }
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("primacy-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut paths = Vec::new();
    collect_sources(&opts.root, &mut paths);
    if paths.is_empty() {
        eprintln!(
            "primacy-lint: no sources found under {}",
            opts.root.display()
        );
        return ExitCode::FAILURE;
    }
    paths.sort();

    let mut sources = Vec::new();
    for path in &paths {
        let rel = relative_unix(&opts.root, path);
        let src = match fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("primacy-lint: cannot read {rel}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let ctx = FileContext {
            untrusted: is_untrusted_module(&rel),
            require_docs: requires_docs(&rel),
            binary: is_binary_source(&rel),
        };
        sources.push(SourceFile { rel, src, ctx });
    }

    let reports = analyze_workspace(&sources);
    let mut ws = WorkspaceReport::default();
    for (source, report) in sources.into_iter().zip(reports) {
        ws.files.push(FileEntry {
            rel: source.rel,
            report,
        });
    }

    if let Some(path) = &opts.write_baseline {
        let text = ws.baseline().to_json();
        if let Err(e) = fs::write(path, text + "\n") {
            eprintln!("primacy-lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("primacy-lint: baseline written to {}", path.display());
    }

    if opts.json {
        println!("{}", ws.to_json().to_json());
    } else {
        print_human(&ws, paths.len());
    }

    let mut failed = ws.total_findings() > 0;

    if let Some(path) = &opts.baseline {
        match load_baseline(path) {
            Ok(baseline) => {
                let regressions = compare(&ws.baseline(), &baseline);
                if regressions.is_empty() {
                    eprintln!("primacy-lint: baseline gate passed ({})", path.display());
                } else {
                    eprintln!(
                        "primacy-lint: baseline regression ({} key(s) above {}):",
                        regressions.len(),
                        path.display()
                    );
                    eprint!("{}", render_delta_table(&regressions));
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("primacy-lint: {e}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn load_baseline(path: &Path) -> Result<primacy_bench::json::Value, String> {
    let text = fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    primacy_bench::json::parse(&text)
        .map_err(|e| format!("malformed baseline {}: {e}", path.display()))
}

fn print_human(ws: &WorkspaceReport, scanned: usize) {
    let mut per_rule: Vec<(&'static str, usize)> = Vec::new();
    let mut suppressed: Vec<(&'static str, usize)> = Vec::new();
    for entry in &ws.files {
        for (name, n) in &entry.report.suppressed {
            bump(&mut suppressed, name, *n);
        }
        for f in &entry.report.findings {
            println!(
                "{}:{}: [{}] {}",
                entry.rel,
                f.line,
                f.rule.name(),
                f.message
            );
            bump(&mut per_rule, f.rule.name(), 1);
        }
    }
    println!(
        "primacy-lint: {} file(s) scanned, {} violation(s), {} allow directive(s)",
        scanned,
        ws.total_findings(),
        ws.total_allows()
    );
    for (name, n) in &per_rule {
        println!("  violations[{name}] = {n}");
    }
    for (name, n) in &suppressed {
        println!("  suppressed[{name}] = {n}");
    }
}

fn bump(counts: &mut Vec<(&'static str, usize)>, name: &str, by: usize) {
    match counts.iter_mut().find(|(n, _)| *n == name) {
        Some((_, n)) => *n += by,
        None => {
            // The rule names are the only strings that reach here; map
            // them back to 'static so the counter stays allocation-free.
            for known in Rule::ALL_NAMES {
                if known == name {
                    counts.push((known, by));
                    return;
                }
            }
        }
    }
}

/// Is this a binary source (relaxed panic rules)? Matches `main.rs`
/// anywhere and anything under a `bin/` directory.
fn is_binary_source(rel: &str) -> bool {
    rel.ends_with("/main.rs") || rel == "main.rs" || rel.split('/').any(|c| c == "bin")
}

/// Gather every `.rs` under `crates/*/src` and the root `src/`.
fn collect_sources(root: &Path, out: &mut Vec<PathBuf>) {
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                walk_rs(&src, out);
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk_rs(&root_src, out);
    }
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// `path` relative to `root`, `/`-separated regardless of platform.
fn relative_unix(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
