//! Untrusted-length taint analysis and the arithmetic-operator scanner.
//!
//! The model is intraprocedural and deliberately small. Within each
//! function body:
//!
//! - a value returned by one of the designated untrusted-read primitives
//!   ([`SOURCES`]: the varint/field readers of the container formats) is
//!   *tainted*;
//! - taint propagates through `let` bindings and assignments whose
//!   initializer mentions a tainted name or a source call;
//! - a binding whose initializer passes through a *sanitizer* is clean:
//!   `checked_*`/`saturating_*` methods, `min`/`clamp` against a named
//!   `MAX_*` bound, or an explicit validation function ([`VALIDATORS`]);
//! - an `if <name> > ... { ... return/Err ... }` guard also cleans `name`
//!   for the code after the guard block — the idiomatic bounds check;
//! - a diagnostic fires when a tainted name reaches unchecked binary
//!   `+ - * <<` arithmetic, an allocation site (`Vec::with_capacity`,
//!   `vec![_; n]`, `reserve`, `resize`), or a slice index.
//!
//! Known limits, by design: taint does not cross function calls (callee
//! parameters start clean — each decoder validates at its own boundary),
//! does not track struct fields, and treats `for`-loop variables as clean
//! (they are bounded by their range). The arithmetic-operator scanner in
//! this module is shared with the blanket `overflow` rule.

use crate::lexer::{Tok, Token};
use crate::parser::{fn_body_spans, matching_close};
use crate::rules::{Finding, Rule};

/// Method/function names whose return value is untrusted external data:
/// the varint/header/field readers of `core/format`, `core/archive`,
/// `core/stream` and the codec decoders. Matched by name at call sites —
/// the analysis has no type information, so these names are reserved for
/// untrusted reads across the workspace.
pub const SOURCES: [&str; 7] = [
    "varint",
    "read_varint",
    "byte",
    "u16_le",
    "u32_le",
    "u64_le",
    "read_bits",
];

/// Explicit validation functions: passing a value through one launders it.
pub const VALIDATORS: [&str; 1] = ["clamped_capacity"];

/// Allocation sinks: a tainted value inside the argument list sizes memory.
const ALLOC_SINKS: [&str; 5] = [
    "with_capacity",
    "reserve",
    "reserve_exact",
    "resize",
    "resize_with",
];

/// Macros whose arguments are diagnostics, not data flow: arithmetic inside
/// them cannot corrupt an allocation and is exempt from both rules.
const ASSERT_MACROS: [&str; 6] = [
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Keywords that terminate an operand walk (they cannot be part of an
/// expression chain around a binary operator).
const STOP_KEYWORDS: [&str; 24] = [
    "return", "if", "else", "match", "while", "for", "in", "let", "mut", "ref", "move", "break",
    "continue", "where", "dyn", "impl", "fn", "pub", "use", "struct", "enum", "trait", "mod",
    "unsafe",
];

/// The binary operators both rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BinOp {
    /// `+` or `+=`
    Add,
    /// `-` (taint rule only; subtraction underflow panics too)
    Sub,
    /// `*` or `*=`
    Mul,
    /// `<<` or `<<=`
    Shl,
}

impl BinOp {
    fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Shl => "<<",
        }
    }
}

/// One detected binary-arithmetic site.
#[derive(Debug)]
pub(crate) struct OpSite {
    /// Index of the operator's (first) token.
    pub idx: usize,
    /// Which operator.
    pub op: BinOp,
    /// Index where the right operand begins (past any `=` of a compound).
    pub rhs_start: usize,
    /// Either operand is a bare numeric literal.
    pub literal_operand: bool,
}

/// An operand's contents, flattened: every identifier mentioned plus
/// whether a sanitizer appears in the chain.
#[derive(Debug, Default)]
struct Operand {
    idents: Vec<(usize, String)>,
    sanitized: bool,
}

/// Mark every token inside the argument list of an assert-family macro.
pub(crate) fn assert_arg_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    for i in 0..tokens.len() {
        let Tok::Ident(name) = &tokens[i].tok else {
            continue;
        };
        if !ASSERT_MACROS.contains(&name.as_str()) {
            continue;
        }
        if !matches!(tokens.get(i + 1), Some(t) if t.tok == Tok::Punct('!')) {
            continue;
        }
        let Some(open) = tokens.get(i + 2) else {
            continue;
        };
        let (Tok::Open(c), open_idx) = (&open.tok, i + 2) else {
            continue;
        };
        if let Some(close) = matching_close(tokens, open_idx, *c) {
            for m in mask.iter_mut().take(close + 1).skip(open_idx) {
                *m = true;
            }
        }
    }
    mask
}

fn is_stop_keyword(name: &str) -> bool {
    STOP_KEYWORDS.contains(&name)
}

/// Find the open delimiter matching the close delimiter at `close_idx`,
/// scanning backwards. Returns `close_idx` itself if unmatched.
fn backward_match(tokens: &[Token], close_idx: usize, lo: usize) -> usize {
    let close = match tokens[close_idx].tok {
        Tok::Close(c) => c,
        _ => return close_idx,
    };
    let open = match close {
        ')' => '(',
        ']' => '[',
        '}' => '{',
        _ => return close_idx,
    };
    let mut depth = 0usize;
    let mut j = close_idx;
    loop {
        match tokens[j].tok {
            Tok::Close(c) if c == close => depth += 1,
            Tok::Open(c) if c == open => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        if j == lo {
            return close_idx;
        }
        j -= 1;
    }
}

fn push_span_idents(tokens: &[Token], from: usize, to: usize, out: &mut Operand) {
    for (k, t) in tokens.iter().enumerate().take(to + 1).skip(from) {
        if let Tok::Ident(w) = &t.tok {
            if is_sanitizer_name(w) {
                out.sanitized = true;
            }
            out.idents.push((k, w.clone()));
        }
    }
}

/// Does this name, appearing in an expression chain, sanitize the chain?
/// `min`/`clamp` count only together with a `MAX_*` bound, which the
/// caller checks via [`Operand::sanitized`] pairing below.
fn is_sanitizer_name(name: &str) -> bool {
    name.starts_with("checked_")
        || name.starts_with("saturating_")
        || name.starts_with("wrapping_")
        || name.starts_with("overflowing_")
        || VALIDATORS.contains(&name)
}

/// After flattening, upgrade `min`/`clamp`-against-`MAX_*` to a sanitizer:
/// both the method and a `MAX_`-prefixed bound must appear in the chain.
fn finish_operand(mut op: Operand) -> Operand {
    let has_bound_method = op.idents.iter().any(|(_, w)| w == "min" || w == "clamp");
    let has_named_bound = op.idents.iter().any(|(_, w)| w.starts_with("MAX_"));
    if has_bound_method && has_named_bound {
        op.sanitized = true;
    }
    op
}

/// Walk backwards from `op_idx` over one postfix-expression chain.
fn left_operand(tokens: &[Token], lo: usize, op_idx: usize) -> Operand {
    let mut out = Operand::default();
    let mut j = op_idx;
    while j > lo {
        let t = &tokens[j - 1];
        match &t.tok {
            Tok::Close(_) => {
                let open = backward_match(tokens, j - 1, lo);
                push_span_idents(tokens, open, j - 1, &mut out);
                if open == j - 1 {
                    break; // unmatched; give up on this chain
                }
                j = open;
            }
            Tok::Ident(w) if is_stop_keyword(w) => break,
            Tok::Ident(w) => {
                if w != "as" {
                    if is_sanitizer_name(w) {
                        out.sanitized = true;
                    }
                    out.idents.push((j - 1, w.clone()));
                }
                j -= 1;
            }
            Tok::Num(_) | Tok::Str | Tok::Lifetime => j -= 1,
            Tok::Punct('.') | Tok::Punct('?') | Tok::Punct(':') => j -= 1,
            _ => break,
        }
    }
    finish_operand(out)
}

/// Walk forwards from `start` over one postfix-expression chain.
fn right_operand(tokens: &[Token], hi: usize, start: usize) -> Operand {
    let mut out = Operand::default();
    let mut j = start;
    // A leading `&` or unary `-`/`*` prefixes the operand.
    while j < hi
        && matches!(
            tokens[j].tok,
            Tok::Punct('&') | Tok::Punct('-') | Tok::Punct('*')
        )
    {
        j += 1;
    }
    while j < hi {
        match &tokens[j].tok {
            Tok::Open('{') => break, // don't enter blocks
            Tok::Open(c) => {
                let close = matching_close(tokens, j, *c).unwrap_or(j);
                push_span_idents(tokens, j, close, &mut out);
                if close == j {
                    break;
                }
                j = close + 1;
            }
            Tok::Ident(w) if is_stop_keyword(w) => break,
            Tok::Ident(w) => {
                if w != "as" {
                    if is_sanitizer_name(w) {
                        out.sanitized = true;
                    }
                    out.idents.push((j, w.clone()));
                }
                j += 1;
            }
            Tok::Num(_) | Tok::Str | Tok::Lifetime => j += 1,
            Tok::Punct('.') | Tok::Punct('?') | Tok::Punct(':') => j += 1,
            _ => break,
        }
    }
    finish_operand(out)
}

/// Is the token at `i` a plausible end of a left operand (so an operator
/// after it is binary rather than unary/prefix)?
fn ends_expression(tokens: &[Token], i: usize) -> bool {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(w)) => !is_stop_keyword(w) && w != "as",
        Some(Tok::Num(_)) | Some(Tok::Str) => true,
        // `}` is a statement boundary, not an operand: `*p = 0;` after a
        // block close is a deref assignment, not multiplication.
        Some(Tok::Close(')')) | Some(Tok::Close(']')) => true,
        Some(Tok::Punct('?')) => true,
        _ => false,
    }
}

fn uppercase_ident_at(tokens: &[Token], i: usize) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok),
        Some(Tok::Ident(w)) if w.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
}

/// Scan `span` for binary `+ - * <<` sites (including compound `+=` etc.).
pub(crate) fn binary_ops(tokens: &[Token], lo: usize, hi: usize) -> Vec<OpSite> {
    let mut out = Vec::new();
    let mut k = lo;
    while k < hi {
        let Tok::Punct(p) = tokens[k].tok else {
            k += 1;
            continue;
        };
        let prev_ok = k > lo && ends_expression(tokens, k - 1);
        let next_tok = tokens.get(k + 1).map(|t| &t.tok);
        match p {
            '+' | '*' if prev_ok => {
                // Type-position `+` (trait bounds: `dyn Codec + Send`,
                // `impl Iterator + '_`) and `+ MAX_*` const bounds are
                // exempt: flagged arithmetic must involve runtime values
                // on both sides.
                if p == '+'
                    && (uppercase_ident_at(tokens, k - 1)
                        || uppercase_ident_at(tokens, k + 1)
                        || matches!(next_tok, Some(Tok::Lifetime)))
                {
                    k += 1;
                    continue;
                }
                let rhs_start = if next_tok == Some(&Tok::Punct('=')) {
                    k + 2
                } else {
                    k + 1
                };
                let literal = matches!(tokens.get(k - 1).map(|t| &t.tok), Some(Tok::Num(_)))
                    || matches!(tokens.get(rhs_start).map(|t| &t.tok), Some(Tok::Num(_)));
                out.push(OpSite {
                    idx: k,
                    op: if p == '+' { BinOp::Add } else { BinOp::Mul },
                    rhs_start,
                    literal_operand: literal,
                });
                k = rhs_start;
            }
            '-' if prev_ok && next_tok != Some(&Tok::Punct('>')) => {
                let rhs_start = if next_tok == Some(&Tok::Punct('=')) {
                    k + 2
                } else {
                    k + 1
                };
                let literal = matches!(tokens.get(k - 1).map(|t| &t.tok), Some(Tok::Num(_)))
                    || matches!(tokens.get(rhs_start).map(|t| &t.tok), Some(Tok::Num(_)));
                out.push(OpSite {
                    idx: k,
                    op: BinOp::Sub,
                    rhs_start,
                    literal_operand: literal,
                });
                k = rhs_start;
            }
            '<' if prev_ok && next_tok == Some(&Tok::Punct('<')) => {
                let rhs_start = if tokens.get(k + 2).map(|t| &t.tok) == Some(&Tok::Punct('=')) {
                    k + 3
                } else {
                    k + 2
                };
                let literal = matches!(tokens.get(k - 1).map(|t| &t.tok), Some(Tok::Num(_)))
                    || matches!(tokens.get(rhs_start).map(|t| &t.tok), Some(Tok::Num(_)));
                out.push(OpSite {
                    idx: k,
                    op: BinOp::Shl,
                    rhs_start,
                    literal_operand: literal,
                });
                k = rhs_start;
            }
            _ => k += 1,
        }
    }
    out
}

/// A taint-state change for one name at one point in the token stream.
#[derive(Debug)]
struct Event {
    idx: usize,
    name: String,
    tainted: bool,
}

/// The per-function taint engine state.
struct Engine<'a> {
    tokens: &'a [Token],
    lo: usize,
    hi: usize,
    events: Vec<Event>,
    /// Extra source names beyond [`SOURCES`]: helper functions whose
    /// return value the interprocedural summary pass proved tainted.
    extra: &'a [String],
}

impl<'a> Engine<'a> {
    fn is_source_name(&self, name: &str) -> bool {
        SOURCES.contains(&name) || self.extra.iter().any(|s| s == name)
    }

    fn tainted_at(&self, name: &str, idx: usize) -> bool {
        self.events
            .iter()
            .rev()
            .find(|e| e.idx <= idx && e.name == name)
            .is_some_and(|e| e.tainted)
    }

    /// Does `span` mention a source call (`name(` with `name` in SOURCES
    /// or the interprocedurally derived source set)?
    fn span_has_source(&self, from: usize, to: usize) -> bool {
        (from..=to.min(self.hi.saturating_sub(1))).any(|k| {
            matches!(&self.tokens[k].tok, Tok::Ident(w)
                if self.is_source_name(w)
                    && matches!(self.tokens.get(k + 1), Some(t) if t.tok == Tok::Open('(')))
        })
    }

    /// Is the expression span tainted (mentions a source call or a name
    /// tainted at that point) and not sanitized?
    fn span_taint(&self, from: usize, to: usize) -> bool {
        let mut op = Operand::default();
        push_span_idents(
            self.tokens,
            from,
            to.min(self.hi.saturating_sub(1)),
            &mut op,
        );
        let op = finish_operand(op);
        if op.sanitized {
            return false;
        }
        self.span_has_source(from, to)
            || op
                .idents
                .iter()
                .any(|(k, w)| self.tainted_at(w, *k) && !length_projection(self.tokens, *k))
    }

    /// Collect binding/assignment/guard events in statement order.
    fn collect_events(&mut self) {
        let mut k = self.lo;
        while k < self.hi {
            match &self.tokens[k].tok {
                Tok::Ident(w) if w == "let" => {
                    k = self.let_binding(k);
                }
                Tok::Ident(w) if w == "if" => {
                    self.guard(k);
                    k += 1;
                }
                Tok::Ident(name) if !is_stop_keyword(name) => {
                    // `name = expr;` / `name += expr;` reassignment. Field
                    // or deref assignments (`s.f = x`, `*p = x`) are not
                    // tracked — only simple names are.
                    let prev = k
                        .checked_sub(1)
                        .filter(|p| *p >= self.lo)
                        .map(|p| &self.tokens[p].tok);
                    let simple = !matches!(
                        prev,
                        Some(Tok::Punct('.')) | Some(Tok::Punct(':')) | Some(Tok::Punct('*'))
                    );
                    if simple {
                        if let Some((rhs_start, compound)) = assignment_rhs(self.tokens, k + 1) {
                            let end = statement_end(self.tokens, rhs_start, self.hi);
                            let rhs_tainted = self.span_taint(rhs_start, end);
                            let old = self.tainted_at(name, k);
                            let tainted = if compound {
                                old || rhs_tainted
                            } else {
                                rhs_tainted
                            };
                            self.events.push(Event {
                                idx: end,
                                name: name.clone(),
                                tainted,
                            });
                            k = end;
                            continue;
                        }
                    }
                    k += 1;
                }
                _ => k += 1,
            }
        }
        self.events.sort_by_key(|e| e.idx);
    }

    /// Handle `let [mut] <pattern> [: ty] = <init>;` starting at `let_idx`.
    /// Returns the index to resume scanning from.
    fn let_binding(&mut self, let_idx: usize) -> usize {
        // Find the binding `=` at delimiter depth 0, stopping at `;`.
        let mut depth = 0usize;
        let mut eq = None;
        let mut j = let_idx + 1;
        while j < self.hi {
            match self.tokens[j].tok {
                Tok::Open(_) => depth += 1,
                Tok::Close(_) => depth = depth.saturating_sub(1),
                Tok::Punct(';') if depth == 0 => break,
                Tok::Punct('=') if depth == 0 => {
                    // `==`, `<=`, `>=`, `!=` never appear before the
                    // binding `=` of a let; a lone `=` is it.
                    if self.tokens.get(j + 1).map(|t| &t.tok) != Some(&Tok::Punct('=')) {
                        eq = Some(j);
                        break;
                    }
                    j += 1;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(eq) = eq else {
            return let_idx + 1;
        };
        // Names: lowercase idents in the pattern, up to a top-level `:`
        // type annotation; skip `mut`/`ref` and path segments (uppercase).
        let mut names = Vec::new();
        let mut depth = 0usize;
        for t in &self.tokens[let_idx + 1..eq] {
            match &t.tok {
                Tok::Open(_) => depth += 1,
                Tok::Close(_) => depth = depth.saturating_sub(1),
                Tok::Punct(':') if depth == 0 => break,
                Tok::Ident(w)
                    if w != "mut"
                        && w != "ref"
                        && w.chars()
                            .next()
                            .is_some_and(|c| c.is_ascii_lowercase() || c == '_') =>
                {
                    names.push(w.clone());
                }
                _ => {}
            }
        }
        let end = statement_end(self.tokens, eq + 1, self.hi);
        let tainted = self.span_taint(eq + 1, end);
        for name in names {
            self.events.push(Event {
                idx: end,
                name,
                tainted,
            });
        }
        end
    }

    /// Recognize `if <name> >(=) ... { ... return/Err ... }` bounds guards
    /// and clean `name` after the block: rejecting the out-of-range side
    /// is the idiomatic validation the sanitizer list can't express.
    fn guard(&mut self, if_idx: usize) {
        // Condition runs to the block `{` at depth 0.
        let mut depth = 0usize;
        let mut block_open = None;
        for j in if_idx + 1..self.hi {
            match self.tokens[j].tok {
                Tok::Open('{') if depth == 0 => {
                    block_open = Some(j);
                    break;
                }
                Tok::Open(_) => depth += 1,
                Tok::Close(_) => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        let Some(open) = block_open else { return };
        let Some(close) = matching_close(self.tokens, open, '{') else {
            return;
        };
        // The block must reject: a `return` or an `Err` inside.
        let rejects = (open..=close)
            .any(|j| matches!(&self.tokens[j].tok, Tok::Ident(w) if w == "return" || w == "Err"));
        if !rejects {
            return;
        }
        // An exactness guard compares a `checked_*` projection of a name
        // against a real length: `if n.checked_mul(k) != Some(buf.len())
        // { return Err(...) }` pins `n` to the materialized data, so the
        // rejecting branch validates it as tightly as a range check.
        let condition_mentions_len =
            (if_idx + 1..open).any(|j| matches!(&self.tokens[j].tok, Tok::Ident(w) if w == "len"));
        // Guarded names: `name >` / `name >=`, or `name.checked_*`
        // compared against a length, inside the condition.
        for j in if_idx + 1..open {
            let Tok::Ident(name) = &self.tokens[j].tok else {
                continue;
            };
            let range_guard = self.tokens.get(j + 1).map(|t| &t.tok) == Some(&Tok::Punct('>'))
                && self.tokens.get(j + 2).map(|t| &t.tok) != Some(&Tok::Punct('>'));
            let exactness_guard = condition_mentions_len
                && self.tokens.get(j + 1).map(|t| &t.tok) == Some(&Tok::Punct('.'))
                && matches!(
                    self.tokens.get(j + 2).map(|t| &t.tok),
                    Some(Tok::Ident(w)) if w.starts_with("checked_")
                );
            if range_guard || exactness_guard {
                self.events.push(Event {
                    idx: close,
                    name: name.clone(),
                    tainted: false,
                });
            }
        }
    }
}

/// `tokens[at..]` starts an assignment tail? Returns the index where the
/// right-hand side begins and whether it is a compound assignment.
fn assignment_rhs(tokens: &[Token], at: usize) -> Option<(usize, bool)> {
    match tokens.get(at).map(|t| &t.tok) {
        Some(Tok::Punct('=')) => {
            // Exclude `==` and `=>`.
            match tokens.get(at + 1).map(|t| &t.tok) {
                Some(Tok::Punct('=')) | Some(Tok::Punct('>')) => None,
                _ => Some((at + 1, false)),
            }
        }
        Some(Tok::Punct('+' | '-' | '*' | '/' | '%' | '&' | '|' | '^')) => {
            if tokens.get(at + 1).map(|t| &t.tok) == Some(&Tok::Punct('=')) {
                Some((at + 2, true))
            } else {
                None
            }
        }
        Some(Tok::Punct('<')) | Some(Tok::Punct('>')) => {
            // `<<=` / `>>=`
            let same = tokens.get(at).map(|t| &t.tok) == tokens.get(at + 1).map(|t| &t.tok);
            if same && tokens.get(at + 2).map(|t| &t.tok) == Some(&Tok::Punct('=')) {
                Some((at + 3, true))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// End of the statement starting at `from`: the `;` at delimiter depth 0,
/// or `hi` if none (expression tail).
pub(crate) fn statement_end(tokens: &[Token], from: usize, hi: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().take(hi).skip(from) {
        match t.tok {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => depth = depth.saturating_sub(1),
            Tok::Punct(';') if depth == 0 => return j,
            _ => {}
        }
    }
    hi
}

/// Intraprocedural taint facts for one function body, reusable by the
/// interprocedural summary pass: build with [`body_taint`], then query
/// expression spans (call arguments, return expressions).
pub(crate) struct BodyTaint<'a> {
    engine: Engine<'a>,
}

/// Run the taint engine over one function body span `[lo, hi)`.
/// `extra_sources` extends [`SOURCES`] with derived source names;
/// `pre_tainted` seeds parameter names as tainted at entry (used to
/// compute per-parameter summaries).
pub(crate) fn body_taint<'a>(
    tokens: &'a [Token],
    lo: usize,
    hi: usize,
    extra_sources: &'a [String],
    pre_tainted: &[String],
) -> BodyTaint<'a> {
    let mut engine = Engine {
        tokens,
        lo,
        hi,
        events: Vec::new(),
        extra: extra_sources,
    };
    for name in pre_tainted {
        engine.events.push(Event {
            idx: lo,
            name: name.clone(),
            tainted: true,
        });
    }
    engine.collect_events();
    BodyTaint { engine }
}

impl BodyTaint<'_> {
    /// Is the expression span `[from, to]` tainted at that point?
    pub(crate) fn span_tainted(&self, from: usize, to: usize) -> bool {
        self.engine.span_taint(from, to)
    }

    /// Does any allocation sink in the body take a tainted size?
    pub(crate) fn allocates_tainted(&self) -> bool {
        let mut out = Vec::new();
        scan_alloc_sinks(&self.engine, &[], &mut out);
        !out.is_empty()
    }
}

/// Run the taint pass over every function body; append findings.
#[cfg(test)]
pub(crate) fn scan_taint(tokens: &[Token], test_mask: &[bool], out: &mut Vec<Finding>) {
    scan_taint_with(tokens, test_mask, &[], out);
}

/// [`scan_taint`] with interprocedurally derived extra source names.
pub(crate) fn scan_taint_with(
    tokens: &[Token],
    test_mask: &[bool],
    extra_sources: &[String],
    out: &mut Vec<Finding>,
) {
    let assert_mask = assert_arg_mask(tokens);
    let mut found: Vec<(u32, String)> = Vec::new();
    for (lo, hi) in fn_body_spans(tokens) {
        let mut engine = Engine {
            tokens,
            lo,
            hi: hi + 1,
            events: Vec::new(),
            extra: extra_sources,
        };
        engine.collect_events();
        scan_arith_sinks(&engine, test_mask, &assert_mask, &mut found);
        scan_alloc_sinks(&engine, test_mask, &mut found);
        scan_index_sinks(&engine, test_mask, &mut found);
    }
    // Nested fn bodies are walked twice (once inside their parent's span);
    // dedup identical findings.
    found.sort();
    found.dedup();
    for (line, message) in found {
        out.push(Finding {
            line,
            rule: Rule::Taint,
            message,
        });
    }
}

fn first_tainted(engine: &Engine<'_>, op: &Operand) -> Option<String> {
    if op.sanitized {
        return None;
    }
    op.idents
        .iter()
        .find(|(k, w)| engine.tainted_at(w, *k) && !length_projection(engine.tokens, *k))
        .map(|(_, w)| w.clone())
}

/// Is the identifier at `k` only consumed as a length projection
/// (`x.len()` / `x.is_empty()`)? The length of already-materialized data
/// is ground truth, not an attacker claim, so the projection stays clean
/// even when `x` itself carries taint.
fn length_projection(tokens: &[Token], k: usize) -> bool {
    matches!(tokens.get(k + 1).map(|t| &t.tok), Some(Tok::Punct('.')))
        && matches!(
            tokens.get(k + 2).map(|t| &t.tok),
            Some(Tok::Ident(w)) if w == "len" || w == "is_empty"
        )
        && matches!(tokens.get(k + 3).map(|t| &t.tok), Some(Tok::Open('(')))
}

fn scan_arith_sinks(
    engine: &Engine<'_>,
    test_mask: &[bool],
    assert_mask: &[bool],
    out: &mut Vec<(u32, String)>,
) {
    for site in binary_ops(engine.tokens, engine.lo, engine.hi) {
        if test_mask.get(site.idx).copied().unwrap_or(false)
            || assert_mask.get(site.idx).copied().unwrap_or(false)
        {
            continue;
        }
        let left = left_operand(engine.tokens, engine.lo, site.idx);
        let right = right_operand(engine.tokens, engine.hi, site.rhs_start);
        let hit = first_tainted(engine, &left).or_else(|| first_tainted(engine, &right));
        if let Some(name) = hit {
            out.push((
                engine.tokens[site.idx].line,
                format!(
                    "untrusted value `{name}` reaches unchecked `{}`",
                    site.op.symbol()
                ),
            ));
        }
    }
}

fn scan_alloc_sinks(engine: &Engine<'_>, test_mask: &[bool], out: &mut Vec<(u32, String)>) {
    let tokens = engine.tokens;
    for i in engine.lo..engine.hi {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Tok::Ident(name) = &tokens[i].tok else {
            continue;
        };
        // `vec![elem; n]` sized-macro form.
        let (open_idx, open_char) = if name == "vec"
            && matches!(tokens.get(i + 1), Some(t) if t.tok == Tok::Punct('!'))
            && matches!(tokens.get(i + 2), Some(t) if t.tok == Tok::Open('['))
        {
            (i + 2, '[')
        } else if ALLOC_SINKS.contains(&name.as_str())
            && matches!(tokens.get(i + 1), Some(t) if t.tok == Tok::Open('('))
        {
            (i + 1, '(')
        } else {
            continue;
        };
        let Some(close) = matching_close(tokens, open_idx, open_char) else {
            continue;
        };
        if open_idx + 1 > close.saturating_sub(1) {
            continue; // empty argument list
        }
        // In `vec![elem; n]` only `n` sizes the allocation: scan from
        // past the depth-0 `;`, not the element expression.
        let mut arg_start = open_idx + 1;
        if open_char == '[' {
            let mut depth = 0usize;
            for (k, t) in tokens.iter().enumerate().take(close).skip(open_idx + 1) {
                match t.tok {
                    Tok::Open(_) => depth += 1,
                    Tok::Close(_) => depth = depth.saturating_sub(1),
                    Tok::Punct(';') if depth == 0 => arg_start = k + 1,
                    _ => {}
                }
            }
            if arg_start > close - 1 {
                continue;
            }
        }
        let mut op = Operand::default();
        push_span_idents(tokens, arg_start, close - 1, &mut op);
        let op = finish_operand(op);
        if op.span_has_source_call(engine) {
            out.push((
                tokens[i].line,
                format!("untrusted value sizes allocation via `{name}`"),
            ));
            continue;
        }
        if let Some(tainted) = first_tainted(engine, &op) {
            out.push((
                tokens[i].line,
                format!("untrusted value `{tainted}` sizes allocation via `{name}`"),
            ));
        }
    }
}

impl Operand {
    /// Does the flattened operand include a direct source call?
    fn span_has_source_call(&self, engine: &Engine<'_>) -> bool {
        self.idents.iter().any(|(k, w)| {
            engine.is_source_name(w)
                && matches!(engine.tokens.get(k + 1), Some(t) if t.tok == Tok::Open('('))
        })
    }
}

fn scan_index_sinks(engine: &Engine<'_>, test_mask: &[bool], out: &mut Vec<(u32, String)>) {
    let tokens = engine.tokens;
    for i in engine.lo..engine.hi {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        if tokens[i].tok != Tok::Open('[') {
            continue;
        }
        // Same "is this an index expression" shape as the index rule.
        let indexes = match i.checked_sub(1).and_then(|p| tokens.get(p)).map(|t| &t.tok) {
            Some(Tok::Ident(name)) => !is_stop_keyword(name) && name != "as",
            Some(Tok::Close(')')) | Some(Tok::Close(']')) => true,
            _ => false,
        };
        if !indexes {
            continue;
        }
        let Some(close) = matching_close(tokens, i, '[') else {
            continue;
        };
        if i + 1 > close.saturating_sub(1) {
            continue;
        }
        let mut op = Operand::default();
        push_span_idents(tokens, i + 1, close - 1, &mut op);
        let op = finish_operand(op);
        if let Some(tainted) = first_tainted(engine, &op) {
            out.push((
                tokens[i].line,
                format!("untrusted value `{tainted}` used as slice index"),
            ));
        }
    }
}

/// The blanket `overflow` rule: unchecked `+ * <<` (and compound forms)
/// inside function bodies of untrusted-input modules, unless one operand
/// is a numeric literal or the site sits in test/assert code. `-` is left
/// to the taint rule: subtraction against a checked upper bound is the
/// dominant safe idiom and flagging it everywhere would be noise.
pub(crate) fn scan_overflow(tokens: &[Token], test_mask: &[bool], out: &mut Vec<Finding>) {
    let assert_mask = assert_arg_mask(tokens);
    let mut found: Vec<(u32, String)> = Vec::new();
    for (lo, hi) in fn_body_spans(tokens) {
        for site in binary_ops(tokens, lo, hi + 1) {
            if site.op == BinOp::Sub || site.literal_operand {
                continue;
            }
            if test_mask.get(site.idx).copied().unwrap_or(false)
                || assert_mask.get(site.idx).copied().unwrap_or(false)
            {
                continue;
            }
            found.push((
                tokens[site.idx].line,
                format!(
                    "unchecked `{}` in untrusted-input module (use checked_/saturating_ math)",
                    site.op.symbol()
                ),
            ));
        }
    }
    found.sort();
    found.dedup();
    for (line, message) in found {
        out.push(Finding {
            line,
            rule: Rule::Overflow,
            message,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn taint_findings(src: &str) -> Vec<(u32, String)> {
        let lexed = lex(src);
        let mask = vec![false; lexed.tokens.len()];
        let mut out = Vec::new();
        scan_taint(&lexed.tokens, &mask, &mut out);
        out.into_iter().map(|f| (f.line, f.message)).collect()
    }

    fn overflow_lines(src: &str) -> Vec<u32> {
        let lexed = lex(src);
        let mask = vec![false; lexed.tokens.len()];
        let mut out = Vec::new();
        scan_overflow(&lexed.tokens, &mask, &mut out);
        out.into_iter().map(|f| f.line).collect()
    }

    #[test]
    fn source_binding_taints_and_arith_fires() {
        let src = "fn f(r: &mut Reader) -> Result<usize> {\n\
                   let n = r.varint()? as usize;\n\
                   let m = n * es;\n\
                   Ok(m)\n}";
        let found = taint_findings(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, 3);
        assert!(found[0].1.contains('n'), "{}", found[0].1);
    }

    #[test]
    fn sanitized_bindings_are_clean() {
        let src = "fn f(r: &mut Reader) -> usize {\n\
                   let n = (r.varint() as usize).min(MAX_ELEMENTS);\n\
                   let a = n * es;\n\
                   let m = r.varint() as usize;\n\
                   let b = m.checked_mul(es).unwrap_or(0);\n\
                   let c = m.saturating_add(1);\n\
                   a + b + c\n}";
        assert!(taint_findings(src).is_empty());
    }

    #[test]
    fn min_without_named_bound_does_not_sanitize() {
        let src = "fn f(r: &mut Reader) -> usize {\n\
                   let n = (r.varint() as usize).min(other);\n\
                   n * es\n}";
        assert_eq!(taint_findings(src).len(), 1);
    }

    #[test]
    fn length_of_tainted_buffer_is_ground_truth() {
        // `buf` is tainted (source call in the initializer), but `.len()`
        // of materialized data is a real byte count, not a claim: sizing
        // an allocation or arithmetic with it is clean.
        let src = "fn f(r: &mut Reader) -> Result<Vec<u8>> {\n\
                   let buf = r.varint_block()?;\n\
                   let out = vec![0u8; buf.len()];\n\
                   let pairs = buf.len() * 2;\n\
                   Ok(out)\n}";
        let lexed = lex(src);
        let mask = vec![false; lexed.tokens.len()];
        let mut out = Vec::new();
        let extra = ["varint_block".to_string()];
        scan_taint_with(&lexed.tokens, &mask, &extra, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn exactness_guard_validates_checked_projection() {
        let src = "fn f(r: &mut Reader, data: &[u8]) -> Result<Vec<u8>> {\n\
                   let n = r.varint()? as usize;\n\
                   if n.checked_mul(4) != Some(data.len()) {\n\
                   return Err(PrimacyError::Truncated);\n\
                   }\n\
                   Ok(vec![0u8; n * 4])\n}";
        assert!(taint_findings(src).is_empty());
    }

    #[test]
    fn checked_overflow_test_alone_does_not_validate() {
        // Rejecting only on overflow proves nothing about magnitude: the
        // guard must compare against a materialized length to clean `n`.
        let src = "fn f(r: &mut Reader) -> Result<Vec<u8>> {\n\
                   let n = r.varint()? as usize;\n\
                   if n.checked_mul(4).is_none() {\n\
                   return Err(PrimacyError::Truncated);\n\
                   }\n\
                   Ok(Vec::with_capacity(n))\n}";
        assert_eq!(taint_findings(src).len(), 1);
    }

    #[test]
    fn taint_propagates_through_bindings() {
        let src = "fn f(r: &mut Reader) -> usize {\n\
                   let n = r.varint() as usize;\n\
                   let doubled = n;\n\
                   doubled * es\n}";
        assert_eq!(taint_findings(src).len(), 1);
    }

    #[test]
    fn rebinding_clears_taint() {
        let src = "fn f(r: &mut Reader) -> usize {\n\
                   let n = r.varint() as usize;\n\
                   let n = n.min(MAX_ELEMENTS);\n\
                   n * es\n}";
        assert!(taint_findings(src).is_empty());
    }

    #[test]
    fn guard_with_return_clears_taint() {
        let src = "fn f(r: &mut Reader) -> Result<usize> {\n\
                   let k = r.varint()? as usize;\n\
                   if k > MAX_TABLE {\n\
                   return Err(Error::Corrupt);\n\
                   }\n\
                   Ok(k * es)\n}";
        assert!(taint_findings(src).is_empty());
    }

    #[test]
    fn guard_without_reject_does_not_clear() {
        let src = "fn f(r: &mut Reader) -> usize {\n\
                   let k = r.varint() as usize;\n\
                   if k > 10 { log(k); }\n\
                   k * es\n}";
        assert_eq!(taint_findings(src).len(), 1);
    }

    #[test]
    fn allocation_sinks_fire() {
        let src = "fn f(r: &mut Reader) -> Vec<u8> {\n\
                   let n = r.varint() as usize;\n\
                   let mut v = Vec::with_capacity(n);\n\
                   v.resize(n, 0);\n\
                   let w = vec![0u8; n];\n\
                   v\n}";
        let found = taint_findings(src);
        assert_eq!(found.len(), 3, "{found:?}");
    }

    #[test]
    fn validated_allocation_is_clean() {
        let src = "fn f(r: &mut Reader) -> Vec<u8> {\n\
                   let n = r.varint() as u64;\n\
                   Vec::with_capacity(clamped_capacity(n))\n}";
        assert!(taint_findings(src).is_empty());
    }

    #[test]
    fn tainted_index_fires() {
        let src = "fn f(r: &mut Reader, buf: &[u8]) -> u8 {\n\
                   let i = r.varint() as usize;\n\
                   buf[i]\n}";
        let found = taint_findings(src);
        assert_eq!(found.len(), 1);
        assert!(found[0].1.contains("slice index"));
    }

    #[test]
    fn compound_assignment_taints_target() {
        let src = "fn f(r: &mut Reader) -> usize {\n\
                   let mut pos = 0usize;\n\
                   let used = r.varint() as usize;\n\
                   pos += used;\n\
                   pos\n}";
        let found = taint_findings(src);
        // `pos += used` itself is the tainted-arithmetic sink.
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, 4);
    }

    #[test]
    fn checked_compound_fix_is_clean() {
        let src = "fn f(r: &mut Reader) -> Result<usize> {\n\
                   let mut pos = 0usize;\n\
                   let used = r.varint()? as usize;\n\
                   pos = pos.checked_add(used).ok_or(Error::Truncated)?;\n\
                   Ok(pos)\n}";
        assert!(taint_findings(src).is_empty());
    }

    #[test]
    fn for_loop_variables_are_not_tainted() {
        let src = "fn f(r: &mut Reader) -> usize {\n\
                   let n = (r.varint() as usize).min(MAX_ELEMENTS);\n\
                   let mut acc = 0;\n\
                   for i in 0..n { acc = i + acc; }\n\
                   acc\n}";
        assert!(taint_findings(src).is_empty());
    }

    #[test]
    fn tuple_bindings_taint_all_names() {
        let src = "fn f(input: &[u8]) -> usize {\n\
                   let (v, used) = read_varint(input);\n\
                   used + base\n}";
        assert_eq!(taint_findings(src).len(), 1);
    }

    #[test]
    fn asserts_are_exempt_from_taint_arith() {
        let src = "fn f(r: &mut Reader) {\n\
                   let n = r.varint() as usize;\n\
                   debug_assert!(n + 1 > n);\n}";
        assert!(taint_findings(src).is_empty());
    }

    #[test]
    fn overflow_flags_nonliteral_ops_only() {
        let src = "fn f(a: usize, b: usize) -> usize {\n\
                   let x = a + b;\n\
                   let y = a + 1;\n\
                   let z = 1 << b;\n\
                   let w = a << b;\n\
                   let v = a * b;\n\
                   x + y + z + w + v\n}";
        // a+b, a<<b, a*b, and the two sums on the return line.
        let lines = overflow_lines(src);
        assert!(lines.contains(&2));
        assert!(!lines.contains(&3));
        assert!(!lines.contains(&4));
        assert!(lines.contains(&5));
        assert!(lines.contains(&6));
    }

    #[test]
    fn overflow_ignores_sub_traits_and_asserts() {
        let src = "fn f(a: usize, b: usize) -> usize {\n\
                   let d: Box<dyn Codec + Send> = make();\n\
                   assert!(a * b < 100);\n\
                   a - b\n}";
        assert!(overflow_lines(src).is_empty());
    }

    #[test]
    fn overflow_skips_checked_method_chains() {
        let src = "fn f(a: usize, b: usize) -> Option<usize> {\n\
                   a.checked_mul(b)\n}";
        assert!(overflow_lines(src).is_empty());
    }
}
