//! Per-function summaries and the interprocedural fixed point.
//!
//! For every function in the [`crate::callgraph::CallGraph`] this pass
//! computes:
//!
//! - **`taints_return`** — the function's return value carries untrusted
//!   data: some `return` expression or the body's tail expression is
//!   tainted under the intraprocedural engine. Functions whose return is
//!   tainted become *derived sources*: their names join
//!   [`crate::taint::SOURCES`] on the next round, so taint flows through
//!   helpers (a varint wrapper taints its callers' bindings).
//! - **`alloc_params`** — parameter indices that, when tainted, size an
//!   allocation inside the function or transitively inside a callee.
//!   Call sites passing tainted arguments to such parameters are
//!   interprocedural allocation findings.
//! - **`can_panic`** — the function contains a panicking construct or
//!   (transitively) calls one that does. Recorded for reporting and
//!   tests; the `panic` rule stays site-based.
//!
//! Name collisions (two `fn decode` in different modules) are merged with
//! AND for source/alloc facts — a name only becomes a derived source or
//! an alloc sink if *every* function with that name has the property, so
//! an unrelated same-name function cannot manufacture findings — and OR
//! for `can_panic`, which is informational and errs toward caution.
//!
//! The fixed point iterates until summaries stop changing (all facts grow
//! monotonically; a round cap guards against pathological inputs).

use crate::callgraph::{call_sites, CallGraph, CallSite};
use crate::lexer::{Tok, Token};
use crate::taint::{body_taint, statement_end};

/// What one function does with untrusted data and panics.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FnSummary {
    /// The return value is tainted by a source read.
    pub taints_return: bool,
    /// Parameters that size an allocation (directly or via a callee).
    pub alloc_params: Vec<usize>,
    /// The function can panic, transitively.
    pub can_panic: bool,
}

/// Summaries for every graph node plus the merged derived-source names.
#[derive(Debug, Default)]
pub struct Summaries {
    /// Parallel to `graph.fns`.
    pub per_fn: Vec<FnSummary>,
    /// Function names whose return is tainted in every same-name
    /// definition: the extra source set for the final lint pass.
    pub derived_sources: Vec<String>,
}

/// Per-parameter analysis cap: functions with more parameters than this
/// get summaries for the first few only (none in this workspace exceed
/// it on hot decode paths).
const MAX_PARAMS: usize = 6;

/// Fixed-point round cap.
const MAX_ROUNDS: usize = 10;

/// Compute summaries for every function in the graph. `files[i]` must be
/// the token stream of the file [`crate::callgraph::FnNode::file`]
/// indexes.
pub fn summarize(graph: &CallGraph, files: &[&[Token]]) -> Summaries {
    let sites: Vec<Vec<CallSite>> = graph
        .fns
        .iter()
        .map(|f| call_sites(files[f.file], f.body.0, f.body.1))
        .collect();

    let mut per_fn: Vec<FnSummary> = graph
        .fns
        .iter()
        .map(|f| FnSummary {
            can_panic: body_panics(files[f.file], f.body.0, f.body.1),
            ..FnSummary::default()
        })
        .collect();

    for _ in 0..MAX_ROUNDS {
        let derived = merged_sources(graph, &per_fn);
        let mut changed = false;

        for (i, f) in graph.fns.iter().enumerate() {
            let tokens = files[f.file];
            // Return taint under the current derived source set.
            if f.has_return && !per_fn[i].taints_return {
                let bt = body_taint(tokens, f.body.0, f.body.1 + 1, &derived, &[]);
                if return_spans(tokens, f.body.0, f.body.1)
                    .into_iter()
                    .any(|(lo, hi)| bt.span_tainted(lo, hi))
                {
                    per_fn[i].taints_return = true;
                    changed = true;
                }
            }
            // Per-parameter allocation reachability.
            for (p, pname) in f.params.iter().enumerate().take(MAX_PARAMS) {
                if pname == "_" || per_fn[i].alloc_params.contains(&p) {
                    continue;
                }
                let pre = [pname.clone()];
                let bt = body_taint(tokens, f.body.0, f.body.1 + 1, &derived, &pre);
                let hits = bt.allocates_tainted()
                    || sites[i].iter().any(|site| {
                        site.args.iter().enumerate().any(|(j, (lo, hi))| {
                            bt.span_tainted(*lo, *hi)
                                && callee_alloc_param(graph, &per_fn, &site.callee, j)
                        })
                    });
                if hits {
                    per_fn[i].alloc_params.push(p);
                    changed = true;
                }
            }
            // Transitive panic reachability.
            if !per_fn[i].can_panic {
                let reaches = sites[i].iter().any(|site| {
                    graph
                        .resolve(&site.callee)
                        .iter()
                        .any(|&t| per_fn[t].can_panic)
                });
                if reaches {
                    per_fn[i].can_panic = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let derived_sources = merged_sources(graph, &per_fn);
    Summaries {
        per_fn,
        derived_sources,
    }
}

/// Does every definition of `name` treat parameter `param` as an
/// allocation size? Unresolved names never do.
pub fn callee_alloc_param(
    graph: &CallGraph,
    per_fn: &[FnSummary],
    name: &str,
    param: usize,
) -> bool {
    let targets = graph.resolve(name);
    !targets.is_empty()
        && targets
            .iter()
            .all(|&t| per_fn[t].alloc_params.contains(&param))
}

/// Names where *every* same-name definition taints its return.
fn merged_sources(graph: &CallGraph, per_fn: &[FnSummary]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if !per_fn[i].taints_return || names.contains(&f.name) {
            continue;
        }
        let all = graph
            .resolve(&f.name)
            .iter()
            .all(|&t| per_fn[t].taints_return);
        if all {
            names.push(f.name.clone());
        }
    }
    names.sort();
    names
}

/// Token spans of every `return <expr>` plus the body's tail expression
/// (after the last depth-0 `;`), i.e. everything that flows to the
/// function's return value.
fn return_spans(tokens: &[Token], lo: usize, hi: usize) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut depth = 0usize;
    let mut last_semi = lo;
    for k in lo + 1..hi {
        match &tokens[k].tok {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => depth = depth.saturating_sub(1),
            Tok::Punct(';') if depth == 0 => last_semi = k,
            Tok::Ident(w) if w == "return" => {
                let end = statement_end(tokens, k + 1, hi);
                if end > k + 1 {
                    spans.push((k + 1, end - 1));
                }
            }
            _ => {}
        }
    }
    if last_semi + 1 < hi {
        spans.push((last_semi + 1, hi - 1));
    }
    spans
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Direct panicking construct anywhere in the body span (test gates are
/// irrelevant here — summaries describe the function itself).
fn body_panics(tokens: &[Token], lo: usize, hi: usize) -> bool {
    (lo..=hi).any(|i| {
        let Tok::Ident(name) = &tokens[i].tok else {
            return false;
        };
        let next = tokens.get(i + 1).map(|t| &t.tok);
        if PANIC_MACROS.contains(&name.as_str()) && next == Some(&Tok::Punct('!')) {
            return true;
        }
        PANIC_METHODS.contains(&name.as_str())
            && i > lo
            && tokens[i - 1].tok == Tok::Punct('.')
            && next == Some(&Tok::Open('('))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn setup(srcs: &[&str]) -> (CallGraph, Summaries) {
        let lexed: Vec<_> = srcs.iter().map(|s| lex(s)).collect();
        let tokens: Vec<&[Token]> = lexed.iter().map(|l| &l.tokens[..]).collect();
        let graph = CallGraph::build(&tokens);
        let summaries = summarize(&graph, &tokens);
        (graph, summaries)
    }

    fn by_name<'a>(graph: &CallGraph, s: &'a Summaries, name: &str) -> &'a FnSummary {
        let idx = graph.resolve(name)[0];
        &s.per_fn[idx]
    }

    #[test]
    fn source_wrappers_become_derived_sources_transitively() {
        // read_count wraps a primitive source; header_len wraps the
        // wrapper — two hops, both must end up derived.
        let (graph, s) = setup(&[
            "fn read_count(r: &mut Reader) -> usize { r.varint() as usize }\n\
              fn header_len(r: &mut Reader) -> usize { let n = read_count(r); n }\n\
              fn version(r: &mut Reader) -> u8 { 1 }",
        ]);
        assert!(by_name(&graph, &s, "read_count").taints_return);
        assert!(by_name(&graph, &s, "header_len").taints_return);
        assert!(!by_name(&graph, &s, "version").taints_return);
        assert_eq!(s.derived_sources, vec!["header_len", "read_count"]);
    }

    #[test]
    fn sanitized_wrapper_is_not_a_source() {
        let (graph, s) = setup(&[
            "fn capped(r: &mut Reader) -> usize { (r.varint() as usize).min(MAX_ELEMENTS) }",
        ]);
        assert!(!by_name(&graph, &s, "capped").taints_return);
        assert!(s.derived_sources.is_empty());
    }

    #[test]
    fn explicit_return_statements_count() {
        let (graph, s) = setup(&["fn f(r: &mut Reader) -> usize {\n\
              if ready { return r.varint() as usize; }\n\
              0\n}"]);
        assert!(by_name(&graph, &s, "f").taints_return);
    }

    #[test]
    fn alloc_params_found_directly_and_through_callees() {
        let (graph, s) = setup(&["fn make(n: usize, tag: u8) -> Vec<u8> { vec![tag; n] }\n\
              fn build(count: usize) -> Vec<u8> { make(count, 0) }\n\
              fn label(tag: u8) -> u8 { tag }"]);
        assert_eq!(by_name(&graph, &s, "make").alloc_params, vec![0]);
        // `count` flows into make's alloc param — one hop.
        assert_eq!(by_name(&graph, &s, "build").alloc_params, vec![0]);
        assert!(by_name(&graph, &s, "label").alloc_params.is_empty());
    }

    #[test]
    fn name_collisions_merge_with_and() {
        // Two `helper`s: only one taints its return, so the name is NOT
        // a derived source and callers stay clean.
        let (_, s) = setup(&[
            "fn helper(r: &mut Reader) -> usize { r.varint() as usize }",
            "fn helper(x: usize) -> usize { x.min(MAX_LEN) }\n\
             fn caller(r: &mut Reader) -> usize { let n = helper(4); n }",
        ]);
        assert!(s.derived_sources.is_empty());
    }

    #[test]
    fn can_panic_propagates_over_calls() {
        let (graph, s) = setup(&["fn boom(x: Option<u8>) -> u8 { x.unwrap() }\n\
              fn outer(x: Option<u8>) -> u8 { boom(x) }\n\
              fn safe(x: Option<u8>) -> u8 { x.unwrap_or(0) }"]);
        assert!(by_name(&graph, &s, "boom").can_panic);
        assert!(by_name(&graph, &s, "outer").can_panic);
        assert!(!by_name(&graph, &s, "safe").can_panic);
    }

    #[test]
    fn cross_file_graph_links_params_to_sources() {
        // File A defines the wrapper; file B passes its result to an
        // allocator defined back in file A.
        let (graph, s) = setup(&[
            "pub fn read_len(r: &mut Reader) -> usize { r.varint() as usize }\n\
             pub fn alloc_table(n: usize) -> Vec<u32> { Vec::with_capacity(n) }",
            "pub fn load(r: &mut Reader) -> Vec<u32> {\n\
             let n = read_len(r);\n\
             alloc_table(n)\n}",
        ]);
        assert!(by_name(&graph, &s, "read_len").taints_return);
        assert_eq!(by_name(&graph, &s, "alloc_table").alloc_params, vec![0]);
        assert!(callee_alloc_param(&graph, &s.per_fn, "alloc_table", 0));
        // And load's own return (the Vec) is not tainted data.
        assert!(s.derived_sources.contains(&"read_len".to_string()));
    }
}
