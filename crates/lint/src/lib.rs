//! `primacy-lint` — the workspace's in-tree panic-safety static analyzer.
//!
//! PRIMACY's containers cross staging I/O nodes, so every decode path must
//! degrade to `Err`, never abort the process. Since PR 1 made the
//! workspace hermetic and zero-dependency, that invariant is enforced with
//! this hand-rolled analyzer rather than external tooling: [`lexer`]
//! tokenizes Rust source just deeply enough to be trustworthy around
//! strings, comments, and lifetimes; [`parser`] recovers a shallow item
//! tree and function-body spans; [`callgraph`] links every `fn` in the
//! workspace by name with per-argument call-site spans; [`summary`] runs
//! the interprocedural fixed point (derived taint sources, allocation
//! parameters, transitive panic); [`taint`] is the per-body engine the
//! fixed point and the rules share; and [`rules`] scans for the project
//! rules (`panic`, `index`, `decode-result`, `taint`, `overflow`,
//! `safety-comment`, `pub-doc`, `unsafe-boundary`,
//! `concurrency-discipline`) while honoring counted
//! `// lint: allow(...)` escape hatches. [`report`] renders JSON
//! diagnostics and gates against the checked-in `lint-baseline.json`
//! under per-file per-rule keys, rendering a delta table on regression.
//!
//! [`analyze_workspace`] is the whole-workspace entry point: build the
//! call graph, iterate summaries to a fixed point, fold cross-function
//! allocation findings into each file's report, then run the per-file
//! rules with the derived source set.
//!
//! Run it with `cargo run -p primacy-lint` from the workspace root; the
//! binary exits non-zero if any violation survives or any count exceeds
//! the baseline. DESIGN.md ("Static analysis") documents the rules, the
//! taint model, the suppression burn-down playbook, and the allow
//! grammar.

pub(crate) mod bounds;
pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod summary;
pub mod taint;

/// Source files (workspace-relative, `/`-separated) and directories whose
/// contents decode *untrusted* external bytes: the `index` rule is
/// enforced there in addition to the workspace-wide rules. Entries ending
/// in `/` match whole directories.
pub const UNTRUSTED_MODULES: [&str; 8] = [
    "crates/codecs/src/deflate/decode.rs",
    "crates/codecs/src/lzr/",
    "crates/codecs/src/bwt/",
    "crates/codecs/src/fpz/",
    "crates/core/src/format.rs",
    "crates/core/src/archive.rs",
    "crates/core/src/stream.rs",
    "crates/serve/src/protocol.rs",
];

/// Is the file at `rel_path` (workspace-relative, `/`-separated) inside a
/// designated untrusted-input module?
pub fn is_untrusted_module(rel_path: &str) -> bool {
    UNTRUSTED_MODULES
        .iter()
        .any(|m| rel_path == *m || (m.ends_with('/') && rel_path.starts_with(m)))
}

/// Crates whose `pub` items must carry doc comments (the `pub-doc` rule):
/// the two crates forming the published API surface.
pub const DOC_CRATES: [&str; 2] = ["crates/core/src/", "crates/codecs/src/"];

/// Does the file at `rel_path` require documented `pub` items?
pub fn requires_docs(rel_path: &str) -> bool {
    DOC_CRATES.iter().any(|c| rel_path.starts_with(c))
}

/// One workspace source file queued for analysis.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative `/`-separated path.
    pub rel: String,
    /// File contents.
    pub src: String,
    /// Per-file rule configuration.
    pub ctx: rules::FileContext,
}

/// Analyze the whole workspace interprocedurally: build the call graph,
/// run the summary fixed point, then check each file with the derived
/// source set and cross-function allocation findings folded in. Returns
/// one report per input file, in order.
pub fn analyze_workspace(files: &[SourceFile]) -> Vec<rules::FileReport> {
    let lexed: Vec<lexer::LexOutput> = files.iter().map(|f| lexer::lex(&f.src)).collect();
    let tokens: Vec<&[lexer::Token]> = lexed.iter().map(|l| &l.tokens[..]).collect();
    let graph = callgraph::CallGraph::build(&tokens);
    let summaries = summary::summarize(&graph, &tokens);

    // Cross-function allocation findings: a tainted argument flowing
    // into a callee parameter that sizes an allocation.
    let mut extra: Vec<Vec<rules::Finding>> = files.iter().map(|_| Vec::new()).collect();
    for node in &graph.fns {
        let toks = tokens[node.file];
        let test_mask = rules::test_region_mask_for(toks);
        let bt = taint::body_taint(
            toks,
            node.body.0,
            node.body.1 + 1,
            &summaries.derived_sources,
            &[],
        );
        for site in callgraph::call_sites(toks, node.body.0, node.body.1) {
            if test_mask.get(site.idx).copied().unwrap_or(false) {
                continue;
            }
            for (j, (lo, hi)) in site.args.iter().enumerate() {
                if summary::callee_alloc_param(&graph, &summaries.per_fn, &site.callee, j)
                    && bt.span_tainted(*lo, *hi)
                {
                    extra[node.file].push(rules::Finding {
                        line: site.line,
                        rule: rules::Rule::Taint,
                        message: format!(
                            "untrusted value sizes an allocation inside callee `{}`",
                            site.callee
                        ),
                    });
                }
            }
        }
    }
    // Nested fn bodies are visited under their parents too: dedup.
    for per_file in &mut extra {
        per_file.sort_by(|a, b| (a.line, &a.message).cmp(&(b.line, &b.message)));
        per_file.dedup_by(|a, b| a.line == b.line && a.message == b.message);
    }

    files
        .iter()
        .zip(extra)
        .map(|(f, extra)| rules::check_file_with(&f.src, f.ctx, &summaries.derived_sources, extra))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrusted_matching_covers_files_and_directories() {
        assert!(is_untrusted_module("crates/codecs/src/deflate/decode.rs"));
        assert!(is_untrusted_module("crates/codecs/src/lzr/mod.rs"));
        assert!(is_untrusted_module("crates/codecs/src/fpz/range.rs"));
        assert!(is_untrusted_module("crates/core/src/archive.rs"));
        // The serve wire decoder is an attacker-facing surface.
        assert!(is_untrusted_module("crates/serve/src/protocol.rs"));
        assert!(!is_untrusted_module("crates/codecs/src/deflate/encode.rs"));
        assert!(!is_untrusted_module("crates/codecs/src/checksum.rs"));
        assert!(!is_untrusted_module("crates/core/src/pipeline.rs"));
        assert!(!is_untrusted_module("crates/serve/src/server.rs"));
    }

    #[test]
    fn doc_requirement_covers_api_crates_only() {
        assert!(requires_docs("crates/core/src/pipeline.rs"));
        assert!(requires_docs("crates/codecs/src/fpz/mod.rs"));
        assert!(!requires_docs("crates/bench/src/json.rs"));
        assert!(!requires_docs("crates/lint/src/rules.rs"));
    }
}
