//! `primacy-lint` — the workspace's in-tree panic-safety static analyzer.
//!
//! PRIMACY's containers cross staging I/O nodes, so every decode path must
//! degrade to `Err`, never abort the process. Since PR 1 made the
//! workspace hermetic and zero-dependency, that invariant is enforced with
//! this hand-rolled analyzer rather than external tooling: [`lexer`]
//! tokenizes Rust source just deeply enough to be trustworthy around
//! strings, comments, and lifetimes; [`parser`] recovers a shallow item
//! tree and function-body spans; [`taint`] runs an intraprocedural
//! untrusted-length taint pass over those spans; and [`rules`] scans for
//! the project rules (`panic`, `index`, `decode-result`, `taint`,
//! `overflow`, `safety-comment`, `pub-doc`) while honoring counted
//! `// lint: allow(...)` escape hatches. [`report`] renders JSON
//! diagnostics and gates against the checked-in `lint-baseline.json`.
//!
//! Run it with `cargo run -p primacy-lint` from the workspace root; the
//! binary exits non-zero if any violation survives or any count exceeds
//! the baseline. DESIGN.md ("Static analysis") documents the rules, the
//! taint model, and the allow grammar.

pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod taint;

/// Source files (workspace-relative, `/`-separated) and directories whose
/// contents decode *untrusted* external bytes: the `index` rule is
/// enforced there in addition to the workspace-wide rules. Entries ending
/// in `/` match whole directories.
pub const UNTRUSTED_MODULES: [&str; 7] = [
    "crates/codecs/src/deflate/decode.rs",
    "crates/codecs/src/lzr/",
    "crates/codecs/src/bwt/",
    "crates/codecs/src/fpz/",
    "crates/core/src/format.rs",
    "crates/core/src/archive.rs",
    "crates/core/src/stream.rs",
];

/// Is the file at `rel_path` (workspace-relative, `/`-separated) inside a
/// designated untrusted-input module?
pub fn is_untrusted_module(rel_path: &str) -> bool {
    UNTRUSTED_MODULES
        .iter()
        .any(|m| rel_path == *m || (m.ends_with('/') && rel_path.starts_with(m)))
}

/// Crates whose `pub` items must carry doc comments (the `pub-doc` rule):
/// the two crates forming the published API surface.
pub const DOC_CRATES: [&str; 2] = ["crates/core/src/", "crates/codecs/src/"];

/// Does the file at `rel_path` require documented `pub` items?
pub fn requires_docs(rel_path: &str) -> bool {
    DOC_CRATES.iter().any(|c| rel_path.starts_with(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrusted_matching_covers_files_and_directories() {
        assert!(is_untrusted_module("crates/codecs/src/deflate/decode.rs"));
        assert!(is_untrusted_module("crates/codecs/src/lzr/mod.rs"));
        assert!(is_untrusted_module("crates/codecs/src/fpz/range.rs"));
        assert!(is_untrusted_module("crates/core/src/archive.rs"));
        assert!(!is_untrusted_module("crates/codecs/src/deflate/encode.rs"));
        assert!(!is_untrusted_module("crates/codecs/src/checksum.rs"));
        assert!(!is_untrusted_module("crates/core/src/pipeline.rs"));
    }

    #[test]
    fn doc_requirement_covers_api_crates_only() {
        assert!(requires_docs("crates/core/src/pipeline.rs"));
        assert!(requires_docs("crates/codecs/src/fpz/mod.rs"));
        assert!(!requires_docs("crates/bench/src/json.rs"));
        assert!(!requires_docs("crates/lint/src/rules.rs"));
    }
}
