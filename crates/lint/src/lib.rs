//! `primacy-lint` — the workspace's in-tree panic-safety static analyzer.
//!
//! PRIMACY's containers cross staging I/O nodes, so every decode path must
//! degrade to `Err`, never abort the process. Since PR 1 made the
//! workspace hermetic and zero-dependency, that invariant is enforced with
//! this hand-rolled analyzer rather than external tooling: [`lexer`]
//! tokenizes Rust source just deeply enough to be trustworthy around
//! strings, comments, and lifetimes, and [`rules`] scans the token stream
//! for the three project rules (`panic`, `index`, `decode-result`) while
//! honoring counted `// lint: allow(...)` escape hatches.
//!
//! Run it with `cargo run -p primacy-lint` from the workspace root; the
//! binary exits non-zero if any violation survives. DESIGN.md ("Panic
//! policy & lint rules") documents the rules and the allow grammar.

pub mod lexer;
pub mod rules;

/// Source files (workspace-relative, `/`-separated) and directories whose
/// contents decode *untrusted* external bytes: the `index` rule is
/// enforced there in addition to the workspace-wide rules. Entries ending
/// in `/` match whole directories.
pub const UNTRUSTED_MODULES: [&str; 7] = [
    "crates/codecs/src/deflate/decode.rs",
    "crates/codecs/src/lzr/",
    "crates/codecs/src/bwt/",
    "crates/codecs/src/fpz/",
    "crates/core/src/format.rs",
    "crates/core/src/archive.rs",
    "crates/core/src/stream.rs",
];

/// Is the file at `rel_path` (workspace-relative, `/`-separated) inside a
/// designated untrusted-input module?
pub fn is_untrusted_module(rel_path: &str) -> bool {
    UNTRUSTED_MODULES
        .iter()
        .any(|m| rel_path == *m || (m.ends_with('/') && rel_path.starts_with(m)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrusted_matching_covers_files_and_directories() {
        assert!(is_untrusted_module("crates/codecs/src/deflate/decode.rs"));
        assert!(is_untrusted_module("crates/codecs/src/lzr/mod.rs"));
        assert!(is_untrusted_module("crates/codecs/src/fpz/range.rs"));
        assert!(is_untrusted_module("crates/core/src/archive.rs"));
        assert!(!is_untrusted_module("crates/codecs/src/deflate/encode.rs"));
        assert!(!is_untrusted_module("crates/codecs/src/checksum.rs"));
        assert!(!is_untrusted_module("crates/core/src/pipeline.rs"));
    }
}
