//! Fixture-corpus conformance: every rule has a firing fixture and a clean
//! fixture under `tests/fixtures/`, and the diagnostics are pinned down to
//! exact `(file, line, rule)` tuples. A change to a rule that shifts any
//! diagnostic must update this table deliberately.
//!
//! The `xtaint_*` pair exercises the interprocedural pass end to end: the
//! producer file defines the source wrappers and the allocating helper,
//! the consumer file triggers the cross-function finding two hops from
//! the primitive read.

use primacy_lint::callgraph::{call_sites, CallGraph};
use primacy_lint::lexer::{lex, Token};
use primacy_lint::rules::{check_file, FileContext, FileReport};
use primacy_lint::{analyze_workspace, SourceFile};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// Run one fixture and return its diagnostics as `(line, rule-name)`.
fn diagnostics(name: &str, ctx: FileContext) -> Vec<(u32, &'static str)> {
    let report = check_file(&fixture(name), ctx);
    assert_eq!(
        report.allow_count, 0,
        "{name}: fixtures must not carry allow directives"
    );
    let mut out: Vec<(u32, &'static str)> = report
        .findings
        .iter()
        .map(|f| (f.line, f.rule.name()))
        .collect();
    out.sort();
    out
}

const TRUSTED: FileContext = FileContext {
    untrusted: false,
    require_docs: false,
    binary: false,
};
const UNTRUSTED: FileContext = FileContext {
    untrusted: true,
    require_docs: false,
    binary: false,
};
const API: FileContext = FileContext {
    untrusted: false,
    require_docs: true,
    binary: false,
};
// Binary context: the panic-family rules are off, so the concurrency
// fixtures pin concurrency-discipline diagnostics alone (the real
// `.lock().unwrap()` site would otherwise also fire `panic`).
const BIN: FileContext = FileContext {
    untrusted: false,
    require_docs: false,
    binary: true,
};

#[test]
fn taint_fixture_fires_at_exact_sites() {
    assert_eq!(
        diagnostics("taint_fire.rs", TRUSTED),
        vec![(6, "taint"), (7, "taint"), (8, "taint")]
    );
}

#[test]
fn taint_fixture_clean_when_sanitized() {
    assert_eq!(diagnostics("taint_clean.rs", TRUSTED), vec![]);
}

#[test]
fn overflow_fixture_fires_at_exact_sites() {
    assert_eq!(
        diagnostics("overflow_fire.rs", UNTRUSTED),
        vec![(5, "overflow"), (6, "overflow"), (7, "overflow")]
    );
}

#[test]
fn overflow_fixture_clean_with_checked_forms() {
    assert_eq!(diagnostics("overflow_clean.rs", UNTRUSTED), vec![]);
}

#[test]
fn safety_fixture_fires_without_comment() {
    assert_eq!(
        diagnostics("safety_fire.rs", TRUSTED),
        vec![(5, "safety-comment")]
    );
}

#[test]
fn safety_fixture_clean_with_comment() {
    assert_eq!(diagnostics("safety_clean.rs", TRUSTED), vec![]);
}

#[test]
fn pubdoc_fixture_fires_on_undocumented_items() {
    assert_eq!(
        diagnostics("pubdoc_fire.rs", API),
        vec![(4, "pub-doc"), (8, "pub-doc")]
    );
}

#[test]
fn pubdoc_fixture_clean_when_documented() {
    assert_eq!(diagnostics("pubdoc_clean.rs", API), vec![]);
}

#[test]
fn unsafe_fixture_fires_at_exact_sites() {
    assert_eq!(
        diagnostics("unsafe_fire.rs", TRUSTED),
        vec![(5, "unsafe-boundary"), (12, "unsafe-boundary")]
    );
}

#[test]
fn unsafe_fixture_clean_with_detection_and_fallback() {
    assert_eq!(diagnostics("unsafe_clean.rs", TRUSTED), vec![]);
}

#[test]
fn concurrency_fixture_fires_at_exact_sites() {
    assert_eq!(
        diagnostics("concurrency_fire.rs", BIN),
        vec![
            (6, "concurrency-discipline"),
            (7, "concurrency-discipline"),
            (9, "concurrency-discipline"),
            (9, "concurrency-discipline"),
        ]
    );
}

#[test]
fn concurrency_fixture_clean_with_discipline() {
    assert_eq!(diagnostics("concurrency_clean.rs", BIN), vec![]);
}

/// Findings of a workspace-analyzed report as `(line, rule-name)`.
fn report_pairs(report: &FileReport) -> Vec<(u32, &'static str)> {
    let mut out: Vec<(u32, &'static str)> = report
        .findings
        .iter()
        .map(|f| (f.line, f.rule.name()))
        .collect();
    out.sort();
    out
}

#[test]
fn cross_function_taint_fires_two_hops_from_the_read() {
    let files = [
        SourceFile {
            rel: "crates/x/src/reader.rs".to_string(),
            src: fixture("xtaint_reader.rs"),
            ctx: TRUSTED,
        },
        SourceFile {
            rel: "crates/x/src/driver.rs".to_string(),
            src: fixture("xtaint_driver.rs"),
            ctx: TRUSTED,
        },
    ];
    let reports = analyze_workspace(&files);
    // Producer file: wrappers and the allocator itself stay clean.
    assert_eq!(report_pairs(&reports[0]), vec![]);
    // Consumer file: `table_for(n)` with the two-hop tainted length fires;
    // the `.min(MAX_FRAME)`-capped call does not.
    assert_eq!(report_pairs(&reports[1]), vec![(8, "taint")]);
    assert!(
        reports[1].findings[0].message.contains("table_for"),
        "finding must name the allocating callee: {}",
        reports[1].findings[0].message
    );
}

#[test]
fn call_graph_links_the_multi_file_fixture() {
    let reader = fixture("xtaint_reader.rs");
    let driver = fixture("xtaint_driver.rs");
    let lexed = [lex(&reader), lex(&driver)];
    let tokens: Vec<&[Token]> = lexed.iter().map(|l| &l.tokens[..]).collect();
    let graph = CallGraph::build(&tokens);

    let names: Vec<(&str, usize)> = graph
        .fns
        .iter()
        .map(|f| (f.name.as_str(), f.file))
        .collect();
    assert_eq!(
        names,
        vec![
            ("frame_len", 0),
            ("header_len", 0),
            ("table_for", 0),
            ("load", 1),
            ("load_capped", 1),
        ]
    );

    // `load` in the driver file calls into the reader file, one argument
    // per site, and every callee resolves across the file boundary.
    let load = graph
        .fns
        .iter()
        .find(|f| f.name == "load")
        .expect("load in graph");
    let sites = call_sites(tokens[1], load.body.0, load.body.1);
    let callees: Vec<&str> = sites.iter().map(|s| s.callee.as_str()).collect();
    assert_eq!(callees, vec!["header_len", "table_for"]);
    for site in &sites {
        assert_eq!(site.args.len(), 1);
        let targets = graph.resolve(&site.callee);
        assert!(!targets.is_empty(), "{} unresolved", site.callee);
        assert!(targets.iter().all(|&i| graph.fns[i].file == 0));
    }
}

#[test]
fn firing_fixtures_are_suppressible() {
    // The directive machinery must cover the new rules: a whole-file allow
    // silences each firing fixture and is accounted as suppression.
    for (file, ctx, rule) in [
        ("taint_fire.rs", TRUSTED, "taint"),
        ("overflow_fire.rs", UNTRUSTED, "overflow"),
        ("safety_fire.rs", TRUSTED, "safety-comment"),
        ("pubdoc_fire.rs", API, "pub-doc"),
        ("unsafe_fire.rs", TRUSTED, "unsafe-boundary"),
        ("concurrency_fire.rs", BIN, "concurrency-discipline"),
    ] {
        let src = format!(
            "// lint: allow-file({rule}) -- fixture test\n{}",
            fixture(file)
        );
        let report = check_file(&src, ctx);
        assert!(report.findings.is_empty(), "{file}: {:?}", report.findings);
        let suppressed: usize = report
            .suppressed
            .iter()
            .filter(|(name, _)| *name == rule)
            .map(|(_, n)| *n)
            .sum();
        assert!(suppressed > 0, "{file}: nothing suppressed");
    }
}
