//! Fixture-corpus conformance: every rule has a firing fixture and a clean
//! fixture under `tests/fixtures/`, and the diagnostics are pinned down to
//! exact `(file, line, rule)` tuples. A change to a rule that shifts any
//! diagnostic must update this table deliberately.

use primacy_lint::rules::{check_file, FileContext};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// Run one fixture and return its diagnostics as `(line, rule-name)`.
fn diagnostics(name: &str, ctx: FileContext) -> Vec<(u32, &'static str)> {
    let report = check_file(&fixture(name), ctx);
    assert_eq!(
        report.allow_count, 0,
        "{name}: fixtures must not carry allow directives"
    );
    let mut out: Vec<(u32, &'static str)> = report
        .findings
        .iter()
        .map(|f| (f.line, f.rule.name()))
        .collect();
    out.sort();
    out
}

const TRUSTED: FileContext = FileContext {
    untrusted: false,
    require_docs: false,
};
const UNTRUSTED: FileContext = FileContext {
    untrusted: true,
    require_docs: false,
};
const API: FileContext = FileContext {
    untrusted: false,
    require_docs: true,
};

#[test]
fn taint_fixture_fires_at_exact_sites() {
    assert_eq!(
        diagnostics("taint_fire.rs", TRUSTED),
        vec![(6, "taint"), (7, "taint"), (8, "taint")]
    );
}

#[test]
fn taint_fixture_clean_when_sanitized() {
    assert_eq!(diagnostics("taint_clean.rs", TRUSTED), vec![]);
}

#[test]
fn overflow_fixture_fires_at_exact_sites() {
    assert_eq!(
        diagnostics("overflow_fire.rs", UNTRUSTED),
        vec![(5, "overflow"), (6, "overflow"), (7, "overflow")]
    );
}

#[test]
fn overflow_fixture_clean_with_checked_forms() {
    assert_eq!(diagnostics("overflow_clean.rs", UNTRUSTED), vec![]);
}

#[test]
fn safety_fixture_fires_without_comment() {
    assert_eq!(
        diagnostics("safety_fire.rs", TRUSTED),
        vec![(5, "safety-comment")]
    );
}

#[test]
fn safety_fixture_clean_with_comment() {
    assert_eq!(diagnostics("safety_clean.rs", TRUSTED), vec![]);
}

#[test]
fn pubdoc_fixture_fires_on_undocumented_items() {
    assert_eq!(
        diagnostics("pubdoc_fire.rs", API),
        vec![(4, "pub-doc"), (8, "pub-doc")]
    );
}

#[test]
fn pubdoc_fixture_clean_when_documented() {
    assert_eq!(diagnostics("pubdoc_clean.rs", API), vec![]);
}

#[test]
fn firing_fixtures_are_suppressible() {
    // The directive machinery must cover the new rules: a whole-file allow
    // silences each firing fixture and is accounted as suppression.
    for (file, ctx, rule) in [
        ("taint_fire.rs", TRUSTED, "taint"),
        ("overflow_fire.rs", UNTRUSTED, "overflow"),
        ("safety_fire.rs", TRUSTED, "safety-comment"),
        ("pubdoc_fire.rs", API, "pub-doc"),
    ] {
        let src = format!(
            "// lint: allow-file({rule}) -- fixture test\n{}",
            fixture(file)
        );
        let report = check_file(&src, ctx);
        assert!(report.findings.is_empty(), "{file}: {:?}", report.findings);
        let suppressed: usize = report
            .suppressed
            .iter()
            .filter(|(name, _)| *name == rule)
            .map(|(_, n)| *n)
            .sum();
        assert!(suppressed > 0, "{file}: nothing suppressed");
    }
}
