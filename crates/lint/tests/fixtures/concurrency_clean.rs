//! Clean fixture for `concurrency-discipline`: a justified relaxed load,
//! poison recovery on the mutex, and a closure-local accumulator instead
//! of a shared `&mut` capture.

pub fn drain(flag: &AtomicBool, total: &Mutex<u64>) {
    // ORDERING: a monotonic on/off flag; the mutex below synchronizes.
    let live = flag.load(Ordering::Relaxed);
    let mut sum = total.lock().unwrap_or_else(|e| e.into_inner());
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut local = 0u64;
            if live {
                local += 1;
            }
            *sum += local;
        });
    });
}
