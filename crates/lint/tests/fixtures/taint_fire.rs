//! Fixture: the taint rule must fire on every commented line. This file is
//! test data for `tests/fixtures.rs`, never compiled.

fn decode(r: &mut Reader, buf: &[u8]) -> Result<Vec<u8>, Error> {
    let n = r.varint()? as usize;
    let total = n * elem_size; // taint: unchecked `*`
    let mut out = Vec::with_capacity(n); // taint: allocation sized by `n`
    out.push(buf[n]); // taint: slice index
    let _ = total;
    Ok(out)
}
