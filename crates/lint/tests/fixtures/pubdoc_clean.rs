//! Fixture: documented `pub` items — including one whose doc comment is
//! separated from the item by an attribute line — must be accepted. Test
//! data only, never compiled.

/// A documented widget.
pub struct Widget {
    field: u8,
}

/// Documented even through the attribute below.
#[inline]
pub fn run() {}

fn private_needs_no_docs() {}
