//! Fixture: the overflow rule (untrusted-module context) must fire on every
//! commented line. Test data only, never compiled.

fn mix(a: usize, b: usize) -> usize {
    let x = a + b; // overflow: unchecked `+`
    let y = a * b; // overflow: unchecked `*`
    let z = a << b; // overflow: unchecked `<<`
    x ^ y ^ z
}
