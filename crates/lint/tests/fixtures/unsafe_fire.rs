//! Firing fixture for `unsafe-boundary`: a `#[target_feature]` fn in a
//! file with no runtime feature-detection guard, plus an arch-gated fn
//! with no named scalar fallback.

#[target_feature(enable = "avx2")]
// SAFETY: fixture — callers check CPU support before dispatching here.
unsafe fn sum_wide(xs: &[u8]) -> u64 {
    xs.iter().map(|&b| u64::from(b)).sum()
}

#[cfg(target_arch = "x86_64")]
fn fold_block(xs: &[u8]) -> u64 {
    xs.len() as u64
}
