//! Clean fixture for `unsafe-boundary`: the feature-gated kernel is
//! guarded by runtime detection and the arch-gated fn has a same-name
//! scalar fallback under `#[cfg(not(target_arch ...))]`.

pub fn sum(xs: &[u8]) -> u64 {
    if is_x86_feature_detected!("avx2") {
        // SAFETY: the branch above verified the CPU supports AVX2.
        unsafe { sum_wide(xs) }
    } else {
        fold_block(xs)
    }
}

#[target_feature(enable = "avx2")]
// SAFETY: callers check CPU support before dispatching here.
unsafe fn sum_wide(xs: &[u8]) -> u64 {
    xs.iter().map(|&b| u64::from(b)).sum()
}

#[cfg(target_arch = "x86_64")]
fn fold_block(xs: &[u8]) -> u64 {
    xs.len() as u64
}

#[cfg(not(target_arch = "x86_64"))]
fn fold_block(xs: &[u8]) -> u64 {
    xs.iter().map(|&b| u64::from(b)).sum()
}
