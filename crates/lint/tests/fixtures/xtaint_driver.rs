//! Cross-function taint fixture, consumer side. The length returned by
//! `header_len` crossed two helper hops from a varint read, so passing it
//! to `table_for` (whose parameter sizes an allocation) must fire; the
//! `.min(MAX_FRAME)`-capped copy must not.

pub fn load(r: &mut Reader) -> Vec<u32> {
    let n = header_len(r);
    table_for(n)
}

pub fn load_capped(r: &mut Reader) -> Vec<u32> {
    let n = header_len(r).min(MAX_FRAME);
    table_for(n)
}
