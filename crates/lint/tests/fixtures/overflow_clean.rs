//! Fixture: the overflow rule must accept all of these — checked/saturating
//! method forms, literal operands, and named `MAX_*` bounds. Test data only,
//! never compiled.

fn mix(a: usize, b: usize) -> usize {
    let x = a.saturating_add(b);
    let y = a.checked_mul(b).unwrap_or(0);
    let z = a.wrapping_shl(2);
    let w = a + 1;
    let v = b + MAX_LIMIT;
    x ^ y ^ z ^ w ^ v
}
