//! Firing fixture for `concurrency-discipline`: an unjustified relaxed
//! load, a poison-propagating lock, and shared `&mut` captures inside a
//! scoped-thread spawn.

pub fn drain(flag: &AtomicBool, total: &Mutex<u64>, chunks: &mut [u8]) {
    let live = flag.load(Ordering::Relaxed);
    let mut sum = total.lock().unwrap();
    std::thread::scope(|s| {
        s.spawn(|| consume(&mut chunks, live, &mut sum));
    });
}
