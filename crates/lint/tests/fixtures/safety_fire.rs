//! Fixture: `unsafe` without a `// SAFETY:` comment must fire. Test data
//! only, never compiled.

fn read(p: *const u8) -> u8 {
    unsafe { *p } // safety-comment: no SAFETY justification above
}
