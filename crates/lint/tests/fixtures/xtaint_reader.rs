//! Cross-function taint fixture, producer side. `frame_len` wraps a
//! primitive varint read (hop one); `header_len` wraps the wrapper (hop
//! two); `table_for` sizes an allocation from its parameter. Nothing
//! fires here — the tainted call sites live in `xtaint_driver.rs`.

pub fn frame_len(r: &mut Reader) -> usize {
    r.read_varint() as usize
}

pub fn header_len(r: &mut Reader) -> usize {
    let n = frame_len(r);
    n
}

pub fn table_for(n: usize) -> Vec<u32> {
    Vec::with_capacity(n)
}
