//! Fixture: the same shape as `taint_fire.rs` with every sink sanitized —
//! the taint rule must stay silent. Test data only, never compiled.

fn decode(r: &mut Reader, buf: &[u8]) -> Result<Vec<u8>, Error> {
    let n = (r.varint()? as usize).min(MAX_ELEMENTS);
    let raw = r.varint()? as usize;
    let total = raw.checked_mul(elem_size).ok_or(Error::Truncated)?;
    let mut out = Vec::with_capacity(clamped_capacity(total as u64));
    let k = r.varint()? as usize;
    if k > buf.len() {
        return Err(Error::Truncated);
    }
    out.push(buf[k]);
    let _ = n;
    Ok(out)
}
