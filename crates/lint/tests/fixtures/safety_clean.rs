//! Fixture: `unsafe` justified by an adjacent `// SAFETY:` comment must be
//! accepted. Test data only, never compiled.

fn read(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` is valid for one byte.
    unsafe { *p }
}
