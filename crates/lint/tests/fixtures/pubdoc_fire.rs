//! Fixture: undocumented `pub` items in an API crate must fire. Test data
//! only, never compiled.

pub struct Widget {
    field: u8,
}

pub fn run() {}

/// Documented, so silent.
pub fn ok() {}
