//! Lexer conformance: the tricky shapes of real Rust source that a
//! token-stream linter must survive without mis-tokenizing. Each case here
//! is an edge that once (or plausibly could have) produced phantom findings:
//! rule keywords hidden in literals, fences, shebangs, and shift operators.

use primacy_lint::lexer::{lex, CommentKind, Tok};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter_map(|t| match t.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        })
        .collect()
}

#[test]
fn raw_string_hash_runs_of_every_depth() {
    // Fences of 0..=3 hashes, each hiding a `"`+fewer-hashes sequence that
    // would terminate a shallower scan, plus rule bait inside the literal.
    let src = concat!(
        "let a = r\"plain .unwrap() bait\";\n",
        "let b = r#\"one \" fence .unwrap()\"#;\n",
        "let c = r##\"two \"# fence\"##;\n",
        "let d = r###\"three \"## fence\"###;\n",
        "let tail = marker;\n",
    );
    let out = lex(src);
    let strs = out.tokens.iter().filter(|t| t.tok == Tok::Str).count();
    assert_eq!(strs, 4, "each raw string is exactly one token");
    let ids = idents(src);
    assert!(
        !ids.contains(&"unwrap".to_string()),
        "literal bodies are opaque"
    );
    assert!(
        ids.contains(&"marker".to_string()),
        "lexing resumes after the fences"
    );
}

#[test]
fn raw_byte_strings_and_raw_identifiers_disambiguate() {
    let src = "let x = br##\"byte \"# raw\"##; let r#fn = r#type; call();";
    let ids = idents(src);
    // `r#fn` and `r#type` arrive unprefixed; the literal body stays hidden.
    assert!(ids.contains(&"fn".to_string()));
    assert!(ids.contains(&"type".to_string()));
    assert!(ids.contains(&"call".to_string()));
    assert!(!ids.contains(&"raw".to_string()));
}

#[test]
fn shebang_skipped_but_inner_attribute_kept() {
    let out = lex("#!/usr/bin/env rust-script\n//! doc\nfn main() {}");
    assert_eq!(
        out.tokens.first().map(|t| t.tok.clone()),
        Some(Tok::Ident("fn".into())),
        "the shebang line contributes no tokens"
    );
    assert_eq!(out.comments.len(), 1);
    assert_eq!(out.comments[0].kind, CommentKind::DocInner);

    // `#![...]` on line one is an attribute, not a shebang.
    let attr = lex("#![no_std]\nfn main() {}");
    assert_eq!(attr.tokens[0].tok, Tok::Punct('#'));
    assert!(idents("#![no_std]\nfn main() {}").contains(&"no_std".to_string()));
}

#[test]
fn shift_operators_split_into_single_angles() {
    // `>>` must arrive as two `>` puncts (so `Vec<Vec<u8>>` parses), and a
    // rule that wants the shift operator reassembles adjacency itself.
    let out = lex("let x: Vec<Vec<u8>> = v; let y = a >> b; let z = a >>= 1;");
    let gts: Vec<u32> = out
        .tokens
        .iter()
        .filter(|t| t.tok == Tok::Punct('>'))
        .map(|t| t.line)
        .collect();
    assert_eq!(gts.len(), 6, "2 generic closes + 2 for >> + 2 for >>=");
    assert!(!out.tokens.iter().any(|t| matches!(
        &t.tok,
        Tok::Ident(s) if s == ">>"
    )));
}

#[test]
fn numeric_edges_do_not_swallow_operators() {
    for (src, want_nums) in [
        ("let a = 0xE+2;", 2),    // hex digit E is not an exponent
        ("let b = 1usize+2;", 2), // suffix ending in `e` is not an exponent
        ("let c = 1.5e-3;", 1),   // real exponent stays one token
        ("let d = 2E+6;", 1),
        ("let e = 0b1010+1;", 2), // radix prefixes rule out exponents
        ("for i in 0..10 {}", 2), // range dots survive
    ] {
        let out = lex(src);
        let nums = out
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Num(_)))
            .count();
        assert_eq!(nums, want_nums, "{src}");
    }
}

#[test]
fn comment_kinds_and_directive_text_round_trip() {
    let src = "/// outer\n//! inner\n// lint: allow(panic) -- reason\n//// ruler\n/* /* nested */ block */ fn f() {}";
    let out = lex(src);
    assert_eq!(
        out.comments.len(),
        4,
        "block comments are not line comments"
    );
    assert_eq!(out.comments[0].kind, CommentKind::DocOuter);
    assert_eq!(out.comments[1].kind, CommentKind::DocInner);
    assert_eq!(out.comments[2].kind, CommentKind::Plain);
    assert!(out.comments[2].text.contains("lint: allow(panic)"));
    assert_eq!(out.comments[3].kind, CommentKind::Plain);
    assert!(idents(src).contains(&"f".to_string()));
}

#[test]
fn line_numbers_survive_multiline_literals() {
    let src = "let a = r#\"line one\nline two\nline three\"#;\nlet b = 1;";
    let out = lex(src);
    let b_let = out
        .tokens
        .iter()
        .filter(|t| t.tok == Tok::Ident("let".into()))
        .nth(1)
        .unwrap();
    assert_eq!(b_let.line, 4, "lines inside the raw string still count");
}
