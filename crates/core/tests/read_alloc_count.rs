//! Steady-state allocation gate for the archive decode hot path (ISSUE 10):
//! once a `DecodeScratch` has been warmed over the archive's chunks,
//! `ArchiveReader::read_chunk_with` must perform **zero** heap allocations —
//! the codec scratch, the ID map, every intermediate matrix, and the output
//! buffer are all reused.
//!
//! Verified with a counting global allocator. This file contains exactly one
//! test so no sibling test thread can allocate inside the measured window
//! (integration-test binaries run tests as in-process threads).

use primacy_core::{ArchiveReader, ArchiveWriter, DecodeScratch, PrimacyConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation unchanged to the `System` allocator; the
// only addition is a relaxed counter bump, which has no effect on the
// allocator contract.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // ORDERING: Relaxed — a monotone event counter; no memory is
        // published through it.
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; caller upholds the GlobalAlloc contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // ORDERING: Relaxed — same monotone counter as `alloc`.
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; caller upholds the GlobalAlloc contract.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // ORDERING: Relaxed — same monotone counter as `alloc`.
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; caller upholds the GlobalAlloc contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; caller upholds the GlobalAlloc contract.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocs() -> usize {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Doubles with mixed structure: a smooth component (few exponent sequences,
/// heavy ID-mapping) plus a noisy component (exercises the ISOBAR raw path),
/// varying per chunk so every chunk carries a distinct index.
fn sample(n: usize) -> Vec<u8> {
    let mut x = 7u64;
    (0..n)
        .flat_map(|i| {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let noise = (x >> 40) as f64 / 1e7;
            ((i as f64 * 0.013).sin() * (1.0 + (i / 500) as f64) + noise).to_le_bytes()
        })
        .collect()
}

#[test]
fn steady_state_read_chunk_with_allocates_nothing() {
    let cfg = PrimacyConfig {
        chunk_bytes: 8192, // 1024 doubles per chunk, several chunks
        ..PrimacyConfig::default()
    };
    let bytes = sample(5000); // 4 full chunks + ragged tail
    let mut w = ArchiveWriter::new(Vec::new(), cfg).expect("open writer");
    w.append(&bytes).expect("append");
    let archive = w.finish().expect("finish");
    let r = ArchiveReader::open(&archive).expect("open");
    assert!(r.chunk_count() >= 4, "need several chunks to be meaningful");

    let mut scratch = DecodeScratch::new();
    let mut out = Vec::new();
    // Warm pass: grows the codec scratch, the ID map (to the largest index
    // across chunks), every intermediate matrix, and `out`.
    let mut plain = Vec::new();
    for i in 0..r.chunk_count() {
        r.read_chunk_with(i, &mut scratch, &mut out)
            .expect("warm read");
        plain.extend_from_slice(&out);
    }
    assert_eq!(plain, bytes, "warm pass roundtrip failed");

    // Steady state: a second full pass must never touch the allocator.
    let before = allocs();
    for i in 0..r.chunk_count() {
        r.read_chunk_with(i, &mut scratch, &mut out)
            .expect("warm read");
    }
    let delta = allocs() - before;
    assert_eq!(
        delta, 0,
        "read_chunk_with hit the allocator {delta} time(s) in steady state"
    );
    assert!(!out.is_empty(), "measured reads really decoded data");
}
