//! Archive-level decompression-bomb regression: a forged directory entry
//! claiming an implausible plaintext size for its stored bytes must be
//! rejected at `open`, before any chunk is decoded or output allocated.

use primacy_codecs::checksum::crc32;
use primacy_core::{ArchiveReader, ArchiveWriter, PrimacyConfig};

fn build_archive(n: usize) -> Vec<u8> {
    let values: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.01).sin()).collect();
    let cfg = PrimacyConfig {
        chunk_bytes: 4096,
        ..Default::default()
    };
    let mut w = ArchiveWriter::new(Vec::new(), cfg).unwrap();
    w.append_f64(&values).unwrap();
    w.finish().unwrap()
}

#[test]
fn forged_chunk_expansion_rejected_at_open() {
    let mut archive = build_archive(1024);
    assert!(ArchiveReader::open(&archive).is_ok(), "baseline must parse");

    // Footer layout: u64 directory_offset | u32 chunk_count | u32 dir_crc |
    // 4-byte magic. Patch the first directory entry's element count to 2^40
    // and re-sign the directory so only the expansion guard can object.
    let n = archive.len();
    let footer_at = n - 20;
    let chunk_count =
        u32::from_le_bytes(archive[footer_at + 8..footer_at + 12].try_into().unwrap()) as usize;
    let dir_start = footer_at - chunk_count * 20;
    archive[dir_start + 8..dir_start + 16].copy_from_slice(&(1u64 << 40).to_le_bytes());
    let dir_crc = crc32(&archive[dir_start..footer_at]);
    archive[footer_at + 12..footer_at + 16].copy_from_slice(&dir_crc.to_le_bytes());

    let err = ArchiveReader::open(&archive);
    assert!(err.is_err(), "2^40-element chunk claim must be rejected");
}

#[test]
fn honest_high_ratio_archives_still_open() {
    // Constant data compresses extremely well; the expansion bound must not
    // reject a genuinely high-ratio archive.
    let values = vec![0.0f64; 100_000];
    let cfg = PrimacyConfig {
        chunk_bytes: 65_536,
        ..Default::default()
    };
    let mut w = ArchiveWriter::new(Vec::new(), cfg).unwrap();
    w.append_f64(&values).unwrap();
    let archive = w.finish().unwrap();
    let r = ArchiveReader::open(&archive).unwrap();
    assert_eq!(r.read_elements_f64(0, 100_000).unwrap(), values);
}
