//! PRIMACY — *PReconditioning Id-MApper for Compressing incompressibilitY*.
//!
//! A faithful reimplementation of the preconditioner from
//! *"Improving I/O Throughput with PRIMACY"* (IEEE CLUSTER 2012). PRIMACY
//! does not compress data itself; it rewrites hard-to-compress floating-point
//! data so that a standard byte-level compressor (zlib in the paper) becomes
//! both faster and more effective:
//!
//! 1. **Chunking** (§II-B): data is processed in 3 MB chunks for in-situ,
//!    low-memory operation.
//! 2. **High/low split** (§II-B): each 8-byte double is split into its 2
//!    high-order bytes (sign + exponent + leading mantissa bits — few unique
//!    values, skewed distribution) and 6 low-order mantissa bytes
//!    (near-random).
//! 3. **Frequency-ranked ID mapping** (§II-C): the unique high-order
//!    byte-sequences of a chunk are ranked by frequency and bijectively
//!    replaced by IDs (most frequent → 0), concentrating the byte histogram
//!    around zero.
//! 4. **Column linearization** (§II-D): the ID matrix is emitted
//!    column-by-column so runs of equal (mostly zero) bytes reach the
//!    compressor's run-length machinery.
//! 5. **Standard compression** (§II-E): any [`primacy_codecs::Codec`]
//!    finishes the job; the index (ID → byte-sequence table, §II-F) rides
//!    along as per-chunk metadata.
//! 6. **ISOBAR partitioning** (§II-G): the mantissa bytes are classified
//!    per byte-column; only columns that look compressible are compressed,
//!    the rest are stored raw, saving the compressor's time.
//!
//! The top-level entry point is [`pipeline::PrimacyCompressor`]:
//!
//! ```
//! use primacy_core::{PrimacyCompressor, PrimacyConfig};
//!
//! let values: Vec<f64> = (0..100_000).map(|i| (i as f64 * 0.01).sin()).collect();
//! let compressor = PrimacyCompressor::new(PrimacyConfig::default());
//! let compressed = compressor.compress_f64(&values).unwrap();
//! let restored = compressor.decompress_f64(&compressed).unwrap();
//! assert_eq!(restored, values);
//! ```

/// Compressibility diagnostics over raw element buffers.
pub mod analysis;
/// Seekable chunked archives with random element access.
pub mod archive;
/// Compressor configuration and tuning knobs.
pub mod config;
/// Error type and result alias for the whole pipeline.
pub mod error;
/// Streaming container layout, varints, and the chunk cursor.
pub mod format;
/// Frequency tables feeding the ID-mapper.
pub mod freq;
/// The preconditioning ID-mapper itself.
pub mod idmap;
/// Isobaric column classification (compressible vs. incompressible).
pub mod isobar;
/// Row/column linearization of the hi-byte matrix.
pub mod linearize;
/// The end-to-end compression pipeline.
pub mod pipeline;
/// Hi/lo byte-plane splitting.
pub mod split;
/// Order statistics shared by analysis and the mapper.
pub mod stats;
/// `std::io` adapters over archives.
pub mod stream;

pub use archive::{ArchiveReader, ArchiveWriter};
pub use config::{
    resolve_threads, IndexPolicy, IsobarClassifier, IsobarConfig, Linearization, PrimacyConfig,
};
pub use error::{PrimacyError, Result};
pub use pipeline::{DecodeScratch, PrimacyCompressor};
pub use stats::{CompressionStats, StageTimings, STAGES};
pub use stream::ElementReader;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_doc_example_works() {
        let values: Vec<f64> = (0..10_000).map(|i| (i as f64 * 0.01).sin()).collect();
        let compressor = PrimacyCompressor::new(PrimacyConfig::default());
        let compressed = compressor.compress_f64(&values).unwrap();
        let restored = compressor.decompress_f64(&compressed).unwrap();
        assert_eq!(restored, values);
    }
}
