//! Statistical primitives behind the ISOBAR classifier.

/// Diagnostics for one byte-column of the low-order matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnReport {
    /// Column index within the matrix.
    pub column: usize,
    /// Shannon entropy of the sampled byte distribution, in bits (0..=8).
    pub entropy_bits: f64,
    /// Relative frequency of the most common byte value in the sample.
    pub top_byte_frequency: f64,
    /// Number of distinct byte values observed in the sample.
    pub unique_bytes: usize,
    /// How many bytes were sampled.
    pub sampled: usize,
    /// Majority probability of each of the column's 8 bit positions (MSB
    /// first) — the quantity the original ISOBAR classifier thresholds.
    pub bit_majority: [f64; 8],
}

impl ColumnReport {
    /// Bit positions whose majority probability reaches `skew_threshold`.
    pub fn skewed_bits(&self, skew_threshold: f64) -> usize {
        self.bit_majority
            .iter()
            .filter(|&&p| p >= skew_threshold)
            .count()
    }
}

/// Shannon entropy (bits/byte) of a byte histogram.
pub fn byte_entropy(histogram: &[u64; 256], total: u64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let mut h = 0.0f64;
    for &c in histogram.iter() {
        if c > 0 {
            let p = c as f64 / total as f64;
            h -= p * p.log2();
        }
    }
    h
}

/// Sample every `stride`-th row of column `col` and report its statistics.
pub fn analyze_column(
    lo: &[u8],
    rows: usize,
    cols: usize,
    col: usize,
    stride: usize,
) -> ColumnReport {
    debug_assert!(col < cols);
    debug_assert!(stride >= 1);
    let mut histogram = [0u64; 256];
    let mut sampled = 0u64;
    let mut r = 0usize;
    while r < rows {
        histogram[lo[r * cols + col] as usize] += 1;
        sampled += 1;
        r += stride;
    }
    let entropy_bits = byte_entropy(&histogram, sampled);
    let top = histogram.iter().copied().max().unwrap_or(0);
    let unique_bytes = histogram.iter().filter(|&&c| c > 0).count();
    // Per-bit majority probabilities fall straight out of the histogram:
    // ones(bit) = Σ count[v] over v with that bit set.
    let mut bit_majority = [1.0f64; 8];
    if sampled > 0 {
        for (bit, slot) in bit_majority.iter_mut().enumerate() {
            let mask = 1usize << (7 - bit);
            let ones: u64 = histogram
                .iter()
                .enumerate()
                .filter(|(v, _)| v & mask != 0)
                .map(|(_, &c)| c)
                .sum();
            let p1 = ones as f64 / sampled as f64;
            *slot = p1.max(1.0 - p1);
        }
    }
    ColumnReport {
        column: col,
        entropy_bits,
        top_byte_frequency: if sampled == 0 {
            0.0
        } else {
            top as f64 / sampled as f64
        },
        unique_bytes,
        sampled: sampled as usize,
        bit_majority,
    }
}

/// Per-bit-position probability of the *most frequent* bit value — exactly
/// the quantity plotted in Fig. 1 of the paper. `width` is the number of
/// bit positions per element (64 for f64); bit 0 is the most significant
/// (sign) bit of the big-endian element.
pub fn bit_majority_probability(elements: &[u64], width: usize) -> Vec<f64> {
    debug_assert!(width <= 64);
    if elements.is_empty() {
        return vec![0.5; width];
    }
    let mut ones = vec![0u64; width];
    for &e in elements {
        for (pos, slot) in ones.iter_mut().enumerate() {
            let bit = (e >> (width - 1 - pos)) & 1;
            *slot += bit;
        }
    }
    let n = elements.len() as f64;
    ones.iter()
        .map(|&o| {
            let p1 = o as f64 / n;
            p1.max(1.0 - p1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_constant_is_zero() {
        let mut h = [0u64; 256];
        h[42] = 1000;
        assert_eq!(byte_entropy(&h, 1000), 0.0);
    }

    #[test]
    fn entropy_of_uniform_is_eight() {
        let h = [10u64; 256];
        assert!((byte_entropy(&h, 2560) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_two_equal_symbols_is_one() {
        let mut h = [0u64; 256];
        h[0] = 500;
        h[255] = 500;
        assert!((byte_entropy(&h, 1000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_zero_entropy() {
        assert_eq!(byte_entropy(&[0u64; 256], 0), 0.0);
    }

    #[test]
    fn analyze_column_reports_plausible_stats() {
        // 2-column matrix: col 0 alternates between two bytes, col 1 counts.
        let rows = 4096;
        let mut m = Vec::with_capacity(rows * 2);
        for r in 0..rows {
            m.push(if r % 2 == 0 { 0xAA } else { 0x55 });
            m.push((r % 256) as u8);
        }
        let c0 = analyze_column(&m, rows, 2, 0, 1);
        assert!((c0.entropy_bits - 1.0).abs() < 1e-9);
        assert!((c0.top_byte_frequency - 0.5).abs() < 1e-9);
        assert_eq!(c0.unique_bytes, 2);
        assert_eq!(c0.sampled, rows);
        let c1 = analyze_column(&m, rows, 2, 1, 1);
        assert!((c1.entropy_bits - 8.0).abs() < 1e-9);
        assert_eq!(c1.unique_bytes, 256);
    }

    #[test]
    fn stride_reduces_sample_count() {
        let m = vec![1u8; 1000];
        let r = analyze_column(&m, 1000, 1, 0, 10);
        assert_eq!(r.sampled, 100);
    }

    #[test]
    fn bit_probability_sign_and_exponent_bits_are_skewed() {
        // All-positive doubles in [1, 2): sign bit and exponent bits are
        // constant (p = 1.0); deep mantissa bits of random values sit at
        // p ≈ 0.5 — the exact shape of the paper's Fig. 1.
        let mut x = 555u64;
        let elements: Vec<u64> = (0..10_000)
            .map(|_| {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                1.0f64 + f64::from_bits(0x3FF0_0000_0000_0000 | (x >> 12)) - 1.0
            })
            .map(|v| v.to_bits())
            .collect();
        let p = bit_majority_probability(&elements, 64);
        assert_eq!(p.len(), 64);
        assert!(p[0] > 0.999, "sign bit p={}", p[0]);
        for (i, &pi) in p.iter().enumerate().take(12).skip(1) {
            assert!(pi > 0.99, "exponent bit {i} p={pi}");
        }
        let tail_mean: f64 = p[40..].iter().sum::<f64>() / 24.0;
        assert!(tail_mean < 0.56, "mantissa tail p={tail_mean}");
    }

    #[test]
    fn bit_probability_empty_input() {
        assert_eq!(bit_majority_probability(&[], 64), vec![0.5; 64]);
    }

    #[test]
    fn bit_probability_is_at_least_half() {
        let elements = vec![0b1010u64, 0b0101, 0b1111, 0b0000];
        let p = bit_majority_probability(&elements, 4);
        assert!(p.iter().all(|&x| (0.5..=1.0).contains(&x)));
    }
}
