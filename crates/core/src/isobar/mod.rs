//! ISOBAR analyzer and partitioner (§II-G; Schendel et al., ICDE 2012).
//!
//! The six low-order mantissa bytes of a double are usually too random for
//! an ID mapping to help — but not always uniformly so. ISOBAR samples each
//! byte-*column* of the N×6 mantissa matrix, estimates how compressible it
//! is, and partitions the columns into a *compressible* group (handed to the
//! backend codec) and an *incompressible* group (stored raw). Skipping the
//! codec on effectively-random bytes is where PRIMACY's 3–4× compression
//! throughput advantage over whole-chunk zlib comes from.
//!
//! The original uses bit-level frequency analysis against empirically fitted
//! thresholds; this implementation uses the sampled byte-entropy of each
//! column, which captures the same signal (a column of p≈0.5 bits has ≈8
//! bits of byte entropy) with one interpretable knob.

/// Per-column entropy measurements behind the classifier.
pub mod analysis;

use crate::config::IsobarConfig;
pub use analysis::{byte_entropy, ColumnReport};

/// The analyzer's verdict for one chunk's low-order matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct IsobarReport {
    /// Per-column diagnostics, in column order.
    pub columns: Vec<ColumnReport>,
    /// Bit `c` set ⇔ column `c` is classified compressible. Column counts
    /// are at most 15 (element_size ≤ 16), so a u16 mask suffices.
    pub mask: u16,
}

impl IsobarReport {
    /// Number of compressible columns.
    pub fn compressible_count(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// Is column `c` compressible?
    pub fn is_compressible(&self, c: usize) -> bool {
        self.mask & (1 << c) != 0
    }

    /// Fraction of the matrix classified compressible — the α₂ parameter of
    /// the paper's performance model.
    pub fn compressible_fraction(&self) -> f64 {
        if self.columns.is_empty() {
            return 0.0;
        }
        self.compressible_count() as f64 / self.columns.len() as f64
    }
}

/// Analyze a row-major `rows`×`cols` low-order matrix.
pub fn analyze(lo: &[u8], rows: usize, cols: usize, cfg: &IsobarConfig) -> IsobarReport {
    assert_eq!(lo.len(), rows * cols);
    let mut columns = Vec::with_capacity(cols);
    let mut mask = 0u16;
    for c in 0..cols {
        let report = analysis::analyze_column(lo, rows, cols, c, cfg.sample_stride);
        let compressible = if !cfg.enabled {
            // Analyzer disabled: everything goes to the codec, mirroring
            // vanilla whole-chunk compression.
            true
        } else {
            match cfg.classifier {
                crate::config::IsobarClassifier::ByteEntropy => {
                    report.entropy_bits < cfg.entropy_threshold_bits
                }
                crate::config::IsobarClassifier::BitFrequency {
                    skew_threshold,
                    min_skewed_bits,
                } => report.skewed_bits(skew_threshold) >= min_skewed_bits,
            }
        };
        if compressible {
            mask |= 1 << c;
        }
        columns.push(report);
    }
    IsobarReport { columns, mask }
}

/// Split the matrix into `(compressible, incompressible)` buffers, each
/// holding its columns contiguously (column-major) in ascending column
/// order.
///
/// One sequential pass over the input, scattering into at most `cols`
/// sequential output streams (the cache-friendly orientation; a
/// column-at-a-time gather would walk the whole matrix once per column).
pub fn partition(lo: &[u8], rows: usize, cols: usize, mask: u16) -> (Vec<u8>, Vec<u8>) {
    assert_eq!(lo.len(), rows * cols);
    let comp_cols = mask.count_ones() as usize;
    let mut compressible = vec![0u8; rows * comp_cols];
    let mut incompressible = vec![0u8; rows * (cols - comp_cols)];
    // Destination stream index per column: (into_compressible, stream_slot).
    let mut dest: Vec<(bool, usize)> = Vec::with_capacity(cols);
    let (mut ck, mut ik) = (0usize, 0usize);
    for c in 0..cols {
        if mask & (1 << c) != 0 {
            dest.push((true, ck));
            ck += 1;
        } else {
            dest.push((false, ik));
            ik += 1;
        }
    }
    // Blocked gather: within a block of rows every touched cache line stays
    // resident across the per-column passes.
    const BLOCK: usize = 4096;
    let mut start = 0usize;
    while start < rows {
        let end = (start + BLOCK).min(rows);
        let lo_block = &lo[start * cols..end * cols];
        for (c, &(to_comp, k)) in dest.iter().enumerate() {
            let dst = if to_comp {
                &mut compressible[k * rows + start..k * rows + end]
            } else {
                &mut incompressible[k * rows + start..k * rows + end]
            };
            for (slot, &b) in dst.iter_mut().zip(lo_block.iter().skip(c).step_by(cols)) {
                *slot = b;
            }
        }
        start = end;
    }
    (compressible, incompressible)
}

/// Inverse of [`partition`]: sequential writes to the row-major output,
/// reading from at most `cols` sequential column streams.
pub fn unpartition(
    compressible: &[u8],
    incompressible: &[u8],
    rows: usize,
    cols: usize,
    mask: u16,
) -> Vec<u8> {
    let mut out = Vec::new();
    unpartition_into(compressible, incompressible, rows, cols, mask, &mut out);
    out
}

/// [`unpartition`] into a caller-owned buffer (cleared first, capacity kept):
/// a warm call on a sufficiently-large `out` performs no allocations.
pub fn unpartition_into(
    compressible: &[u8],
    incompressible: &[u8],
    rows: usize,
    cols: usize,
    mask: u16,
    out: &mut Vec<u8>,
) {
    assert!(
        cols <= 16,
        "lo matrix has more columns than any element holds"
    );
    out.clear();
    out.resize(rows * cols, 0);
    // Source slice per column, in column order. `cols` is bounded by the
    // element size (≤ 16), so a fixed array avoids a per-call allocation.
    let mut src: [&[u8]; 16] = [&[]; 16];
    let (mut ci, mut ii) = (0usize, 0usize);
    for (c, slot) in src.iter_mut().enumerate().take(cols) {
        if mask & (1 << c) != 0 {
            *slot = &compressible[ci..ci + rows];
            ci += rows;
        } else {
            *slot = &incompressible[ii..ii + rows];
            ii += rows;
        }
    }
    debug_assert_eq!(ci, compressible.len());
    debug_assert_eq!(ii, incompressible.len());
    // Blocked scatter (mirror of `partition`).
    const BLOCK: usize = 4096;
    let mut start = 0usize;
    while start < rows {
        let end = (start + BLOCK).min(rows);
        let out_block = &mut out[start * cols..end * cols];
        for (c, col) in src.iter().enumerate().take(cols) {
            for (slot, &b) in out_block
                .iter_mut()
                .skip(c)
                .step_by(cols)
                .zip(&col[start..end])
            {
                *slot = b;
            }
        }
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Row-major matrix whose column c is produced by `f(row, c)`.
    fn matrix(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> u8) -> Vec<u8> {
        let mut m = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                m.push(f(r, c));
            }
        }
        m
    }

    fn mixed_matrix(rows: usize) -> Vec<u8> {
        // Column 0: constant. Column 1: tiny alphabet. Column 2: LCG noise.
        let mut x = 12345u64;
        matrix(rows, 3, |r, c| match c {
            0 => 7,
            1 => (r % 4) as u8,
            _ => {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                (x >> 33) as u8
            }
        })
    }

    #[test]
    fn analyzer_separates_structured_from_random() {
        let rows = 20_000;
        let m = mixed_matrix(rows);
        let cfg = IsobarConfig {
            sample_stride: 1,
            ..Default::default()
        };
        let report = analyze(&m, rows, 3, &cfg);
        assert!(report.is_compressible(0), "constant column must compress");
        assert!(report.is_compressible(1), "4-symbol column must compress");
        assert!(
            !report.is_compressible(2),
            "random column must be excluded (entropy {})",
            report.columns[2].entropy_bits
        );
        assert_eq!(report.compressible_count(), 2);
        assert!((report.compressible_fraction() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn disabled_analyzer_marks_everything_compressible() {
        let rows = 1000;
        let m = mixed_matrix(rows);
        let cfg = IsobarConfig {
            enabled: false,
            ..Default::default()
        };
        let report = analyze(&m, rows, 3, &cfg);
        assert_eq!(report.compressible_count(), 3);
    }

    #[test]
    fn sampling_stride_gives_same_verdict_here() {
        let rows = 50_000;
        let m = mixed_matrix(rows);
        let full = analyze(
            &m,
            rows,
            3,
            &IsobarConfig {
                sample_stride: 1,
                ..Default::default()
            },
        );
        let sampled = analyze(
            &m,
            rows,
            3,
            &IsobarConfig {
                sample_stride: 16,
                ..Default::default()
            },
        );
        assert_eq!(full.mask, sampled.mask);
    }

    #[test]
    fn partition_unpartition_roundtrip() {
        let rows = 997;
        let m = mixed_matrix(rows);
        for mask in [0b000u16, 0b001, 0b010, 0b101, 0b111] {
            let (comp, incomp) = partition(&m, rows, 3, mask);
            assert_eq!(comp.len(), rows * mask.count_ones() as usize);
            assert_eq!(comp.len() + incomp.len(), m.len());
            let back = unpartition(&comp, &incomp, rows, 3, mask);
            assert_eq!(back, m, "mask {mask:03b}");
        }
    }

    #[test]
    fn partition_groups_columns_contiguously() {
        let m = matrix(4, 2, |r, c| (10 * c + r) as u8);
        let (comp, incomp) = partition(&m, 4, 2, 0b10);
        assert_eq!(comp, vec![10, 11, 12, 13]); // column 1
        assert_eq!(incomp, vec![0, 1, 2, 3]); // column 0
    }

    #[test]
    fn bit_frequency_classifier_agrees_on_clear_cases() {
        let rows = 20_000;
        let m = mixed_matrix(rows);
        let cfg = crate::config::IsobarConfig {
            sample_stride: 1,
            ..crate::config::IsobarConfig::bit_frequency()
        };
        let report = analyze(&m, rows, 3, &cfg);
        assert!(report.is_compressible(0), "constant column");
        assert!(report.is_compressible(1), "4-symbol column");
        assert!(!report.is_compressible(2), "random column");
    }

    #[test]
    fn bit_majority_values_are_sane() {
        let rows = 4096;
        let m = mixed_matrix(rows);
        let report = analyze(&m, rows, 3, &crate::config::IsobarConfig::default());
        // Constant column: all 8 bit positions fully determined.
        assert!(report.columns[0]
            .bit_majority
            .iter()
            .all(|&p| (p - 1.0).abs() < 1e-12));
        assert_eq!(report.columns[0].skewed_bits(0.99), 8);
        // Random column: most bit positions near 0.5.
        let random_skewed = report.columns[2].skewed_bits(0.6);
        assert!(random_skewed <= 1, "{random_skewed} skewed bits in noise");
    }

    #[test]
    fn empty_matrix_analysis() {
        let report = analyze(&[], 0, 6, &IsobarConfig::default());
        assert_eq!(report.columns.len(), 6);
        assert_eq!(report.compressible_fraction(), 1.0); // entropy 0 for empty
    }
}
