//! Byte-level linearization (§II-D): row-major ↔ column-major layout of an
//! N×M byte matrix.
//!
//! Column order puts each ID byte-column contiguously, turning the high
//! frequency of low ID values into literal runs of 0-bytes that the backend
//! compressor's LZ/RLE stage can exploit (§IV-H measures this at 8–10 % CR
//! and ~20 % compression-throughput on the IDs).

/// Row-block height for the tiled transpose: 256 rows × ≤16 columns of both
/// matrices stay well inside L1 while each tile is permuted.
const TILE_ROWS: usize = 256;

/// Transpose a row-major `rows`×`cols` byte matrix into column-major order.
pub fn to_columns(data: &[u8], rows: usize, cols: usize) -> Vec<u8> {
    assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
    if cols <= 1 {
        // A single column is its own transpose.
        return data.to_vec();
    }
    let mut out = vec![0u8; data.len()];
    if cols == 2 {
        // The hot shape (hi_bytes = 2): one sequential pass that deinterleaves
        // byte pairs into the two column halves.
        let (c0, c1) = out.split_at_mut(rows);
        for ((pair, x), y) in data.chunks_exact(2).zip(c0.iter_mut()).zip(c1.iter_mut()) {
            *x = pair[0];
            *y = pair[1];
        }
        return out;
    }
    // General case: block over rows so the strided side of the permutation
    // touches only a tile's worth of cache lines before moving on.
    for r0 in (0..rows).step_by(TILE_ROWS) {
        let r1 = (r0 + TILE_ROWS).min(rows);
        for c in 0..cols {
            let col = &mut out[c * rows + r0..c * rows + r1];
            for (slot, row) in col.iter_mut().zip(data[r0 * cols..].chunks_exact(cols)) {
                *slot = row[c];
            }
        }
    }
    out
}

/// Inverse of [`to_columns`].
pub fn to_rows(data: &[u8], rows: usize, cols: usize) -> Vec<u8> {
    let mut out = Vec::new();
    to_rows_into(data, rows, cols, &mut out);
    out
}

/// [`to_rows`] into a caller-owned buffer (cleared first, capacity kept): a
/// warm call on a sufficiently-large `out` performs no allocations, which the
/// archive's steady-state decode path relies on.
pub fn to_rows_into(data: &[u8], rows: usize, cols: usize, out: &mut Vec<u8>) {
    assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
    out.clear();
    if cols <= 1 {
        out.extend_from_slice(data);
        return;
    }
    out.resize(data.len(), 0);
    if cols == 2 {
        // Hot shape: re-interleave the two column halves in one pass.
        let (c0, c1) = data.split_at(rows);
        for ((pair, &x), &y) in out.chunks_exact_mut(2).zip(c0.iter()).zip(c1.iter()) {
            pair[0] = x;
            pair[1] = y;
        }
        return;
    }
    for r0 in (0..rows).step_by(TILE_ROWS) {
        let r1 = (r0 + TILE_ROWS).min(rows);
        for c in 0..cols {
            let col = &data[c * rows + r0..c * rows + r1];
            for (&b, row) in col.iter().zip(out[r0 * cols..].chunks_exact_mut(cols)) {
                row[c] = b;
            }
        }
    }
}

/// Extract a single byte-column from a row-major matrix.
pub fn extract_column(data: &[u8], rows: usize, cols: usize, col: usize) -> Vec<u8> {
    assert!(col < cols);
    assert_eq!(data.len(), rows * cols);
    (0..rows).map(|r| data[r * cols + col]).collect()
}

/// Scatter a byte-column back into a row-major matrix.
pub fn insert_column(data: &mut [u8], rows: usize, cols: usize, col: usize, values: &[u8]) {
    assert!(col < cols);
    assert_eq!(data.len(), rows * cols);
    assert_eq!(values.len(), rows);
    for (r, &b) in values.iter().enumerate() {
        data[r * cols + col] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_small_matrix() {
        // 3 rows × 2 cols, row-major: [r0c0, r0c1, r1c0, r1c1, r2c0, r2c1].
        let data = [1u8, 2, 3, 4, 5, 6];
        let cols = to_columns(&data, 3, 2);
        assert_eq!(cols, vec![1, 3, 5, 2, 4, 6]);
        assert_eq!(to_rows(&cols, 3, 2), data.to_vec());
    }

    #[test]
    fn transpose_roundtrip_various_shapes() {
        // Includes shapes that straddle the tile boundary (rows around and
        // far past TILE_ROWS) and the cols ∈ {1, 2} fast paths.
        for (rows, cols) in [
            (1, 1),
            (1, 8),
            (8, 1),
            (7, 3),
            (100, 6),
            (33, 2),
            (255, 3),
            (256, 3),
            (257, 5),
            (1031, 2),
            (2048, 8),
        ] {
            let data: Vec<u8> = (0..rows * cols).map(|i| (i * 31 % 251) as u8).collect();
            let t = to_columns(&data, rows, cols);
            assert_eq!(to_rows(&t, rows, cols), data, "{rows}x{cols}");
        }
    }

    #[test]
    fn tiled_transpose_matches_naive() {
        // The tiled permutation must be byte-identical to the textbook one.
        for (rows, cols) in [(300, 3), (511, 6), (1000, 4)] {
            let data: Vec<u8> = (0..rows * cols).map(|i| (i * 131 % 256) as u8).collect();
            let mut naive = vec![0u8; data.len()];
            for c in 0..cols {
                for r in 0..rows {
                    naive[c * rows + r] = data[r * cols + c];
                }
            }
            assert_eq!(to_columns(&data, rows, cols), naive, "{rows}x{cols}");
        }
    }

    #[test]
    fn empty_matrix() {
        assert!(to_columns(&[], 0, 2).is_empty());
        assert!(to_rows(&[], 0, 2).is_empty());
    }

    #[test]
    fn column_extraction_and_insertion() {
        let data = [10u8, 20, 30, 40, 50, 60]; // 2 rows × 3 cols
        assert_eq!(extract_column(&data, 2, 3, 0), vec![10, 40]);
        assert_eq!(extract_column(&data, 2, 3, 2), vec![30, 60]);
        let mut copy = data.to_vec();
        insert_column(&mut copy, 2, 3, 1, &[99, 98]);
        assert_eq!(copy, vec![10, 99, 30, 40, 98, 60]);
    }

    #[test]
    fn column_order_groups_runs() {
        // Rows of [0, x]: column order must put all zeros adjacent.
        let data: Vec<u8> = (0..100u8).flat_map(|i| [0u8, i]).collect();
        let t = to_columns(&data, 100, 2);
        assert!(t[..100].iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "matrix shape mismatch")]
    fn shape_mismatch_panics() {
        to_columns(&[1, 2, 3], 2, 2);
    }
}
