//! Pipeline configuration.

use crate::error::{PrimacyError, Result};
use primacy_codecs::CodecKind;

/// The chunk size used throughout the paper (§II-B): 3 MB, chosen because
/// compressor efficiency levels off there.
pub const DEFAULT_CHUNK_BYTES: usize = 3 * 1024 * 1024;

/// How the transformed ID matrix is handed to the backend compressor
/// (§II-D, ablated in §IV-H).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linearization {
    /// Row-major: IDs in element order (the naive layout).
    Row,
    /// Column-major: all first ID bytes, then all second ID bytes — the
    /// paper's choice, worth 8–10 % CR and ~20 % throughput on the IDs.
    Column,
}

/// How the per-chunk index (ID → byte-sequence table) is managed (§II-F).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IndexPolicy {
    /// Build and store an index for every chunk — the paper's
    /// implementation.
    PerChunk,
    /// Reuse the previous chunk's index while the frequency vectors of the
    /// incoming chunk correlate with the indexed chunk at or above the
    /// threshold (the paper's §II-F "future work" design, implemented here
    /// and ablated in the bench suite).
    Reuse {
        /// Minimum Pearson correlation between frequency vectors for reuse.
        correlation_threshold: f64,
    },
}

/// How ISOBAR decides whether a byte-column is compressible (§II-G).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IsobarClassifier {
    /// Sampled Shannon entropy of the column's byte distribution; columns
    /// under the threshold go to the codec. One interpretable knob with the
    /// same signal as the original's bit analysis.
    ByteEntropy,
    /// The original ISOBAR criterion: per-bit-position frequency analysis.
    /// A bit position is "skewed" when its majority value appears with
    /// probability ≥ `skew_threshold`; a column is compressible when at
    /// least `min_skewed_bits` of its 8 positions are skewed.
    BitFrequency {
        /// Majority probability above which a bit position counts as skewed.
        skew_threshold: f64,
        /// Skewed positions required to classify the column compressible.
        min_skewed_bits: usize,
    },
}

/// ISOBAR analyzer settings (§II-G).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsobarConfig {
    /// Run the analyzer at all. Disabled, every mantissa column is
    /// compressed (what vanilla zlib-the-whole-chunk effectively does).
    pub enabled: bool,
    /// Sample every `sample_stride`-th element during analysis; 1 analyzes
    /// everything, larger strides trade accuracy for speed.
    pub sample_stride: usize,
    /// A byte-column is classified compressible when its sampled byte
    /// entropy is below this many bits (8 = uniformly random). The paper
    /// derives its thresholds empirically; 7.9 keeps effectively-random
    /// columns out of the compressor while letting structured columns in.
    /// Only used by [`IsobarClassifier::ByteEntropy`].
    pub entropy_threshold_bits: f64,
    /// Classification criterion.
    pub classifier: IsobarClassifier,
}

impl Default for IsobarConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            sample_stride: 8,
            entropy_threshold_bits: 7.9,
            classifier: IsobarClassifier::ByteEntropy,
        }
    }
}

impl IsobarConfig {
    /// The original paper's bit-frequency criterion with its empirical-style
    /// defaults.
    pub fn bit_frequency() -> Self {
        Self {
            classifier: IsobarClassifier::BitFrequency {
                skew_threshold: 0.6,
                min_skewed_bits: 2,
            },
            ..Default::default()
        }
    }
}

/// Resolve a user-facing thread-count knob: `0` means auto-detect from
/// [`std::thread::available_parallelism`], any other value is taken as-is.
///
/// The result is always ≥ 1 — on machines or cgroups where parallelism
/// cannot be detected the fallback is one thread, never zero, so every
/// consumer (CLI `--threads`, pipeline workers, the serve worker pool) can
/// size pools and bounded queues without a zero-width deadlock. This is
/// the single shared definition; entry points must not re-derive it.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
    .max(1)
}

/// Full pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PrimacyConfig {
    /// Chunk size in bytes (rounded down to a whole number of elements).
    pub chunk_bytes: usize,
    /// Backend "solver" codec. The paper uses zlib.
    pub codec: CodecKind,
    /// Layout of the transformed IDs.
    pub linearization: Linearization,
    /// Per-chunk index policy.
    pub index_policy: IndexPolicy,
    /// ISOBAR analyzer settings for the mantissa bytes.
    pub isobar: IsobarConfig,
    /// Bytes per element (8 for f64, 4 for f32).
    pub element_size: usize,
    /// High-order bytes fed to the ID mapper (2 for f64, 1 for f32).
    pub hi_bytes: usize,
}

impl Default for PrimacyConfig {
    fn default() -> Self {
        Self {
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            codec: CodecKind::Zlib,
            linearization: Linearization::Column,
            index_policy: IndexPolicy::PerChunk,
            isobar: IsobarConfig::default(),
            element_size: 8,
            hi_bytes: 2,
        }
    }
}

impl PrimacyConfig {
    /// Configuration for single-precision data (1 high-order byte).
    pub fn f32() -> Self {
        Self {
            element_size: 4,
            hi_bytes: 1,
            ..Self::default()
        }
    }

    /// Number of whole elements per chunk.
    pub fn chunk_elements(&self) -> usize {
        (self.chunk_bytes / self.element_size).max(1)
    }

    /// Validate invariants; called by the pipeline constructor.
    pub fn validate(&self) -> Result<()> {
        if self.element_size == 0 || self.element_size > 16 {
            return Err(PrimacyError::InvalidConfig("element_size must be 1..=16"));
        }
        if self.hi_bytes == 0 || self.hi_bytes > 2 {
            return Err(PrimacyError::InvalidConfig(
                "hi_bytes must be 1 or 2 (ID domain is at most 65536)",
            ));
        }
        if self.hi_bytes >= self.element_size {
            return Err(PrimacyError::InvalidConfig(
                "hi_bytes must be smaller than element_size",
            ));
        }
        if self.chunk_bytes < self.element_size {
            return Err(PrimacyError::InvalidConfig(
                "chunk_bytes must hold at least one element",
            ));
        }
        if self.isobar.sample_stride == 0 {
            return Err(PrimacyError::InvalidConfig("sample_stride must be >= 1"));
        }
        if let IndexPolicy::Reuse {
            correlation_threshold,
        } = self.index_policy
        {
            if !(0.0..=1.0).contains(&correlation_threshold) {
                return Err(PrimacyError::InvalidConfig(
                    "correlation_threshold must be in [0, 1]",
                ));
            }
        }
        if !(0.0..=8.0).contains(&self.isobar.entropy_threshold_bits) {
            return Err(PrimacyError::InvalidConfig(
                "entropy_threshold_bits must be in [0, 8]",
            ));
        }
        if let IsobarClassifier::BitFrequency {
            skew_threshold,
            min_skewed_bits,
        } = self.isobar.classifier
        {
            if !(0.5..=1.0).contains(&skew_threshold) {
                return Err(PrimacyError::InvalidConfig(
                    "skew_threshold must be in [0.5, 1]",
                ));
            }
            if min_skewed_bits > 8 {
                return Err(PrimacyError::InvalidConfig(
                    "min_skewed_bits must be at most 8",
                ));
            }
        }
        Ok(())
    }

    /// Number of low-order bytes per element.
    pub fn lo_bytes(&self) -> usize {
        self.element_size - self.hi_bytes
    }
}

#[cfg(test)]
// Invalid-config construction is clearest as sequential assignments.
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = PrimacyConfig::default();
        assert_eq!(c.chunk_bytes, 3 * 1024 * 1024);
        assert_eq!(c.element_size, 8);
        assert_eq!(c.hi_bytes, 2);
        assert_eq!(c.lo_bytes(), 6);
        assert_eq!(c.codec, CodecKind::Zlib);
        assert_eq!(c.linearization, Linearization::Column);
        assert!(c.validate().is_ok());
        assert_eq!(c.chunk_elements(), 3 * 1024 * 1024 / 8);
    }

    #[test]
    fn f32_preset_is_valid() {
        let c = PrimacyConfig::f32();
        assert_eq!(c.element_size, 4);
        assert_eq!(c.hi_bytes, 1);
        assert_eq!(c.lo_bytes(), 3);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = PrimacyConfig::default();
        c.hi_bytes = 3;
        assert!(c.validate().is_err());

        let mut c = PrimacyConfig::default();
        c.hi_bytes = 0;
        assert!(c.validate().is_err());

        let mut c = PrimacyConfig::default();
        c.element_size = 2;
        c.hi_bytes = 2;
        assert!(c.validate().is_err());

        let mut c = PrimacyConfig::default();
        c.chunk_bytes = 4;
        assert!(c.validate().is_err());

        let mut c = PrimacyConfig::default();
        c.isobar.sample_stride = 0;
        assert!(c.validate().is_err());

        let mut c = PrimacyConfig::default();
        c.index_policy = IndexPolicy::Reuse {
            correlation_threshold: 1.5,
        };
        assert!(c.validate().is_err());

        let mut c = PrimacyConfig::default();
        c.isobar.entropy_threshold_bits = 9.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn resolve_threads_never_returns_zero() {
        assert!(resolve_threads(0) >= 1, "auto-detect floors at one");
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn tiny_chunks_still_hold_one_element() {
        let mut c = PrimacyConfig::default();
        c.chunk_bytes = 8;
        assert!(c.validate().is_ok());
        assert_eq!(c.chunk_elements(), 1);
    }
}
