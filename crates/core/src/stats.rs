//! Compression statistics and per-stage timing.

use std::time::Duration;

/// Canonical trace-span name of the hi/lo split (and re-join) stage.
pub const STAGE_SPLIT: &str = "split";
/// Canonical trace-span name of frequency analysis + index generation.
pub const STAGE_FREQ: &str = "freq";
/// Canonical trace-span name of ID encode/decode.
pub const STAGE_IDMAP: &str = "idmap";
/// Canonical trace-span name of row↔column linearization.
pub const STAGE_LINEARIZE: &str = "linearize";
/// Canonical trace-span name of the backend codec (named after the default
/// deflate backend; other backends record under the same span so the stage
/// table keeps one column per pipeline position).
pub const STAGE_DEFLATE: &str = "deflate";
/// Canonical trace-span name of ISOBAR analysis + partitioning.
pub const STAGE_ISOBAR: &str = "isobar";

/// The six pipeline stages in paper order (Fig. 2) — the row order of the
/// `--trace` stage table and the key order of its JSON emission.
pub const STAGES: [&str; 6] = [
    STAGE_SPLIT,
    STAGE_FREQ,
    STAGE_IDMAP,
    STAGE_LINEARIZE,
    STAGE_DEFLATE,
    STAGE_ISOBAR,
];

/// Wall-clock time spent in each pipeline stage during one compress or
/// decompress call. Stage names follow the paper's workflow (Fig. 2).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// High/low byte-matrix split (or re-join on decompress).
    pub split: Duration,
    /// Frequency analysis + index generation (compress only).
    pub frequency_analysis: Duration,
    /// ID encode/decode of the high-order bytes.
    pub id_mapping: Duration,
    /// Row↔column linearization.
    pub linearization: Duration,
    /// ISOBAR analysis + partitioning of the low-order bytes.
    pub isobar: Duration,
    /// Backend codec + container time: both hi and lo sections plus the
    /// stream's CRC-32 integrity trailer (the container-level analogue of
    /// the Adler-32 the zlib wrapper already counts here).
    pub codec: Duration,
}

impl StageTimings {
    /// Total preconditioner time (everything except the backend codec) —
    /// the `Tprec` input of the paper's performance model.
    pub fn preconditioner(&self) -> Duration {
        self.split + self.frequency_analysis + self.id_mapping + self.linearization + self.isobar
    }

    /// Total pipeline time.
    pub fn total(&self) -> Duration {
        self.preconditioner() + self.codec
    }

    /// The timings as `(stage name, duration)` pairs in [`STAGES`] order —
    /// the bridge from this struct to trace tables and JSON reports.
    pub fn by_stage(&self) -> [(&'static str, Duration); 6] {
        [
            (STAGE_SPLIT, self.split),
            (STAGE_FREQ, self.frequency_analysis),
            (STAGE_IDMAP, self.id_mapping),
            (STAGE_LINEARIZE, self.linearization),
            (STAGE_DEFLATE, self.codec),
            (STAGE_ISOBAR, self.isobar),
        ]
    }

    /// Accumulate another timing record (e.g. across chunks).
    pub fn add(&mut self, other: &StageTimings) {
        self.split += other.split;
        self.frequency_analysis += other.frequency_analysis;
        self.id_mapping += other.id_mapping;
        self.linearization += other.linearization;
        self.isobar += other.isobar;
        self.codec += other.codec;
    }
}

/// Outcome of one compression call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionStats {
    /// Bytes in.
    pub original_bytes: usize,
    /// Bytes out (full container, metadata included).
    pub compressed_bytes: usize,
    /// Number of chunks processed.
    pub chunks: usize,
    /// Chunks that carried their own index (< `chunks` under index reuse).
    pub own_index_chunks: usize,
    /// Fraction of low-order bytes classified compressible by ISOBAR
    /// (the model's α₂), averaged over chunks weighted by size.
    pub isobar_compressible_fraction: f64,
    /// Per-stage wall-clock timings, summed over chunks.
    pub timings: StageTimings,
}

impl CompressionStats {
    /// Compression ratio, original / compressed (Eq. 1 of the paper).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            return 0.0;
        }
        self.original_bytes as f64 / self.compressed_bytes as f64
    }

    /// End-to-end throughput in MB/s over the measured wall time
    /// (Eq. 2: original size / runtime).
    pub fn throughput_mbps(&self) -> f64 {
        let secs = self.timings.total().as_secs_f64();
        if secs == 0.0 {
            return f64::INFINITY;
        }
        self.original_bytes as f64 / 1e6 / secs
    }

    /// Preconditioner-only throughput (the model's `Tprec`).
    pub fn preconditioner_mbps(&self) -> f64 {
        let secs = self.timings.preconditioner().as_secs_f64();
        if secs == 0.0 {
            return f64::INFINITY;
        }
        self.original_bytes as f64 / 1e6 / secs
    }

    /// Codec-only throughput (the model's `Tcomp`).
    pub fn codec_mbps(&self) -> f64 {
        let secs = self.timings.codec.as_secs_f64();
        if secs == 0.0 {
            return f64::INFINITY;
        }
        self.original_bytes as f64 / 1e6 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_throughput() {
        let stats = CompressionStats {
            original_bytes: 8_000_000,
            compressed_bytes: 2_000_000,
            chunks: 3,
            own_index_chunks: 3,
            isobar_compressible_fraction: 0.5,
            timings: StageTimings {
                codec: Duration::from_millis(500),
                split: Duration::from_millis(250),
                ..Default::default()
            },
        };
        assert!((stats.ratio() - 4.0).abs() < 1e-12);
        // 8 MB over 0.75 s total.
        assert!((stats.throughput_mbps() - 8.0 / 0.75).abs() < 1e-9);
        assert!((stats.preconditioner_mbps() - 32.0).abs() < 1e-9);
        assert!((stats.codec_mbps() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn timings_accumulate() {
        let mut a = StageTimings {
            split: Duration::from_millis(10),
            codec: Duration::from_millis(20),
            ..Default::default()
        };
        let b = StageTimings {
            split: Duration::from_millis(5),
            isobar: Duration::from_millis(7),
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.split, Duration::from_millis(15));
        assert_eq!(a.isobar, Duration::from_millis(7));
        assert_eq!(a.preconditioner(), Duration::from_millis(22));
        assert_eq!(a.total(), Duration::from_millis(42));
    }

    #[test]
    fn by_stage_covers_every_field_in_canonical_order() {
        let t = StageTimings {
            split: Duration::from_nanos(1),
            frequency_analysis: Duration::from_nanos(2),
            id_mapping: Duration::from_nanos(4),
            linearization: Duration::from_nanos(8),
            isobar: Duration::from_nanos(16),
            codec: Duration::from_nanos(32),
        };
        let pairs = t.by_stage();
        let names: Vec<&str> = pairs.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, STAGES);
        let sum: Duration = pairs.iter().map(|(_, d)| *d).sum();
        assert_eq!(sum, t.total(), "by_stage must cover every timed field");
    }

    #[test]
    fn degenerate_stats_do_not_divide_by_zero() {
        let stats = CompressionStats {
            original_bytes: 0,
            compressed_bytes: 0,
            chunks: 0,
            own_index_chunks: 0,
            isobar_compressible_fraction: 0.0,
            timings: StageTimings::default(),
        };
        assert_eq!(stats.ratio(), 0.0);
        assert!(stats.throughput_mbps().is_infinite());
    }
}
