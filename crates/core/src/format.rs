//! The PRIMACY container format.
//!
//! A compressed stream is fully self-describing: the header echoes the
//! layout parameters, every chunk carries (or references) its ID index and
//! ISOBAR mask, and a CRC-32 of the original data closes the stream.
//!
//! ```text
//! "PRIM" | version u8 | element_size u8 | hi_bytes u8 | linearization u8 |
//! codec u8 | varint total_elements |
//!   chunk*:
//!     varint n_elements | flags u8 |
//!     [flags&1: varint k | k·hi_bytes index bytes] |
//!     varint hi_len | hi-compressed bytes |
//!     u16-le isobar mask |
//!     varint lo_len | lo-compressed bytes |
//!     raw incompressible bytes (n · #unset-mask-columns)
//! | crc32-le(original bytes)
//! ```

use crate::config::Linearization;
use crate::error::{PrimacyError, Result};
use primacy_codecs::CodecKind;

/// Stream magic.
pub const MAGIC: &[u8; 4] = b"PRIM";
/// Current format version.
pub const VERSION: u8 = 1;

/// Chunk flag: chunk carries its own index (vs. reusing the previous one).
pub const FLAG_OWN_INDEX: u8 = 0b0000_0001;

/// Encode a codec kind as a stream byte.
pub fn codec_to_byte(kind: CodecKind) -> u8 {
    match kind {
        CodecKind::Zlib => 0,
        CodecKind::Lzr => 1,
        CodecKind::Bwt => 2,
        CodecKind::Fpc => 3,
        CodecKind::Fpz => 4,
    }
}

/// Decode a codec byte.
pub fn codec_from_byte(b: u8) -> Result<CodecKind> {
    Ok(match b {
        0 => CodecKind::Zlib,
        1 => CodecKind::Lzr,
        2 => CodecKind::Bwt,
        3 => CodecKind::Fpc,
        4 => CodecKind::Fpz,
        _ => return Err(PrimacyError::Format("unknown codec byte")),
    })
}

/// Encode a linearization as a stream byte.
pub fn linearization_to_byte(l: Linearization) -> u8 {
    match l {
        Linearization::Row => 0,
        Linearization::Column => 1,
    }
}

/// Decode a linearization byte.
pub fn linearization_from_byte(b: u8) -> Result<Linearization> {
    Ok(match b {
        0 => Linearization::Row,
        1 => Linearization::Column,
        _ => return Err(PrimacyError::Format("unknown linearization byte")),
    })
}

/// Read a fixed-size array starting at `at`, or `None` if `at + N` is out of
/// bounds (including overflow). The panic-free counterpart of
/// `buf[at..at + N].try_into().unwrap()` for untrusted input.
pub(crate) fn read_array<const N: usize>(buf: &[u8], at: usize) -> Option<[u8; N]> {
    let end = at.checked_add(N)?;
    let s = buf.get(at..end)?;
    let mut a = [0u8; N];
    a.copy_from_slice(s);
    Some(a)
}

/// Decoded stream header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Bytes per element.
    pub element_size: usize,
    /// High-order bytes per element.
    pub hi_bytes: usize,
    /// ID-matrix layout.
    pub linearization: Linearization,
    /// Backend codec.
    pub codec: CodecKind,
    /// Total element count in the stream.
    pub total_elements: u64,
}

/// Write the stream header.
pub fn write_header(out: &mut Vec<u8>, h: &Header) {
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(h.element_size as u8);
    out.push(h.hi_bytes as u8);
    out.push(linearization_to_byte(h.linearization));
    out.push(codec_to_byte(h.codec));
    write_varint(out, h.total_elements);
}

/// Parse the stream header; returns the header and the offset of the first
/// chunk.
pub fn read_header(input: &[u8]) -> Result<(Header, usize)> {
    let head: [u8; 9] =
        read_array(input, 0).ok_or(PrimacyError::Format("stream shorter than header"))?;
    let [m0, m1, m2, m3, version, es, hi, lin, codec_byte] = head;
    if [m0, m1, m2, m3] != *MAGIC {
        return Err(PrimacyError::Format("bad magic"));
    }
    if version != VERSION {
        return Err(PrimacyError::UnsupportedVersion(version));
    }
    let element_size = es as usize;
    let hi_bytes = hi as usize;
    if element_size == 0
        || element_size > 16
        || hi_bytes == 0
        || hi_bytes > 2
        || hi_bytes >= element_size
    {
        return Err(PrimacyError::Format("implausible layout parameters"));
    }
    let linearization = linearization_from_byte(lin)?;
    let codec = codec_from_byte(codec_byte)?;
    let (total_elements, used) = read_varint(input.get(9..).unwrap_or(&[]))?;
    Ok((
        Header {
            element_size,
            hi_bytes,
            linearization,
            codec,
            total_elements,
        },
        // A varint never exceeds 10 bytes, so the sum is exact.
        9usize.saturating_add(used),
    ))
}

/// LEB128 varint writer (shared with the codecs crate's framing).
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// LEB128 varint reader, returning `(value, bytes_consumed)`.
pub fn read_varint(input: &[u8]) -> Result<(u64, usize)> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for (i, &b) in input.iter().enumerate() {
        if shift >= 64 {
            return Err(PrimacyError::Format("varint overflow"));
        }
        // The guard above keeps shift < 64; wrapping_shl makes that explicit.
        v |= u64::from(b & 0x7f).wrapping_shl(shift);
        if b & 0x80 == 0 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(PrimacyError::Format("truncated varint"))
}

/// Cursor over the chunk section of a stream.
#[derive(Debug)]
pub struct Reader<'a> {
    input: &'a [u8],
    /// Current offset.
    pub pos: usize,
    /// End of the chunk section (start of the CRC trailer).
    pub end: usize,
}

impl<'a> Reader<'a> {
    /// Cursor from `pos` to `end`. An inverted range is clamped so every
    /// accessor reports truncation instead of panicking on a bad directory.
    pub fn new(input: &'a [u8], pos: usize, end: usize) -> Self {
        let end = end.min(input.len()).max(pos.min(input.len()));
        let pos = pos.min(end);
        Self { input, pos, end }
    }

    /// Remaining bytes in the chunk section.
    pub fn remaining(&self) -> usize {
        self.end.saturating_sub(self.pos)
    }

    /// Read one varint.
    pub fn varint(&mut self) -> Result<u64> {
        let window = self.input.get(self.pos..self.end).unwrap_or(&[]);
        let (v, used) = read_varint(window)?;
        // used is bounded by the window length, so pos stays within end.
        self.pos = self.pos.saturating_add(used);
        Ok(v)
    }

    /// Read one byte.
    pub fn byte(&mut self) -> Result<u8> {
        if self.pos >= self.end {
            return Err(PrimacyError::Format("unexpected end of stream"));
        }
        let b = self
            .input
            .get(self.pos)
            .copied()
            .ok_or(PrimacyError::Format("unexpected end of stream"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a little-endian u16.
    pub fn u16_le(&mut self) -> Result<u16> {
        let end = self
            .pos
            .checked_add(2)
            .filter(|&e| e <= self.end)
            .ok_or(PrimacyError::Format("unexpected end of stream"))?;
        let v = u16::from_le_bytes(
            read_array(self.input, self.pos)
                .ok_or(PrimacyError::Format("unexpected end of stream"))?,
        );
        self.pos = end;
        Ok(v)
    }

    /// Borrow `len` bytes.
    pub fn bytes(&mut self, len: usize) -> Result<&'a [u8]> {
        // `len` comes straight from an attacker-controllable varint: use
        // checked arithmetic so oversized claims error instead of wrapping
        // into a panicking slice.
        let end = self
            .pos
            .checked_add(len)
            .ok_or(PrimacyError::Format("section length overflows"))?;
        if end > self.end {
            return Err(PrimacyError::Format("chunk section truncated"));
        }
        let s = self
            .input
            .get(self.pos..end)
            .ok_or(PrimacyError::Format("chunk section truncated"))?;
        self.pos = end;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> Header {
        Header {
            element_size: 8,
            hi_bytes: 2,
            linearization: Linearization::Column,
            codec: CodecKind::Zlib,
            total_elements: 123_456,
        }
    }

    #[test]
    fn header_roundtrip() {
        let mut buf = Vec::new();
        write_header(&mut buf, &sample_header());
        let (h, off) = read_header(&buf).unwrap();
        assert_eq!(h, sample_header());
        assert_eq!(off, buf.len());
    }

    #[test]
    fn header_rejects_bad_magic_version_layout() {
        let mut buf = Vec::new();
        write_header(&mut buf, &sample_header());

        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(read_header(&bad).is_err());

        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(matches!(
            read_header(&bad),
            Err(PrimacyError::UnsupportedVersion(99))
        ));

        let mut bad = buf.clone();
        bad[5] = 0; // element_size 0
        assert!(read_header(&bad).is_err());

        let mut bad = buf.clone();
        bad[6] = 8; // hi_bytes 8 >= element_size
        assert!(read_header(&bad).is_err());

        assert!(read_header(&buf[..5]).is_err());
    }

    #[test]
    fn codec_bytes_roundtrip() {
        for kind in CodecKind::ALL {
            assert_eq!(codec_from_byte(codec_to_byte(kind)).unwrap(), kind);
        }
        assert!(codec_from_byte(250).is_err());
    }

    #[test]
    fn linearization_bytes_roundtrip() {
        for l in [Linearization::Row, Linearization::Column] {
            assert_eq!(
                linearization_from_byte(linearization_to_byte(l)).unwrap(),
                l
            );
        }
        assert!(linearization_from_byte(7).is_err());
    }

    #[test]
    fn reader_primitives() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 300);
        buf.push(0xAB);
        buf.extend_from_slice(&0x1234u16.to_le_bytes());
        buf.extend_from_slice(b"payload");
        let mut r = Reader::new(&buf, 0, buf.len());
        assert_eq!(r.varint().unwrap(), 300);
        assert_eq!(r.byte().unwrap(), 0xAB);
        assert_eq!(r.u16_le().unwrap(), 0x1234);
        assert_eq!(r.bytes(7).unwrap(), b"payload");
        assert_eq!(r.remaining(), 0);
        assert!(r.byte().is_err());
        assert!(r.bytes(1).is_err());
    }
}
