//! The frequency-ranked bijective ID mapping (§II-C) and its serialized
//! index (§II-F).
//!
//! The most frequent high-order byte-sequence is assigned ID 0, the next
//! most frequent ID 1, and so on. Because IDs are emitted as `hi_bytes`-wide
//! big-endian integers, low IDs translate to runs of 0-bytes: the paper
//! reports this raises the frequency of the most common byte by ~15 % on
//! average across its 20 datasets.

use crate::error::{PrimacyError, Result};
use crate::freq::FreqTable;
use crate::split::{hi_key, write_hi_key};

/// A bijection between the byte-sequences present in a chunk and dense IDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdMap {
    /// `seq_for_id[id]` = original byte-sequence.
    seq_for_id: Vec<u16>,
    /// `id_for_seq[seq]` = ID, or `u16::MAX` when the sequence is absent.
    id_for_seq: Vec<u16>,
    hi_bytes: usize,
}

/// Sentinel for "sequence not present in this chunk".
const ABSENT: u16 = u16::MAX;

impl IdMap {
    /// Build the map from a chunk's frequency table.
    pub fn from_freq(freq: &FreqTable, hi_bytes: usize) -> Result<Self> {
        Self::from_ranked(freq.ranked(), hi_bytes)
    }

    /// Build from an explicit sequence ranking (ID i ↦ `ranked[i]`).
    pub fn from_ranked(ranked: Vec<u16>, hi_bytes: usize) -> Result<Self> {
        let domain = 1usize << (8 * hi_bytes);
        if ranked.len() >= ABSENT as usize && hi_bytes == 2 {
            // 65535 distinct sequences would collide with the sentinel; with
            // a full 65536-value domain the mapping buys nothing anyway.
            return Err(PrimacyError::InvalidInput(
                "chunk uses the full byte-sequence domain; ID mapping degenerate",
            ));
        }
        let mut id_for_seq = vec![ABSENT; domain];
        for (id, &seq) in ranked.iter().enumerate() {
            if (seq as usize) >= domain {
                return Err(PrimacyError::Format("index sequence exceeds domain"));
            }
            if id_for_seq[seq as usize] != ABSENT {
                return Err(PrimacyError::Format("duplicate sequence in index"));
            }
            id_for_seq[seq as usize] = id as u16;
        }
        Ok(Self {
            seq_for_id: ranked,
            id_for_seq,
            hi_bytes,
        })
    }

    /// Number of mapped sequences.
    pub fn len(&self) -> usize {
        self.seq_for_id.len()
    }

    /// True when no sequences are mapped (empty chunk).
    pub fn is_empty(&self) -> bool {
        self.seq_for_id.is_empty()
    }

    /// ID for a sequence, if present.
    #[inline]
    pub fn id_of(&self, seq: u16) -> Option<u16> {
        match self.id_for_seq[seq as usize] {
            ABSENT => None,
            id => Some(id),
        }
    }

    /// Sequence for an ID, if in range.
    #[inline]
    pub fn seq_of(&self, id: u16) -> Option<u16> {
        self.seq_for_id.get(id as usize).copied()
    }

    /// Rewrite a row-major high matrix in place: every byte-sequence becomes
    /// its ID. Fails only if a sequence is unmapped (possible when reusing a
    /// stale index under [`crate::IndexPolicy::Reuse`]).
    pub fn encode_hi(&self, hi: &mut [u8]) -> Result<()> {
        if self.hi_bytes == 2 {
            for row in hi.chunks_exact_mut(2) {
                let seq = u16::from_be_bytes([row[0], row[1]]) as usize;
                let id = self.id_for_seq[seq];
                if id == ABSENT {
                    return Err(PrimacyError::Format("sequence missing from index"));
                }
                row.copy_from_slice(&id.to_be_bytes());
            }
            return Ok(());
        }
        let n = hi.len() / self.hi_bytes;
        for i in 0..n {
            let seq = hi_key(hi, i, self.hi_bytes);
            let id = self
                .id_of(seq)
                .ok_or(PrimacyError::Format("sequence missing from index"))?;
            write_hi_key(hi, i, self.hi_bytes, id);
        }
        Ok(())
    }

    /// Check every sequence of a high matrix is covered (used to decide
    /// whether a previous index can be reused without re-encoding).
    pub fn covers(&self, hi: &[u8]) -> bool {
        let n = hi.len() / self.hi_bytes;
        (0..n).all(|i| self.id_of(hi_key(hi, i, self.hi_bytes)).is_some())
    }

    /// Inverse of [`IdMap::encode_hi`].
    pub fn decode_hi(&self, hi: &mut [u8]) -> Result<()> {
        if self.hi_bytes == 2 {
            let table = &self.seq_for_id;
            for row in hi.chunks_exact_mut(2) {
                let id = u16::from_be_bytes([row[0], row[1]]) as usize;
                let seq = *table
                    .get(id)
                    .ok_or(PrimacyError::Format("ID out of index range"))?;
                row.copy_from_slice(&seq.to_be_bytes());
            }
            return Ok(());
        }
        let n = hi.len() / self.hi_bytes;
        for i in 0..n {
            let id = hi_key(hi, i, self.hi_bytes);
            let seq = self
                .seq_of(id)
                .ok_or(PrimacyError::Format("ID out of index range"))?;
            write_hi_key(hi, i, self.hi_bytes, seq);
        }
        Ok(())
    }

    /// Serialize the index: the sequences in ID order, `hi_bytes` each,
    /// big-endian.
    pub fn serialize(&self, out: &mut Vec<u8>) {
        for &seq in &self.seq_for_id {
            match self.hi_bytes {
                1 => out.push(seq as u8),
                _ => out.extend_from_slice(&seq.to_be_bytes()),
            }
        }
    }

    /// Deserialize an index of `k` sequences.
    pub fn deserialize(bytes: &[u8], k: usize, hi_bytes: usize) -> Result<Self> {
        if bytes.len() != k * hi_bytes {
            return Err(PrimacyError::Format("index size mismatch"));
        }
        let ranked: Vec<u16> = (0..k)
            .map(|i| match hi_bytes {
                1 => u16::from(bytes[i]),
                _ => u16::from_be_bytes([bytes[i * 2], bytes[i * 2 + 1]]),
            })
            .collect();
        Self::from_ranked(ranked, hi_bytes)
    }

    /// A placeholder map with no sequences, suitable only as a target for
    /// [`IdMap::reload`]. Consistent (every lookup reports absent) but tiny:
    /// the full-size `id_for_seq` table is grown on first reload.
    pub(crate) fn placeholder() -> Self {
        Self {
            seq_for_id: Vec::new(),
            id_for_seq: vec![ABSENT; 1 << 8],
            hi_bytes: 1,
        }
    }

    /// [`IdMap::deserialize`] into `self`, reusing its tables: clearing costs
    /// O(previous k) — the previous `seq_for_id` says exactly which
    /// `id_for_seq` slots are live — so a warm reload touches no memory
    /// proportional to the 65 536-entry domain and performs no allocations.
    ///
    /// On error `self` is restored to a consistent empty state, never left
    /// half-loaded.
    pub fn reload(&mut self, bytes: &[u8], k: usize, hi_bytes: usize) -> Result<()> {
        if bytes.len() != k * hi_bytes {
            return Err(PrimacyError::Format("index size mismatch"));
        }
        let domain = 1usize << (8 * hi_bytes);
        if k >= ABSENT as usize && hi_bytes == 2 {
            return Err(PrimacyError::InvalidInput(
                "chunk uses the full byte-sequence domain; ID mapping degenerate",
            ));
        }
        for &seq in &self.seq_for_id {
            if let Some(slot) = self.id_for_seq.get_mut(seq as usize) {
                *slot = ABSENT;
            }
        }
        self.seq_for_id.clear();
        self.id_for_seq.resize(domain, ABSENT);
        self.hi_bytes = hi_bytes;
        for i in 0..k {
            let seq = match hi_bytes {
                1 => u16::from(bytes[i]),
                _ => u16::from_be_bytes([bytes[i * 2], bytes[i * 2 + 1]]),
            };
            let dup = {
                let slot = &mut self.id_for_seq[seq as usize];
                let dup = *slot != ABSENT;
                *slot = i as u16;
                dup
            };
            if dup {
                // Roll back what this call loaded so the invariant
                // (id_for_seq[s] set ⇔ s ∈ seq_for_id) still holds.
                self.id_for_seq[seq as usize] = ABSENT;
                for &s in &self.seq_for_id {
                    self.id_for_seq[s as usize] = ABSENT;
                }
                self.seq_for_id.clear();
                return Err(PrimacyError::Format("duplicate sequence in index"));
            }
            self.seq_for_id.push(seq);
        }
        Ok(())
    }

    /// Size of the serialized index in bytes.
    pub fn serialized_len(&self) -> usize {
        self.seq_for_id.len() * self.hi_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::FreqTable;

    fn hi_from_keys(keys: &[u16]) -> Vec<u8> {
        keys.iter()
            .flat_map(|&k| [(k >> 8) as u8, k as u8])
            .collect()
    }

    fn map_for(keys: &[u16]) -> IdMap {
        let hi = hi_from_keys(keys);
        let f = FreqTable::from_hi_matrix(&hi, 2);
        IdMap::from_freq(&f, 2).unwrap()
    }

    #[test]
    fn most_frequent_gets_id_zero() {
        let m = map_for(&[0x3FF0, 0x3FF0, 0x3FF0, 0x4000, 0x4000, 0xC000]);
        assert_eq!(m.id_of(0x3FF0), Some(0));
        assert_eq!(m.id_of(0x4000), Some(1));
        assert_eq!(m.id_of(0xC000), Some(2));
        assert_eq!(m.id_of(0x1234), None);
        assert_eq!(m.seq_of(0), Some(0x3FF0));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let keys = [0x3FF0u16, 0x4000, 0x3FF0, 0xBFF0, 0x3FF0, 0x4000];
        let mut hi = hi_from_keys(&keys);
        let original = hi.clone();
        let m = map_for(&keys);
        m.encode_hi(&mut hi).unwrap();
        assert_ne!(hi, original);
        // Most frequent sequence (0x3FF0) must have become ID 0 = two
        // zero bytes.
        assert_eq!(&hi[0..2], &[0, 0]);
        m.decode_hi(&mut hi).unwrap();
        assert_eq!(hi, original);
    }

    #[test]
    fn encoding_increases_zero_byte_frequency() {
        // Skewed sequences from a realistic exponent range.
        let keys: Vec<u16> = (0..5000)
            .map(|i| 0x3FF0 + (i % 7) as u16 * ((i % 23) as u16 / 20))
            .collect();
        let mut hi = hi_from_keys(&keys);
        let zeros_before = hi.iter().filter(|&&b| b == 0).count();
        let m = map_for(&keys);
        m.encode_hi(&mut hi).unwrap();
        let zeros_after = hi.iter().filter(|&&b| b == 0).count();
        assert!(
            zeros_after > zeros_before + hi.len() / 2,
            "zeros {zeros_before} -> {zeros_after}"
        );
    }

    #[test]
    fn serialize_deserialize_roundtrip() {
        let m = map_for(&[9, 9, 9, 7, 7, 1, 2, 2, 2, 2]);
        let mut buf = Vec::new();
        m.serialize(&mut buf);
        assert_eq!(buf.len(), m.serialized_len());
        let back = IdMap::deserialize(&buf, m.len(), 2).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn deserialize_rejects_bad_sizes_and_duplicates() {
        assert!(IdMap::deserialize(&[0, 1, 0], 2, 2).is_err());
        // Duplicate sequence 0x0001 twice.
        assert!(IdMap::deserialize(&[0, 1, 0, 1], 2, 2).is_err());
    }

    #[test]
    fn covers_detects_unmapped_sequences() {
        let m = map_for(&[1, 1, 2]);
        assert!(m.covers(&hi_from_keys(&[1, 2, 2, 1])));
        assert!(!m.covers(&hi_from_keys(&[1, 3])));
    }

    #[test]
    fn encode_fails_on_unmapped_sequence() {
        let m = map_for(&[1, 1, 2]);
        let mut hi = hi_from_keys(&[1, 5]);
        assert!(m.encode_hi(&mut hi).is_err());
    }

    #[test]
    fn one_byte_hi_mapping() {
        let hi = vec![200u8, 200, 10, 10, 10, 30];
        let f = FreqTable::from_hi_matrix(&hi, 1);
        let m = IdMap::from_freq(&f, 1).unwrap();
        assert_eq!(m.id_of(10), Some(0));
        assert_eq!(m.id_of(200), Some(1));
        assert_eq!(m.id_of(30), Some(2));
        let mut data = hi.clone();
        m.encode_hi(&mut data).unwrap();
        assert_eq!(data, vec![1, 1, 0, 0, 0, 2]);
        m.decode_hi(&mut data).unwrap();
        assert_eq!(data, hi);
        let mut buf = Vec::new();
        m.serialize(&mut buf);
        assert_eq!(IdMap::deserialize(&buf, 3, 1).unwrap(), m);
    }

    #[test]
    fn empty_map() {
        let m = IdMap::from_ranked(vec![], 2).unwrap();
        assert!(m.is_empty());
        let mut empty: Vec<u8> = vec![];
        m.encode_hi(&mut empty).unwrap();
    }

    #[test]
    fn reload_matches_deserialize_across_widths() {
        let mut scratch = IdMap::placeholder();
        // Successive reloads with different k, contents, and widths must land
        // on exactly the same map deserialize would build from scratch.
        let cases: [(&[u8], usize, usize); 4] = [
            (&[0x3F, 0xF0, 0x40, 0x00, 0xC0, 0x00], 3, 2),
            (&[0x40, 0x00, 0x3F, 0xF0], 2, 2),
            (&[10, 200, 30], 3, 1),
            (&[], 0, 2),
        ];
        for (bytes, k, hi_bytes) in cases {
            scratch.reload(bytes, k, hi_bytes).unwrap();
            assert_eq!(scratch, IdMap::deserialize(bytes, k, hi_bytes).unwrap());
        }
    }

    #[test]
    fn reload_error_leaves_consistent_empty_map() {
        let mut scratch = IdMap::placeholder();
        scratch.reload(&[0x3F, 0xF0, 0x40, 0x00], 2, 2).unwrap();
        // Duplicate sequence: must fail and roll back to an empty map whose
        // lookups all report absent (no stale IDs from the failed load or
        // the previous one).
        assert!(scratch.reload(&[0, 1, 0, 1], 2, 2).is_err());
        assert!(scratch.is_empty());
        assert_eq!(scratch.id_of(0x3FF0), None);
        assert_eq!(scratch.id_of(0x0001), None);
        // And the scratch is still reusable afterwards.
        scratch.reload(&[0xAB, 0xCD], 1, 2).unwrap();
        assert_eq!(scratch.id_of(0xABCD), Some(0));
    }
}
