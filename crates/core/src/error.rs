//! Error type for the PRIMACY pipeline.

use primacy_codecs::CodecError;

/// Errors produced by the preconditioner pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrimacyError {
    /// Error surfaced by the backend codec.
    Codec(CodecError),
    /// The PRIMACY container is structurally invalid.
    Format(&'static str),
    /// The container declared more data than the buffer actually holds —
    /// a length or offset field points past the end of the input.
    Truncated,
    /// Stream was produced with an incompatible format version.
    UnsupportedVersion(u8),
    /// The input violates a configuration constraint (e.g. byte length not a
    /// multiple of the element size).
    InvalidInput(&'static str),
    /// A configuration value is out of range.
    InvalidConfig(&'static str),
}

impl From<CodecError> for PrimacyError {
    fn from(e: CodecError) -> Self {
        PrimacyError::Codec(e)
    }
}

impl std::fmt::Display for PrimacyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrimacyError::Codec(e) => write!(f, "backend codec error: {e}"),
            PrimacyError::Format(msg) => write!(f, "invalid PRIMACY container: {msg}"),
            PrimacyError::Truncated => {
                write!(
                    f,
                    "PRIMACY container is truncated: declared data exceeds buffer"
                )
            }
            PrimacyError::UnsupportedVersion(v) => {
                write!(f, "unsupported PRIMACY format version {v}")
            }
            PrimacyError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            PrimacyError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for PrimacyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PrimacyError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, PrimacyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PrimacyError::from(CodecError::Truncated);
        assert!(e.to_string().contains("truncated"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(PrimacyError::Format("bad header")
            .to_string()
            .contains("bad header"));
        assert!(PrimacyError::UnsupportedVersion(9)
            .to_string()
            .contains('9'));
        assert!(PrimacyError::Truncated.to_string().contains("truncated"));
    }
}
