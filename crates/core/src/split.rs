//! High/low byte-matrix split (§II-B).
//!
//! A chunk of N elements is viewed as an N×`element_size` byte matrix in
//! *big-endian* per-element order, so that byte column 0 is the sign +
//! high exponent byte regardless of host endianness. The matrix is split
//! into an N×`hi_bytes` high-order part (fed to the ID mapper) and an
//! N×`lo_bytes` low-order part (fed to ISOBAR).

use crate::error::{PrimacyError, Result};

/// Split little-endian element bytes into row-major high and low matrices.
///
/// `input.len()` must be a multiple of `element_size`.
pub fn split_hi_lo(
    input: &[u8],
    element_size: usize,
    hi_bytes: usize,
) -> Result<(Vec<u8>, Vec<u8>)> {
    if !input.len().is_multiple_of(element_size) {
        return Err(PrimacyError::InvalidInput(
            "byte length is not a multiple of the element size",
        ));
    }
    let n = input.len() / element_size;
    let lo_bytes = element_size - hi_bytes;
    let mut hi = vec![0u8; n * hi_bytes];
    let mut lo = vec![0u8; n * lo_bytes];
    if element_size == 8 && hi_bytes == 2 {
        // Hot path for f64: one u64 load per element, then exactly two wide
        // stores — a u16 for the hi pair and a u64 for the six lo bytes. The
        // lo store writes `(v << 16).to_be_bytes()`, whose last two bytes are
        // zero and land in the *next* element's lo slot, to be overwritten by
        // the next iteration; only the final element (whose slot has no
        // successor to spill into) takes the exact-width path.
        for i in 0..n.saturating_sub(1) {
            let mut a = [0u8; 8];
            a.copy_from_slice(&input[i * 8..i * 8 + 8]);
            let v = u64::from_le_bytes(a);
            hi[i * 2..i * 2 + 2].copy_from_slice(&((v >> 48) as u16).to_be_bytes());
            lo[i * 6..i * 6 + 8].copy_from_slice(&(v << 16).to_be_bytes());
        }
        if n > 0 {
            let i = n - 1;
            let mut a = [0u8; 8];
            a.copy_from_slice(&input[i * 8..i * 8 + 8]);
            let be = u64::from_le_bytes(a).to_be_bytes();
            hi[i * 2..i * 2 + 2].copy_from_slice(&be[0..2]);
            lo[i * 6..i * 6 + 6].copy_from_slice(&be[2..8]);
        }
        return Ok((hi, lo));
    }
    if element_size == 4 && hi_bytes == 1 {
        // Hot path for f32: one u32 load per element.
        for ((elem, h), l) in input
            .chunks_exact(4)
            .zip(hi.iter_mut())
            .zip(lo.chunks_exact_mut(3))
        {
            let mut a = [0u8; 4];
            a.copy_from_slice(elem); // chunks_exact(4) guarantees the length
            let be = u32::from_le_bytes(a).to_be_bytes();
            *h = be[0];
            l.copy_from_slice(&be[1..4]);
        }
        return Ok((hi, lo));
    }
    for ((elem, h), l) in input
        .chunks_exact(element_size)
        .zip(hi.chunks_exact_mut(hi_bytes))
        .zip(lo.chunks_exact_mut(lo_bytes))
    {
        // Big-endian order: most significant byte (sign+exponent) first.
        for (k, slot) in h.iter_mut().enumerate() {
            *slot = elem[element_size - 1 - k];
        }
        for (k, slot) in l.iter_mut().enumerate() {
            *slot = elem[element_size - 1 - hi_bytes - k];
        }
    }
    Ok((hi, lo))
}

/// Inverse of [`split_hi_lo`]: reassemble little-endian element bytes.
pub fn join_hi_lo(hi: &[u8], lo: &[u8], element_size: usize, hi_bytes: usize) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    join_hi_lo_into(hi, lo, element_size, hi_bytes, &mut out)?;
    Ok(out)
}

/// [`join_hi_lo`] into a caller-owned buffer (cleared first, capacity kept):
/// a warm call on a sufficiently-large `out` performs no allocations.
pub fn join_hi_lo_into(
    hi: &[u8],
    lo: &[u8],
    element_size: usize,
    hi_bytes: usize,
    out: &mut Vec<u8>,
) -> Result<()> {
    let lo_bytes = element_size - hi_bytes;
    if !hi.len().is_multiple_of(hi_bytes) || !lo.len().is_multiple_of(lo_bytes) {
        return Err(PrimacyError::Format("hi/lo matrices have ragged rows"));
    }
    let n = hi.len() / hi_bytes;
    if lo.len() / lo_bytes != n {
        return Err(PrimacyError::Format("hi/lo matrices disagree on row count"));
    }
    out.clear();
    out.resize(n * element_size, 0);
    if element_size == 8 && hi_bytes == 2 {
        // Hot path for f64, mirroring the split fast path: a u16 load for the
        // hi pair, one overlapping u64 load that grabs the six lo bytes (plus
        // two bytes of the next row, shifted away), and a single u64 store.
        for i in 0..n.saturating_sub(1) {
            let mut h = [0u8; 2];
            h.copy_from_slice(&hi[i * 2..i * 2 + 2]);
            let mut l = [0u8; 8];
            l.copy_from_slice(&lo[i * 6..i * 6 + 8]);
            let v = u64::from(u16::from_be_bytes(h)) << 48 | u64::from_be_bytes(l) >> 16;
            out[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        if n > 0 {
            let i = n - 1;
            let mut be = [0u8; 8];
            be[0..2].copy_from_slice(&hi[i * 2..i * 2 + 2]);
            be[2..8].copy_from_slice(&lo[i * 6..i * 6 + 6]);
            out[i * 8..i * 8 + 8].copy_from_slice(&u64::from_be_bytes(be).to_le_bytes());
        }
        return Ok(());
    }
    if element_size == 4 && hi_bytes == 1 {
        // Hot path for f32: assemble the big-endian element in a register.
        for ((elem, &h), l) in out
            .chunks_exact_mut(4)
            .zip(hi.iter())
            .zip(lo.chunks_exact(3))
        {
            let mut be = [0u8; 4];
            be[0] = h;
            be[1..4].copy_from_slice(l);
            elem.copy_from_slice(&u32::from_be_bytes(be).to_le_bytes());
        }
        return Ok(());
    }
    for ((elem, h), l) in out
        .chunks_exact_mut(element_size)
        .zip(hi.chunks_exact(hi_bytes))
        .zip(lo.chunks_exact(lo_bytes))
    {
        for (k, &b) in h.iter().enumerate() {
            elem[element_size - 1 - k] = b;
        }
        for (k, &b) in l.iter().enumerate() {
            elem[element_size - 1 - hi_bytes - k] = b;
        }
    }
    Ok(())
}

/// Read the high-order byte-sequence of row `i` as an integer key
/// (`hi_bytes` ∈ {1, 2}).
#[inline]
pub fn hi_key(hi: &[u8], i: usize, hi_bytes: usize) -> u16 {
    match hi_bytes {
        1 => u16::from(hi[i]),
        2 => u16::from(hi[i * 2]) << 8 | u16::from(hi[i * 2 + 1]),
        // lint: allow(panic) -- hi_bytes is validated to 1 or 2 at every config/header boundary
        _ => unreachable!("validated: hi_bytes is 1 or 2"),
    }
}

/// Write an integer key back as a high-order byte-sequence.
#[inline]
pub fn write_hi_key(out: &mut [u8], i: usize, hi_bytes: usize, key: u16) {
    match hi_bytes {
        1 => out[i] = key as u8,
        2 => {
            out[i * 2] = (key >> 8) as u8;
            out[i * 2 + 1] = key as u8;
        }
        // lint: allow(panic) -- hi_bytes is validated to 1 or 2 at every config/header boundary
        _ => unreachable!("validated: hi_bytes is 1 or 2"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_extracts_sign_and_exponent_bytes() {
        // 1.0f64 = 0x3FF0000000000000; the two big-endian high bytes are
        // 0x3F, 0xF0.
        let bytes = 1.0f64.to_le_bytes();
        let (hi, lo) = split_hi_lo(&bytes, 8, 2).unwrap();
        assert_eq!(hi, vec![0x3F, 0xF0]);
        assert_eq!(lo, vec![0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn split_join_roundtrip_f64() {
        let values: Vec<f64> = (0..500).map(|i| (i as f64).sqrt() * -3.25).collect();
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let (hi, lo) = split_hi_lo(&bytes, 8, 2).unwrap();
        assert_eq!(hi.len(), 500 * 2);
        assert_eq!(lo.len(), 500 * 6);
        let back = join_hi_lo(&hi, &lo, 8, 2).unwrap();
        assert_eq!(back, bytes);
    }

    #[test]
    fn split_join_roundtrip_f32_shape() {
        let bytes: Vec<u8> = (0..400u32).flat_map(|i| (i as f32).to_le_bytes()).collect();
        let (hi, lo) = split_hi_lo(&bytes, 4, 1).unwrap();
        assert_eq!(hi.len(), 400);
        assert_eq!(lo.len(), 1200);
        assert_eq!(join_hi_lo(&hi, &lo, 4, 1).unwrap(), bytes);
    }

    #[test]
    fn ragged_input_rejected() {
        assert!(split_hi_lo(&[1, 2, 3], 8, 2).is_err());
        assert!(join_hi_lo(&[1], &[1, 2, 3, 4, 5, 6], 8, 2).is_err());
        assert!(join_hi_lo(&[1, 2], &[1, 2, 3, 4, 5], 8, 2).is_err());
        // Row-count disagreement.
        assert!(join_hi_lo(&[1, 2, 3, 4], &[1, 2, 3, 4, 5, 6], 8, 2).is_err());
    }

    #[test]
    fn hi_key_roundtrip() {
        let mut buf = vec![0u8; 6];
        for (i, key) in [(0usize, 0x1234u16), (1, 0), (2, 0xFFFF)] {
            write_hi_key(&mut buf, i, 2, key);
            assert_eq!(hi_key(&buf, i, 2), key);
        }
        let mut buf = vec![0u8; 3];
        for (i, key) in [(0usize, 0x12u16), (1, 0xFF), (2, 1)] {
            write_hi_key(&mut buf, i, 1, key);
            assert_eq!(hi_key(&buf, i, 1), key);
        }
    }

    #[test]
    fn fast_paths_match_scalar_layout() {
        // (8,2) and (4,1) take word-wise paths with an overlapping-store
        // tail; (8,3) takes the generic loop. All must agree with the scalar
        // big-endian layout definition, including n = 1 (tail only) and
        // n = 2 (one overlapping store + tail).
        for (es, hb, n) in [
            (8usize, 2usize, 1usize),
            (8, 2, 2),
            (8, 2, 97),
            (4, 1, 1),
            (4, 1, 50),
            (8, 3, 40),
        ] {
            let input: Vec<u8> = (0..n * es).map(|i| (i * 37 % 256) as u8).collect();
            let (hi, lo) = split_hi_lo(&input, es, hb).unwrap();
            for r in 0..n {
                let elem = &input[r * es..(r + 1) * es];
                for k in 0..hb {
                    assert_eq!(hi[r * hb + k], elem[es - 1 - k], "{es},{hb} hi r={r} k={k}");
                }
                for k in 0..es - hb {
                    assert_eq!(
                        lo[r * (es - hb) + k],
                        elem[es - 1 - hb - k],
                        "{es},{hb} lo r={r} k={k}"
                    );
                }
            }
            assert_eq!(
                join_hi_lo(&hi, &lo, es, hb).unwrap(),
                input,
                "{es},{hb},{n}"
            );
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let (hi, lo) = split_hi_lo(&[], 8, 2).unwrap();
        assert!(hi.is_empty() && lo.is_empty());
        assert_eq!(join_hi_lo(&hi, &lo, 8, 2).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn exponent_byte_regularity_shows_in_hi() {
        // Values in a narrow range share their exponent byte: hi columns
        // must have far fewer unique values than lo columns.
        let values: Vec<f64> = (0..2000).map(|i| 1.0 + (i as f64) * 1e-7).collect();
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let (hi, _lo) = split_hi_lo(&bytes, 8, 2).unwrap();
        let mut uniq: Vec<u16> = (0..2000).map(|i| hi_key(&hi, i, 2)).collect();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() < 10, "{} unique hi sequences", uniq.len());
    }
}
