//! Byte-sequence frequency analysis (§II-C, first pipeline stage).

use crate::split::hi_key;

/// Histogram of high-order byte-sequences. Indexed by the sequence value;
/// length is `1 << (8 * hi_bytes)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreqTable {
    counts: Vec<u32>,
    total: u64,
}

impl FreqTable {
    /// Count the byte-sequences of a row-major high matrix.
    pub fn from_hi_matrix(hi: &[u8], hi_bytes: usize) -> Self {
        let domain = 1usize << (8 * hi_bytes);
        let mut counts = vec![0u32; domain];
        let n = hi.len() / hi_bytes;
        for i in 0..n {
            counts[hi_key(hi, i, hi_bytes) as usize] += 1;
        }
        Self {
            counts,
            total: n as u64,
        }
    }

    /// Occurrences of sequence `seq`.
    #[inline]
    pub fn count(&self, seq: u16) -> u32 {
        self.counts[seq as usize]
    }

    /// Raw counts, indexed by sequence value.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Total sequences counted (= rows in the matrix).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct sequences present. The paper reports < 2,000 of
    /// 65,536 for most scientific datasets.
    pub fn unique(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Sequences sorted by descending frequency, ties broken by ascending
    /// sequence value (the deterministic rank order IDs are assigned in).
    pub fn ranked(&self) -> Vec<u16> {
        let mut seqs: Vec<u16> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(s, _)| s as u16)
            .collect();
        seqs.sort_by(|&a, &b| {
            self.counts[b as usize]
                .cmp(&self.counts[a as usize])
                .then(a.cmp(&b))
        });
        seqs
    }

    /// Normalized frequency of every sequence (Fig. 3 of the paper).
    pub fn normalized(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Pearson correlation between two frequency tables — the signal the
    /// [`crate::IndexPolicy::Reuse`] policy uses to decide whether the
    /// previous chunk's index still fits (§II-F).
    pub fn correlation(&self, other: &FreqTable) -> f64 {
        assert_eq!(self.counts.len(), other.counts.len());
        let n = self.counts.len() as f64;
        let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0f64, 0f64, 0f64, 0f64, 0f64);
        for (&a, &b) in self.counts.iter().zip(&other.counts) {
            let (x, y) = (a as f64, b as f64);
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
        }
        let cov = sxy - sx * sy / n;
        let vx = sxx - sx * sx / n;
        let vy = syy - sy * sy / n;
        if vx <= 0.0 || vy <= 0.0 {
            // A constant histogram correlates perfectly with itself and not
            // at all with anything else.
            return if self.counts == other.counts {
                1.0
            } else {
                0.0
            };
        }
        cov / (vx * vy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hi_from_keys(keys: &[u16]) -> Vec<u8> {
        keys.iter()
            .flat_map(|&k| [(k >> 8) as u8, k as u8])
            .collect()
    }

    #[test]
    fn counts_and_total() {
        let hi = hi_from_keys(&[5, 5, 5, 9, 9, 1]);
        let f = FreqTable::from_hi_matrix(&hi, 2);
        assert_eq!(f.count(5), 3);
        assert_eq!(f.count(9), 2);
        assert_eq!(f.count(1), 1);
        assert_eq!(f.count(0), 0);
        assert_eq!(f.total(), 6);
        assert_eq!(f.unique(), 3);
    }

    #[test]
    fn ranked_orders_by_frequency_then_value() {
        let hi = hi_from_keys(&[7, 7, 3, 3, 10, 2]);
        let f = FreqTable::from_hi_matrix(&hi, 2);
        // 3 and 7 tie at 2 → ascending value; then 2 and 10 tie at 1.
        assert_eq!(f.ranked(), vec![3, 7, 2, 10]);
    }

    #[test]
    fn one_byte_domain() {
        let hi = vec![1u8, 1, 2, 255];
        let f = FreqTable::from_hi_matrix(&hi, 1);
        assert_eq!(f.counts().len(), 256);
        assert_eq!(f.count(1), 2);
        assert_eq!(f.ranked()[0], 1);
    }

    #[test]
    fn normalized_sums_to_one() {
        let hi = hi_from_keys(&[4, 4, 4, 4, 8, 8, 15, 16]);
        let f = FreqTable::from_hi_matrix(&hi, 2);
        let norm = f.normalized();
        let sum: f64 = norm.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((norm[4] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn correlation_self_is_one() {
        let hi = hi_from_keys(&[1, 2, 2, 3, 3, 3]);
        let f = FreqTable::from_hi_matrix(&hi, 2);
        assert!((f.correlation(&f) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_discriminates() {
        let a = FreqTable::from_hi_matrix(&hi_from_keys(&[1, 1, 1, 2, 2, 3]), 2);
        let similar = FreqTable::from_hi_matrix(&hi_from_keys(&[1, 1, 1, 1, 2, 2, 3]), 2);
        let different = FreqTable::from_hi_matrix(&hi_from_keys(&[100, 200, 300, 400]), 2);
        assert!(a.correlation(&similar) > 0.9);
        assert!(a.correlation(&different) < 0.1);
    }

    #[test]
    fn empty_matrix() {
        let f = FreqTable::from_hi_matrix(&[], 2);
        assert_eq!(f.total(), 0);
        assert_eq!(f.unique(), 0);
        assert!(f.ranked().is_empty());
        assert_eq!(f.normalized().iter().sum::<f64>(), 0.0);
    }
}
