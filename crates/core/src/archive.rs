//! Seekable PRIMACY archives: random access to compressed chunks.
//!
//! The paper deploys PRIMACY for checkpoint/restart and WORM (write once,
//! read many) analysis data (§IV-D). Analysis readers rarely want the whole
//! variable — they want a time slice or a subdomain. The streaming container
//! ([`crate::format`]) must be decoded front to back; this module adds an
//! archive format with a chunk directory so any chunk (and therefore any
//! element range) can be decompressed independently:
//!
//! ```text
//! "PRMA" | version u8 | element_size u8 | hi_bytes u8 | linearization u8 |
//! codec u8 | chunk sections…(each with its own index) |
//! directory: (u64le offset, u64le n_elements, u32le crc)* |
//! footer: u64le directory_offset, u32le chunk_count,
//!         u32le crc32(directory), "PRMA"
//! ```
//!
//! Every chunk carries its own ID index (reuse would reintroduce the serial
//! dependency random access is meant to remove) and its own CRC-32, so a
//! partial read is integrity-checked without touching the rest of the file.

use crate::config::PrimacyConfig;
use crate::error::{PrimacyError, Result};
use crate::format::{self, Header, Reader};
use crate::pipeline::{self, DecodeScratch, PrimacyCompressor};
use crate::stats::StageTimings;
use primacy_codecs::checksum::crc32;
use primacy_codecs::{Codec, CodecScratch};
use primacy_trace as trace;
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

const MAGIC: &[u8; 4] = b"PRMA";
const VERSION: u8 = 1;
/// Fixed footer size: offset + count + crc + magic.
const FOOTER_LEN: usize = 8 + 4 + 4 + 4;
/// Decompression-bomb bound: a chunk section of `S` stored bytes may not
/// claim to decode to more than `S * MAX_CHUNK_EXPANSION` plaintext bytes.
/// Adaptive coding tops out near 500:1 on constant data; 65536:1 leaves two
/// orders of margin while keeping a forged directory from forcing huge
/// allocations out of a tiny file.
pub const MAX_CHUNK_EXPANSION: u64 = 1 << 16;

/// One directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Byte offset of the chunk section from the start of the archive.
    pub offset: u64,
    /// Elements stored in this chunk.
    pub elements: u64,
    /// CRC-32 of the chunk's *plaintext* bytes.
    pub crc: u32,
}

/// One compressed chunk section in flight between a compress worker and the
/// writer thread.
struct Section {
    bytes: Vec<u8>,
    elements: u64,
    crc: u32,
}

/// Everything the writer thread hands back when its input channel closes.
/// `sink`, `directory` and `offset` are valid up to the first error; `result`
/// carries that first error, if any.
struct WriterExit<W> {
    sink: W,
    directory: Vec<ChunkEntry>,
    offset: u64,
    write_busy_ns: u64,
    result: Result<()>,
}

/// Sequential (bulk-synchronous) writer state: compress and flush on the
/// caller's thread, one chunk at a time.
struct SeqState<W> {
    sink: W,
    directory: Vec<ChunkEntry>,
    offset: u64,
    /// Backend codec working memory, reused across every chunk this writer
    /// flushes so steady-state appends allocate nothing in the encoder.
    scratch: CodecScratch,
}

impl<W: Write> SeqState<W> {
    fn flush_chunk(&mut self, compressor: &PrimacyCompressor, chunk: &[u8]) -> Result<()> {
        let _span = trace::span("archive.write_chunk");
        let mut section = Vec::with_capacity(chunk.len() / 2 + 64);
        // Random access requires a self-contained index per chunk.
        let mut no_prev = None;
        compressor.compress_chunk(chunk, &mut no_prev, &mut self.scratch, &mut section)?;
        self.directory.push(ChunkEntry {
            offset: self.offset,
            elements: (chunk.len() / compressor.config().element_size) as u64,
            crc: crc32(chunk),
        });
        self.sink
            .write_all(&section)
            .map_err(|_| PrimacyError::Format("archive sink write failed"))?;
        self.offset = self.offset.saturating_add(section.len() as u64);
        trace::counter("archive.chunks_written", 1);
        trace::observe("archive.section_bytes", section.len() as u64);
        Ok(())
    }
}

/// Overlapped writer state: chunks flow through a bounded channel to a
/// compress-worker pool, compressed sections flow through a second bounded
/// channel to a dedicated writer thread that flushes them in sequence order.
struct OverlapState<W> {
    /// `None` once `finish` has closed the hand-off.
    chunk_tx: Option<mpsc::SyncSender<(u64, Vec<u8>)>>,
    next_seq: u64,
    /// Compress workers; each returns its total compress-busy nanoseconds.
    workers: Vec<std::thread::JoinHandle<u64>>,
    writer: Option<std::thread::JoinHandle<WriterExit<W>>>,
    started: Instant,
}

/// Compress-worker loop: pull `(seq, chunk)` messages, compress each into a
/// self-contained section, push `(seq, section)` onward. Exits when the chunk
/// channel closes (normal) or the writer disappears (failure elsewhere).
/// Returns the thread's total compress-busy nanoseconds for the overlap
/// accounting in `finish`.
fn compress_worker(
    compressor: &PrimacyCompressor,
    chunk_rx: &Mutex<mpsc::Receiver<(u64, Vec<u8>)>>,
    section_tx: &mpsc::SyncSender<(u64, Result<Section>)>,
) -> u64 {
    let _trace_scope = trace::thread_scope();
    let mut scratch = CodecScratch::new();
    let es = compressor.config().element_size;
    let mut busy_ns = 0u64;
    loop {
        // Hold the lock only for the recv: the next idle worker takes the
        // next chunk, and compression itself runs outside the lock.
        let msg = { chunk_rx.lock().unwrap_or_else(|e| e.into_inner()).recv() };
        let Ok((seq, chunk)) = msg else { break };
        let t = Instant::now();
        let span = trace::span("archive.write_chunk");
        let mut bytes = Vec::with_capacity(chunk.len() / 2 + 64);
        // Random access requires a self-contained index per chunk; this is
        // also what makes the overlapped output byte-identical to the
        // sequential path — no cross-chunk state exists in either mode.
        let mut no_prev = None;
        let result = compressor
            .compress_chunk(&chunk, &mut no_prev, &mut scratch, &mut bytes)
            .map(|_| Section {
                bytes,
                elements: (chunk.len() / es) as u64,
                crc: crc32(&chunk),
            });
        drop(span);
        busy_ns = busy_ns.saturating_add(t.elapsed().as_nanos() as u64);
        if section_tx.send((seq, result)).is_err() {
            // Writer gone (panic or teardown): results have nowhere to go.
            break;
        }
    }
    busy_ns
}

/// Writer-thread loop: reorder sections by sequence number and flush them in
/// order. Runs until every worker has dropped its sender — even after an
/// error it keeps draining (and discarding) so no worker ever blocks on a
/// full channel; that is the no-deadlock guarantee `finish` relies on.
fn write_in_order<W: Write>(
    mut sink: W,
    mut offset: u64,
    section_rx: mpsc::Receiver<(u64, Result<Section>)>,
) -> WriterExit<W> {
    let _trace_scope = trace::thread_scope();
    let mut directory = Vec::new();
    let mut stash: BTreeMap<u64, Result<Section>> = BTreeMap::new();
    let mut next = 0u64;
    let mut write_busy_ns = 0u64;
    let mut first_err: Option<PrimacyError> = None;
    for (seq, result) in section_rx.iter() {
        stash.insert(seq, result);
        while let Some(result) = stash.remove(&next) {
            next += 1;
            match result {
                Ok(section) if first_err.is_none() => {
                    let t = Instant::now();
                    let wrote = sink.write_all(&section.bytes);
                    let dt = t.elapsed();
                    trace::span_duration("archive.write_overlap", dt);
                    write_busy_ns = write_busy_ns.saturating_add(dt.as_nanos() as u64);
                    match wrote {
                        Ok(()) => {
                            directory.push(ChunkEntry {
                                offset,
                                elements: section.elements,
                                crc: section.crc,
                            });
                            offset = offset.saturating_add(section.bytes.len() as u64);
                            trace::counter("archive.chunks_written", 1);
                            trace::observe("archive.section_bytes", section.bytes.len() as u64);
                        }
                        Err(_) => {
                            first_err = Some(PrimacyError::Format("archive sink write failed"));
                        }
                    }
                }
                Ok(_) => {} // an earlier chunk already failed; discard
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
    }
    if first_err.is_none() && !stash.is_empty() {
        // A worker died between receiving a chunk and sending its section:
        // the sequence has a hole and the archive cannot be completed.
        first_err = Some(PrimacyError::Format("archive compress worker lost a chunk"));
    }
    WriterExit {
        sink,
        directory,
        offset,
        write_busy_ns,
        result: match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        },
    }
}

/// Which pipeline an [`ArchiveWriter`] runs its chunks through.
enum Mode<W: Write> {
    Sequential(Box<SeqState<W>>),
    Overlapped(OverlapState<W>),
}

/// Write the fixed 9-byte archive header; returns the write cursor (the
/// offset of the first chunk section).
fn write_archive_header<W: Write>(sink: &mut W, cfg: &PrimacyConfig) -> Result<u64> {
    let mut header = Vec::with_capacity(9);
    header.extend_from_slice(MAGIC);
    header.push(VERSION);
    header.push(cfg.element_size as u8);
    header.push(cfg.hi_bytes as u8);
    header.push(format::linearization_to_byte(cfg.linearization));
    header.push(format::codec_to_byte(cfg.codec));
    sink.write_all(&header)
        .map_err(|_| PrimacyError::Format("archive sink write failed"))?;
    Ok(header.len() as u64)
}

/// Serialize the directory and footer onto a finished archive body.
fn write_directory<W: Write>(
    sink: &mut W,
    directory: &[ChunkEntry],
    directory_offset: u64,
) -> Result<()> {
    let mut dir = Vec::with_capacity(directory.len() * 20);
    for e in directory {
        dir.extend_from_slice(&e.offset.to_le_bytes());
        dir.extend_from_slice(&e.elements.to_le_bytes());
        dir.extend_from_slice(&e.crc.to_le_bytes());
    }
    let mut footer = Vec::with_capacity(FOOTER_LEN);
    footer.extend_from_slice(&directory_offset.to_le_bytes());
    footer.extend_from_slice(&(directory.len() as u32).to_le_bytes());
    footer.extend_from_slice(&crc32(&dir).to_le_bytes());
    footer.extend_from_slice(MAGIC);
    sink.write_all(&dir)
        .and_then(|()| sink.write_all(&footer))
        .map_err(|_| PrimacyError::Format("archive sink write failed"))
}

/// Incremental archive writer over any [`Write`] sink.
///
/// Data appended with [`ArchiveWriter::append`] is buffered until a full
/// chunk accumulates, then compressed and flushed; [`ArchiveWriter::finish`]
/// flushes the tail and writes the directory.
///
/// [`ArchiveWriter::new`] runs bulk-synchronous: each chunk is compressed and
/// flushed on the calling thread before the next begins.
/// [`ArchiveWriter::with_overlap`] instead pipelines the archive: a pool of
/// compress workers runs chunk *n+1* while a dedicated writer thread flushes
/// chunk *n*. Both modes produce byte-identical archives — every chunk
/// carries its own index, so no state crosses chunk boundaries in either
/// mode, and the writer thread flushes strictly in sequence order.
///
/// ```
/// use primacy_core::{ArchiveReader, ArchiveWriter, PrimacyConfig};
///
/// let values: Vec<f64> = (0..10_000).map(|i| (i as f64).sqrt()).collect();
/// let mut writer = ArchiveWriter::new(Vec::new(), PrimacyConfig::default())?;
/// writer.append_f64(&values)?;
/// let archive = writer.finish()?;
///
/// let reader = ArchiveReader::open(&archive)?;
/// assert_eq!(reader.read_elements_f64(5_000, 10)?, &values[5_000..5_010]);
/// # Ok::<(), primacy_core::PrimacyError>(())
/// ```
pub struct ArchiveWriter<W: Write> {
    compressor: Arc<PrimacyCompressor>,
    pending: Vec<u8>,
    finished: bool,
    flushed_elements: u64,
    mode: Mode<W>,
}

impl<W: Write> ArchiveWriter<W> {
    /// Start a bulk-synchronous archive, writing the header immediately.
    pub fn new(mut sink: W, config: PrimacyConfig) -> Result<Self> {
        let compressor = Arc::new(PrimacyCompressor::try_new(config)?);
        let offset = write_archive_header(&mut sink, compressor.config())?;
        Ok(Self {
            compressor,
            pending: Vec::new(),
            finished: false,
            flushed_elements: 0,
            mode: Mode::Sequential(Box::new(SeqState {
                sink,
                directory: Vec::new(),
                offset,
                scratch: CodecScratch::new(),
            })),
        })
    }

    /// Start an overlapped archive: `threads` compress workers feed a
    /// dedicated writer thread through bounded channels, so compression of
    /// chunk *n+1* proceeds while chunk *n* is still being flushed. Output is
    /// byte-identical to [`ArchiveWriter::new`].
    ///
    /// Backpressure: at most `2 × threads` raw chunks and `2 × threads`
    /// compressed sections are in flight; a slow sink stalls [`Self::append`]
    /// instead of buffering the whole archive in memory.
    ///
    /// If a worker or the writer thread panics or fails, the failure
    /// surfaces as a typed error from [`Self::append`] or [`Self::finish`] —
    /// never a deadlock: every thread exits on channel disconnection, and
    /// the writer drains its input even after an error.
    pub fn with_overlap(mut sink: W, config: PrimacyConfig, threads: usize) -> Result<Self>
    where
        W: Send + 'static,
    {
        let compressor = Arc::new(PrimacyCompressor::try_new(config)?);
        let offset = write_archive_header(&mut sink, compressor.config())?;
        let threads = threads.max(1);
        let depth = threads * 2;
        let (chunk_tx, chunk_rx) = mpsc::sync_channel::<(u64, Vec<u8>)>(depth);
        let (section_tx, section_rx) = mpsc::sync_channel::<(u64, Result<Section>)>(depth);
        let chunk_rx = Arc::new(Mutex::new(chunk_rx));
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let rx = Arc::clone(&chunk_rx);
            let tx = section_tx.clone();
            let comp = Arc::clone(&compressor);
            workers.push(std::thread::spawn(move || compress_worker(&comp, &rx, &tx)));
        }
        // The writer's loop ends when every worker has dropped its sender;
        // the prototype sender must not outlive the workers.
        drop(section_tx);
        let writer = std::thread::spawn(move || write_in_order(sink, offset, section_rx));
        Ok(Self {
            compressor,
            pending: Vec::new(),
            finished: false,
            flushed_elements: 0,
            mode: Mode::Overlapped(OverlapState {
                chunk_tx: Some(chunk_tx),
                next_seq: 0,
                workers,
                writer: Some(writer),
                started: Instant::now(),
            }),
        })
    }

    /// Append raw element bytes (any length; chunk alignment is handled
    /// internally, but the total at `finish` must be element-aligned).
    pub fn append(&mut self, bytes: &[u8]) -> Result<()> {
        assert!(!self.finished, "append after finish");
        self.pending.extend_from_slice(bytes);
        let cfg = self.compressor.config();
        // Validated configs keep this product far below usize::MAX; saturate
        // so even a pathological config degrades to one huge chunk.
        let chunk_bytes = cfg
            .chunk_elements()
            .saturating_mul(cfg.element_size)
            .max(cfg.element_size);
        while self.pending.len() >= chunk_bytes {
            let rest = self.pending.split_off(chunk_bytes);
            let chunk = std::mem::replace(&mut self.pending, rest);
            self.dispatch_chunk(chunk)?;
        }
        Ok(())
    }

    /// Append doubles (requires an 8-byte element configuration).
    pub fn append_f64(&mut self, values: &[f64]) -> Result<()> {
        if self.compressor.config().element_size != 8 {
            return Err(PrimacyError::InvalidInput(
                "append_f64 requires an 8-byte element configuration",
            ));
        }
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.append(&bytes)
    }

    /// Route one full chunk into the active pipeline.
    fn dispatch_chunk(&mut self, chunk: Vec<u8>) -> Result<()> {
        debug_assert!(!chunk.is_empty());
        let es = self.compressor.config().element_size;
        if !chunk.len().is_multiple_of(es) {
            return Err(PrimacyError::InvalidInput(
                "archive total length is not a multiple of the element size",
            ));
        }
        let elements = (chunk.len() / es) as u64;
        match &mut self.mode {
            Mode::Sequential(s) => s.flush_chunk(&self.compressor, &chunk)?,
            Mode::Overlapped(o) => {
                let tx = o
                    .chunk_tx
                    .as_ref()
                    .ok_or(PrimacyError::Format("append after finish"))?;
                let seq = o.next_seq;
                // A send error means every worker exited, which only happens
                // after a writer-side failure; finish() reports the root
                // cause, this append reports the broken pipeline.
                tx.send((seq, chunk))
                    .map_err(|_| PrimacyError::Format("archive compress workers exited early"))?;
                o.next_seq += 1;
            }
        }
        self.flushed_elements = self.flushed_elements.saturating_add(elements);
        Ok(())
    }

    /// Total elements appended so far (flushed + pending).
    pub fn elements_written(&self) -> u64 {
        let es = self.compressor.config().element_size;
        self.flushed_elements
            .saturating_add((self.pending.len() / es) as u64)
    }

    /// Flush the tail chunk, write the directory and footer, and return the
    /// sink.
    ///
    /// In overlapped mode this joins the worker pool and the writer thread
    /// (panic-safe: a panicked thread becomes a typed error, and channel
    /// disconnection guarantees every other thread unblocks) and records the
    /// measured compute/IO overlap as `archive.overlap_ns` /
    /// `archive.overlap_fraction_pct` trace counters.
    pub fn finish(mut self) -> Result<W> {
        self.finished = true;
        let tail = std::mem::take(&mut self.pending);
        let tail_result = if tail.is_empty() {
            Ok(())
        } else {
            self.dispatch_chunk(tail)
        };
        match self.mode {
            Mode::Sequential(s) => {
                tail_result?;
                let SeqState {
                    mut sink,
                    directory,
                    offset,
                    ..
                } = *s;
                write_directory(&mut sink, &directory, offset)?;
                Ok(sink)
            }
            Mode::Overlapped(mut o) => {
                // Close the hand-off: workers drain the queue and exit; the
                // writer sees its channel disconnect after the last section.
                drop(o.chunk_tx.take());
                let mut compress_busy_ns = 0u64;
                let mut worker_panicked = false;
                for handle in o.workers.drain(..) {
                    match handle.join() {
                        Ok(ns) => compress_busy_ns = compress_busy_ns.saturating_add(ns),
                        Err(_) => worker_panicked = true,
                    }
                }
                let writer = o
                    .writer
                    .take()
                    .ok_or(PrimacyError::Format("archive writer thread missing"))?;
                let exit = writer
                    .join()
                    .map_err(|_| PrimacyError::Format("archive writer thread panicked"))?;
                exit.result?;
                if worker_panicked {
                    return Err(PrimacyError::Format("archive compress worker panicked"));
                }
                tail_result?;
                // Overlap accounting: busy time beyond the wall clock is time
                // two pipeline stages provably ran concurrently.
                let wall_ns = (o.started.elapsed().as_nanos() as u64).max(1);
                let busy_ns = compress_busy_ns.saturating_add(exit.write_busy_ns);
                let overlap_ns = busy_ns.saturating_sub(wall_ns);
                trace::counter("archive.overlap_ns", overlap_ns);
                trace::counter(
                    "archive.overlap_fraction_pct",
                    overlap_ns.saturating_mul(100) / wall_ns,
                );
                let WriterExit {
                    mut sink,
                    directory,
                    offset,
                    ..
                } = exit;
                write_directory(&mut sink, &directory, offset)?;
                Ok(sink)
            }
        }
    }
}

impl<W: Write> Write for ArchiveWriter<W> {
    /// Streaming convenience: `write` is [`ArchiveWriter::append`]. The
    /// element-alignment requirement still applies at [`ArchiveWriter::finish`].
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.append(buf)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        // Chunks flush on their own boundaries; nothing sensible to force
        // here without splitting a chunk.
        Ok(())
    }
}

/// Random-access reader over an archive held in memory (or mapped).
pub struct ArchiveReader<'a> {
    data: &'a [u8],
    header: Header,
    codec: Box<dyn Codec>,
    directory: Vec<ChunkEntry>,
    /// Cumulative element start index per chunk.
    starts: Vec<u64>,
}

impl<'a> ArchiveReader<'a> {
    /// Parse the footer and directory.
    ///
    /// Every length and offset field in the footer and directory is
    /// attacker-controlled; each one is validated against the actual buffer
    /// with checked arithmetic before it is used to slice or allocate.
    pub fn open(data: &'a [u8]) -> Result<Self> {
        if data.len() < 9 + FOOTER_LEN {
            return Err(PrimacyError::Format("not a PRIMACY archive"));
        }
        let head: [u8; 9] =
            format::read_array(data, 0).ok_or(PrimacyError::Format("not a PRIMACY archive"))?;
        let [m0, m1, m2, m3, version, es, hi, lin, codec_byte] = head;
        if [m0, m1, m2, m3] != *MAGIC {
            return Err(PrimacyError::Format("not a PRIMACY archive"));
        }
        if version != VERSION {
            return Err(PrimacyError::UnsupportedVersion(version));
        }
        let element_size = es as usize;
        let hi_bytes = hi as usize;
        if element_size == 0
            || element_size > 16
            || hi_bytes == 0
            || hi_bytes > 2
            || hi_bytes >= element_size
        {
            return Err(PrimacyError::Format("implausible archive layout"));
        }
        let linearization = format::linearization_from_byte(lin)?;
        let codec_kind = format::codec_from_byte(codec_byte)?;

        let footer_at = data.len() - FOOTER_LEN;
        let footer_magic: [u8; 4] =
            format::read_array(data, footer_at + 16).ok_or(PrimacyError::Truncated)?;
        if footer_magic != *MAGIC {
            return Err(PrimacyError::Format("archive footer magic missing"));
        }
        let directory_offset =
            u64::from_le_bytes(format::read_array(data, footer_at).ok_or(PrimacyError::Truncated)?)
                as usize;
        let chunk_count = u32::from_le_bytes(
            format::read_array(data, footer_at + 8).ok_or(PrimacyError::Truncated)?,
        ) as usize;
        let dir_crc = u32::from_le_bytes(
            format::read_array(data, footer_at + 12).ok_or(PrimacyError::Truncated)?,
        );
        let dir_end = footer_at;
        let dir_len = chunk_count.checked_mul(20).ok_or(PrimacyError::Truncated)?;
        if directory_offset.checked_add(dir_len) != Some(dir_end) {
            return Err(PrimacyError::Truncated);
        }
        let dir = data
            .get(directory_offset..dir_end)
            .ok_or(PrimacyError::Truncated)?;
        if crc32(dir) != dir_crc {
            return Err(PrimacyError::Format("archive directory checksum mismatch"));
        }
        let mut directory = Vec::with_capacity(chunk_count);
        let mut starts = Vec::with_capacity(chunk_count);
        let mut total = 0u64;
        for rec in dir.chunks_exact(20) {
            let entry = ChunkEntry {
                offset: u64::from_le_bytes(
                    format::read_array(rec, 0).ok_or(PrimacyError::Truncated)?,
                ),
                elements: u64::from_le_bytes(
                    format::read_array(rec, 8).ok_or(PrimacyError::Truncated)?,
                ),
                crc: u32::from_le_bytes(
                    format::read_array(rec, 16).ok_or(PrimacyError::Truncated)?,
                ),
            };
            if entry.offset as usize >= directory_offset || entry.elements == 0 {
                return Err(PrimacyError::Format("archive directory entry invalid"));
            }
            // Offsets must be strictly increasing: chunk i's section ends
            // where chunk i+1 begins.
            if let Some(prev) = directory.last() {
                let prev: &ChunkEntry = prev;
                if entry.offset <= prev.offset {
                    return Err(PrimacyError::Format("archive directory not monotonic"));
                }
            }
            starts.push(total);
            total = total
                .checked_add(entry.elements)
                .ok_or(PrimacyError::Truncated)?;
            directory.push(entry);
        }
        // Decompression-bomb guard: every chunk's claimed plaintext size must
        // be plausible against the stored bytes backing it.
        for (k, entry) in directory.iter().enumerate() {
            let section_end = directory
                .get(k + 1)
                .map(|e| e.offset)
                .unwrap_or(directory_offset as u64);
            let section_len = section_end.saturating_sub(entry.offset);
            let plain = entry.elements.saturating_mul(element_size as u64);
            if plain > section_len.saturating_mul(MAX_CHUNK_EXPANSION) {
                return Err(PrimacyError::Format(
                    "archive chunk claims implausible expansion",
                ));
            }
        }
        let header = Header {
            element_size,
            hi_bytes,
            linearization,
            codec: codec_kind,
            total_elements: total,
        };
        Ok(Self {
            data,
            header,
            codec: codec_kind.build(),
            directory,
            starts,
        })
    }

    /// Number of chunks in the archive.
    pub fn chunk_count(&self) -> usize {
        self.directory.len()
    }

    /// Total elements stored.
    pub fn element_count(&self) -> u64 {
        self.header.total_elements
    }

    /// Bytes per element.
    pub fn element_size(&self) -> usize {
        self.header.element_size
    }

    /// Directory entry for chunk `i`.
    pub fn entry(&self, i: usize) -> Option<&ChunkEntry> {
        self.directory.get(i)
    }

    /// Directory entry and raw stored bytes of chunk `i`'s section.
    fn section_bytes(&self, i: usize) -> Result<(&ChunkEntry, &'a [u8])> {
        let entry = self
            .directory
            .get(i)
            .ok_or(PrimacyError::Format("chunk index out of range"))?;
        let end = self
            .directory
            .get(i + 1)
            .map(|e| e.offset as usize)
            .unwrap_or_else(|| self.data.len() - FOOTER_LEN - self.directory.len() * 20);
        let section = self
            .data
            .get(entry.offset as usize..end)
            .ok_or(PrimacyError::Truncated)?;
        Ok((entry, section))
    }

    /// Decode one chunk's section bytes into `out`, verifying size and CRC.
    fn decode_section(
        &self,
        entry: &ChunkEntry,
        section: &[u8],
        scratch: &mut DecodeScratch,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        let mut reader = Reader::new(section, 0, section.len());
        let mut timings = StageTimings::default();
        pipeline::decompress_chunk_into(
            &mut reader,
            &self.header,
            self.codec.as_ref(),
            scratch,
            &mut timings,
            out,
        )?;
        let expected = entry
            .elements
            .checked_mul(self.header.element_size as u64)
            .ok_or(PrimacyError::Truncated)?;
        if out.len() as u64 != expected {
            return Err(PrimacyError::Format("chunk decoded to unexpected size"));
        }
        let actual = crc32(out);
        if actual != entry.crc {
            return Err(PrimacyError::Codec(
                primacy_codecs::CodecError::ChecksumMismatch {
                    expected: entry.crc,
                    actual,
                },
            ));
        }
        Ok(())
    }

    /// Decompress chunk `i`, verifying its CRC.
    pub fn read_chunk(&self, i: usize) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.read_chunk_into(i, &mut out)?;
        Ok(out)
    }

    /// [`ArchiveReader::read_chunk`] into a caller-owned buffer (cleared
    /// first, capacity kept), so repeated reads stop allocating a fresh
    /// plaintext vector per chunk.
    pub fn read_chunk_into(&self, i: usize, out: &mut Vec<u8>) -> Result<()> {
        self.read_chunk_with(i, &mut DecodeScratch::new(), out)
    }

    /// [`ArchiveReader::read_chunk_into`] that also reuses all decode working
    /// memory from `scratch`. A warm call — same or smaller chunk than the
    /// scratch has already seen — performs no allocations, which the
    /// counting-allocator test in `crates/core/tests/read_alloc_count.rs`
    /// enforces.
    pub fn read_chunk_with(
        &self,
        i: usize,
        scratch: &mut DecodeScratch,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        let _span = trace::span("archive.read_chunk");
        trace::counter("archive.chunks_read", 1);
        let (entry, section) = self.section_bytes(i)?;
        self.decode_section(entry, section, scratch, out)
    }

    /// Read an arbitrary element range, decompressing only the chunks it
    /// touches.
    pub fn read_elements(&self, start: u64, count: usize) -> Result<Vec<u8>> {
        let range_end = start
            .checked_add(count as u64)
            .ok_or(PrimacyError::InvalidInput("element range out of bounds"))?;
        if range_end > self.header.total_elements {
            return Err(PrimacyError::InvalidInput("element range out of bounds"));
        }
        if count == 0 {
            return Ok(Vec::new());
        }
        let es = self.header.element_size;
        let mut out = Vec::with_capacity(count.saturating_mul(es).min(1 << 24));
        // Binary search for the first chunk containing `start`. `starts[0]`
        // is always 0, so a miss never lands before index 1.
        let mut i = match self.starts.binary_search(&start) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        let mut remaining = count;
        let mut cursor = start;
        // One scratch + one plaintext buffer reused across every chunk the
        // range touches.
        let mut scratch = DecodeScratch::new();
        let mut chunk = Vec::new();
        while remaining > 0 {
            let (chunk_start, chunk_elements) = match (self.starts.get(i), self.directory.get(i)) {
                (Some(&s), Some(e)) => (s, e.elements as usize),
                // Unreachable given the range check above; erring keeps the
                // walk panic-free even if the directory were inconsistent.
                _ => return Err(PrimacyError::Truncated),
            };
            self.read_chunk_with(i, &mut scratch, &mut chunk)?;
            let skip = (cursor - chunk_start) as usize;
            let take = remaining.min(chunk_elements - skip);
            // `read_chunk` verified chunk.len() == elements * es, so both
            // products stay within the decoded buffer (saturation is exact).
            let section = chunk
                .get(skip.saturating_mul(es)..skip.saturating_add(take).saturating_mul(es))
                .ok_or(PrimacyError::Truncated)?;
            out.extend_from_slice(section);
            remaining -= take;
            cursor = cursor.saturating_add(take as u64);
            i += 1;
        }
        Ok(out)
    }

    /// Decompress the whole archive on `threads` worker threads. Chunks are
    /// fully independent (own index, own CRC), so this scales like the
    /// compression side — the restart-read analogue of compute nodes each
    /// decompressing their own checkpoint shard.
    pub fn read_all_parallel(&self, threads: usize) -> Result<Vec<u8>> {
        let es = self.header.element_size;
        let total = self
            .header
            .total_elements
            .checked_mul(es as u64)
            .and_then(|t| usize::try_from(t).ok())
            .ok_or(PrimacyError::Truncated)?;
        let mut out = vec![0u8; total];
        // Carve the output into one contiguous slice per chunk. The per-entry
        // products sum to `total` (checked in `open`), so each split fits.
        let mut slices: Vec<&mut [u8]> = Vec::with_capacity(self.directory.len());
        let mut rest = out.as_mut_slice();
        for entry in &self.directory {
            // Entry products sum to `total` (checked above), so the
            // saturating product is exact.
            let (head, tail) = rest
                .split_at_mut_checked((entry.elements as usize).saturating_mul(es))
                .ok_or(PrimacyError::Truncated)?;
            slices.push(head);
            rest = tail;
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let failures = Mutex::new(Vec::<PrimacyError>::new());
        let slices = Mutex::new(slices);
        std::thread::scope(|scope| {
            for _ in 0..threads.max(1).min(self.directory.len().max(1)) {
                scope.spawn(|| {
                    // One trace merge per worker when it runs out of chunks.
                    let _trace_scope = trace::thread_scope();
                    // Decode state and plaintext buffer reused across every
                    // chunk this worker claims.
                    let mut scratch = DecodeScratch::new();
                    let mut chunk = Vec::new();
                    loop {
                        // ORDERING: Relaxed is enough — the counter only hands
                        // out distinct indices; the mutexes below synchronize.
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= self.directory.len() {
                            break;
                        }
                        // Take this chunk's output slice out of the shared list.
                        // Workers never panic while holding the lock, but recover
                        // from poison anyway: the data is a plain slice list.
                        let slot = {
                            let mut guard = slices.lock().unwrap_or_else(|e| e.into_inner());
                            guard.get_mut(i).map(std::mem::take)
                        };
                        let result = slot.ok_or(PrimacyError::Truncated).and_then(|slot| {
                            self.read_chunk_with(i, &mut scratch, &mut chunk)
                                .map(|()| slot)
                        });
                        match result {
                            Ok(slot) => slot.copy_from_slice(&chunk),
                            Err(e) => failures.lock().unwrap_or_else(|e| e.into_inner()).push(e),
                        }
                    }
                });
            }
        });
        drop(slices); // release the borrows into `out`
        if let Some(e) = failures
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
        {
            return Err(e);
        }
        Ok(out)
    }

    /// Decompress the whole archive with a prefetching pipeline: a stager
    /// thread reads chunk *n+1*'s stored bytes (recording them under the
    /// `archive.read_prefetch` span) while `threads` decode workers are still
    /// decompressing chunk *n*. The mirror image of the overlapped writer,
    /// and byte-identical in output to [`ArchiveReader::read_all_parallel`].
    pub fn read_all_pipelined(&self, threads: usize) -> Result<Vec<u8>> {
        let es = self.header.element_size;
        let total = self
            .header
            .total_elements
            .checked_mul(es as u64)
            .and_then(|t| usize::try_from(t).ok())
            .ok_or(PrimacyError::Truncated)?;
        let mut out = vec![0u8; total];
        let chunk_count = self.directory.len();
        // Carve the output into one contiguous slice per chunk (same scheme
        // as `read_all_parallel`).
        let mut slices: Vec<&mut [u8]> = Vec::with_capacity(chunk_count);
        let mut rest = out.as_mut_slice();
        for entry in &self.directory {
            let (head, tail) = rest
                .split_at_mut_checked((entry.elements as usize).saturating_mul(es))
                .ok_or(PrimacyError::Truncated)?;
            slices.push(head);
            rest = tail;
        }
        let decode_workers = threads.max(1).min(chunk_count.max(1));
        // Bounded staging: at most two staged chunks per decoder, so the
        // stager cannot race ahead and buffer the whole archive.
        let (tx, rx) = mpsc::sync_channel::<(usize, Vec<u8>)>(decode_workers * 2);
        let rx = Mutex::new(rx);
        let slices = Mutex::new(slices);
        let failures = Mutex::new(Vec::<PrimacyError>::new());
        let decoded = std::sync::atomic::AtomicUsize::new(0);
        let failed = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let rx = &rx;
            let slices = &slices;
            let failures = &failures;
            let decoded = &decoded;
            let failed = &failed;
            // Stager: copies each chunk's section bytes out of the archive —
            // the stand-in for the storage fetch — ahead of the decoders.
            // Owns `tx`, so the channel disconnects when staging completes.
            scope.spawn(move || {
                let _trace_scope = trace::thread_scope();
                for i in 0..chunk_count {
                    // ORDERING: Relaxed — a best-effort early-out; failures
                    // are published by the mutex, not this flag.
                    if failed.load(std::sync::atomic::Ordering::Relaxed) {
                        break;
                    }
                    let staged = {
                        let _span = trace::span("archive.read_prefetch");
                        match self.section_bytes(i) {
                            Ok((_, section)) => section.to_vec(),
                            Err(e) => {
                                failures.lock().unwrap_or_else(|e| e.into_inner()).push(e);
                                break;
                            }
                        }
                    };
                    trace::counter("archive.prefetch_bytes", staged.len() as u64);
                    if tx.send((i, staged)).is_err() {
                        break;
                    }
                }
            });
            for _ in 0..decode_workers {
                scope.spawn(move || {
                    let _trace_scope = trace::thread_scope();
                    let mut scratch = DecodeScratch::new();
                    let mut chunk = Vec::new();
                    loop {
                        let msg = { rx.lock().unwrap_or_else(|e| e.into_inner()).recv() };
                        let Ok((i, staged)) = msg else { break };
                        // After a failure, keep draining (cheaply) so the
                        // stager never blocks on a full channel.
                        // ORDERING: Relaxed — see the stager's load.
                        if failed.load(std::sync::atomic::Ordering::Relaxed) {
                            continue;
                        }
                        trace::counter("archive.chunks_read", 1);
                        let result = self
                            .directory
                            .get(i)
                            .ok_or(PrimacyError::Truncated)
                            .and_then(|entry| {
                                let slot = {
                                    let mut guard =
                                        slices.lock().unwrap_or_else(|e| e.into_inner());
                                    guard.get_mut(i).map(std::mem::take)
                                };
                                let slot = slot.ok_or(PrimacyError::Truncated)?;
                                self.decode_section(entry, &staged, &mut scratch, &mut chunk)?;
                                Ok(slot)
                            });
                        match result {
                            Ok(slot) => {
                                slot.copy_from_slice(&chunk);
                                // ORDERING: Relaxed — a completion tally read
                                // only after the scope join below.
                                decoded.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            Err(e) => {
                                failures.lock().unwrap_or_else(|e| e.into_inner()).push(e);
                                // ORDERING: Relaxed — see the stager's load.
                                failed.store(true, std::sync::atomic::Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        drop(slices); // release the borrows into `out`
        if let Some(e) = failures
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
        {
            return Err(e);
        }
        // ORDERING: Relaxed — the scope join above already published all
        // worker writes.
        if decoded.load(std::sync::atomic::Ordering::Relaxed) != chunk_count {
            return Err(PrimacyError::Format("pipelined read lost a chunk"));
        }
        Ok(out)
    }

    /// Read an element range as doubles.
    pub fn read_elements_f64(&self, start: u64, count: usize) -> Result<Vec<f64>> {
        if self.header.element_size != 8 {
            return Err(PrimacyError::InvalidInput(
                "read_elements_f64 requires 8-byte elements",
            ));
        }
        let bytes = self.read_elements(start, count)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                let mut a = [0u8; 8];
                a.copy_from_slice(c);
                f64::from_le_bytes(a)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_values(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 2.0 + (i as f64 * 0.01).sin() + (i % 13) as f64 * 1e-8)
            .collect()
    }

    fn small_config() -> PrimacyConfig {
        PrimacyConfig {
            chunk_bytes: 4096, // 512 doubles per chunk
            ..Default::default()
        }
    }

    fn build_archive(values: &[f64]) -> Vec<u8> {
        let mut w = ArchiveWriter::new(Vec::new(), small_config()).unwrap();
        // Append in awkward sizes to exercise buffering.
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        for part in bytes.chunks(777) {
            w.append(part).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn full_readback_matches() {
        let values = sample_values(3000);
        let archive = build_archive(&values);
        let r = ArchiveReader::open(&archive).unwrap();
        assert_eq!(r.element_count(), 3000);
        assert_eq!(r.chunk_count(), 3000usize.div_ceil(512));
        let back = r.read_elements_f64(0, 3000).unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn random_access_reads_match() {
        let values = sample_values(5000);
        let archive = build_archive(&values);
        let r = ArchiveReader::open(&archive).unwrap();
        for (start, count) in [
            (0u64, 1usize),
            (511, 2),
            (512, 512),
            (4999, 1),
            (1000, 3000),
        ] {
            let got = r.read_elements_f64(start, count).unwrap();
            assert_eq!(
                got,
                &values[start as usize..start as usize + count],
                "({start},{count})"
            );
        }
    }

    #[test]
    fn per_chunk_reads_are_independent() {
        let values = sample_values(2000);
        let archive = build_archive(&values);
        let r = ArchiveReader::open(&archive).unwrap();
        // Read the *last* chunk first; no prior state needed.
        let last = r.chunk_count() - 1;
        let chunk = r.read_chunk(last).unwrap();
        let chunk_values: Vec<f64> = chunk
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(chunk_values, &values[last * 512..]);
    }

    #[test]
    fn out_of_range_reads_rejected() {
        let values = sample_values(100);
        let archive = build_archive(&values);
        let r = ArchiveReader::open(&archive).unwrap();
        assert!(r.read_elements(50, 51).is_err());
        assert!(r.read_chunk(99).is_err());
    }

    #[test]
    fn empty_archive() {
        let w = ArchiveWriter::new(Vec::new(), small_config()).unwrap();
        let archive = w.finish().unwrap();
        let r = ArchiveReader::open(&archive).unwrap();
        assert_eq!(r.element_count(), 0);
        assert_eq!(r.chunk_count(), 0);
        assert!(r.read_elements(0, 0).unwrap().is_empty());
    }

    #[test]
    fn elements_written_tracks_pending() {
        let mut w = ArchiveWriter::new(Vec::new(), small_config()).unwrap();
        w.append_f64(&sample_values(100)).unwrap();
        assert_eq!(w.elements_written(), 100);
        w.append_f64(&sample_values(1000)).unwrap();
        assert_eq!(w.elements_written(), 1100);
    }

    #[test]
    fn corrupted_directory_detected() {
        let values = sample_values(1500);
        let mut archive = build_archive(&values);
        // Flip a byte inside the directory region (just before the footer).
        let n = archive.len();
        archive[n - FOOTER_LEN - 5] ^= 0xFF;
        assert!(ArchiveReader::open(&archive).is_err());
    }

    #[test]
    fn corrupted_chunk_detected_on_read() {
        let values = sample_values(1500);
        let mut archive = build_archive(&values);
        // Flip a byte in the middle of the first chunk's payload.
        archive[60] ^= 0x40;
        let r = ArchiveReader::open(&archive);
        // Directory still parses (it's at the end), but the chunk read must
        // fail its codec or CRC check.
        if let Ok(r) = r {
            assert!(r.read_chunk(0).is_err());
        }
    }

    #[test]
    fn misaligned_total_rejected_at_flush() {
        let mut w = ArchiveWriter::new(Vec::new(), small_config()).unwrap();
        w.append(&[1, 2, 3]).unwrap(); // 3 bytes: not a whole double
        assert!(w.finish().is_err());
    }

    #[test]
    fn ragged_tail_chunk_roundtrips() {
        // 1000 elements with 512-element chunks: tail of 488.
        let values = sample_values(1000);
        let archive = build_archive(&values);
        let r = ArchiveReader::open(&archive).unwrap();
        assert_eq!(r.chunk_count(), 2);
        assert_eq!(r.entry(1).unwrap().elements, 488);
        assert_eq!(r.read_elements_f64(512, 488).unwrap(), &values[512..]);
    }

    #[test]
    fn parallel_full_read_matches_serial() {
        let values = sample_values(4000);
        let archive = build_archive(&values);
        let r = ArchiveReader::open(&archive).unwrap();
        let serial = r.read_elements(0, 4000).unwrap();
        for threads in [1, 2, 8] {
            assert_eq!(r.read_all_parallel(threads).unwrap(), serial);
        }
    }

    #[test]
    fn parallel_read_surfaces_chunk_corruption() {
        let values = sample_values(4000);
        let mut archive = build_archive(&values);
        archive[40] ^= 0x10; // inside the first chunk section
        if let Ok(r) = ArchiveReader::open(&archive) {
            assert!(r.read_all_parallel(4).is_err());
        }
    }

    #[test]
    fn io_write_adapter_streams() {
        use std::io::Write as _;
        let values = sample_values(1500);
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut w = ArchiveWriter::new(Vec::new(), small_config()).unwrap();
        let mut cursor = &bytes[..];
        std::io::copy(&mut cursor, &mut w).unwrap();
        w.flush().unwrap();
        let archive = w.finish().unwrap();
        let r = ArchiveReader::open(&archive).unwrap();
        assert_eq!(r.read_elements_f64(0, 1500).unwrap(), values);
    }

    #[test]
    fn f32_archives_work() {
        let cfg = PrimacyConfig {
            chunk_bytes: 2048,
            ..PrimacyConfig::f32()
        };
        let values: Vec<f32> = (0..3000).map(|i| 1.0 + (i as f32 * 0.01).sin()).collect();
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut w = ArchiveWriter::new(Vec::new(), cfg).unwrap();
        w.append(&bytes).unwrap();
        let archive = w.finish().unwrap();
        let r = ArchiveReader::open(&archive).unwrap();
        assert_eq!(r.element_size(), 4);
        assert_eq!(r.element_count(), 3000);
        assert_eq!(r.read_elements(0, 3000).unwrap(), bytes);
        // f64 accessor must refuse.
        assert!(r.read_elements_f64(0, 1).is_err());
    }

    #[test]
    fn open_rejects_foreign_bytes() {
        assert!(ArchiveReader::open(b"not an archive at all").is_err());
        assert!(ArchiveReader::open(&[]).is_err());
        let values = sample_values(600);
        let mut archive = build_archive(&values);
        let n = archive.len();
        archive[n - 1] = b'X'; // footer magic
        assert!(ArchiveReader::open(&archive).is_err());
    }
}
