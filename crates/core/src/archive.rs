//! Seekable PRIMACY archives: random access to compressed chunks.
//!
//! The paper deploys PRIMACY for checkpoint/restart and WORM (write once,
//! read many) analysis data (§IV-D). Analysis readers rarely want the whole
//! variable — they want a time slice or a subdomain. The streaming container
//! ([`crate::format`]) must be decoded front to back; this module adds an
//! archive format with a chunk directory so any chunk (and therefore any
//! element range) can be decompressed independently:
//!
//! ```text
//! "PRMA" | version u8 | element_size u8 | hi_bytes u8 | linearization u8 |
//! codec u8 | chunk sections…(each with its own index) |
//! directory: (u64le offset, u64le n_elements, u32le crc)* |
//! footer: u64le directory_offset, u32le chunk_count,
//!         u32le crc32(directory), "PRMA"
//! ```
//!
//! Every chunk carries its own ID index (reuse would reintroduce the serial
//! dependency random access is meant to remove) and its own CRC-32, so a
//! partial read is integrity-checked without touching the rest of the file.

use crate::config::PrimacyConfig;
use crate::error::{PrimacyError, Result};
use crate::format::{self, Header, Reader};
use crate::pipeline::{self, PrimacyCompressor};
use primacy_codecs::checksum::crc32;
use primacy_codecs::Codec;
use primacy_trace as trace;
use std::io::Write;

const MAGIC: &[u8; 4] = b"PRMA";
const VERSION: u8 = 1;
/// Fixed footer size: offset + count + crc + magic.
const FOOTER_LEN: usize = 8 + 4 + 4 + 4;
/// Decompression-bomb bound: a chunk section of `S` stored bytes may not
/// claim to decode to more than `S * MAX_CHUNK_EXPANSION` plaintext bytes.
/// Adaptive coding tops out near 500:1 on constant data; 65536:1 leaves two
/// orders of margin while keeping a forged directory from forcing huge
/// allocations out of a tiny file.
pub const MAX_CHUNK_EXPANSION: u64 = 1 << 16;

/// One directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Byte offset of the chunk section from the start of the archive.
    pub offset: u64,
    /// Elements stored in this chunk.
    pub elements: u64,
    /// CRC-32 of the chunk's *plaintext* bytes.
    pub crc: u32,
}

/// Incremental archive writer over any [`Write`] sink.
///
/// Data appended with [`ArchiveWriter::append`] is buffered until a full
/// chunk accumulates, then compressed and flushed; [`ArchiveWriter::finish`]
/// flushes the tail and writes the directory.
///
/// ```
/// use primacy_core::{ArchiveReader, ArchiveWriter, PrimacyConfig};
///
/// let values: Vec<f64> = (0..10_000).map(|i| (i as f64).sqrt()).collect();
/// let mut writer = ArchiveWriter::new(Vec::new(), PrimacyConfig::default())?;
/// writer.append_f64(&values)?;
/// let archive = writer.finish()?;
///
/// let reader = ArchiveReader::open(&archive)?;
/// assert_eq!(reader.read_elements_f64(5_000, 10)?, &values[5_000..5_010]);
/// # Ok::<(), primacy_core::PrimacyError>(())
/// ```
pub struct ArchiveWriter<W: Write> {
    sink: W,
    compressor: PrimacyCompressor,
    pending: Vec<u8>,
    directory: Vec<ChunkEntry>,
    offset: u64,
    finished: bool,
    /// Backend codec working memory, reused across every chunk this writer
    /// flushes so steady-state appends allocate nothing in the encoder.
    scratch: primacy_codecs::CodecScratch,
}

impl<W: Write> ArchiveWriter<W> {
    /// Start an archive, writing the header immediately.
    pub fn new(mut sink: W, config: PrimacyConfig) -> Result<Self> {
        let compressor = PrimacyCompressor::try_new(config)?;
        let cfg = compressor.config();
        let mut header = Vec::with_capacity(9);
        header.extend_from_slice(MAGIC);
        header.push(VERSION);
        header.push(cfg.element_size as u8);
        header.push(cfg.hi_bytes as u8);
        header.push(format::linearization_to_byte(cfg.linearization));
        header.push(format::codec_to_byte(cfg.codec));
        sink.write_all(&header)
            .map_err(|_| PrimacyError::Format("archive sink write failed"))?;
        Ok(Self {
            sink,
            compressor,
            pending: Vec::new(),
            directory: Vec::new(),
            offset: header.len() as u64,
            finished: false,
            scratch: primacy_codecs::CodecScratch::new(),
        })
    }

    /// Append raw element bytes (any length; chunk alignment is handled
    /// internally, but the total at `finish` must be element-aligned).
    pub fn append(&mut self, bytes: &[u8]) -> Result<()> {
        assert!(!self.finished, "append after finish");
        self.pending.extend_from_slice(bytes);
        let cfg = self.compressor.config();
        // Validated configs keep this product far below usize::MAX; saturate
        // so even a pathological config degrades to one huge chunk.
        let chunk_bytes = cfg
            .chunk_elements()
            .saturating_mul(cfg.element_size)
            .max(cfg.element_size);
        while self.pending.len() >= chunk_bytes {
            let rest = self.pending.split_off(chunk_bytes);
            let chunk = std::mem::replace(&mut self.pending, rest);
            self.flush_chunk(&chunk)?;
        }
        Ok(())
    }

    /// Append doubles (requires an 8-byte element configuration).
    pub fn append_f64(&mut self, values: &[f64]) -> Result<()> {
        if self.compressor.config().element_size != 8 {
            return Err(PrimacyError::InvalidInput(
                "append_f64 requires an 8-byte element configuration",
            ));
        }
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.append(&bytes)
    }

    fn flush_chunk(&mut self, chunk: &[u8]) -> Result<()> {
        debug_assert!(!chunk.is_empty());
        let _span = trace::span("archive.write_chunk");
        let cfg = self.compressor.config();
        if !chunk.len().is_multiple_of(cfg.element_size) {
            return Err(PrimacyError::InvalidInput(
                "archive total length is not a multiple of the element size",
            ));
        }
        let mut section = Vec::with_capacity(chunk.len() / 2 + 64);
        // Random access requires a self-contained index per chunk.
        let mut no_prev = None;
        self.compressor
            .compress_chunk(chunk, &mut no_prev, &mut self.scratch, &mut section)?;
        self.directory.push(ChunkEntry {
            offset: self.offset,
            elements: (chunk.len() / cfg.element_size) as u64,
            crc: crc32(chunk),
        });
        self.sink
            .write_all(&section)
            .map_err(|_| PrimacyError::Format("archive sink write failed"))?;
        self.offset = self.offset.saturating_add(section.len() as u64);
        trace::counter("archive.chunks_written", 1);
        trace::observe("archive.section_bytes", section.len() as u64);
        Ok(())
    }

    /// Total elements appended so far (flushed + pending).
    pub fn elements_written(&self) -> u64 {
        let cfg = self.compressor.config();
        let flushed: u64 = self.directory.iter().map(|e| e.elements).sum();
        flushed.saturating_add((self.pending.len() / cfg.element_size) as u64)
    }

    /// Flush the tail chunk, write the directory and footer, and return the
    /// sink.
    pub fn finish(mut self) -> Result<W> {
        self.finished = true;
        if !self.pending.is_empty() {
            let tail = std::mem::take(&mut self.pending);
            self.flush_chunk(&tail)?;
        }
        let directory_offset = self.offset;
        let mut dir = Vec::with_capacity(self.directory.len() * 20);
        for e in &self.directory {
            dir.extend_from_slice(&e.offset.to_le_bytes());
            dir.extend_from_slice(&e.elements.to_le_bytes());
            dir.extend_from_slice(&e.crc.to_le_bytes());
        }
        let mut footer = Vec::with_capacity(FOOTER_LEN);
        footer.extend_from_slice(&directory_offset.to_le_bytes());
        footer.extend_from_slice(&(self.directory.len() as u32).to_le_bytes());
        footer.extend_from_slice(&crc32(&dir).to_le_bytes());
        footer.extend_from_slice(MAGIC);
        self.sink
            .write_all(&dir)
            .and_then(|()| self.sink.write_all(&footer))
            .map_err(|_| PrimacyError::Format("archive sink write failed"))?;
        Ok(self.sink)
    }
}

impl<W: Write> Write for ArchiveWriter<W> {
    /// Streaming convenience: `write` is [`ArchiveWriter::append`]. The
    /// element-alignment requirement still applies at [`ArchiveWriter::finish`].
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.append(buf)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        // Chunks flush on their own boundaries; nothing sensible to force
        // here without splitting a chunk.
        Ok(())
    }
}

/// Random-access reader over an archive held in memory (or mapped).
pub struct ArchiveReader<'a> {
    data: &'a [u8],
    header: Header,
    codec: Box<dyn Codec>,
    directory: Vec<ChunkEntry>,
    /// Cumulative element start index per chunk.
    starts: Vec<u64>,
}

impl<'a> ArchiveReader<'a> {
    /// Parse the footer and directory.
    ///
    /// Every length and offset field in the footer and directory is
    /// attacker-controlled; each one is validated against the actual buffer
    /// with checked arithmetic before it is used to slice or allocate.
    pub fn open(data: &'a [u8]) -> Result<Self> {
        if data.len() < 9 + FOOTER_LEN {
            return Err(PrimacyError::Format("not a PRIMACY archive"));
        }
        let head: [u8; 9] =
            format::read_array(data, 0).ok_or(PrimacyError::Format("not a PRIMACY archive"))?;
        let [m0, m1, m2, m3, version, es, hi, lin, codec_byte] = head;
        if [m0, m1, m2, m3] != *MAGIC {
            return Err(PrimacyError::Format("not a PRIMACY archive"));
        }
        if version != VERSION {
            return Err(PrimacyError::UnsupportedVersion(version));
        }
        let element_size = es as usize;
        let hi_bytes = hi as usize;
        if element_size == 0
            || element_size > 16
            || hi_bytes == 0
            || hi_bytes > 2
            || hi_bytes >= element_size
        {
            return Err(PrimacyError::Format("implausible archive layout"));
        }
        let linearization = format::linearization_from_byte(lin)?;
        let codec_kind = format::codec_from_byte(codec_byte)?;

        let footer_at = data.len() - FOOTER_LEN;
        let footer_magic: [u8; 4] =
            format::read_array(data, footer_at + 16).ok_or(PrimacyError::Truncated)?;
        if footer_magic != *MAGIC {
            return Err(PrimacyError::Format("archive footer magic missing"));
        }
        let directory_offset =
            u64::from_le_bytes(format::read_array(data, footer_at).ok_or(PrimacyError::Truncated)?)
                as usize;
        let chunk_count = u32::from_le_bytes(
            format::read_array(data, footer_at + 8).ok_or(PrimacyError::Truncated)?,
        ) as usize;
        let dir_crc = u32::from_le_bytes(
            format::read_array(data, footer_at + 12).ok_or(PrimacyError::Truncated)?,
        );
        let dir_end = footer_at;
        let dir_len = chunk_count.checked_mul(20).ok_or(PrimacyError::Truncated)?;
        if directory_offset.checked_add(dir_len) != Some(dir_end) {
            return Err(PrimacyError::Truncated);
        }
        let dir = data
            .get(directory_offset..dir_end)
            .ok_or(PrimacyError::Truncated)?;
        if crc32(dir) != dir_crc {
            return Err(PrimacyError::Format("archive directory checksum mismatch"));
        }
        let mut directory = Vec::with_capacity(chunk_count);
        let mut starts = Vec::with_capacity(chunk_count);
        let mut total = 0u64;
        for rec in dir.chunks_exact(20) {
            let entry = ChunkEntry {
                offset: u64::from_le_bytes(
                    format::read_array(rec, 0).ok_or(PrimacyError::Truncated)?,
                ),
                elements: u64::from_le_bytes(
                    format::read_array(rec, 8).ok_or(PrimacyError::Truncated)?,
                ),
                crc: u32::from_le_bytes(
                    format::read_array(rec, 16).ok_or(PrimacyError::Truncated)?,
                ),
            };
            if entry.offset as usize >= directory_offset || entry.elements == 0 {
                return Err(PrimacyError::Format("archive directory entry invalid"));
            }
            // Offsets must be strictly increasing: chunk i's section ends
            // where chunk i+1 begins.
            if let Some(prev) = directory.last() {
                let prev: &ChunkEntry = prev;
                if entry.offset <= prev.offset {
                    return Err(PrimacyError::Format("archive directory not monotonic"));
                }
            }
            starts.push(total);
            total = total
                .checked_add(entry.elements)
                .ok_or(PrimacyError::Truncated)?;
            directory.push(entry);
        }
        // Decompression-bomb guard: every chunk's claimed plaintext size must
        // be plausible against the stored bytes backing it.
        for (k, entry) in directory.iter().enumerate() {
            let section_end = directory
                .get(k + 1)
                .map(|e| e.offset)
                .unwrap_or(directory_offset as u64);
            let section_len = section_end.saturating_sub(entry.offset);
            let plain = entry.elements.saturating_mul(element_size as u64);
            if plain > section_len.saturating_mul(MAX_CHUNK_EXPANSION) {
                return Err(PrimacyError::Format(
                    "archive chunk claims implausible expansion",
                ));
            }
        }
        let header = Header {
            element_size,
            hi_bytes,
            linearization,
            codec: codec_kind,
            total_elements: total,
        };
        Ok(Self {
            data,
            header,
            codec: codec_kind.build(),
            directory,
            starts,
        })
    }

    /// Number of chunks in the archive.
    pub fn chunk_count(&self) -> usize {
        self.directory.len()
    }

    /// Total elements stored.
    pub fn element_count(&self) -> u64 {
        self.header.total_elements
    }

    /// Bytes per element.
    pub fn element_size(&self) -> usize {
        self.header.element_size
    }

    /// Directory entry for chunk `i`.
    pub fn entry(&self, i: usize) -> Option<&ChunkEntry> {
        self.directory.get(i)
    }

    /// Decompress chunk `i`, verifying its CRC.
    pub fn read_chunk(&self, i: usize) -> Result<Vec<u8>> {
        let _span = trace::span("archive.read_chunk");
        trace::counter("archive.chunks_read", 1);
        let entry = self
            .directory
            .get(i)
            .ok_or(PrimacyError::Format("chunk index out of range"))?;
        let end = self
            .directory
            .get(i + 1)
            .map(|e| e.offset as usize)
            .unwrap_or_else(|| self.data.len() - FOOTER_LEN - self.directory.len() * 20);
        let mut reader = Reader::new(self.data, entry.offset as usize, end);
        let (chunk, _map) =
            pipeline::decompress_chunk(&mut reader, &self.header, self.codec.as_ref(), None)?;
        let expected = entry
            .elements
            .checked_mul(self.header.element_size as u64)
            .ok_or(PrimacyError::Truncated)?;
        if chunk.len() as u64 != expected {
            return Err(PrimacyError::Format("chunk decoded to unexpected size"));
        }
        let actual = crc32(&chunk);
        if actual != entry.crc {
            return Err(PrimacyError::Codec(
                primacy_codecs::CodecError::ChecksumMismatch {
                    expected: entry.crc,
                    actual,
                },
            ));
        }
        Ok(chunk)
    }

    /// Read an arbitrary element range, decompressing only the chunks it
    /// touches.
    pub fn read_elements(&self, start: u64, count: usize) -> Result<Vec<u8>> {
        let range_end = start
            .checked_add(count as u64)
            .ok_or(PrimacyError::InvalidInput("element range out of bounds"))?;
        if range_end > self.header.total_elements {
            return Err(PrimacyError::InvalidInput("element range out of bounds"));
        }
        if count == 0 {
            return Ok(Vec::new());
        }
        let es = self.header.element_size;
        let mut out = Vec::with_capacity(count.saturating_mul(es).min(1 << 24));
        // Binary search for the first chunk containing `start`. `starts[0]`
        // is always 0, so a miss never lands before index 1.
        let mut i = match self.starts.binary_search(&start) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        let mut remaining = count;
        let mut cursor = start;
        while remaining > 0 {
            let (chunk_start, chunk_elements) = match (self.starts.get(i), self.directory.get(i)) {
                (Some(&s), Some(e)) => (s, e.elements as usize),
                // Unreachable given the range check above; erring keeps the
                // walk panic-free even if the directory were inconsistent.
                _ => return Err(PrimacyError::Truncated),
            };
            let chunk = self.read_chunk(i)?;
            let skip = (cursor - chunk_start) as usize;
            let take = remaining.min(chunk_elements - skip);
            // `read_chunk` verified chunk.len() == elements * es, so both
            // products stay within the decoded buffer (saturation is exact).
            let section = chunk
                .get(skip.saturating_mul(es)..skip.saturating_add(take).saturating_mul(es))
                .ok_or(PrimacyError::Truncated)?;
            out.extend_from_slice(section);
            remaining -= take;
            cursor = cursor.saturating_add(take as u64);
            i += 1;
        }
        Ok(out)
    }

    /// Decompress the whole archive on `threads` worker threads. Chunks are
    /// fully independent (own index, own CRC), so this scales like the
    /// compression side — the restart-read analogue of compute nodes each
    /// decompressing their own checkpoint shard.
    pub fn read_all_parallel(&self, threads: usize) -> Result<Vec<u8>> {
        let es = self.header.element_size;
        let total = self
            .header
            .total_elements
            .checked_mul(es as u64)
            .and_then(|t| usize::try_from(t).ok())
            .ok_or(PrimacyError::Truncated)?;
        let mut out = vec![0u8; total];
        // Carve the output into one contiguous slice per chunk. The per-entry
        // products sum to `total` (checked in `open`), so each split fits.
        let mut slices: Vec<&mut [u8]> = Vec::with_capacity(self.directory.len());
        let mut rest = out.as_mut_slice();
        for entry in &self.directory {
            // Entry products sum to `total` (checked above), so the
            // saturating product is exact.
            let (head, tail) = rest
                .split_at_mut_checked((entry.elements as usize).saturating_mul(es))
                .ok_or(PrimacyError::Truncated)?;
            slices.push(head);
            rest = tail;
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let failures = std::sync::Mutex::new(Vec::<PrimacyError>::new());
        let slices = std::sync::Mutex::new(slices);
        std::thread::scope(|scope| {
            for _ in 0..threads.max(1).min(self.directory.len().max(1)) {
                scope.spawn(|| {
                    // One trace merge per worker when it runs out of chunks.
                    let _trace_scope = trace::thread_scope();
                    loop {
                        // ORDERING: Relaxed is enough — the counter only hands
                        // out distinct indices; the mutexes below synchronize.
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= self.directory.len() {
                            break;
                        }
                        // Take this chunk's output slice out of the shared list.
                        // Workers never panic while holding the lock, but recover
                        // from poison anyway: the data is a plain slice list.
                        let slot = {
                            let mut guard = slices.lock().unwrap_or_else(|e| e.into_inner());
                            guard.get_mut(i).map(std::mem::take)
                        };
                        let result = slot
                            .ok_or(PrimacyError::Truncated)
                            .and_then(|slot| self.read_chunk(i).map(|chunk| (slot, chunk)));
                        match result {
                            Ok((slot, chunk)) => slot.copy_from_slice(&chunk),
                            Err(e) => failures.lock().unwrap_or_else(|e| e.into_inner()).push(e),
                        }
                    }
                });
            }
        });
        drop(slices); // release the borrows into `out`
        if let Some(e) = failures
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
        {
            return Err(e);
        }
        Ok(out)
    }

    /// Read an element range as doubles.
    pub fn read_elements_f64(&self, start: u64, count: usize) -> Result<Vec<f64>> {
        if self.header.element_size != 8 {
            return Err(PrimacyError::InvalidInput(
                "read_elements_f64 requires 8-byte elements",
            ));
        }
        let bytes = self.read_elements(start, count)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                let mut a = [0u8; 8];
                a.copy_from_slice(c);
                f64::from_le_bytes(a)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_values(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 2.0 + (i as f64 * 0.01).sin() + (i % 13) as f64 * 1e-8)
            .collect()
    }

    fn small_config() -> PrimacyConfig {
        PrimacyConfig {
            chunk_bytes: 4096, // 512 doubles per chunk
            ..Default::default()
        }
    }

    fn build_archive(values: &[f64]) -> Vec<u8> {
        let mut w = ArchiveWriter::new(Vec::new(), small_config()).unwrap();
        // Append in awkward sizes to exercise buffering.
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        for part in bytes.chunks(777) {
            w.append(part).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn full_readback_matches() {
        let values = sample_values(3000);
        let archive = build_archive(&values);
        let r = ArchiveReader::open(&archive).unwrap();
        assert_eq!(r.element_count(), 3000);
        assert_eq!(r.chunk_count(), 3000usize.div_ceil(512));
        let back = r.read_elements_f64(0, 3000).unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn random_access_reads_match() {
        let values = sample_values(5000);
        let archive = build_archive(&values);
        let r = ArchiveReader::open(&archive).unwrap();
        for (start, count) in [
            (0u64, 1usize),
            (511, 2),
            (512, 512),
            (4999, 1),
            (1000, 3000),
        ] {
            let got = r.read_elements_f64(start, count).unwrap();
            assert_eq!(
                got,
                &values[start as usize..start as usize + count],
                "({start},{count})"
            );
        }
    }

    #[test]
    fn per_chunk_reads_are_independent() {
        let values = sample_values(2000);
        let archive = build_archive(&values);
        let r = ArchiveReader::open(&archive).unwrap();
        // Read the *last* chunk first; no prior state needed.
        let last = r.chunk_count() - 1;
        let chunk = r.read_chunk(last).unwrap();
        let chunk_values: Vec<f64> = chunk
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(chunk_values, &values[last * 512..]);
    }

    #[test]
    fn out_of_range_reads_rejected() {
        let values = sample_values(100);
        let archive = build_archive(&values);
        let r = ArchiveReader::open(&archive).unwrap();
        assert!(r.read_elements(50, 51).is_err());
        assert!(r.read_chunk(99).is_err());
    }

    #[test]
    fn empty_archive() {
        let w = ArchiveWriter::new(Vec::new(), small_config()).unwrap();
        let archive = w.finish().unwrap();
        let r = ArchiveReader::open(&archive).unwrap();
        assert_eq!(r.element_count(), 0);
        assert_eq!(r.chunk_count(), 0);
        assert!(r.read_elements(0, 0).unwrap().is_empty());
    }

    #[test]
    fn elements_written_tracks_pending() {
        let mut w = ArchiveWriter::new(Vec::new(), small_config()).unwrap();
        w.append_f64(&sample_values(100)).unwrap();
        assert_eq!(w.elements_written(), 100);
        w.append_f64(&sample_values(1000)).unwrap();
        assert_eq!(w.elements_written(), 1100);
    }

    #[test]
    fn corrupted_directory_detected() {
        let values = sample_values(1500);
        let mut archive = build_archive(&values);
        // Flip a byte inside the directory region (just before the footer).
        let n = archive.len();
        archive[n - FOOTER_LEN - 5] ^= 0xFF;
        assert!(ArchiveReader::open(&archive).is_err());
    }

    #[test]
    fn corrupted_chunk_detected_on_read() {
        let values = sample_values(1500);
        let mut archive = build_archive(&values);
        // Flip a byte in the middle of the first chunk's payload.
        archive[60] ^= 0x40;
        let r = ArchiveReader::open(&archive);
        // Directory still parses (it's at the end), but the chunk read must
        // fail its codec or CRC check.
        if let Ok(r) = r {
            assert!(r.read_chunk(0).is_err());
        }
    }

    #[test]
    fn misaligned_total_rejected_at_flush() {
        let mut w = ArchiveWriter::new(Vec::new(), small_config()).unwrap();
        w.append(&[1, 2, 3]).unwrap(); // 3 bytes: not a whole double
        assert!(w.finish().is_err());
    }

    #[test]
    fn ragged_tail_chunk_roundtrips() {
        // 1000 elements with 512-element chunks: tail of 488.
        let values = sample_values(1000);
        let archive = build_archive(&values);
        let r = ArchiveReader::open(&archive).unwrap();
        assert_eq!(r.chunk_count(), 2);
        assert_eq!(r.entry(1).unwrap().elements, 488);
        assert_eq!(r.read_elements_f64(512, 488).unwrap(), &values[512..]);
    }

    #[test]
    fn parallel_full_read_matches_serial() {
        let values = sample_values(4000);
        let archive = build_archive(&values);
        let r = ArchiveReader::open(&archive).unwrap();
        let serial = r.read_elements(0, 4000).unwrap();
        for threads in [1, 2, 8] {
            assert_eq!(r.read_all_parallel(threads).unwrap(), serial);
        }
    }

    #[test]
    fn parallel_read_surfaces_chunk_corruption() {
        let values = sample_values(4000);
        let mut archive = build_archive(&values);
        archive[40] ^= 0x10; // inside the first chunk section
        if let Ok(r) = ArchiveReader::open(&archive) {
            assert!(r.read_all_parallel(4).is_err());
        }
    }

    #[test]
    fn io_write_adapter_streams() {
        use std::io::Write as _;
        let values = sample_values(1500);
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut w = ArchiveWriter::new(Vec::new(), small_config()).unwrap();
        let mut cursor = &bytes[..];
        std::io::copy(&mut cursor, &mut w).unwrap();
        w.flush().unwrap();
        let archive = w.finish().unwrap();
        let r = ArchiveReader::open(&archive).unwrap();
        assert_eq!(r.read_elements_f64(0, 1500).unwrap(), values);
    }

    #[test]
    fn f32_archives_work() {
        let cfg = PrimacyConfig {
            chunk_bytes: 2048,
            ..PrimacyConfig::f32()
        };
        let values: Vec<f32> = (0..3000).map(|i| 1.0 + (i as f32 * 0.01).sin()).collect();
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut w = ArchiveWriter::new(Vec::new(), cfg).unwrap();
        w.append(&bytes).unwrap();
        let archive = w.finish().unwrap();
        let r = ArchiveReader::open(&archive).unwrap();
        assert_eq!(r.element_size(), 4);
        assert_eq!(r.element_count(), 3000);
        assert_eq!(r.read_elements(0, 3000).unwrap(), bytes);
        // f64 accessor must refuse.
        assert!(r.read_elements_f64(0, 1).is_err());
    }

    #[test]
    fn open_rejects_foreign_bytes() {
        assert!(ArchiveReader::open(b"not an archive at all").is_err());
        assert!(ArchiveReader::open(&[]).is_err());
        let values = sample_values(600);
        let mut archive = build_archive(&values);
        let n = archive.len();
        archive[n - 1] = b'X'; // footer magic
        assert!(ArchiveReader::open(&archive).is_err());
    }
}
