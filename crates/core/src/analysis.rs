//! Dataset analysis helpers behind the paper's motivating figures.
//!
//! * [`bit_probability`] — Fig. 1: probability of the most frequent bit
//!   value at each of the 64 bit positions of a double.
//! * [`exponent_histogram`] / [`mantissa_histogram`] — Fig. 3a/3b:
//!   normalized frequency of 2-byte sequences in the exponent and mantissa
//!   regions.

use crate::freq::FreqTable;
use crate::isobar::analysis::bit_majority_probability;
use crate::split::split_hi_lo;

/// Fig. 1: per-bit-position probability (p ≥ 0.5) of the dominant bit value,
/// bit 0 = sign bit.
pub fn bit_probability(values: &[f64]) -> Vec<f64> {
    let elements: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
    bit_majority_probability(&elements, 64)
}

/// Fig. 3a: normalized frequency of each possible 2-byte exponent sequence
/// (0–65535).
pub fn exponent_histogram(values: &[f64]) -> Vec<f64> {
    let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
    // Infallible: `bytes` is 8 bytes per value by construction.
    let (hi, _lo) = split_hi_lo(&bytes, 8, 2).unwrap_or_default();
    FreqTable::from_hi_matrix(&hi, 2).normalized()
}

/// Fig. 3b: normalized frequency of 2-byte sequences drawn from the mantissa
/// region (the first two low-order bytes of each double).
pub fn mantissa_histogram(values: &[f64]) -> Vec<f64> {
    let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
    // Infallible: `bytes` is 8 bytes per value by construction.
    let (_hi, lo) = split_hi_lo(&bytes, 8, 2).unwrap_or_default();
    // Rows are 6 bytes; take the leading pair of each row.
    let n = lo.len() / 6;
    let mut pairs = Vec::with_capacity(n * 2);
    for i in 0..n {
        pairs.push(lo[i * 6]);
        pairs.push(lo[i * 6 + 1]);
    }
    FreqTable::from_hi_matrix(&pairs, 2).normalized()
}

/// Number of distinct exponent byte-sequences in a dataset — the paper
/// reports < 2,000 of 65,536 for the majority of its datasets (§II-C).
pub fn unique_exponent_sequences(values: &[f64]) -> usize {
    let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
    // Infallible: `bytes` is 8 bytes per value by construction.
    let (hi, _lo) = split_hi_lo(&bytes, 8, 2).unwrap_or_default();
    FreqTable::from_hi_matrix(&hi, 2).unique()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn narrow_band(n: usize) -> Vec<f64> {
        let mut x = 1u64;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                1.0 + (x >> 12) as f64 / (1u64 << 52) as f64
            })
            .collect()
    }

    #[test]
    fn fig1_shape_signal_head_noise_tail() {
        let p = bit_probability(&narrow_band(20_000));
        // Sign + exponent bits pinned.
        assert!(p[0] > 0.999);
        assert!(p[5] > 0.999);
        // Deep mantissa ~ random.
        let tail: f64 = p[50..].iter().sum::<f64>() / 14.0;
        assert!(tail < 0.55, "tail {tail}");
    }

    #[test]
    fn fig3a_exponent_histogram_is_skewed() {
        let h = exponent_histogram(&narrow_band(20_000));
        assert_eq!(h.len(), 65_536);
        let max = h.iter().cloned().fold(0.0, f64::max);
        let nonzero = h.iter().filter(|&&x| x > 0.0).count();
        assert!(nonzero < 100, "{nonzero} distinct exponent sequences");
        // Values in [1, 2) share one exponent; the hi pair varies only in
        // its top-4-mantissa nibble, so the peak is ≈ 1/16.
        assert!(max > 0.05, "peak {max}");
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig3b_mantissa_histogram_is_flat() {
        let h = mantissa_histogram(&narrow_band(50_000));
        let nonzero = h.iter().filter(|&&x| x > 0.0).count();
        // Random mantissa pairs cover a large share of the 65536 domain.
        assert!(nonzero > 30_000, "{nonzero} distinct mantissa sequences");
        let max = h.iter().cloned().fold(0.0, f64::max);
        assert!(max < 0.01, "peak {max}");
    }

    #[test]
    fn unique_exponent_sequences_matches_paper_band() {
        // A realistic narrow-band field stays well under the paper's 2,000.
        assert!(unique_exponent_sequences(&narrow_band(100_000)) < 2_000);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(bit_probability(&[]), vec![0.5; 64]);
        assert_eq!(unique_exponent_sequences(&[]), 0);
    }
}
