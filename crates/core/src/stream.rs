//! Sequential streaming access to archives: an [`std::io::Read`] adapter
//! that decompresses chunk by chunk.
//!
//! Restart reads (§IV-D) usually consume a checkpoint front to back but
//! into a consumer that expects a `Read` — an MPI-IO shim, a deserializer, a
//! hash. [`ElementReader`] exposes a decompressed archive that way while
//! holding at most one chunk of plaintext in memory, preserving the
//! low-memory in-situ property of the chunked design (§II-B).

use crate::archive::ArchiveReader;
use crate::error::Result;
use std::io::Read;

/// Sequential reader over an archive's decompressed bytes.
///
/// Decompresses lazily, one chunk at a time; integrity failures surface as
/// `std::io::Error` of kind `InvalidData`.
pub struct ElementReader<'a> {
    archive: &'a ArchiveReader<'a>,
    /// Next chunk index to decode.
    next_chunk: usize,
    /// Plaintext of the current chunk.
    buffer: Vec<u8>,
    /// Read offset within `buffer`.
    offset: usize,
    /// Decode working memory reused across chunks, so steady-state refills
    /// perform no allocations.
    scratch: crate::pipeline::DecodeScratch,
}

impl<'a> ElementReader<'a> {
    /// Start reading from the first element.
    pub fn new(archive: &'a ArchiveReader<'a>) -> Self {
        Self {
            archive,
            next_chunk: 0,
            buffer: Vec::new(),
            offset: 0,
            scratch: crate::pipeline::DecodeScratch::new(),
        }
    }

    /// Bytes of plaintext not yet consumed (cheap: derived from the
    /// directory, no decompression).
    pub fn remaining_bytes(&self) -> u64 {
        let es = self.archive.element_size() as u64;
        let decoded: u64 = (0..self.next_chunk)
            .map(|i| self.archive.entry(i).map(|e| e.elements).unwrap_or(0))
            .sum();
        // Saturating: the count is informational, and a hostile directory
        // must not be able to turn it into an overflow panic.
        self.archive
            .element_count()
            .saturating_mul(es)
            .saturating_sub(decoded.saturating_mul(es))
            .saturating_add((self.buffer.len() - self.offset) as u64)
    }

    fn refill(&mut self) -> Result<bool> {
        if self.next_chunk >= self.archive.chunk_count() {
            return Ok(false);
        }
        self.archive
            .read_chunk_with(self.next_chunk, &mut self.scratch, &mut self.buffer)?;
        self.offset = 0;
        self.next_chunk += 1;
        Ok(true)
    }
}

impl Read for ElementReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.offset >= self.buffer.len() {
            match self.refill() {
                Ok(true) => {}
                Ok(false) => return Ok(0), // EOF
                Err(e) => return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e)),
            }
        }
        let avail = self.buffer.get(self.offset..).unwrap_or(&[]);
        let n = buf.len().min(avail.len());
        if let (Some(dst), Some(src)) = (buf.get_mut(..n), avail.get(..n)) {
            dst.copy_from_slice(src);
        }
        self.offset = self.offset.saturating_add(n);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::ArchiveWriter;
    use crate::config::PrimacyConfig;
    use std::io::Read;

    fn archive_of(values: &[f64]) -> Vec<u8> {
        let cfg = PrimacyConfig {
            chunk_bytes: 4096,
            ..Default::default()
        };
        let mut w = ArchiveWriter::new(Vec::new(), cfg).unwrap();
        w.append_f64(values).unwrap();
        w.finish().unwrap()
    }

    fn sample(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.01).cos() * 7.0).collect()
    }

    #[test]
    fn read_to_end_matches_source() {
        let values = sample(3000);
        let archive = archive_of(&values);
        let r = ArchiveReader::open(&archive).unwrap();
        let mut reader = ElementReader::new(&r);
        let mut out = Vec::new();
        reader.read_to_end(&mut out).unwrap();
        let expected: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn small_reads_cross_chunk_boundaries() {
        let values = sample(2000); // ~4 chunks of 512 doubles
        let archive = archive_of(&values);
        let r = ArchiveReader::open(&archive).unwrap();
        let mut reader = ElementReader::new(&r);
        let expected: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut out = Vec::new();
        let mut buf = [0u8; 333]; // deliberately misaligned with chunks
        loop {
            let n = reader.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        assert_eq!(out, expected);
    }

    #[test]
    fn remaining_bytes_counts_down() {
        let values = sample(1024);
        let archive = archive_of(&values);
        let r = ArchiveReader::open(&archive).unwrap();
        let mut reader = ElementReader::new(&r);
        assert_eq!(reader.remaining_bytes(), 1024 * 8);
        let mut buf = [0u8; 100];
        reader.read_exact(&mut buf).unwrap();
        assert_eq!(reader.remaining_bytes(), 1024 * 8 - 100);
    }

    #[test]
    fn empty_archive_reads_eof_immediately() {
        let cfg = PrimacyConfig::default();
        let archive = ArchiveWriter::new(Vec::new(), cfg)
            .unwrap()
            .finish()
            .unwrap();
        let r = ArchiveReader::open(&archive).unwrap();
        let mut reader = ElementReader::new(&r);
        let mut buf = [0u8; 8];
        assert_eq!(reader.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn corruption_surfaces_as_io_error() {
        let values = sample(2000);
        let mut archive = archive_of(&values);
        archive[30] ^= 0x08; // first chunk payload
        if let Ok(r) = ArchiveReader::open(&archive) {
            let mut reader = ElementReader::new(&r);
            let mut out = Vec::new();
            let err = reader.read_to_end(&mut out).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        }
    }
}
