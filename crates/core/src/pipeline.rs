//! The end-to-end PRIMACY pipeline (Fig. 2 / Algorithm 1 of the paper).

use crate::config::{IndexPolicy, Linearization, PrimacyConfig};
use crate::error::{PrimacyError, Result};
use crate::format::{self, Header, Reader};
use crate::freq::FreqTable;
use crate::idmap::IdMap;
use crate::isobar;
use crate::linearize::{to_columns, to_rows, to_rows_into};
use crate::split::{join_hi_lo, join_hi_lo_into, split_hi_lo};
use crate::stats::{
    CompressionStats, StageTimings, STAGE_DEFLATE, STAGE_FREQ, STAGE_IDMAP, STAGE_ISOBAR,
    STAGE_LINEARIZE, STAGE_SPLIT,
};
use primacy_codecs::checksum::crc32;
use primacy_codecs::{Codec, CodecScratch};
use primacy_trace as trace;
use std::time::{Duration, Instant};

/// Close one stage measurement: fold the elapsed time into the matching
/// `StageTimings` field and record it as a trace span under the canonical
/// stage name. One `Instant::now` serves both consumers.
#[inline]
fn stage(total: &mut Duration, name: &'static str, since: Instant) {
    let dt = since.elapsed();
    *total += dt;
    trace::span_duration(name, dt);
}

/// A configured PRIMACY compressor/decompressor.
///
/// The struct owns its backend codec instance and is immutable after
/// construction, so one instance can be shared across threads (`&self`
/// methods only).
pub struct PrimacyCompressor {
    config: PrimacyConfig,
    codec: Box<dyn Codec>,
}

/// State threaded between chunks for [`IndexPolicy::Reuse`].
pub(crate) struct IndexState {
    pub(crate) freq: FreqTable,
    pub(crate) map: IdMap,
}

impl PrimacyCompressor {
    /// Build a compressor, panicking on invalid configuration (use
    /// [`PrimacyCompressor::try_new`] to handle errors).
    pub fn new(config: PrimacyConfig) -> Self {
        // lint: allow(panic) -- documented panicking constructor; try_new is the fallible path
        Self::try_new(config).expect("invalid PRIMACY configuration")
    }

    /// Build a compressor, validating the configuration.
    pub fn try_new(config: PrimacyConfig) -> Result<Self> {
        config.validate()?;
        let codec = config.codec.build();
        Ok(Self { config, codec })
    }

    /// The active configuration.
    pub fn config(&self) -> &PrimacyConfig {
        &self.config
    }

    /// Compress a slice of doubles. Requires `element_size == 8`.
    pub fn compress_f64(&self, values: &[f64]) -> Result<Vec<u8>> {
        if self.config.element_size != 8 {
            return Err(PrimacyError::InvalidInput(
                "compress_f64 requires an 8-byte element configuration",
            ));
        }
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.compress_bytes(&bytes)
    }

    /// Decompress into doubles. Requires the stream's `element_size == 8`.
    pub fn decompress_f64(&self, input: &[u8]) -> Result<Vec<f64>> {
        let bytes = self.decompress_bytes(input)?;
        if bytes.len() % 8 != 0 {
            return Err(PrimacyError::Format(
                "stream is not a whole number of doubles",
            ));
        }
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                let mut a = [0u8; 8];
                a.copy_from_slice(c);
                f64::from_le_bytes(a)
            })
            .collect())
    }

    /// Compress raw element bytes (length must be a multiple of
    /// `element_size`).
    pub fn compress_bytes(&self, input: &[u8]) -> Result<Vec<u8>> {
        self.compress_bytes_with_stats(input).map(|(out, _)| out)
    }

    /// Compress and report per-stage statistics.
    pub fn compress_bytes_with_stats(&self, input: &[u8]) -> Result<(Vec<u8>, CompressionStats)> {
        if !input.len().is_multiple_of(self.config.element_size) {
            return Err(PrimacyError::InvalidInput(
                "input length is not a multiple of the element size",
            ));
        }
        let total_elements = (input.len() / self.config.element_size) as u64;
        let mut out = Vec::with_capacity(input.len() / 2 + 64);
        format::write_header(
            &mut out,
            &Header {
                element_size: self.config.element_size,
                hi_bytes: self.config.hi_bytes,
                linearization: self.config.linearization,
                codec: self.config.codec,
                total_elements,
            },
        );

        let chunk_bytes = self.config.chunk_elements() * self.config.element_size;
        let mut prev_index: Option<IndexState> = None;
        // One codec scratch for the whole stream: after the first chunk the
        // encoder's hash-chain and token buffers are reused, so steady-state
        // chunks allocate nothing in the tokenizer.
        let mut scratch = CodecScratch::new();
        let mut timings = StageTimings::default();
        let mut chunks = 0usize;
        let mut own_index_chunks = 0usize;
        let mut weighted_alpha2 = 0f64;

        for chunk in input.chunks(chunk_bytes.max(self.config.element_size)) {
            let info = self.compress_chunk(chunk, &mut prev_index, &mut scratch, &mut out)?;
            timings.add(&info.timings);
            chunks += 1;
            if info.own_index {
                own_index_chunks += 1;
            }
            weighted_alpha2 += info.alpha2 * chunk.len() as f64;
        }

        // The container CRC is integrity-trailer work of the backend/container
        // stage, exactly like the Adler-32 the zlib container already counts
        // under codec time — so it accrues to the deflate stage, with a
        // dedicated span so the breakdown stays visible.
        let t = Instant::now();
        out.extend_from_slice(&crc32(input).to_le_bytes());
        let dt = t.elapsed();
        timings.codec += dt;
        trace::span_duration(STAGE_DEFLATE, dt);
        trace::span_duration("container.crc", dt);
        let stats = CompressionStats {
            original_bytes: input.len(),
            compressed_bytes: out.len(),
            chunks,
            own_index_chunks,
            isobar_compressible_fraction: if input.is_empty() {
                0.0
            } else {
                weighted_alpha2 / input.len() as f64
            },
            timings,
        };
        Ok((out, stats))
    }

    /// Compress chunks on `threads` worker threads (chunk sections are
    /// independent, so this parallelizes embarrassingly — the paper runs the
    /// preconditioner on every compute node's own data the same way).
    ///
    /// Under [`IndexPolicy::Reuse`] each chunk falls back to its own index,
    /// since cross-chunk reuse would serialize the workers.
    pub fn compress_bytes_parallel(&self, input: &[u8], threads: usize) -> Result<Vec<u8>> {
        if !input.len().is_multiple_of(self.config.element_size) {
            return Err(PrimacyError::InvalidInput(
                "input length is not a multiple of the element size",
            ));
        }
        let threads = threads.max(1);
        let chunk_bytes =
            (self.config.chunk_elements() * self.config.element_size).max(self.config.element_size);
        let chunks: Vec<&[u8]> = input.chunks(chunk_bytes).collect();
        let mut sections: Vec<Result<Vec<u8>>> = Vec::with_capacity(chunks.len());
        sections.resize_with(chunks.len(), || Ok(Vec::new()));

        let next = std::sync::atomic::AtomicUsize::new(0);
        let sections_mutex = std::sync::Mutex::new(&mut sections);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(chunks.len().max(1)) {
                scope.spawn(|| {
                    // Merge this worker's trace aggregate into the sink in
                    // one call when the thread finishes its share.
                    let _trace_scope = trace::thread_scope();
                    // One scratch per worker thread, reused across every
                    // chunk this worker claims.
                    let mut scratch = CodecScratch::new();
                    loop {
                        // ORDERING: Relaxed is enough — the counter only hands
                        // out distinct indices; the scope join publishes data.
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= chunks.len() {
                            break;
                        }
                        let mut buf = Vec::new();
                        let mut no_prev = None;
                        let r = self
                            .compress_chunk(chunks[i], &mut no_prev, &mut scratch, &mut buf)
                            .map(|_| buf);
                        let mut guard = sections_mutex.lock().unwrap_or_else(|e| e.into_inner());
                        guard[i] = r;
                    }
                });
            }
        });

        let mut out = Vec::with_capacity(input.len() / 2 + 64);
        format::write_header(
            &mut out,
            &Header {
                element_size: self.config.element_size,
                hi_bytes: self.config.hi_bytes,
                linearization: self.config.linearization,
                codec: self.config.codec,
                total_elements: (input.len() / self.config.element_size) as u64,
            },
        );
        for section in sections {
            out.extend_from_slice(&section?);
        }
        let t = Instant::now();
        out.extend_from_slice(&crc32(input).to_le_bytes());
        let dt = t.elapsed();
        trace::span_duration(STAGE_DEFLATE, dt);
        trace::span_duration("container.crc", dt);
        Ok(out)
    }

    /// Per-chunk info reported back to the stats aggregator. `scratch` holds
    /// the backend codec's reusable working memory — the caller owns one per
    /// thread and threads it through every chunk.
    pub(crate) fn compress_chunk(
        &self,
        chunk: &[u8],
        prev_index: &mut Option<IndexState>,
        scratch: &mut CodecScratch,
        out: &mut Vec<u8>,
    ) -> Result<ChunkInfo> {
        let cfg = &self.config;
        let n = chunk.len() / cfg.element_size;
        let lo_cols = cfg.lo_bytes();
        let mut timings = StageTimings::default();
        let section_start = out.len();

        let t = Instant::now();
        let (mut hi, lo) = split_hi_lo(chunk, cfg.element_size, cfg.hi_bytes)?;
        stage(&mut timings.split, STAGE_SPLIT, t);

        // Frequency analysis + index decision (§II-C, §II-F).
        let t = Instant::now();
        let freq = FreqTable::from_hi_matrix(&hi, cfg.hi_bytes);
        let (own_index, state) = match (&cfg.index_policy, prev_index.take()) {
            (
                IndexPolicy::Reuse {
                    correlation_threshold,
                },
                Some(prev),
            ) if prev.freq.correlation(&freq) >= *correlation_threshold && prev.map.covers(&hi) => {
                (false, prev)
            }
            _ => {
                let map = IdMap::from_freq(&freq, cfg.hi_bytes)?;
                (true, IndexState { freq, map })
            }
        };
        stage(&mut timings.frequency_analysis, STAGE_FREQ, t);

        // ID mapping (§II-C).
        let t = Instant::now();
        state.map.encode_hi(&mut hi)?;
        stage(&mut timings.id_mapping, STAGE_IDMAP, t);

        // Linearization (§II-D).
        let t = Instant::now();
        let hi_lin = match cfg.linearization {
            Linearization::Row => hi,
            Linearization::Column => to_columns(&hi, n, cfg.hi_bytes),
        };
        stage(&mut timings.linearization, STAGE_LINEARIZE, t);

        // Backend compression of the ID bytes (§II-E).
        let t = Instant::now();
        let hi_comp = self.codec.compress_with(&hi_lin, scratch)?;
        stage(&mut timings.codec, STAGE_DEFLATE, t);

        // ISOBAR on the mantissa bytes (§II-G).
        let t = Instant::now();
        let report = isobar::analyze(&lo, n, lo_cols, &cfg.isobar);
        let (compressible, incompressible) = isobar::partition(&lo, n, lo_cols, report.mask);
        stage(&mut timings.isobar, STAGE_ISOBAR, t);

        let t = Instant::now();
        let lo_comp = if compressible.is_empty() {
            Vec::new()
        } else {
            self.codec.compress_with(&compressible, scratch)?
        };
        stage(&mut timings.codec, STAGE_DEFLATE, t);

        // Emit the chunk section.
        let t = Instant::now();
        format::write_varint(out, n as u64);
        let flags = if own_index { format::FLAG_OWN_INDEX } else { 0 };
        out.push(flags);
        if own_index {
            format::write_varint(out, state.map.len() as u64);
            state.map.serialize(out);
        }
        format::write_varint(out, hi_comp.len() as u64);
        out.extend_from_slice(&hi_comp);
        out.extend_from_slice(&report.mask.to_le_bytes());
        format::write_varint(out, lo_comp.len() as u64);
        out.extend_from_slice(&lo_comp);
        out.extend_from_slice(&incompressible);
        trace::span_duration("container.emit", t.elapsed());

        trace::counter("chunk.compress", 1);
        if own_index {
            trace::counter("chunk.own_index", 1);
        }
        trace::counter("compress.bytes_in", chunk.len() as u64);
        let section_len = (out.len() - section_start) as u64;
        trace::counter("compress.bytes_out", section_len);
        trace::observe("chunk.section_bytes", section_len);

        let alpha2 = report.compressible_fraction();
        *prev_index = Some(state);
        Ok(ChunkInfo {
            own_index,
            alpha2,
            timings,
        })
    }

    /// Decompress a PRIMACY stream produced by any configuration (the
    /// stream header, not `self.config`, governs layout and codec).
    pub fn decompress_bytes(&self, input: &[u8]) -> Result<Vec<u8>> {
        self.decompress_bytes_with_stats(input).map(|(out, _)| out)
    }

    /// Decompress and report per-stage statistics (the decompression-side
    /// mirror of [`PrimacyCompressor::compress_bytes_with_stats`]).
    pub fn decompress_bytes_with_stats(&self, input: &[u8]) -> Result<(Vec<u8>, CompressionStats)> {
        if input.len() < 13 {
            return Err(PrimacyError::Format("stream shorter than minimum"));
        }
        let (header, pos) = format::read_header(input)?;
        // The stream header, not this instance's config, names the codec.
        let codec: Box<dyn Codec> = header.codec.build();
        let body_end = input.len() - 4;
        if pos > body_end {
            return Err(PrimacyError::Format("stream shorter than header + crc"));
        }
        // Clamp the pre-allocation: total_elements is attacker-controlled in
        // a corrupt stream, and over-claims are caught chunk by chunk anyway.
        let claimed = header
            .total_elements
            .saturating_mul(header.element_size as u64)
            .min(64 * 1024 * 1024) as usize;
        let mut out = Vec::with_capacity(claimed);
        let mut prev_map: Option<IdMap> = None;
        let mut reader = Reader::new(input, pos, body_end);
        let mut decoded_elements = 0u64;
        let mut timings = StageTimings::default();
        let mut chunks = 0usize;
        while decoded_elements < header.total_elements {
            if reader.remaining() == 0 {
                return Err(PrimacyError::Format("stream ends before all elements"));
            }
            let (chunk, map) = decompress_chunk_timed(
                &mut reader,
                &header,
                codec.as_ref(),
                prev_map.take(),
                &mut timings,
            )?;
            let n = (chunk.len() / header.element_size) as u64;
            let after = decoded_elements
                .checked_add(n)
                .ok_or(PrimacyError::Format("chunk element count out of range"))?;
            if after > header.total_elements {
                return Err(PrimacyError::Format("chunk element count out of range"));
            }
            out.extend_from_slice(&chunk);
            decoded_elements = after;
            chunks += 1;
            prev_map = Some(map);
        }
        if reader.remaining() != 0 {
            return Err(PrimacyError::Format("trailing bytes after final chunk"));
        }
        let stored =
            u32::from_le_bytes(format::read_array(input, body_end).ok_or(PrimacyError::Truncated)?);
        let t = Instant::now();
        let actual = crc32(&out);
        let dt = t.elapsed();
        timings.codec += dt;
        trace::span_duration(STAGE_DEFLATE, dt);
        trace::span_duration("container.crc", dt);
        if stored != actual {
            return Err(PrimacyError::Codec(
                primacy_codecs::CodecError::ChecksumMismatch {
                    expected: stored,
                    actual,
                },
            ));
        }
        let stats = CompressionStats {
            original_bytes: out.len(),
            compressed_bytes: input.len(),
            chunks,
            own_index_chunks: chunks, // not tracked on decode; upper bound
            isobar_compressible_fraction: 0.0,
            timings,
        };
        Ok((out, stats))
    }
}

pub(crate) struct ChunkInfo {
    pub(crate) own_index: bool,
    pub(crate) alpha2: f64,
    pub(crate) timings: StageTimings,
}

/// Reusable working memory for the allocation-free chunk decode path
/// ([`decompress_chunk_into`]). Holds the backend codec's decode state plus
/// every intermediate matrix the inverse pipeline materializes; a warm
/// scratch makes steady-state decodes allocation-free (the counting-allocator
/// test in `crates/core/tests/read_alloc_count.rs` enforces this).
pub struct DecodeScratch {
    /// Backend codec decode state (deflate Huffman tables etc.).
    pub(crate) codec: CodecScratch,
    /// Reloaded per chunk in O(k) without touching the full domain table.
    pub(crate) map: IdMap,
    /// Decompressed hi matrix in stream (possibly column) order.
    pub(crate) hi_lin: Vec<u8>,
    /// Row-major hi matrix.
    pub(crate) hi: Vec<u8>,
    /// Decompressed compressible lo columns.
    pub(crate) compressible: Vec<u8>,
    /// Re-interleaved row-major lo matrix.
    pub(crate) lo: Vec<u8>,
}

impl DecodeScratch {
    /// An empty scratch; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        Self {
            codec: CodecScratch::new(),
            map: IdMap::placeholder(),
            hi_lin: Vec::new(),
            hi: Vec::new(),
            compressible: Vec::new(),
            lo: Vec::new(),
        }
    }
}

impl Default for DecodeScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// [`decompress_chunk`] into a caller-owned buffer, reusing all intermediate
/// storage from `scratch`. Requires a self-contained chunk (the archive
/// always writes own-index chunks); a chunk that reuses its predecessor's
/// index fails with the same error the streaming path reports when the
/// predecessor is missing.
pub(crate) fn decompress_chunk_into(
    reader: &mut Reader<'_>,
    header: &Header,
    codec: &dyn Codec,
    scratch: &mut DecodeScratch,
    timings: &mut StageTimings,
    out: &mut Vec<u8>,
) -> Result<()> {
    let lo_cols = header.element_size - header.hi_bytes;
    let n = reader.varint()? as usize;
    if n == 0 {
        return Err(PrimacyError::Format("empty chunk section"));
    }
    let flags = reader.byte()?;
    if flags & format::FLAG_OWN_INDEX == 0 {
        return Err(PrimacyError::Format("chunk reuses a missing index"));
    }
    let k = reader.varint()? as usize;
    if k > 1 << (8 * header.hi_bytes) {
        return Err(PrimacyError::Format("index larger than sequence domain"));
    }
    // k <= 65536 and hi_bytes <= 2, so this product cannot overflow.
    let bytes = reader.bytes(k * header.hi_bytes)?;
    scratch.map.reload(bytes, k, header.hi_bytes)?;
    let hi_len = reader.varint()? as usize;
    let hi_comp = reader.bytes(hi_len)?;
    let mask = reader.u16_le()?;
    if usize::from(mask.count_ones() as u16) > lo_cols || (mask >> lo_cols) != 0 {
        return Err(PrimacyError::Format("isobar mask wider than matrix"));
    }
    let lo_len = reader.varint()? as usize;
    let lo_comp = reader.bytes(lo_len)?;
    // Exact after the mask-width guard above; saturation documents the bound.
    let incompressible_cols = lo_cols.saturating_sub(mask.count_ones() as usize);
    // `n` comes straight from an attacker-controllable varint; every product
    // involving it must be checked or an over-claim wraps into a panic.
    let raw_len = n
        .checked_mul(incompressible_cols)
        .ok_or(PrimacyError::Truncated)?;
    let incompressible = reader.bytes(raw_len)?;

    // Reverse the hi pipeline.
    let t = Instant::now();
    codec.decompress_into(hi_comp, &mut scratch.codec, &mut scratch.hi_lin)?;
    stage(&mut timings.codec, STAGE_DEFLATE, t);
    if n.checked_mul(header.hi_bytes) != Some(scratch.hi_lin.len()) {
        return Err(PrimacyError::Format("hi section has wrong size"));
    }
    let t = Instant::now();
    match header.linearization {
        Linearization::Row => {
            scratch.hi.clear();
            scratch.hi.extend_from_slice(&scratch.hi_lin);
        }
        Linearization::Column => to_rows_into(&scratch.hi_lin, n, header.hi_bytes, &mut scratch.hi),
    }
    stage(&mut timings.linearization, STAGE_LINEARIZE, t);
    let t = Instant::now();
    scratch.map.decode_hi(&mut scratch.hi)?;
    stage(&mut timings.id_mapping, STAGE_IDMAP, t);

    // Reverse the lo pipeline.
    let t = Instant::now();
    if lo_len == 0 {
        scratch.compressible.clear();
    } else {
        codec.decompress_into(lo_comp, &mut scratch.codec, &mut scratch.compressible)?;
    }
    stage(&mut timings.codec, STAGE_DEFLATE, t);
    if n.checked_mul(mask.count_ones() as usize) != Some(scratch.compressible.len()) {
        return Err(PrimacyError::Format("lo section has wrong size"));
    }
    let t = Instant::now();
    isobar::unpartition_into(
        &scratch.compressible,
        incompressible,
        n,
        lo_cols,
        mask,
        &mut scratch.lo,
    );
    stage(&mut timings.isobar, STAGE_ISOBAR, t);

    let t = Instant::now();
    join_hi_lo_into(
        &scratch.hi,
        &scratch.lo,
        header.element_size,
        header.hi_bytes,
        out,
    )?;
    stage(&mut timings.split, STAGE_SPLIT, t);
    trace::counter("chunk.decompress", 1);
    trace::counter("decompress.bytes_out", out.len() as u64);
    Ok(())
}

/// Decode one chunk section from `reader` with per-stage wall-clock
/// accounting. `prev_map` supplies the index when the chunk reuses its
/// predecessor's; returns the decoded bytes and the index in effect (to
/// thread into the next chunk). The seekable archive decodes its
/// (always self-contained) chunks through [`decompress_chunk_into`] instead.
pub(crate) fn decompress_chunk_timed(
    reader: &mut Reader<'_>,
    header: &Header,
    codec: &dyn Codec,
    prev_map: Option<IdMap>,
    timings: &mut StageTimings,
) -> Result<(Vec<u8>, IdMap)> {
    let lo_cols = header.element_size - header.hi_bytes;
    let n = reader.varint()? as usize;
    if n == 0 {
        return Err(PrimacyError::Format("empty chunk section"));
    }
    let flags = reader.byte()?;
    let map = if flags & format::FLAG_OWN_INDEX != 0 {
        let k = reader.varint()? as usize;
        if k > 1 << (8 * header.hi_bytes) {
            return Err(PrimacyError::Format("index larger than sequence domain"));
        }
        // k <= 65536 and hi_bytes <= 2, so this product cannot overflow.
        let bytes = reader.bytes(k * header.hi_bytes)?;
        IdMap::deserialize(bytes, k, header.hi_bytes)?
    } else {
        prev_map.ok_or(PrimacyError::Format("chunk reuses a missing index"))?
    };
    let hi_len = reader.varint()? as usize;
    let hi_comp = reader.bytes(hi_len)?;
    let mask = reader.u16_le()?;
    if usize::from(mask.count_ones() as u16) > lo_cols || (mask >> lo_cols) != 0 {
        return Err(PrimacyError::Format("isobar mask wider than matrix"));
    }
    let lo_len = reader.varint()? as usize;
    let lo_comp = reader.bytes(lo_len)?;
    // Exact after the mask-width guard above; saturation documents the bound.
    let incompressible_cols = lo_cols.saturating_sub(mask.count_ones() as usize);
    // `n` comes straight from an attacker-controllable varint; every product
    // involving it must be checked or an over-claim wraps into a panic.
    let raw_len = n
        .checked_mul(incompressible_cols)
        .ok_or(PrimacyError::Truncated)?;
    let incompressible = reader.bytes(raw_len)?;

    // Reverse the hi pipeline.
    let t = Instant::now();
    let hi_lin = codec.decompress(hi_comp)?;
    stage(&mut timings.codec, STAGE_DEFLATE, t);
    if n.checked_mul(header.hi_bytes) != Some(hi_lin.len()) {
        return Err(PrimacyError::Format("hi section has wrong size"));
    }
    let t = Instant::now();
    let mut hi = match header.linearization {
        Linearization::Row => hi_lin,
        Linearization::Column => to_rows(&hi_lin, n, header.hi_bytes),
    };
    stage(&mut timings.linearization, STAGE_LINEARIZE, t);
    let t = Instant::now();
    map.decode_hi(&mut hi)?;
    stage(&mut timings.id_mapping, STAGE_IDMAP, t);

    // Reverse the lo pipeline.
    let t = Instant::now();
    let compressible = if lo_len == 0 {
        Vec::new()
    } else {
        codec.decompress(lo_comp)?
    };
    stage(&mut timings.codec, STAGE_DEFLATE, t);
    if n.checked_mul(mask.count_ones() as usize) != Some(compressible.len()) {
        return Err(PrimacyError::Format("lo section has wrong size"));
    }
    let t = Instant::now();
    let lo = isobar::unpartition(&compressible, incompressible, n, lo_cols, mask);
    stage(&mut timings.isobar, STAGE_ISOBAR, t);

    let t = Instant::now();
    let chunk = join_hi_lo(&hi, &lo, header.element_size, header.hi_bytes)?;
    stage(&mut timings.split, STAGE_SPLIT, t);
    trace::counter("chunk.decompress", 1);
    trace::counter("decompress.bytes_out", chunk.len() as u64);
    Ok((chunk, map))
}

#[cfg(test)]
// Config tweaks read more clearly as sequential assignments in tests.
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use primacy_codecs::CodecKind;

    fn sample_values(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 1.0 + (i as f64 * 0.001).sin() * 0.5 + (i % 17) as f64 * 1e-9)
            .collect()
    }

    fn compressor() -> PrimacyCompressor {
        PrimacyCompressor::new(PrimacyConfig::default())
    }

    #[test]
    fn roundtrip_f64() {
        let values = sample_values(50_000);
        let c = compressor();
        let comp = c.compress_f64(&values).unwrap();
        let back = c.decompress_f64(&comp).unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn roundtrip_empty() {
        let c = compressor();
        let comp = c.compress_f64(&[]).unwrap();
        assert!(c.decompress_f64(&comp).unwrap().is_empty());
    }

    #[test]
    fn roundtrip_single_value() {
        let c = compressor();
        let comp = c.compress_f64(&[42.42]).unwrap();
        assert_eq!(c.decompress_f64(&comp).unwrap(), vec![42.42]);
    }

    #[test]
    fn roundtrip_multi_chunk() {
        let mut cfg = PrimacyConfig::default();
        cfg.chunk_bytes = 4096; // force many chunks
        let c = PrimacyCompressor::new(cfg);
        let values = sample_values(10_000);
        let comp = c.compress_f64(&values).unwrap();
        assert_eq!(c.decompress_f64(&comp).unwrap(), values);
    }

    #[test]
    fn roundtrip_special_values() {
        let c = compressor();
        let values = vec![
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::MIN_POSITIVE,
            f64::MAX,
            -f64::MAX,
        ];
        let comp = c.compress_f64(&values).unwrap();
        let back = c.decompress_f64(&comp).unwrap();
        assert_eq!(
            back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            values.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn roundtrip_every_codec_backend() {
        let values = sample_values(5_000);
        for kind in CodecKind::ALL {
            let mut cfg = PrimacyConfig::default();
            cfg.codec = kind;
            let c = PrimacyCompressor::new(cfg);
            let comp = c.compress_f64(&values).unwrap();
            assert_eq!(c.decompress_f64(&comp).unwrap(), values, "backend {kind}");
        }
    }

    #[test]
    fn roundtrip_row_linearization() {
        let mut cfg = PrimacyConfig::default();
        cfg.linearization = Linearization::Row;
        let c = PrimacyCompressor::new(cfg);
        let values = sample_values(8_000);
        let comp = c.compress_f64(&values).unwrap();
        assert_eq!(c.decompress_f64(&comp).unwrap(), values);
    }

    #[test]
    fn roundtrip_isobar_disabled() {
        let mut cfg = PrimacyConfig::default();
        cfg.isobar.enabled = false;
        let c = PrimacyCompressor::new(cfg);
        let values = sample_values(8_000);
        let comp = c.compress_f64(&values).unwrap();
        assert_eq!(c.decompress_f64(&comp).unwrap(), values);
    }

    #[test]
    fn roundtrip_f32_elements() {
        let cfg = PrimacyConfig::f32();
        let c = PrimacyCompressor::new(cfg);
        let bytes: Vec<u8> = (0..10_000u32)
            .flat_map(|i| (1.5f32 + (i as f32 * 0.01).sin()).to_le_bytes())
            .collect();
        let comp = c.compress_bytes(&bytes).unwrap();
        assert_eq!(c.decompress_bytes(&comp).unwrap(), bytes);
    }

    #[test]
    fn index_reuse_reduces_index_count() {
        let mut cfg = PrimacyConfig::default();
        cfg.chunk_bytes = 8192;
        cfg.index_policy = IndexPolicy::Reuse {
            correlation_threshold: 0.5,
        };
        let c = PrimacyCompressor::new(cfg);
        // Statistically stationary data: later chunks should reuse.
        let values = sample_values(50_000);
        let (comp, stats) = c
            .compress_bytes_with_stats(
                &values
                    .iter()
                    .flat_map(|v| v.to_le_bytes())
                    .collect::<Vec<u8>>(),
            )
            .unwrap();
        assert!(stats.chunks > 10);
        assert!(
            stats.own_index_chunks < stats.chunks,
            "no chunk reused an index ({}/{})",
            stats.own_index_chunks,
            stats.chunks
        );
        assert_eq!(c.decompress_f64(&comp).unwrap(), values);
    }

    #[test]
    fn stats_are_plausible() {
        let values = sample_values(100_000);
        let c = compressor();
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let (comp, stats) = c.compress_bytes_with_stats(&bytes).unwrap();
        assert_eq!(stats.original_bytes, 800_000);
        assert_eq!(stats.compressed_bytes, comp.len());
        assert!(stats.ratio() > 1.0, "ratio {}", stats.ratio());
        assert!(stats.timings.total().as_nanos() > 0);
        assert!((0.0..=1.0).contains(&stats.isobar_compressible_fraction));
    }

    #[test]
    fn decompress_stats_are_plausible() {
        let values = sample_values(50_000);
        let c = compressor();
        let comp = c.compress_f64(&values).unwrap();
        let (out, stats) = c.decompress_bytes_with_stats(&comp).unwrap();
        assert_eq!(out.len(), values.len() * 8);
        assert_eq!(stats.original_bytes, out.len());
        assert_eq!(stats.compressed_bytes, comp.len());
        assert!(stats.chunks >= 1);
        assert!(stats.timings.codec.as_nanos() > 0);
        // Ratio from the decode side matches the encode side.
        assert!((stats.ratio() - out.len() as f64 / comp.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn parallel_compression_matches_serial_output_content() {
        let values = sample_values(60_000);
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut cfg = PrimacyConfig::default();
        cfg.chunk_bytes = 32 * 1024;
        let c = PrimacyCompressor::new(cfg);
        let par = c.compress_bytes_parallel(&bytes, 4).unwrap();
        let ser = c.compress_bytes(&bytes).unwrap();
        // Same format and content (PerChunk policy makes them identical).
        assert_eq!(par, ser);
        assert_eq!(c.decompress_bytes(&par).unwrap(), bytes);
    }

    #[test]
    fn rejects_ragged_input() {
        let c = compressor();
        assert!(c.compress_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    fn rejects_corrupted_stream() {
        let values = sample_values(10_000);
        let c = compressor();
        let comp = c.compress_f64(&values).unwrap();
        for &pos in &[5usize, comp.len() / 2, comp.len() - 2] {
            let mut bad = comp.clone();
            bad[pos] ^= 0x40;
            assert!(c.decompress_bytes(&bad).is_err(), "flip at {pos} accepted");
        }
    }

    #[test]
    fn rejects_truncated_stream() {
        let values = sample_values(2_000);
        let c = compressor();
        let comp = c.compress_f64(&values).unwrap();
        for cut in [1usize, 4, comp.len() / 2] {
            assert!(c.decompress_bytes(&comp[..comp.len() - cut]).is_err());
        }
    }

    #[test]
    fn cross_config_decompression() {
        // A stream written with BWT backend must decompress through a
        // compressor configured for zlib (header governs).
        let values = sample_values(3_000);
        let mut cfg = PrimacyConfig::default();
        cfg.codec = CodecKind::Bwt;
        let writer = PrimacyCompressor::new(cfg);
        let comp = writer.compress_f64(&values).unwrap();
        let reader = compressor();
        assert_eq!(reader.decompress_f64(&comp).unwrap(), values);
    }

    #[test]
    fn compression_beats_backend_alone_on_hard_data() {
        // Narrow-range doubles with random mantissas: the PRIMACY transform
        // must compress better than handing the raw bytes to the codec.
        let mut x = 777u64;
        let values: Vec<f64> = (0..200_000)
            .map(|_| {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                1.0 + (x >> 12) as f64 / (1u64 << 52) as f64
            })
            .collect();
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let c = compressor();
        let primacy_size = c.compress_bytes(&bytes).unwrap().len();
        let zlib_size = CodecKind::Zlib.build().compress(&bytes).unwrap().len();
        assert!(
            primacy_size < zlib_size,
            "primacy {primacy_size} vs zlib {zlib_size}"
        );
    }
}
