//! The Welton et al. model (CLUSTER 2011, the paper's reference \[22\]):
//! compression as a pure effective-network-bandwidth multiplier, with
//! compression and decompression assumed costless.
//!
//! PRIMACY's §V argues this assumption breaks down in practice — the CPU
//! cost of the compressor "cannot be trivialized". This module implements
//! the costless model so the bench suite can show exactly how much it
//! over-predicts relative to the full model and the simulator, reproducing
//! the paper's argument quantitatively.

use crate::model::{ModelInputs, ModelOutputs};

/// End-to-end write throughput under the costless-compression assumption:
/// identical to the base case with every transferred/stored byte scaled by
/// `sigma`, and zero time charged for the compressor.
pub fn welton_write(inputs: &ModelInputs, sigma: f64) -> ModelOutputs {
    let c = inputs.chunk_bytes;
    let p = inputs.cluster;
    let c_out = c * sigma;
    let t_transfer = (1.0 + p.rho) * c_out / p.theta;
    let t_disk = p.rho * c_out / p.mu_write;
    let t_total = t_transfer + t_disk;
    ModelOutputs {
        t_transfer,
        t_disk,
        t_total,
        tau: p.rho * c / t_total,
        ..Default::default()
    }
}

/// Costless-decompression read throughput.
pub fn welton_read(inputs: &ModelInputs, sigma: f64) -> ModelOutputs {
    let c = inputs.chunk_bytes;
    let p = inputs.cluster;
    let c_in = c * sigma;
    let t_disk = p.rho * c_in / p.mu_read;
    let t_transfer = (1.0 + p.rho) * c_in / p.theta;
    let t_total = t_transfer + t_disk;
    ModelOutputs {
        t_transfer,
        t_disk,
        t_total,
        tau: p.rho * c / t_total,
        ..Default::default()
    }
}

/// Effective network bandwidth under the costless assumption: raw bandwidth
/// divided by the compressed fraction — the headline quantity of the Welton
/// study.
pub fn effective_network_bandwidth(theta: f64, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return f64::INFINITY;
    }
    theta / sigma
}

/// How much the costless model over-predicts the full model's throughput
/// (≥ 0; 0 means compression really was free).
pub fn overprediction(costless: &ModelOutputs, full: &ModelOutputs) -> f64 {
    (costless.tau - full.tau).max(0.0) / full.tau
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{vanilla_write, ClusterParams};

    fn inputs() -> ModelInputs {
        ModelInputs {
            cluster: ClusterParams::default(),
            chunk_bytes: 3.0 * 1024.0 * 1024.0,
            metadata_bytes: 0.0,
            alpha1: 0.25,
            alpha2: 0.0,
            sigma_ho: 1.0,
            sigma_lo: 1.0,
            t_prec: f64::INFINITY,
            t_comp: f64::INFINITY,
            t_decomp: f64::INFINITY,
            t_prec_inv: f64::INFINITY,
        }
    }

    #[test]
    fn costless_model_scales_inversely_with_sigma() {
        let m = inputs();
        let full = welton_write(&m, 1.0);
        let half = welton_write(&m, 0.5);
        assert!((half.tau / full.tau - 2.0).abs() < 1e-9);
    }

    #[test]
    fn costless_always_beats_the_full_model() {
        // With any finite compressor speed, charging the CPU time can only
        // lower throughput.
        let m = inputs();
        let sigma = 0.8;
        for t_comp in [5e6, 20e6, 100e6] {
            let costless = welton_write(&m, sigma);
            let full = vanilla_write(&m, sigma, t_comp);
            assert!(costless.tau >= full.tau);
            assert!(overprediction(&costless, &full) >= 0.0);
        }
    }

    #[test]
    fn overprediction_grows_as_the_compressor_slows() {
        let m = inputs();
        let sigma = 0.85;
        let costless = welton_write(&m, sigma);
        let fast = vanilla_write(&m, sigma, 200e6);
        let slow = vanilla_write(&m, sigma, 5e6);
        assert!(
            overprediction(&costless, &slow) > overprediction(&costless, &fast),
            "slow compressor must be over-predicted more"
        );
    }

    #[test]
    fn effective_bandwidth_formula() {
        assert!((effective_network_bandwidth(100.0, 0.5) - 200.0).abs() < 1e-12);
        assert!(effective_network_bandwidth(100.0, 0.0).is_infinite());
    }

    #[test]
    fn read_model_mirrors_write() {
        let m = inputs();
        let r = welton_read(&m, 0.7);
        assert!(r.tau > welton_read(&m, 1.0).tau);
    }
}
